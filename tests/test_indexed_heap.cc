// IndexedHeap tests, including a randomized differential test against a
// reference implementation.
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/indexed_heap.h"
#include "common/rng.h"

namespace cca {
namespace {

TEST(IndexedHeapTest, PushPopOrdered) {
  IndexedHeap heap(10);
  heap.PushOrDecrease(3, 5.0);
  heap.PushOrDecrease(1, 2.0);
  heap.PushOrDecrease(7, 9.0);
  heap.PushOrDecrease(2, 4.0);
  EXPECT_EQ(heap.size(), 4u);
  EXPECT_EQ(heap.PopMin().first, 1);
  EXPECT_EQ(heap.PopMin().first, 2);
  EXPECT_EQ(heap.PopMin().first, 3);
  EXPECT_EQ(heap.PopMin().first, 7);
  EXPECT_TRUE(heap.empty());
}

TEST(IndexedHeapTest, DecreaseKeyReordersElement) {
  IndexedHeap heap(5);
  heap.PushOrDecrease(0, 10.0);
  heap.PushOrDecrease(1, 20.0);
  heap.PushOrDecrease(2, 30.0);
  heap.PushOrDecrease(2, 1.0);  // decrease
  EXPECT_EQ(heap.PopMin().first, 2);
  EXPECT_DOUBLE_EQ(heap.KeyOf(0), 10.0);
}

TEST(IndexedHeapTest, IncreaseIsIgnored) {
  IndexedHeap heap(5);
  heap.PushOrDecrease(0, 10.0);
  heap.PushOrDecrease(0, 50.0);  // ignored: Dijkstra never raises keys
  EXPECT_DOUBLE_EQ(heap.KeyOf(0), 10.0);
  EXPECT_EQ(heap.size(), 1u);
}

TEST(IndexedHeapTest, ContainsTracksMembership) {
  IndexedHeap heap(5);
  EXPECT_FALSE(heap.Contains(0));
  heap.PushOrDecrease(0, 1.0);
  EXPECT_TRUE(heap.Contains(0));
  heap.PopMin();
  EXPECT_FALSE(heap.Contains(0));
}

TEST(IndexedHeapTest, RemoveArbitrary) {
  IndexedHeap heap(6);
  for (int i = 0; i < 6; ++i) heap.PushOrDecrease(i, 10.0 - i);
  heap.Remove(0);  // largest key
  heap.Remove(5);  // smallest key
  EXPECT_EQ(heap.size(), 4u);
  EXPECT_EQ(heap.PopMin().first, 4);
}

TEST(IndexedHeapTest, ClearEmptiesAndAllowsReuse) {
  IndexedHeap heap(4);
  heap.PushOrDecrease(1, 1.0);
  heap.PushOrDecrease(2, 2.0);
  heap.Clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_FALSE(heap.Contains(1));
  heap.PushOrDecrease(1, 5.0);
  EXPECT_DOUBLE_EQ(heap.KeyOf(1), 5.0);
}

TEST(IndexedHeapTest, ResizeGrowsIdSpace) {
  IndexedHeap heap(2);
  heap.PushOrDecrease(100, 3.0);  // auto-grows
  EXPECT_TRUE(heap.Contains(100));
  EXPECT_EQ(heap.PopMin().first, 100);
}

// Differential test against std::multiset-based reference.
TEST(IndexedHeapTest, RandomisedAgainstReference) {
  Rng rng(77);
  IndexedHeap heap(200);
  std::map<int, double> ref;  // id -> key
  for (int step = 0; step < 20000; ++step) {
    const int op = static_cast<int>(rng.NextBelow(3));
    if (op == 0) {
      const int id = static_cast<int>(rng.NextBelow(200));
      const double key = rng.Uniform(0, 1000);
      auto it = ref.find(id);
      if (it == ref.end()) {
        ref[id] = key;
        heap.PushOrDecrease(id, key);
      } else if (key < it->second) {
        it->second = key;
        heap.PushOrDecrease(id, key);
      } else {
        heap.PushOrDecrease(id, key);  // ignored
      }
    } else if (op == 1 && !ref.empty()) {
      auto best = ref.begin();
      for (auto it = ref.begin(); it != ref.end(); ++it) {
        if (it->second < best->second) best = it;
      }
      const auto [id, key] = heap.PopMin();
      EXPECT_DOUBLE_EQ(key, best->second);
      EXPECT_EQ(id, best->first);
      ref.erase(best);
    } else if (op == 2 && !ref.empty()) {
      // Remove a random element.
      auto it = ref.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(ref.size())));
      heap.Remove(it->first);
      ref.erase(it);
    }
    EXPECT_EQ(heap.size(), ref.size());
  }
}

}  // namespace
}  // namespace cca
