// Randomized churn suite for the incremental AssignmentEngine
// (src/runtime/engine.h): the PR's correctness anchor is that a
// warm-started Resolve is cost-identical to a cold solve of the same
// snapshot, across insert/remove churn of both point sets, every point
// distribution and unit/weighted customers.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/matching.h"
#include "flow/sspa.h"
#include "geo/point.h"
#include "runtime/engine.h"
#include "test_util.h"

namespace cca {
namespace {

enum class Dist { kUniform, kClustered, kSkewed };

std::vector<Point> MakePoints(Dist dist, std::size_t n, std::uint64_t seed) {
  switch (dist) {
    case Dist::kClustered:
      return test::ClusteredPoints(n, seed);
    case Dist::kSkewed:
      return test::SkewedPoints(n, seed);
    case Dist::kUniform:
    default:
      return test::RandomPoints(n, seed);
  }
}

struct ChurnSpec {
  Dist dist = Dist::kUniform;
  bool weighted = false;
  std::uint64_t seed = 1;
  int events = 500;
  SspaConfig sspa;  // base solve config (shared grids / potentials ignored)
};

// Cold-solves the engine's current snapshot from scratch: no shared index,
// no initial potentials — the reference the warm path must match.
double ColdCost(const Problem& problem, const SspaConfig& base) {
  SspaConfig cold = base;
  cold.shared_grid = nullptr;
  cold.shared_hier_grid = nullptr;
  cold.initial_potentials = nullptr;
  cold.initial_matching = nullptr;
  return SolveSspa(problem, cold).matching.cost();
}

void ExpectResolveMatchesCold(AssignmentEngine* engine, const SspaConfig& base,
                              Metrics* totals, int* warm_resolves) {
  const AssignmentEngine::ResolveOutcome out = engine->Resolve();
  std::string error;
  ASSERT_TRUE(ValidateMatching(engine->problem(), out.matching, &error)) << error;
  const double cold = ColdCost(engine->problem(), base);
  const double tol = 1e-9 * std::max(1.0, std::abs(cold));
  EXPECT_NEAR(out.cost, cold, tol)
      << "warm=" << out.warm << " |Q|=" << engine->num_providers()
      << " |P|=" << engine->num_customers();
  totals->Merge(out.metrics);
  if (out.warm) ++*warm_resolves;
}

// Drives `spec.events` random population edits interleaved with Resolves,
// checking every Resolve against a cold solve of the same snapshot.
void RunChurn(const ChurnSpec& spec) {
  Rng rng(spec.seed * 101 + 7);
  const auto customer_pool = MakePoints(spec.dist, 4096, spec.seed * 3 + 1);
  const auto provider_pool = MakePoints(spec.dist, 512, spec.seed * 5 + 2);
  std::size_t next_customer = 0, next_provider = 0;

  AssignmentEngine::Options options;
  options.sspa = spec.sspa;
  options.warm_start = true;
  AssignmentEngine engine(options);

  std::vector<AssignmentEngine::Id> customers, providers;
  auto insert_customer = [&] {
    const Point& pos = customer_pool[next_customer++ % customer_pool.size()];
    const auto w = spec.weighted ? static_cast<std::int32_t>(rng.UniformInt(1, 3)) : 1;
    customers.push_back(engine.InsertCustomer(pos, w).value());
  };
  auto insert_provider = [&] {
    const Point& pos = provider_pool[next_provider++ % provider_pool.size()];
    providers.push_back(
        engine.InsertProvider(pos, static_cast<std::int32_t>(rng.UniformInt(2, 6))).value());
  };

  for (int i = 0; i < 6; ++i) insert_provider();
  for (int i = 0; i < 50; ++i) insert_customer();

  Metrics totals;
  int warm_resolves = 0;
  ExpectResolveMatchesCold(&engine, spec.sspa, &totals, &warm_resolves);

  for (int e = 0; e < spec.events; ++e) {
    const double r = rng.NextDouble();
    if (r < 0.32) {
      insert_customer();
    } else if (r < 0.52 && !customers.empty()) {
      const std::size_t i = rng.NextBelow(customers.size());
      EXPECT_TRUE(engine.RemoveCustomer(customers[i]));
      customers[i] = customers.back();
      customers.pop_back();
    } else if (r < 0.60) {
      insert_provider();
    } else if (r < 0.68 && providers.size() > 1) {
      const std::size_t i = rng.NextBelow(providers.size());
      EXPECT_TRUE(engine.RemoveProvider(providers[i]));
      providers[i] = providers.back();
      providers.pop_back();
    } else {
      ExpectResolveMatchesCold(&engine, spec.sspa, &totals, &warm_resolves);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  ExpectResolveMatchesCold(&engine, spec.sspa, &totals, &warm_resolves);

  // The sequence must actually exercise the warm path, and churn between
  // solves leaves some previous duals infeasible, so the repair pass has
  // real work across the run.
  EXPECT_GT(warm_resolves, 0);
  EXPECT_GT(totals.dual_repairs, 0u);
}

TEST(EngineChurn, UniformUnit) { RunChurn({Dist::kUniform, false, 11, 500, {}}); }
TEST(EngineChurn, UniformWeighted) { RunChurn({Dist::kUniform, true, 12, 500, {}}); }
TEST(EngineChurn, ClusteredUnit) { RunChurn({Dist::kClustered, false, 13, 500, {}}); }
TEST(EngineChurn, ClusteredWeighted) { RunChurn({Dist::kClustered, true, 14, 500, {}}); }
TEST(EngineChurn, SkewedUnit) { RunChurn({Dist::kSkewed, false, 15, 500, {}}); }
TEST(EngineChurn, SkewedWeighted) { RunChurn({Dist::kSkewed, true, 16, 500, {}}); }

TEST(EngineChurn, FlatGridConfig) {
  ChurnSpec spec{Dist::kClustered, false, 17, 300, {}};
  spec.sspa.use_hierarchy = false;
  RunChurn(spec);
}

TEST(EngineChurn, DenseNoFloorsConfig) {
  // Legacy index-free solve paths under warm start (no tau tables at all).
  ChurnSpec spec{Dist::kUniform, true, 18, 200, {}};
  spec.sspa.use_grid = false;
  spec.sspa.use_cell_floors = false;
  spec.sspa.use_hierarchy = false;
  RunChurn(spec);
}

TEST(EngineChurn, VerifyColdOptionAgrees) {
  // Options::verify_cold re-solves cold inside the engine and aborts on a
  // mismatch; surviving a short churn run is the release-build flavour of
  // the Debug assert.
  AssignmentEngine::Options options;
  options.verify_cold = true;
  AssignmentEngine engine(options);
  Rng rng(99);
  const auto pts = test::RandomPoints(64, 21);
  std::vector<AssignmentEngine::Id> ids;
  for (int q = 0; q < 4; ++q) {
    engine.InsertProvider(pts[static_cast<std::size_t>(q)], 8);
  }
  for (std::size_t p = 4; p < pts.size(); ++p) ids.push_back(engine.InsertCustomer(pts[p]).value());
  engine.Resolve();
  for (int round = 0; round < 5; ++round) {
    for (int j = 0; j < 3; ++j) {
      const std::size_t i = rng.NextBelow(ids.size());
      ASSERT_TRUE(engine.RemoveCustomer(ids[i]));
      ids[i] = ids.back();
      ids.pop_back();
    }
    ids.push_back(engine.InsertCustomer(
        Point{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)}).value());
    const auto out = engine.Resolve();
    EXPECT_TRUE(out.warm);
  }
}

// Asserts the outcome's unassigned ledger is the exact per-customer
// complement of its matching and sums to max(0, demand - capacity).
void ExpectExactLedger(const AssignmentEngine& engine,
                       const AssignmentEngine::ResolveOutcome& out) {
  const Problem& problem = engine.problem();
  std::int64_t total_weight = 0, total_capacity = 0;
  for (std::size_t p = 0; p < problem.customers.size(); ++p) total_weight += problem.weight(p);
  for (const Provider& q : problem.providers) total_capacity += q.capacity;
  const std::int64_t overflow = std::max<std::int64_t>(0, total_weight - total_capacity);
  EXPECT_EQ(out.unassigned_units, overflow);
  const auto loads = out.matching.CustomerLoads(problem.customers.size());
  std::int64_t ledger_sum = 0;
  for (const UnassignedUnit& u : out.unassigned) {
    ASSERT_GE(u.customer, 0);
    ASSERT_LT(static_cast<std::size_t>(u.customer), problem.customers.size());
    EXPECT_GT(u.units, 0);
    EXPECT_EQ(loads[static_cast<std::size_t>(u.customer)] + u.units,
              problem.weight(static_cast<std::size_t>(u.customer)))
        << "customer " << u.customer;
    ledger_sum += u.units;
  }
  EXPECT_EQ(ledger_sum, overflow);
}

TEST(EngineChurn, CapacityExhaustionPhasesCrossFeasibilityBoundary) {
  // Drives the engine across the feasibility boundary in both directions:
  // feasible -> infeasible (customer arrivals exhaust capacity) ->
  // feasible again (departures free it). Every Resolve must stay
  // warm/cold cost-identical — the virtual overflow provider's capacity
  // equals the overflow exactly, so the real sub-matching is the min-cost
  // partial optimum on both sides — and the unassigned ledger must be the
  // exact complement of the matching in every phase.
  AssignmentEngine engine;
  Rng rng(271);
  const auto q_pts = test::RandomPoints(4, 61);
  const auto p_pts = test::RandomPoints(64, 62);
  for (const auto& q : q_pts) engine.InsertProvider(q, 5);  // capacity 20
  std::vector<AssignmentEngine::Id> ids;
  std::size_t next = 0;
  Metrics totals;
  int warm_resolves = 0;

  // Phase 1: feasible (12 < 20). Nothing unassigned.
  for (int i = 0; i < 12; ++i) ids.push_back(engine.InsertCustomer(p_pts[next++]).value());
  ExpectResolveMatchesCold(&engine, SspaConfig{}, &totals, &warm_resolves);
  {
    const auto out = engine.Resolve();
    EXPECT_FALSE(out.degraded);
    EXPECT_TRUE(out.unassigned.empty());
    ExpectExactLedger(engine, out);
  }

  // Phase 2: infeasible (22 > 20), deepening across several resolves.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) ids.push_back(engine.InsertCustomer(p_pts[next++]).value());
    ExpectResolveMatchesCold(&engine, SspaConfig{}, &totals, &warm_resolves);
    if (::testing::Test::HasFatalFailure()) return;
    const auto out = engine.Resolve();
    EXPECT_FALSE(out.degraded);
    EXPECT_FALSE(out.unassigned.empty());
    ExpectExactLedger(engine, out);
  }

  // Phase 3: back to feasible; the ledger empties again and the warm
  // start (seeded across the boundary) still matches cold.
  while (ids.size() > 15) {
    const std::size_t i = rng.NextBelow(ids.size());
    ASSERT_TRUE(engine.RemoveCustomer(ids[i]));
    ids[i] = ids.back();
    ids.pop_back();
  }
  ExpectResolveMatchesCold(&engine, SspaConfig{}, &totals, &warm_resolves);
  {
    const auto out = engine.Resolve();
    EXPECT_FALSE(out.degraded);
    EXPECT_TRUE(out.unassigned.empty());
    ExpectExactLedger(engine, out);
  }
  EXPECT_GT(warm_resolves, 0);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.deadline_breaches, 0u);
  EXPECT_EQ(stats.degraded_resolves, 0u);
  EXPECT_GT(stats.unassigned_units, 0u);  // the infeasible phase was real
}

TEST(EngineChurn, DeadlineBreachDegradesWithoutCrashing) {
  // An unmeetable Resolve budget must never crash or stall: every Resolve
  // comes back degraded with a valid capacity-respecting matching (the
  // greedy patch still places exactly gamma units, so ValidateMatching
  // holds) and an exact ledger, and the engine keeps serving across
  // further churn.
  AssignmentEngine::Options options;
  options.resolve_deadline_ms = 1e-7;  // breaches before the solver starts
  AssignmentEngine engine(options);
  const auto q_pts = test::RandomPoints(5, 71);
  const auto p_pts = test::RandomPoints(40, 72);
  for (const auto& q : q_pts) engine.InsertProvider(q, 4);
  std::vector<AssignmentEngine::Id> ids;
  for (const auto& p : p_pts) ids.push_back(engine.InsertCustomer(p).value());

  for (int round = 0; round < 3; ++round) {
    const auto out = engine.Resolve();
    EXPECT_TRUE(out.degraded);
    std::string error;
    EXPECT_TRUE(ValidateMatching(engine.problem(), out.matching, &error)) << error;
    ExpectExactLedger(engine, out);
    ASSERT_TRUE(engine.RemoveCustomer(ids.back()));
    ids.pop_back();
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.resolves, 3u);
  EXPECT_EQ(stats.deadline_breaches, 3u);
  EXPECT_EQ(stats.degraded_resolves, 3u);

  // A generous budget on the same workload never degrades and produces
  // the true optimum (the deadline path is strictly opt-in).
  AssignmentEngine::Options relaxed;
  relaxed.resolve_deadline_ms = 60'000.0;
  AssignmentEngine reference(relaxed);
  for (const auto& q : q_pts) reference.InsertProvider(q, 4);
  for (std::size_t p = 0; p + 3 < p_pts.size(); ++p) reference.InsertCustomer(p_pts[p]);
  const auto out = reference.Resolve();
  EXPECT_FALSE(out.degraded);
  const SspaResult cold = SolveSspa(reference.problem(), SspaConfig{});
  EXPECT_NEAR(out.cost, cold.matching.cost(), 1e-9 * std::max(1.0, cold.matching.cost()));
  EXPECT_EQ(reference.stats().deadline_breaches, 0u);
}

TEST(EngineChurn, InsertValidationRejectsBadInputAndMutatesNothing) {
  // Boundary validation (the Status contract): non-finite coordinates and
  // non-positive weight/capacity come back kInvalidArgument and leave the
  // engine untouched — the next valid edit and Resolve see clean state.
  AssignmentEngine engine;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(engine.InsertCustomer(Point{nan, 0.0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.InsertCustomer(Point{0.0, inf}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.InsertCustomer(Point{1.0, 1.0}, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.InsertCustomer(Point{1.0, 1.0}, -3).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.InsertProvider(Point{-inf, 0.0}, 2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.InsertProvider(Point{1.0, 1.0}, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.num_customers(), 0u);
  EXPECT_EQ(engine.num_providers(), 0u);
  EXPECT_EQ(engine.stats().customers_inserted, 0u);
  EXPECT_EQ(engine.stats().providers_inserted, 0u);

  const auto c = engine.InsertCustomer(Point{1.0, 2.0});
  ASSERT_TRUE(c.ok());
  const auto q = engine.InsertProvider(Point{3.0, 4.0}, 2);
  ASSERT_TRUE(q.ok());
  const auto out = engine.Resolve();
  EXPECT_EQ(out.matching.size(), 1);
  EXPECT_TRUE(out.unassigned.empty());
}

TEST(EngineChurn, RemoveUnknownIdReturnsFalse) {
  AssignmentEngine engine;
  const auto c = engine.InsertCustomer(Point{1.0, 2.0}).value();
  const auto q = engine.InsertProvider(Point{3.0, 4.0}, 2).value();
  EXPECT_FALSE(engine.RemoveCustomer(q));   // provider id is not a customer
  EXPECT_FALSE(engine.RemoveProvider(c));   // and vice versa
  EXPECT_TRUE(engine.RemoveCustomer(c));
  EXPECT_FALSE(engine.RemoveCustomer(c));   // ids are never reused
  EXPECT_TRUE(engine.RemoveProvider(q));
  EXPECT_EQ(engine.num_customers(), 0u);
  EXPECT_EQ(engine.num_providers(), 0u);
}

TEST(EngineChurn, StableIdsAcrossSwapRemove) {
  AssignmentEngine engine;
  const auto pts = test::RandomPoints(8, 33);
  std::vector<AssignmentEngine::Id> ids;
  for (const auto& p : pts) ids.push_back(engine.InsertCustomer(p).value());
  ASSERT_TRUE(engine.RemoveCustomer(ids[2]));  // back element swaps into slot 2
  // Every surviving id still maps to its original coordinates.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i == 2) continue;
    bool found = false;
    for (std::size_t j = 0; j < engine.num_customers(); ++j) {
      if (engine.customer_id(j) == ids[i]) {
        EXPECT_EQ(engine.problem().customers[j].x, pts[i].x);
        EXPECT_EQ(engine.problem().customers[j].y, pts[i].y);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "id " << ids[i];
  }
}

TEST(EngineChurn, WarmStartReducesPopsOnSmallPerturbation) {
  // The performance claim behind the engine: after a small perturbation the
  // warm duals leave most of the previous solution tight, so the re-solve
  // explores far less than a cold solve of the same snapshot.
  AssignmentEngine::Options options;
  AssignmentEngine engine(options);
  const auto q_pts = test::RandomPoints(30, 41);
  const auto p_pts = test::RandomPoints(1500, 42);
  Rng rng(43);
  for (const auto& q : q_pts) {
    engine.InsertProvider(q, static_cast<std::int32_t>(rng.UniformInt(60, 80)));
  }
  std::vector<AssignmentEngine::Id> ids;
  for (const auto& p : p_pts) ids.push_back(engine.InsertCustomer(p).value());
  engine.Resolve();

  for (int j = 0; j < 3; ++j) {
    const std::size_t i = rng.NextBelow(ids.size());
    ASSERT_TRUE(engine.RemoveCustomer(ids[i]));
    ids[i] = ids.back();
    ids.pop_back();
  }
  for (int j = 0; j < 3; ++j) {
    ids.push_back(engine.InsertCustomer(
        Point{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)}).value());
  }

  const auto warm = engine.Resolve();
  EXPECT_TRUE(warm.warm);
  const SspaResult cold = SolveSspa(engine.problem(), SspaConfig{});
  const double tol = 1e-9 * std::max(1.0, std::abs(cold.matching.cost()));
  EXPECT_NEAR(warm.cost, cold.matching.cost(), tol);
  EXPECT_LT(warm.metrics.dijkstra_pops, cold.metrics.dijkstra_pops);
  EXPECT_LT(warm.metrics.augmentations, cold.metrics.augmentations);
  // Nearly all of the previous flow must survive adoption — that is the
  // mechanism behind the two inequalities above.
  EXPECT_GT(warm.metrics.warm_units_adopted, 1400u);
}

}  // namespace
}  // namespace cca
