// Cross-algorithm property sweep: RIA == NIA == IDA == SSPA optimal cost on
// randomized instances across capacity regimes, distributions and solver
// configurations; every matching must also pass the Klein certificate.
#include <string>

#include <gtest/gtest.h>

#include "core/exact.h"
#include "flow/oracle.h"
#include "flow/sspa.h"
#include "test_util.h"

namespace cca {
namespace {

struct SweepCase {
  std::string label;
  test::InstanceSpec spec;
  ExactConfig config;
};

SweepCase Case(std::string label, test::InstanceSpec spec, ExactConfig config = {}) {
  return SweepCase{std::move(label), spec, config};
}

test::InstanceSpec Spec(std::size_t nq, std::size_t np, std::int32_t k_lo, std::int32_t k_hi,
                        bool cq, bool cp, std::uint64_t seed) {
  test::InstanceSpec s;
  s.nq = nq;
  s.np = np;
  s.k_lo = k_lo;
  s.k_hi = k_hi;
  s.clustered_q = cq;
  s.clustered_p = cp;
  s.seed = seed;
  return s;
}

ExactConfig NoPua() {
  ExactConfig c;
  c.use_pua = false;
  return c;
}

ExactConfig NoAnn() {
  ExactConfig c;
  c.use_ann_grouping = false;
  return c;
}

ExactConfig NoLift() {
  ExactConfig c;
  c.ida_distance_lift = false;
  return c;
}

ExactConfig BigTheta() {
  ExactConfig c;
  c.theta = 200.0;
  return c;
}

ExactConfig TinyTheta() {
  ExactConfig c;
  c.theta = 5.0;
  return c;
}

class ExactPropertyTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ExactPropertyTest, AllSolversOptimal) {
  const auto& param = GetParam();
  const Problem problem = test::RandomProblem(param.spec);
  auto db = test::MakeDb(problem);

  const double optimal = SolveSspa(problem).matching.cost();

  const ExactResult ria = SolveRia(problem, db.get(), param.config);
  const ExactResult nia = SolveNia(problem, db.get(), param.config);
  const ExactResult ida = SolveIda(problem, db.get(), param.config);

  const double tol = 1e-6 * (1.0 + optimal);
  EXPECT_NEAR(ria.matching.cost(), optimal, tol) << "RIA";
  EXPECT_NEAR(nia.matching.cost(), optimal, tol) << "NIA";
  EXPECT_NEAR(ida.matching.cost(), optimal, tol) << "IDA";

  for (const auto* result : {&ria, &nia, &ida}) {
    std::string error;
    EXPECT_TRUE(ValidateMatching(problem, result->matching, &error)) << error;
  }
  EXPECT_TRUE(IsOptimalMatching(problem, ida.matching));

  // Incremental algorithms must not materialise the complete bipartite
  // graph (that is the whole point); allow equality only for tiny inputs.
  const auto full = problem.providers.size() * problem.customers.size();
  EXPECT_LE(nia.metrics.edges_inserted, full);
  EXPECT_LE(ida.metrics.edges_inserted, full);
  // IDA's lift can only help: it never explores more than NIA.
  EXPECT_LE(ida.metrics.edges_inserted, nia.metrics.edges_inserted + 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactPropertyTest,
    ::testing::Values(
        // Capacity regimes (sum k vs |P|).
        Case("ScarceCapacity", Spec(5, 60, 1, 3, false, false, 1)),
        Case("BalancedCapacity", Spec(5, 50, 10, 10, false, false, 2)),
        Case("AbundantCapacity", Spec(5, 40, 20, 30, false, false, 3)),
        Case("UnitCapacities", Spec(20, 20, 1, 1, false, false, 4)),
        Case("SingleProvider", Spec(1, 30, 12, 12, false, false, 5)),
        Case("ManyProvidersFewCustomers", Spec(25, 12, 1, 2, false, false, 6)),
        // Distribution mixes (paper Figure 13).
        Case("UniformVsClustered", Spec(6, 80, 4, 8, false, true, 7)),
        Case("ClusteredVsUniform", Spec(6, 80, 4, 8, true, false, 8)),
        Case("ClusteredVsClustered", Spec(6, 80, 4, 8, true, true, 9)),
        // Config ablations.
        Case("NoPua", Spec(5, 50, 3, 6, false, true, 10), NoPua()),
        Case("NoAnnGrouping", Spec(5, 50, 3, 6, true, false, 11), NoAnn()),
        Case("NoDistanceLift", Spec(5, 50, 2, 5, false, false, 12), NoLift()),
        Case("RiaBigTheta", Spec(5, 50, 3, 6, false, false, 13), BigTheta()),
        Case("RiaTinyTheta", Spec(4, 40, 3, 6, false, false, 14), TinyTheta()),
        // More seeds for the default config.
        Case("Seed15", Spec(8, 70, 2, 6, false, false, 15)),
        Case("Seed16", Spec(8, 70, 2, 6, true, true, 16)),
        Case("Seed17", Spec(3, 90, 5, 15, false, false, 17)),
        Case("Seed18", Spec(12, 45, 1, 4, true, false, 18))),
    [](const ::testing::TestParamInfo<SweepCase>& info) { return info.param.label; });

// Determinism: same instance + same config => identical matchings.
TEST(ExactDeterminismTest, RepeatRunsIdentical) {
  const Problem problem = test::RandomProblem(Spec(6, 50, 2, 5, true, false, 99));
  auto db = test::MakeDb(problem);
  const ExactResult a = SolveIda(problem, db.get(), ExactConfig{});
  const ExactResult b = SolveIda(problem, db.get(), ExactConfig{});
  ASSERT_EQ(a.matching.pairs.size(), b.matching.pairs.size());
  for (std::size_t i = 0; i < a.matching.pairs.size(); ++i) {
    EXPECT_EQ(a.matching.pairs[i].provider, b.matching.pairs[i].provider);
    EXPECT_EQ(a.matching.pairs[i].customer, b.matching.pairs[i].customer);
  }
}

// The RIA theta knob trades range searches against subgraph size, never
// correctness.
TEST(ExactThetaTest, CostInvariantUnderTheta) {
  const Problem problem = test::RandomProblem(Spec(5, 60, 3, 6, false, false, 123));
  auto db = test::MakeDb(problem);
  double reference = -1.0;
  for (double theta : {2.0, 10.0, 50.0, 400.0}) {
    ExactConfig config;
    config.theta = theta;
    const ExactResult result = SolveRia(problem, db.get(), config);
    if (reference < 0) {
      reference = result.matching.cost();
    } else {
      EXPECT_NEAR(result.matching.cost(), reference, 1e-6) << "theta " << theta;
    }
  }
}

}  // namespace
}  // namespace cca
