// R*-style axis split tests: structural invariants, query equivalence with
// the quadratic split, and split quality on clustered data.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "rtree/rtree.h"
#include "test_util.h"

namespace cca {
namespace {

RTree::Options RStarOptions(std::uint32_t page_size = 256) {
  RTree::Options options;
  options.page_size = page_size;
  options.split_policy = RTree::SplitPolicy::kRStarAxis;
  return options;
}

class RStarBuildTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RStarBuildTest, InvariantsHoldAcrossSizes) {
  RTree tree(RStarOptions());
  const auto pts = test::RandomPoints(GetParam(), 301 + GetParam());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    tree.Insert(pts[i], static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(tree.size(), pts.size());
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
}

INSTANTIATE_TEST_SUITE_P(Sizes, RStarBuildTest,
                         ::testing::Values<std::size_t>(12, 50, 200, 1000, 3000));

TEST(RStarSplitTest, QueriesMatchQuadraticTree) {
  const auto pts = test::ClusteredPoints(2500, 310);
  RTree quadratic((RTree::Options{.page_size = 256}));
  RTree rstar(RStarOptions());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    quadratic.Insert(pts[i], static_cast<std::uint32_t>(i));
    rstar.Insert(pts[i], static_cast<std::uint32_t>(i));
  }
  Rng rng(311);
  std::vector<RTree::Hit> a, b;
  for (int iter = 0; iter < 20; ++iter) {
    const Point c{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    const double r = rng.Uniform(5, 200);
    quadratic.RangeSearch(c, r, &a);
    rstar.RangeSearch(c, r, &b);
    EXPECT_EQ(a.size(), b.size()) << "radius " << r;
  }
}

TEST(RStarSplitTest, MinFillRespected) {
  // Split halves must each hold at least min_fill entries; verify via the
  // structural checker plus a direct scan of leaf occupancy.
  RTree tree(RStarOptions(512));
  const auto pts = test::RandomPoints(4000, 312);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    tree.Insert(pts[i], static_cast<std::uint32_t>(i));
  }
  std::string error;
  ASSERT_TRUE(tree.CheckInvariants(&error)) << error;
  const auto min_leaf = static_cast<std::size_t>(
      0.4 * RTreeNode::LeafCapacity(512));
  // Scan all leaves via a full-range query pattern: walk pages directly.
  std::vector<PageId> stack{tree.root()};
  while (!stack.empty()) {
    const PageId page = stack.back();
    stack.pop_back();
    const RTreeNode node = tree.ReadNode(page);
    if (node.is_leaf) {
      if (page != tree.root()) EXPECT_GE(node.leaf_entries.size(), min_leaf);
    } else {
      for (const auto& e : node.entries) stack.push_back(e.child);
    }
  }
}

TEST(RStarSplitTest, LowerOverlapThanQuadraticOnStripedData) {
  // Data in thin horizontal stripes: axis-aware splits should produce
  // clearly fewer node accesses for stripe-aligned range queries.
  std::vector<Point> pts;
  Rng rng(313);
  for (int stripe = 0; stripe < 10; ++stripe) {
    for (int i = 0; i < 300; ++i) {
      pts.push_back(Point{rng.Uniform(0, 1000), stripe * 100.0 + rng.Uniform(0, 4.0)});
    }
  }
  RTree quadratic((RTree::Options{.page_size = 256}));
  RTree rstar(RStarOptions());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    quadratic.Insert(pts[i], static_cast<std::uint32_t>(i));
    rstar.Insert(pts[i], static_cast<std::uint32_t>(i));
  }
  quadratic.ResetCounters();
  rstar.ResetCounters();
  std::vector<RTree::Hit> hits;
  for (int stripe = 0; stripe < 10; ++stripe) {
    for (double x = 50; x < 1000; x += 100) {
      quadratic.RangeSearch({x, stripe * 100.0 + 2.0}, 8.0, &hits);
      rstar.RangeSearch({x, stripe * 100.0 + 2.0}, 8.0, &hits);
    }
  }
  // Not asserting a specific factor (data dependent), but R* must not be
  // meaningfully worse.
  EXPECT_LE(rstar.node_accesses(), quadratic.node_accesses() * 11 / 10);
}

}  // namespace
}  // namespace cca
