// Randomized differential suite: RIA/NIA/IDA (rotating through every
// discovery backend) and SSPA (grid + dense) are diffed against the
// independent Hungarian oracle (src/flow/hungarian.cc) on ~50 seeded
// random instances spanning uniform/clustered/skewed point sets and
// unit/weighted customers, |P| <= 64. This replaces reliance on
// hand-built small cases: the oracle is a matrix-style solver that shares
// no code with the incremental flow engine, the spatial indexes, or the
// potential bookkeeping, so any cost drift in the solver stack trips it.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/exact.h"
#include "core/matching.h"
#include "flow/hungarian.h"
#include "flow/sspa.h"
#include "test_util.h"

namespace cca {
namespace {

enum class Dist { kUniform, kClustered, kSkewed };

std::vector<Point> MakePoints(Dist dist, std::size_t n, std::uint64_t seed) {
  switch (dist) {
    case Dist::kUniform:
      return test::RandomPoints(n, seed);
    case Dist::kClustered:
      return test::ClusteredPoints(n, seed, /*clusters=*/3, /*sigma=*/60.0);
    case Dist::kSkewed:
      return test::SkewedPoints(n, seed);
  }
  return {};
}

Problem MakeInstance(Dist dist, bool weighted, std::uint64_t seed) {
  Rng rng(seed * 97 + 11);
  Problem problem;
  const std::size_t nq = 3 + rng.NextBelow(6);   // 3..8 providers
  const std::size_t np = 20 + rng.NextBelow(45); // 20..64 customers
  for (const auto& pos : MakePoints(dist, nq, seed * 31 + 5)) {
    problem.providers.push_back(
        Provider{pos, static_cast<std::int32_t>(rng.UniformInt(1, 6))});
  }
  problem.customers = MakePoints(dist, np, seed * 57 + 7);
  if (weighted) {
    problem.weights.resize(np);
    for (auto& w : problem.weights) w = static_cast<std::int32_t>(rng.UniformInt(1, 3));
  }
  return problem;
}

// The Hungarian baseline requires unit customer weights; a weighted
// customer of weight w is exactly w co-located unit customers (each unit
// of demand may be served by a different provider), so the expansion
// preserves the optimal cost.
Problem UnitExpanded(const Problem& problem) {
  if (problem.weights.empty()) return problem;
  Problem expanded;
  expanded.providers = problem.providers;
  for (std::size_t p = 0; p < problem.customers.size(); ++p) {
    for (std::int32_t u = 0; u < problem.weights[p]; ++u) {
      expanded.customers.push_back(problem.customers[p]);
    }
  }
  return expanded;
}

const char* DistName(Dist dist) {
  switch (dist) {
    case Dist::kUniform:
      return "uniform";
    case Dist::kClustered:
      return "clustered";
    case Dist::kSkewed:
      return "skewed";
  }
  return "?";
}

TEST(OracleDifferential, SolversMatchHungarianOnRandomInstances) {
  // Rotate the discovery backend across instances so every backend faces
  // every distribution/weight combination at least once.
  const DiscoveryBackend backends[] = {DiscoveryBackend::kRTreePlain,
                                       DiscoveryBackend::kRTreeGrouped, DiscoveryBackend::kGrid,
                                       DiscoveryBackend::kGridBatched};
  std::size_t case_index = 0;
  for (const Dist dist : {Dist::kUniform, Dist::kClustered, Dist::kSkewed}) {
    for (const bool weighted : {false, true}) {
      for (std::uint64_t seed = 1; seed <= 9; ++seed, ++case_index) {
        const Problem problem = MakeInstance(dist, weighted, seed * 13 + case_index);
        const std::string label = std::string(DistName(dist)) +
                                  (weighted ? " weighted" : " unit") + " seed " +
                                  std::to_string(seed);

        const HungarianResult oracle = SolveHungarian(UnitExpanded(problem));
        const double tol = 1e-6 * std::max(1.0, oracle.matching.cost());

        auto db = test::MakeDb(problem);
        ExactConfig config;
        config.discovery_backend = backends[case_index % 4];

        const ExactResult ria = SolveRia(problem, db.get(), config);
        const ExactResult nia = SolveNia(problem, db.get(), config);
        const ExactResult ida = SolveIda(problem, db.get(), config);
        SspaConfig sspa_config;
        sspa_config.use_grid = case_index % 2 == 0;
        sspa_config.use_shared_frontier = case_index % 4 == 2;
        const SspaResult sspa = SolveSspa(problem, sspa_config);

        std::string error;
        EXPECT_TRUE(ValidateMatching(problem, ria.matching, &error)) << label << ": " << error;
        EXPECT_TRUE(ValidateMatching(problem, nia.matching, &error)) << label << ": " << error;
        EXPECT_TRUE(ValidateMatching(problem, ida.matching, &error)) << label << ": " << error;
        EXPECT_TRUE(ValidateMatching(problem, sspa.matching, &error)) << label << ": " << error;
        EXPECT_NEAR(ria.matching.cost(), oracle.matching.cost(), tol) << label << " ria";
        EXPECT_NEAR(nia.matching.cost(), oracle.matching.cost(), tol) << label << " nia";
        EXPECT_NEAR(ida.matching.cost(), oracle.matching.cost(), tol) << label << " ida";
        EXPECT_NEAR(sspa.matching.cost(), oracle.matching.cost(), tol) << label << " sspa";
        EXPECT_EQ(ria.matching.size(), oracle.matching.size()) << label;
        EXPECT_EQ(sspa.matching.size(), oracle.matching.size()) << label;
      }
    }
  }
  EXPECT_EQ(case_index, 54u);  // 3 distributions x {unit, weighted} x 9 seeds
}

TEST(OracleDifferential, InfeasibleInstancesMatchHungarianPartialOptimum) {
  // Infeasible instances (total demand > total capacity). The Hungarian
  // oracle's transpose orientation assigns every provider slot a customer:
  // the independent min-cost *partial* optimum of size gamma = total
  // capacity. Both SSPA flavours must reproduce its cost — the plain
  // capacity-limited solve directly, and the overflow solve through its
  // real sub-matching (the virtual slot's capacity equals the overflow
  // exactly, so every feasible flow saturates the real providers and the
  // penalty never biases which real pairs win). The overflow solve must
  // additionally account for every unserved unit in its ledger.
  std::size_t case_index = 0;
  for (const Dist dist : {Dist::kUniform, Dist::kClustered, Dist::kSkewed}) {
    for (const bool weighted : {false, true}) {
      for (std::uint64_t seed = 101; seed <= 104; ++seed, ++case_index) {
        Problem problem = MakeInstance(dist, weighted, seed * 13 + case_index);
        // Clamp every provider to capacity 1-2: at most 8 providers * 2 <
        // 20+ customers, so every instance is strictly infeasible.
        Rng rng(seed * 7 + 3);
        std::int64_t total_capacity = 0;
        for (auto& q : problem.providers) {
          q.capacity = static_cast<std::int32_t>(rng.UniformInt(1, 2));
          total_capacity += q.capacity;
        }
        std::int64_t total_weight = 0;
        for (std::size_t p = 0; p < problem.customers.size(); ++p) {
          total_weight += problem.weight(p);
        }
        ASSERT_LT(total_capacity, total_weight);
        const std::int64_t overflow = total_weight - total_capacity;
        const std::string label = std::string(DistName(dist)) +
                                  (weighted ? " weighted" : " unit") + " seed " +
                                  std::to_string(seed);

        const HungarianResult oracle = SolveHungarian(UnitExpanded(problem));
        const double tol = 1e-6 * std::max(1.0, oracle.matching.cost());
        ASSERT_EQ(oracle.matching.size(), total_capacity) << label;

        SspaConfig cfg;
        cfg.allow_overflow = true;
        cfg.use_grid = case_index % 2 == 0;
        const SspaResult res = SolveSspa(problem, cfg);
        std::string error;
        EXPECT_TRUE(ValidateMatching(problem, res.matching, &error)) << label << ": " << error;
        EXPECT_EQ(res.matching.size(), total_capacity) << label;
        EXPECT_NEAR(res.matching.cost(), oracle.matching.cost(), tol) << label;
        // Exact ledger: unassigned units complement the matching per
        // customer and sum to the overflow.
        EXPECT_EQ(res.unassigned_units, overflow) << label;
        std::int64_t ledger_sum = 0;
        const auto loads = res.matching.CustomerLoads(problem.customers.size());
        for (const UnassignedUnit& u : res.unassigned) {
          EXPECT_GT(u.units, 0) << label;
          EXPECT_EQ(loads[static_cast<std::size_t>(u.customer)] + u.units,
                    problem.weight(static_cast<std::size_t>(u.customer)))
              << label << " customer " << u.customer;
          ledger_sum += u.units;
        }
        EXPECT_EQ(ledger_sum, overflow) << label;

        // The plain capacity-limited solve finds the same partial optimum,
        // and the ledger (computed uniformly as the matching's complement)
        // accounts for the same overflow.
        const SspaResult plain = SolveSspa(problem);
        EXPECT_NEAR(plain.matching.cost(), oracle.matching.cost(), tol) << label;
        EXPECT_EQ(plain.unassigned_units, overflow) << label;
      }
    }
  }
  EXPECT_EQ(case_index, 24u);  // 3 distributions x {unit, weighted} x 4 seeds
}

}  // namespace
}  // namespace cca
