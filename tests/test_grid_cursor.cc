// Unit tests for the shared discovery cursors (geo/grid_cursor.h): cell
// enumeration order and coverage, the certified tail lower bound, the
// exact incremental-NN refinement, and the annular range helper.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "common/rng.h"
#include "geo/grid.h"
#include "geo/grid_cursor.h"

namespace cca {
namespace {

std::vector<Point> UniformPoints(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(Point{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)});
  }
  return pts;
}

TEST(GridRingCursorTest, CoversEveryPointExactlyOnce) {
  const auto pts = UniformPoints(600, 3);
  const UniformGrid grid(pts);
  for (const Point& q : {Point{500, 500}, Point{0, 0}, Point{1200, -40}}) {
    GridRingCursor cursor(grid, q);
    std::set<std::int32_t> seen;
    std::size_t total = 0;
    while (const auto cell = cursor.NextCell()) {
      for (std::size_t i = 0; i < cell->slice.count; ++i) seen.insert(cell->slice.ids[i]);
      total += cell->slice.count;
    }
    EXPECT_EQ(total, pts.size());
    EXPECT_EQ(seen.size(), pts.size());
    EXPECT_TRUE(cursor.exhausted());
    EXPECT_EQ(cursor.points_remaining(), 0u);
  }
}

TEST(GridRingCursorTest, RingsNonDecreasingAndCellsSortedWithinRing) {
  const auto pts = UniformPoints(400, 5);
  const UniformGrid grid(pts);
  const Point q{321, 654};
  GridRingCursor cursor(grid, q);
  int prev_ring = -1;
  double prev_min_dist = -1.0;
  while (const auto cell = cursor.NextCell()) {
    EXPECT_GE(cell->ring, prev_ring);
    if (cell->ring > prev_ring) {
      prev_ring = cell->ring;
      prev_min_dist = -1.0;
    }
    EXPECT_GE(cell->min_dist, prev_min_dist);
    prev_min_dist = cell->min_dist;
    EXPECT_DOUBLE_EQ(cell->min_dist, MinDist(q, grid.CellRect(cell->cx, cell->cy)));
  }
}

TEST(GridRingCursorTest, TailMinDistCertifiedAndMonotone) {
  const auto pts = UniformPoints(500, 7);
  const UniformGrid grid(pts);
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const Point q{rng.Uniform(-100.0, 1100.0), rng.Uniform(-100.0, 1100.0)};
    GridRingCursor cursor(grid, q);
    // Replay the enumeration: before each NextCell, the bound must not
    // exceed the true nearest distance among the not-yet-returned points.
    std::vector<char> returned(pts.size(), 0);
    double prev_bound = 0.0;
    while (true) {
      const double bound = cursor.TailMinDist();
      EXPECT_GE(bound, prev_bound - 1e-12);
      prev_bound = bound;
      double actual_min = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < pts.size(); ++i) {
        if (!returned[i]) actual_min = std::min(actual_min, Distance(q, pts[i]));
      }
      if (actual_min < std::numeric_limits<double>::infinity()) {
        EXPECT_LE(bound, actual_min + 1e-9) << "trial " << trial;
      } else {
        EXPECT_TRUE(cursor.exhausted());
      }
      const auto cell = cursor.NextCell();
      if (!cell) break;
      for (std::size_t i = 0; i < cell->slice.count; ++i) {
        returned[static_cast<std::size_t>(cell->slice.ids[i])] = 1;
      }
    }
  }
}

TEST(GridNnCursorTest, MatchesBruteForceOrder) {
  const auto pts = UniformPoints(300, 13);
  const UniformGrid grid(pts);
  Rng rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    const Point q{rng.Uniform(-50.0, 1050.0), rng.Uniform(-50.0, 1050.0)};
    std::vector<double> expected;
    for (const auto& p : pts) expected.push_back(Distance(q, p));
    std::sort(expected.begin(), expected.end());

    GridNnCursor cursor(grid, q);
    std::set<std::int32_t> seen;
    std::size_t i = 0;
    double prev = 0.0;
    while (const auto hit = cursor.Next()) {
      ASSERT_LT(i, expected.size());
      EXPECT_NEAR(hit->second, expected[i], 1e-9) << "rank " << i;
      EXPECT_GE(hit->second, prev);
      prev = hit->second;
      seen.insert(hit->first);
      ++i;
    }
    EXPECT_EQ(i, pts.size());
    EXPECT_EQ(seen.size(), pts.size());
  }
}

TEST(GridNnCursorTest, PeekDoesNotConsume) {
  const auto pts = UniformPoints(50, 19);
  const UniformGrid grid(pts);
  GridNnCursor cursor(grid, Point{500, 500});
  const double peeked = cursor.PeekDistance();
  const auto hit = cursor.Next();
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->second, peeked);
}

TEST(GridNnCursorTest, EmptyGridExhaustsImmediately) {
  const UniformGrid grid(std::vector<Point>{});
  GridNnCursor cursor(grid, Point{1, 2});
  EXPECT_EQ(cursor.PeekDistance(), std::numeric_limits<double>::infinity());
  EXPECT_FALSE(cursor.Next().has_value());
}

// RIA's grid backend drains the NN stream batch-by-batch against
// PeekDistance; nested batches must partition the point set exactly like
// independent annulus filters would.
TEST(GridNnCursorTest, NestedBatchDrainsPartitionLikeAnnuli) {
  const auto pts = UniformPoints(400, 23);
  const UniformGrid grid(pts);
  Rng rng(29);
  for (int trial = 0; trial < 6; ++trial) {
    const Point q{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    GridNnCursor cursor(grid, q);
    double lo = -1.0;
    std::set<std::int32_t> got;
    for (double hi = 150.0; hi <= 1500.0; lo = hi, hi += 450.0) {
      std::set<std::int32_t> expected;
      for (std::size_t i = 0; i < pts.size(); ++i) {
        const double d = Distance(q, pts[i]);
        if (d <= hi && d > lo) expected.insert(static_cast<std::int32_t>(i));
      }
      std::set<std::int32_t> batch;
      while (cursor.PeekDistance() <= hi) batch.insert(cursor.Next()->first);
      EXPECT_EQ(batch, expected) << "trial " << trial << " lo=" << lo << " hi=" << hi;
      got.insert(batch.begin(), batch.end());
    }
    EXPECT_EQ(got.size(), pts.size()) << "batches must cover the whole set";
  }
}

}  // namespace
}  // namespace cca
