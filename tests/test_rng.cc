// Deterministic RNG tests.
#include <gtest/gtest.h>

#include "common/rng.h"

namespace cca {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, DoubleRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-5.0, 11.0);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 11.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.UniformInt(3, 7);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 7);
    saw_lo |= (x == 3);
    saw_hi |= (x == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(10);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

}  // namespace
}  // namespace cca
