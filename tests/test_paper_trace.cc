// Step-by-step replay of the paper's Figure 3 walk-through on the engine.
//
// The paper's example (Section 2.2) runs two SSPA iterations and reports
// the node potentials after each augmentation. In our fixed-source
// convention (DESIGN.md 3.1), the potentials of the providers and
// customers must match the paper's exactly:
//   after augmenting sp1: tau(q1) = tau(q2) = 3, tau(p2) = 0;
//   after augmenting sp2: tau(q2) = 8, tau(q1) = 4, tau(p2) = 1,
//                         tau(p1) = 0 (Figure 3(d)).
// and the real path costs are 3 and 8 (total 11 = Psi of the optimum).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "flow/sspa.h"

namespace cca {
namespace {

// Collinear realisation of Figure 2's distances: d(q1,p1)=4, d(q1,p2)=3,
// d(q2,p2)=7; the q2-p1 edge (14 here vs 10 in the paper) is never used by
// any shortest path in the walk-through.
Problem FigureTwoProblem() {
  Problem problem;
  problem.providers = {Provider{{0.0, 0.0}, 1}, Provider{{10.0, 0.0}, 2}};
  problem.customers = {Point{-4.0, 0.0}, Point{3.0, 0.0}};
  return problem;
}

TEST(PaperTraceTest, Figure3PotentialsAndPathCosts) {
  const Problem problem = FigureTwoProblem();
  Metrics metrics;
  IncrementalEngine::Config config;
  IncrementalEngine engine(problem, config, &metrics);
  // Full flow graph, as in plain SSPA.
  engine.InsertEdge(0, 0, 4.0);
  engine.InsertEdge(0, 1, 3.0);
  engine.InsertEdge(1, 0, 14.0);
  engine.InsertEdge(1, 1, 7.0);

  // Iteration 1: sp1 = {s, q1, p2, t} of real cost 3.
  const double d1 = engine.ComputeShortestPath();
  EXPECT_DOUBLE_EQ(d1, 3.0);
  engine.AcceptPath();
  EXPECT_DOUBLE_EQ(engine.DebugProviderTau(0), 3.0);  // q1
  EXPECT_DOUBLE_EQ(engine.DebugProviderTau(1), 3.0);  // q2
  EXPECT_DOUBLE_EQ(engine.DebugCustomerTau(1), 0.0);  // p2
  EXPECT_TRUE(engine.IsProviderFull(0));              // q1.k = 1 used up

  // Iteration 2: sp2 = {s, q2, p2, q1, p1, t}; real cost 7 - 3 + 4 = 8.
  const double d2 = engine.ComputeShortestPath();
  EXPECT_DOUBLE_EQ(d2, 8.0);
  engine.AcceptPath();
  // Figure 3(d) potentials.
  EXPECT_DOUBLE_EQ(engine.DebugProviderTau(1), 8.0);  // q2
  EXPECT_DOUBLE_EQ(engine.DebugProviderTau(0), 4.0);  // q1
  EXPECT_DOUBLE_EQ(engine.DebugCustomerTau(1), 1.0);  // p2
  EXPECT_DOUBLE_EQ(engine.DebugCustomerTau(0), 0.0);  // p1

  // Final matching: (q1,p1) and (q2,p2), Psi = 11 (paper Section 2.2).
  EXPECT_TRUE(engine.Done());
  const Matching m = engine.BuildMatching();
  EXPECT_DOUBLE_EQ(m.cost(), 11.0);
  bool q1_p1 = false, q2_p2 = false;
  for (const auto& pair : m.pairs) {
    if (pair.provider == 0 && pair.customer == 0) q1_p1 = true;
    if (pair.provider == 1 && pair.customer == 1) q2_p2 = true;
  }
  EXPECT_TRUE(q1_p1);
  EXPECT_TRUE(q2_p2);

  std::string error;
  EXPECT_TRUE(engine.CheckReducedCosts(&error)) << error;
}

// The same trace must hold when sp2's reroute is discovered through PUA
// repairs (edges fed in one at a time in ascending length order).
TEST(PaperTraceTest, Figure3WithIncrementalDiscovery) {
  const Problem problem = FigureTwoProblem();
  Metrics metrics;
  IncrementalEngine::Config config;
  config.use_pua = true;
  IncrementalEngine engine(problem, config, &metrics);

  struct E {
    int q, p;
    double d;
  };
  const E sorted[] = {{0, 1, 3.0}, {0, 0, 4.0}, {1, 1, 7.0}, {1, 0, 14.0}};
  std::size_t next = 0;
  while (!engine.Done()) {
    const double d = engine.ComputeShortestPath();
    const double frontier = next < 4 ? sorted[next].d : 1e100;
    if (d <= frontier + 1e-12) {
      engine.AcceptPath();
    } else {
      engine.InsertEdge(sorted[next].q, sorted[next].p, sorted[next].d);
      ++next;
    }
  }
  EXPECT_DOUBLE_EQ(engine.BuildMatching().cost(), 11.0);
  // The longest edge (q2, p1) is never needed.
  EXPECT_LT(metrics.edges_inserted, 4u);
  EXPECT_DOUBLE_EQ(engine.last_path_cost(), 8.0);
}

// Successive augmenting path costs are non-decreasing (the SSPA lemma all
// bound soundness rests on), checked on a bigger instance.
TEST(PaperTraceTest, AugmentingCostsMonotone) {
  Problem problem;
  Rng rng(4242);
  for (int i = 0; i < 6; ++i) {
    problem.providers.push_back(
        Provider{{rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, 4});
  }
  for (int i = 0; i < 40; ++i) {
    problem.customers.push_back(Point{rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
  }
  Metrics metrics;
  IncrementalEngine engine(problem, IncrementalEngine::Config{}, &metrics);
  for (std::size_t q = 0; q < problem.providers.size(); ++q) {
    for (std::size_t p = 0; p < problem.customers.size(); ++p) {
      engine.InsertEdge(static_cast<int>(q), static_cast<int>(p),
                        Distance(problem.providers[q].pos, problem.customers[p]));
    }
  }
  double prev = 0.0;
  while (!engine.Done()) {
    const double d = engine.ComputeShortestPath();
    EXPECT_GE(d, prev - 1e-9) << "augmenting path cost decreased";
    prev = d;
    engine.AcceptPath();
  }
}

}  // namespace
}  // namespace cca
