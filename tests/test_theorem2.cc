// Theorem-2 fast path behaviour in IDA.
#include <gtest/gtest.h>

#include "core/exact.h"
#include "flow/sspa.h"
#include "test_util.h"

namespace cca {
namespace {

// With capacities so large that no provider ever fills, IDA must complete
// the whole assignment on the fast path: zero Dijkstra executions.
TEST(Theorem2Test, NoDijkstraWhenNoProviderFills) {
  test::InstanceSpec spec;
  spec.nq = 5;
  spec.np = 60;
  spec.k_lo = 100;  // sum k >> |P|
  spec.k_hi = 100;
  spec.seed = 3;
  const Problem problem = test::RandomProblem(spec);
  auto db = test::MakeDb(problem);
  const ExactResult ida = SolveIda(problem, db.get(), ExactConfig{});
  EXPECT_EQ(ida.metrics.dijkstra_runs, 0u);
  EXPECT_EQ(ida.metrics.fast_path_assigns, static_cast<std::uint64_t>(problem.Gamma()));
  EXPECT_NEAR(ida.matching.cost(), SolveSspa(problem).matching.cost(), 1e-6);
}

// The fast-path result in the abundant regime equals the independent
// greedy-by-global-NN argument: every customer goes to its nearest
// provider (no capacity pressure at all).
TEST(Theorem2Test, AbundantCapacityEqualsNearestProvider) {
  test::InstanceSpec spec;
  spec.nq = 4;
  spec.np = 40;
  spec.k_lo = 50;
  spec.k_hi = 50;
  spec.seed = 7;
  const Problem problem = test::RandomProblem(spec);
  auto db = test::MakeDb(problem);
  const ExactResult ida = SolveIda(problem, db.get(), ExactConfig{});
  double nn_cost = 0.0;
  for (const auto& p : problem.customers) {
    double best = 1e100;
    for (const auto& q : problem.providers) best = std::min(best, Distance(q.pos, p));
    nn_cost += best;
  }
  EXPECT_NEAR(ida.matching.cost(), nn_cost, 1e-6);
}

// Tight capacities: the fast path must hand over to the general phase the
// moment the first provider fills, and stay optimal.
TEST(Theorem2Test, HandoverToGeneralPhase) {
  for (std::uint64_t seed = 11; seed < 19; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 4;
    spec.np = 40;
    spec.k_lo = 2;
    spec.k_hi = 4;
    spec.seed = seed;
    const Problem problem = test::RandomProblem(spec);
    auto db = test::MakeDb(problem);
    const ExactResult ida = SolveIda(problem, db.get(), ExactConfig{});
    EXPECT_GT(ida.metrics.fast_path_assigns, 0u) << "seed " << seed;
    EXPECT_GT(ida.metrics.dijkstra_runs, 0u) << "seed " << seed;
    EXPECT_NEAR(ida.matching.cost(), SolveSspa(problem).matching.cost(), 1e-6)
        << "seed " << seed;
  }
}

// Fast-path assignments must save work compared to NIA on the same
// instance: strictly fewer Dijkstra executions.
TEST(Theorem2Test, FewerDijkstraRunsThanNia) {
  test::InstanceSpec spec;
  spec.nq = 6;
  spec.np = 120;
  spec.k_lo = 10;
  spec.k_hi = 14;
  spec.seed = 21;
  const Problem problem = test::RandomProblem(spec);
  auto db = test::MakeDb(problem);
  const ExactResult nia = SolveNia(problem, db.get(), ExactConfig{});
  const ExactResult ida = SolveIda(problem, db.get(), ExactConfig{});
  EXPECT_LT(ida.metrics.dijkstra_runs, nia.metrics.dijkstra_runs);
  EXPECT_NEAR(ida.matching.cost(), nia.matching.cost(), 1e-6);
}

// A provider with zero capacity disables the fast path from the start
// (some provider is trivially "full"); IDA must still be exact.
TEST(Theorem2Test, ZeroCapacityProviderDisablesFastPath) {
  Problem problem;
  problem.providers = {Provider{{100, 100}, 0}, Provider{{200, 200}, 3}};
  problem.customers = {Point{110, 100}, Point{190, 200}, Point{300, 300}};
  auto db = test::MakeDb(problem);
  const ExactResult ida = SolveIda(problem, db.get(), ExactConfig{});
  EXPECT_EQ(ida.metrics.fast_path_assigns, 0u);
  EXPECT_EQ(ida.matching.size(), 3);
  for (const auto& pair : ida.matching.pairs) EXPECT_EQ(pair.provider, 1);
  EXPECT_NEAR(ida.matching.cost(), SolveSspa(problem).matching.cost(), 1e-6);
}

}  // namespace
}  // namespace cca
