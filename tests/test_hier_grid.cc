// Unit tests for the two-level hierarchical adaptive grid
// (geo/hier_grid.h): structural invariants of the coarse/fine CSR, the
// adaptive split policy, the coarse ring-tail lower bound, the exactness
// of the two-level tau floors under randomized monotone raises (the
// aggregation invariant the SSPA coarse-tail rejection is sound against),
// and the hierarchical NN cursor's ordered-stream contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "common/rng.h"
#include "geo/grid_cursor.h"
#include "geo/hier_grid.h"
#include "test_util.h"

namespace cca {
namespace {

using test::ClusteredPoints;
using test::RandomPoints;
using test::SkewedPoints;

double Dist(const Point& a, const Point& b) {
  return std::sqrt((a.x - b.x) * (a.x - b.x) + (a.y - b.y) * (a.y - b.y));
}

// Every point indexed exactly once; every inverse map agrees with the CSR;
// fine cells of a coarse cell are contiguous in both id and slot space, so
// coarse_count is exact.
void CheckStructure(const std::vector<Point>& pts, const HierarchicalGrid& grid) {
  ASSERT_EQ(grid.size(), pts.size());
  std::vector<int> seen(pts.size(), 0);
  std::size_t total = 0;
  for (std::size_t c = 0; c < grid.num_coarse(); ++c) {
    ASSERT_GE(grid.split(c), 1);
    ASSERT_LE(grid.split(c), HierarchicalGrid::Options::kMaxSplit);
    ASSERT_EQ(grid.fine_end(c) - grid.fine_begin(c),
              static_cast<std::size_t>(grid.split(c)) * static_cast<std::size_t>(grid.split(c)));
    std::size_t count = 0;
    const Rect coarse_rect = grid.CoarseRect(c);
    for (std::size_t f = grid.fine_begin(c); f < grid.fine_end(c); ++f) {
      ASSERT_EQ(grid.coarse_of_fine(f), c);
      const Rect fine_rect = grid.FineRect(f);
      // Children tile their parent (within float slack at the seams).
      EXPECT_GE(fine_rect.lo.x, coarse_rect.lo.x - 1e-9);
      EXPECT_LE(fine_rect.hi.y, coarse_rect.hi.y + 1e-9);
      const UniformGrid::CellSlice slice = grid.FineCell(f);
      ASSERT_EQ(slice.first_slot, grid.fine_cell_begin(f));
      ASSERT_EQ(slice.count, grid.fine_cell_end(f) - grid.fine_cell_begin(f));
      for (std::size_t s = 0; s < slice.count; ++s) {
        const std::size_t id = static_cast<std::size_t>(slice.ids[s]);
        ASSERT_LT(id, pts.size());
        ++seen[id];
        EXPECT_DOUBLE_EQ(slice.xs[s], pts[id].x);
        EXPECT_DOUBLE_EQ(slice.ys[s], pts[id].y);
        EXPECT_EQ(grid.fine_of_point(id), f);
        EXPECT_EQ(grid.coarse_of_point(id), c);
        EXPECT_EQ(grid.slot_of_point(id), slice.first_slot + s);
      }
      count += slice.count;
    }
    EXPECT_EQ(grid.coarse_count(c), count);
    total += count;
  }
  EXPECT_EQ(total, pts.size());
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](int n) { return n == 1; }));
  // nonempty_coarse lists exactly the occupied coarse cells, ascending.
  std::vector<std::int32_t> expect;
  for (std::size_t c = 0; c < grid.num_coarse(); ++c) {
    if (grid.coarse_count(c) > 0) expect.push_back(static_cast<std::int32_t>(c));
  }
  EXPECT_EQ(grid.nonempty_coarse(), expect);
}

TEST(HierGridTest, StructureInvariantsAcrossDistributions) {
  CheckStructure(RandomPoints(700, 11), HierarchicalGrid(RandomPoints(700, 11)));
  CheckStructure(ClusteredPoints(900, 12), HierarchicalGrid(ClusteredPoints(900, 12)));
  CheckStructure(SkewedPoints(1200, 13), HierarchicalGrid(SkewedPoints(1200, 13)));
}

TEST(HierGridTest, HandlesDegenerateInputs) {
  CheckStructure({}, HierarchicalGrid({}));
  const std::vector<Point> one{{3.0, 4.0}};
  CheckStructure(one, HierarchicalGrid(one));
  // All points coincident: one hot coarse cell, split capped at kMaxSplit.
  const std::vector<Point> same(500, Point{10.0, 10.0});
  HierarchicalGrid grid(same);
  CheckStructure(same, grid);
  EXPECT_EQ(grid.splits(), 1u);
}

TEST(HierGridTest, SplitPolicyIsOccupancyDriven) {
  // Skewed data: the hot box must split, sparse cells must not.
  const auto pts = SkewedPoints(4000, 21);
  HierarchicalGrid::Options options;
  HierarchicalGrid grid(pts, options);
  EXPECT_GT(grid.splits(), 0u);
  const std::size_t threshold =
      static_cast<std::size_t>(std::ceil(4.0 * options.fine_target_per_cell));
  std::size_t splits = 0;
  for (std::size_t c = 0; c < grid.num_coarse(); ++c) {
    if (grid.coarse_count(c) <= threshold) {
      EXPECT_EQ(grid.split(c), 1) << "sparse coarse cell " << c << " split anyway";
    } else {
      EXPECT_GT(grid.split(c), 1) << "hot coarse cell " << c << " not split";
      ++splits;
    }
  }
  EXPECT_EQ(grid.splits(), splits);
  // A higher threshold suppresses splits entirely.
  options.split_threshold = pts.size() + 1;
  HierarchicalGrid flat(pts, options);
  EXPECT_EQ(flat.splits(), 0u);
  EXPECT_EQ(flat.num_fine(), flat.num_coarse());
  CheckStructure(pts, flat);
}

TEST(HierGridTest, RingTailMinDistIsSoundAndMonotone) {
  const auto pts = ClusteredPoints(800, 31);
  const HierarchicalGrid grid(pts);
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const Point q{rng.Uniform(-100.0, 1100.0), rng.Uniform(-100.0, 1100.0)};
    // Distance of every resident, bucketed by its coarse ring around q.
    int cx = 0, cy = 0;
    grid.LocateCoarse(q, &cx, &cy);
    const int max_ring = grid.MaxRing(q);
    std::vector<double> ring_min(static_cast<std::size_t>(max_ring) + 1,
                                 std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const std::size_t c = grid.coarse_of_point(i);
      const int px = static_cast<int>(c % static_cast<std::size_t>(grid.coarse_cols()));
      const int py = static_cast<int>(c / static_cast<std::size_t>(grid.coarse_cols()));
      const int ring = std::max(std::abs(px - cx), std::abs(py - cy));
      ring_min[static_cast<std::size_t>(ring)] =
          std::min(ring_min[static_cast<std::size_t>(ring)], Dist(q, pts[i]));
    }
    double prev = -1.0;
    for (int ring = 0; ring <= max_ring; ++ring) {
      const double bound = grid.RingTailMinDist(q, ring);
      EXPECT_GE(bound, prev) << "tail bound not monotone at ring " << ring;
      prev = bound;
      double actual = std::numeric_limits<double>::infinity();
      for (int r = ring; r <= max_ring; ++r) {
        actual = std::min(actual, ring_min[static_cast<std::size_t>(r)]);
      }
      EXPECT_LE(bound, actual + 1e-9)
          << "tail bound overshoots the true tail min at ring " << ring;
    }
  }
}

TEST(HierRingCursorTest, CoversEveryCoarseCellWithSoundTailBound) {
  const auto pts = SkewedPoints(900, 41);
  const HierarchicalGrid grid(pts);
  for (const Point& q : {Point{500, 500}, Point{40, 25}, Point{-60, 1100}}) {
    HierRingCursor cursor(grid, q);
    std::set<std::size_t> seen_cells;
    std::size_t total = 0;
    double prev_tail = -1.0;
    while (true) {
      const double tail = cursor.TailMinDist();
      EXPECT_GE(tail, prev_tail - 1e-12) << "TailMinDist regressed";
      prev_tail = tail;
      const auto view = cursor.NextCoarse();
      if (!view) break;
      EXPECT_TRUE(seen_cells.insert(view->cell).second);
      EXPECT_EQ(view->count, grid.coarse_count(view->cell));
      EXPECT_GT(view->count, 0u);
      // The tail bound published before the pop lower-bounds this cell.
      EXPECT_LE(tail, MinDist(q, grid.CoarseRect(view->cell)) + 1e-9);
      total += view->count;
    }
    EXPECT_TRUE(cursor.exhausted());
    EXPECT_EQ(total, pts.size());
    EXPECT_EQ(cursor.points_remaining(), 0u);
    EXPECT_EQ(cursor.TailMinDist(), std::numeric_limits<double>::infinity());
  }
}

// The aggregation invariant under randomized monotone raises: fine floors
// stay the exact min of their residents, coarse floors the exact min of
// their children, the global floor the exact min over everything.
TEST(HierTauTableTest, FloorsStayExactUnderRandomizedRaises) {
  const auto pts = SkewedPoints(600, 51);
  const HierarchicalGrid grid(pts);
  HierTauTable table(grid);
  std::vector<double> truth(pts.size(), 0.0);
  Rng rng(99);
  for (int step = 0; step < 3000; ++step) {
    const std::size_t id = static_cast<std::size_t>(rng.NextBelow(pts.size()));
    // Mostly raises, occasionally a stale lower value (must be a no-op).
    const double value = rng.NextDouble() < 0.9 ? truth[id] + rng.Uniform(0.0, 5.0)
                                                : truth[id] * rng.NextDouble();
    table.Raise(id, value);
    truth[id] = std::max(truth[id], value);
    if (step % 250 != 0 && step + 1 != 3000) continue;
    std::vector<double> fine_truth(grid.num_fine(), std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      fine_truth[grid.fine_of_point(i)] = std::min(fine_truth[grid.fine_of_point(i)], truth[i]);
      // Slot-ordered values stay aligned with the clustered slices.
      ASSERT_DOUBLE_EQ(table.values()[grid.slot_of_point(i)], truth[i]);
    }
    double global_truth = pts.empty() ? 0.0 : std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < grid.num_coarse(); ++c) {
      double coarse_truth = std::numeric_limits<double>::infinity();
      for (std::size_t f = grid.fine_begin(c); f < grid.fine_end(c); ++f) {
        ASSERT_DOUBLE_EQ(table.FineFloor(f), fine_truth[f]);
        coarse_truth = std::min(coarse_truth, fine_truth[f]);
      }
      ASSERT_DOUBLE_EQ(table.CoarseFloor(c), coarse_truth);
      // The consumer-facing inequality: coarse floor never exceeds any
      // child floor (what makes one coarse compare a union of fine ones).
      for (std::size_t f = grid.fine_begin(c); f < grid.fine_end(c); ++f) {
        ASSERT_LE(table.CoarseFloor(c), table.FineFloor(f));
      }
      global_truth = std::min(global_truth, coarse_truth);
    }
    ASSERT_DOUBLE_EQ(table.GlobalFloor(), global_truth);
  }
}

// Between-solve population edits (the AssignmentEngine contract): seeded
// construction starts exact at every level, and Remove / Insert refloor
// fine -> coarse -> global exactly in both directions — including a fine
// cell whose residents are all removed reading +infinity.
TEST(HierTauTableTest, SeededEditsRefloorEveryLevelExactly) {
  const auto pts = ClusteredPoints(400, 57);
  const HierarchicalGrid grid(pts);
  std::vector<double> truth(pts.size());
  Rng rng(21);
  for (auto& v : truth) v = rng.Uniform(0.0, 40.0);
  HierTauTable table(grid, truth);
  const auto check_exact = [&] {
    std::vector<double> fine_truth(grid.num_fine(), std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      fine_truth[grid.fine_of_point(i)] = std::min(fine_truth[grid.fine_of_point(i)], truth[i]);
    }
    double global_truth = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < grid.num_coarse(); ++c) {
      double coarse_truth = std::numeric_limits<double>::infinity();
      for (std::size_t f = grid.fine_begin(c); f < grid.fine_end(c); ++f) {
        ASSERT_DOUBLE_EQ(table.FineFloor(f), fine_truth[f]);
        coarse_truth = std::min(coarse_truth, fine_truth[f]);
      }
      ASSERT_DOUBLE_EQ(table.CoarseFloor(c), coarse_truth);
      global_truth = std::min(global_truth, coarse_truth);
    }
    ASSERT_DOUBLE_EQ(table.GlobalFloor(), global_truth);
  };
  check_exact();  // seeded construction is exact before any edit
  for (int round = 0; round < 150; ++round) {
    const std::size_t i = static_cast<std::size_t>(rng.NextBelow(pts.size()));
    if (rng.NextDouble() < 0.4) {
      truth[i] = std::numeric_limits<double>::infinity();
      table.Remove(i);
    } else {
      truth[i] = rng.Uniform(0.0, 40.0);  // may lower OR raise a live value
      table.Insert(i, truth[i]);
    }
    if (round % 25 == 24) check_exact();
  }
}

TEST(HierNnCursorTest, StreamsAllPointsInExactDistanceOrder) {
  for (std::uint64_t seed : {61u, 62u}) {
    const auto pts = seed % 2 == 0 ? SkewedPoints(500, seed) : ClusteredPoints(500, seed);
    const HierarchicalGrid grid(pts);
    Rng rng(seed * 17);
    for (int trial = 0; trial < 5; ++trial) {
      const Point q{rng.Uniform(-50.0, 1050.0), rng.Uniform(-50.0, 1050.0)};
      std::vector<double> sorted;
      sorted.reserve(pts.size());
      for (const Point& p : pts) sorted.push_back(Dist(q, p));
      std::sort(sorted.begin(), sorted.end());
      HierNnCursor cursor(grid, q);
      std::set<std::int32_t> seen;
      for (std::size_t rank = 0; rank < pts.size(); ++rank) {
        EXPECT_NEAR(cursor.PeekDistance(), sorted[rank], 1e-9);
        const auto next = cursor.Next();
        ASSERT_TRUE(next.has_value());
        EXPECT_NEAR(next->second, sorted[rank], 1e-9);
        EXPECT_NEAR(next->second, Dist(q, pts[static_cast<std::size_t>(next->first)]), 1e-9);
        EXPECT_TRUE(seen.insert(next->first).second);
      }
      EXPECT_FALSE(cursor.Next().has_value());
      EXPECT_EQ(cursor.PeekDistance(), std::numeric_limits<double>::infinity());
      // Laziness: a full drain may open every fine cell but never more.
      EXPECT_LE(cursor.cells_visited(), grid.num_fine());
    }
  }
}

}  // namespace
}  // namespace cca
