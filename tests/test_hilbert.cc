// Hilbert curve tests: bijectivity, locality, world quantisation.
#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/hilbert.h"

namespace cca {
namespace {

TEST(HilbertTest, Order1IsTheBasicU) {
  // Order-1 curve visits (0,0), (0,1), (1,1), (1,0).
  EXPECT_EQ(HilbertIndex(0, 0, 1), 0u);
  EXPECT_EQ(HilbertIndex(0, 1, 1), 1u);
  EXPECT_EQ(HilbertIndex(1, 1, 1), 2u);
  EXPECT_EQ(HilbertIndex(1, 0, 1), 3u);
}

TEST(HilbertTest, BijectiveSmallOrders) {
  for (int order = 1; order <= 5; ++order) {
    const std::uint32_t n = 1u << order;
    std::set<std::uint64_t> seen;
    for (std::uint32_t x = 0; x < n; ++x) {
      for (std::uint32_t y = 0; y < n; ++y) {
        const std::uint64_t d = HilbertIndex(x, y, order);
        EXPECT_LT(d, static_cast<std::uint64_t>(n) * n);
        EXPECT_TRUE(seen.insert(d).second) << "duplicate index at order " << order;
      }
    }
  }
}

TEST(HilbertTest, RoundTrip) {
  for (int order = 1; order <= 6; ++order) {
    const std::uint32_t n = 1u << order;
    for (std::uint32_t x = 0; x < n; x += 3) {
      for (std::uint32_t y = 0; y < n; y += 3) {
        const std::uint64_t d = HilbertIndex(x, y, order);
        std::uint32_t rx = 0, ry = 0;
        HilbertCell(d, &rx, &ry, order);
        EXPECT_EQ(rx, x);
        EXPECT_EQ(ry, y);
      }
    }
  }
}

// Consecutive curve positions are adjacent cells (the defining property).
TEST(HilbertTest, ConsecutiveIndicesAreNeighbours) {
  const int order = 5;
  const std::uint64_t cells = 1ull << (2 * order);
  std::uint32_t px = 0, py = 0;
  HilbertCell(0, &px, &py, order);
  for (std::uint64_t d = 1; d < cells; ++d) {
    std::uint32_t x = 0, y = 0;
    HilbertCell(d, &x, &y, order);
    const std::uint32_t manhattan =
        (x > px ? x - px : px - x) + (y > py ? y - py : py - y);
    EXPECT_EQ(manhattan, 1u) << "jump at index " << d;
    px = x;
    py = y;
  }
}

TEST(HilbertValueTest, QuantisationAndClamping) {
  const Rect world = Rect::FromCorners({0, 0}, {1000, 1000});
  // Identical points map to identical values.
  EXPECT_EQ(HilbertValue({500, 500}, world), HilbertValue({500, 500}, world));
  // Out-of-world points clamp instead of overflowing.
  const auto corner = HilbertValue({1000, 1000}, world);
  EXPECT_EQ(HilbertValue({2000, 5000}, world), corner);
  const auto origin = HilbertValue({0, 0}, world);
  EXPECT_EQ(HilbertValue({-100, -100}, world), origin);
}

TEST(HilbertValueTest, LocalityBeatsShuffledOrder) {
  // The total tour length of Hilbert-consecutive points must be far below
  // that of a random visiting order (the locality the ANN grouping and SA
  // partitioning rely on).
  std::vector<Point> pts;
  const Rect world = Rect::FromCorners({0, 0}, {1000, 1000});
  for (int i = 0; i < 64; ++i) {
    for (int j = 0; j < 64; ++j) {
      pts.push_back(Point{i * 1000.0 / 63, j * 1000.0 / 63});
    }
  }
  std::vector<std::size_t> order(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return HilbertValue(pts[a], world) < HilbertValue(pts[b], world);
  });
  std::vector<std::size_t> shuffled = order;
  Rng rng(5);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[static_cast<std::size_t>(rng.NextBelow(i))]);
  }
  double hilbert_total = 0.0, shuffled_total = 0.0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    hilbert_total += Distance(pts[order[i - 1]], pts[order[i]]);
    shuffled_total += Distance(pts[shuffled[i - 1]], pts[shuffled[i]]);
  }
  EXPECT_LT(hilbert_total, shuffled_total * 0.1);
}

}  // namespace
}  // namespace cca
