// Deterministic fault-injection chaos suite: the storage stack (PageFile
// CRC32 + BufferPool retry) and the R-tree-backed solver stack above it
// are exercised under seeded injected read failures and torn-page
// corruption, against a fault-free twin running the identical workload.
//
// The contract under test (src/runtime/README.md "Failure model"):
//   * every injected fault is recovered by the bounded retry loop — the
//     backing store stays intact, and the injector's consecutive-fault cap
//     (FaultInjectorConfig::max_consecutive_faults) is below the retry
//     budget (BufferPool::kMaxReadRetries), so recovery is guaranteed, not
//     probabilistic;
//   * recovery is *exact*: query results and matching costs are
//     bit-identical to the fault-free twin, not merely close;
//   * every fault is accounted for: the BufferPool's retry counters
//     reconcile exactly with the injector's own ledger — no fault is
//     silently swallowed, none is double-counted.
//
// The chaos seed is pinned here AND in the ctest registration name
// (test_fault_chaos_seed1337 in CMakeLists.txt): a red CI run names the
// exact injected fault sequence, reproducible with no bisection.
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/customer_db.h"
#include "core/exact.h"
#include "core/problem.h"
#include "flow/sspa.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injector.h"
#include "storage/page_file.h"
#include "test_util.h"

namespace cca {
namespace {

constexpr std::uint64_t kChaosSeed = 1337;
// Injected per-read probabilities. The acceptance floor is 1e-3; these sit
// well above it so even the smaller workloads see faults of both kinds.
constexpr double kReadFailureRate = 0.02;
constexpr double kCorruptionRate = 0.02;

FaultInjectorConfig ChaosConfig(std::uint64_t seed_salt) {
  FaultInjectorConfig config;
  config.read_failure_rate = kReadFailureRate;
  config.corruption_rate = kCorruptionRate;
  config.seed = kChaosSeed + seed_salt;
  return config;
}

// The retry budget must dominate the injector's consecutive-fault cap or
// recovery would be probabilistic instead of guaranteed.
static_assert(FaultInjectorConfig{}.max_consecutive_faults < BufferPool::kMaxReadRetries,
              "retry budget must exceed the injector's consecutive-fault cap");

TEST(FaultChaos, StorageChurnRecoversEveryFaultAndReconcilesLedger) {
  constexpr std::uint32_t kPageSize = 256;
  constexpr std::uint32_t kPages = 64;
  PageFile file(kPageSize);
  BufferPool pool(&file, /*capacity=*/8);
  FaultInjector injector(ChaosConfig(1));
  file.set_fault_injector(&injector);

  // Fill every page with a seeded pattern through the pool.
  std::vector<std::vector<std::uint8_t>> expected(kPages);
  Rng rng(kChaosSeed);
  for (std::uint32_t id = 0; id < kPages; ++id) {
    ASSERT_EQ(file.Allocate(), id);
    expected[id].resize(kPageSize);
    for (auto& b : expected[id]) b = static_cast<std::uint8_t>(rng.Next());
    ASSERT_TRUE(pool.WritePage(id, expected[id].data()).ok());
  }

  // Random read churn: every read must come back byte-identical to what
  // was written, whatever the injector did underneath.
  std::vector<std::uint8_t> buf(kPageSize);
  for (int i = 0; i < 4000; ++i) {
    const auto id = static_cast<PageId>(rng.NextBelow(kPages));
    ASSERT_TRUE(pool.ReadPage(id, buf.data()).ok()) << "read " << i;
    ASSERT_EQ(std::memcmp(buf.data(), expected[id].data(), kPageSize), 0)
        << "page " << id << " read " << i;
  }

  // The chaos was real, and every fault is accounted: pool counters
  // reconcile exactly with the injector's own ledger.
  const BufferPool::Stats stats = pool.stats();
  const FaultInjector::Ledger& ledger = injector.ledger();
  EXPECT_GT(ledger.read_failures, 0u);
  EXPECT_GT(ledger.corruptions, 0u);
  EXPECT_EQ(stats.read_failures, ledger.read_failures);
  EXPECT_EQ(stats.checksum_failures, ledger.corruptions);
  EXPECT_EQ(stats.read_retries, ledger.read_failures + ledger.corruptions);
}

TEST(FaultChaos, RtreeSolveCostsBitIdenticalToFaultFreeTwin) {
  // Two identical R-tree-backed customer databases run the same solver
  // workload; one has the chaos injector attached to its page file. A
  // small buffer fraction keeps real page traffic (and therefore
  // injection opportunities) high. Costs and ledgers must come out
  // bit-identical — recovery, not approximation.
  test::InstanceSpec spec;
  spec.nq = 12;
  spec.np = 600;
  spec.seed = kChaosSeed + 2;
  const Problem problem = test::RandomProblem(spec);

  CustomerDb::Options options;
  options.rtree.page_size = 512;
  options.buffer_fraction = 0.05;  // tiny cache -> constant page traffic
  CustomerDb faulty(problem.customers, options);
  CustomerDb clean(problem.customers, options);

  FaultInjector injector(ChaosConfig(3));
  faulty.tree()->buffer().file()->set_fault_injector(&injector);

  for (const DiscoveryBackend backend :
       {DiscoveryBackend::kRTreePlain, DiscoveryBackend::kRTreeGrouped}) {
    ExactConfig config;
    config.discovery_backend = backend;
    const ExactResult with_faults = SolveRia(problem, &faulty, config);
    const ExactResult without = SolveRia(problem, &clean, config);
    // Bit-identical, not NEAR: retry returns the exact stored bytes, so
    // the two solver trajectories are the same program on the same data.
    EXPECT_EQ(with_faults.matching.cost(), without.matching.cost());
    EXPECT_EQ(with_faults.matching.pairs.size(), without.matching.pairs.size());
    faulty.CoolDown();  // next backend starts cold: fresh page traffic
    clean.CoolDown();
  }

  const FaultInjector::Ledger& ledger = injector.ledger();
  EXPECT_GT(ledger.reads_seen, 0u);
  EXPECT_GT(ledger.read_failures + ledger.corruptions, 0u);
  const BufferPool::Stats stats = faulty.tree()->buffer().stats();
  EXPECT_EQ(stats.read_failures, ledger.read_failures);
  EXPECT_EQ(stats.checksum_failures, ledger.corruptions);
  // The clean twin saw no retries at all.
  const BufferPool::Stats clean_stats = clean.tree()->buffer().stats();
  EXPECT_EQ(clean_stats.read_retries, 0u);
  EXPECT_EQ(clean_stats.read_failures, 0u);
  EXPECT_EQ(clean_stats.checksum_failures, 0u);
}

TEST(FaultChaos, SolverMatchingsSurviveSustainedFaultsAcrossSeeds) {
  // Several chaos seeds over a smaller instance: the recovery contract is
  // seed-independent (any fault sequence the cap allows is survivable).
  for (std::uint64_t salt = 10; salt < 13; ++salt) {
    test::InstanceSpec spec;
    spec.nq = 6;
    spec.np = 200;
    spec.seed = kChaosSeed + salt;
    const Problem problem = test::RandomProblem(spec);
    CustomerDb::Options options;
    options.rtree.page_size = 512;
    options.buffer_fraction = 0.05;
    CustomerDb faulty(problem.customers, options);
    CustomerDb clean(problem.customers, options);
    FaultInjector injector(ChaosConfig(salt));
    faulty.tree()->buffer().file()->set_fault_injector(&injector);

    const ExactResult with_faults = SolveNia(problem, &faulty);
    const ExactResult without = SolveNia(problem, &clean);
    EXPECT_EQ(with_faults.matching.cost(), without.matching.cost()) << "salt " << salt;

    const FaultInjector::Ledger& ledger = injector.ledger();
    const BufferPool::Stats stats = faulty.tree()->buffer().stats();
    EXPECT_EQ(stats.read_failures, ledger.read_failures) << "salt " << salt;
    EXPECT_EQ(stats.checksum_failures, ledger.corruptions) << "salt " << salt;
  }
}

}  // namespace
}  // namespace cca
