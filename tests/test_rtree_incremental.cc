// Incremental NN iterator and grouped ANN searcher tests (paper 3.4.2).
#include <algorithm>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rtree/ann_iterator.h"
#include "rtree/nn_iterator.h"
#include "rtree/rtree.h"
#include "test_util.h"

namespace cca {
namespace {

using test::ClusteredPoints;
using test::RandomPoints;

TEST(NnIteratorTest, FullDrainIsSortedAndComplete) {
  const auto pts = RandomPoints(500, 21);
  RTree::Options options;
  options.page_size = 256;
  auto tree = RTree::BulkLoad(pts, options);
  const Point q{333, 444};
  NnIterator it(tree.get(), q);
  std::vector<RTree::Hit> seq;
  while (auto hit = it.Next()) seq.push_back(*hit);
  ASSERT_EQ(seq.size(), pts.size());
  for (std::size_t i = 1; i < seq.size(); ++i) {
    EXPECT_LE(seq[i - 1].dist, seq[i].dist + 1e-12);
  }
  // Against brute force distances.
  std::vector<double> brute;
  for (const auto& p : pts) brute.push_back(Distance(q, p));
  std::sort(brute.begin(), brute.end());
  for (std::size_t i = 0; i < seq.size(); ++i) EXPECT_NEAR(seq[i].dist, brute[i], 1e-9);
  // Exhausted iterator keeps returning nullopt.
  EXPECT_FALSE(it.Next().has_value());
  EXPECT_TRUE(std::isinf(it.PeekDistance()));
}

TEST(NnIteratorTest, PeekDoesNotConsume) {
  const auto pts = RandomPoints(100, 22);
  auto tree = RTree::BulkLoad(pts);
  NnIterator it(tree.get(), {500, 500});
  const double peek = it.PeekDistance();
  const auto first = it.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(first->dist, peek);
}

TEST(NnIteratorTest, EmptyTree) {
  RTree tree;
  NnIterator it(&tree, {0, 0});
  EXPECT_FALSE(it.Next().has_value());
}

TEST(HilbertGroupsTest, CoverAllProvidersOnce) {
  const auto pts = RandomPoints(57, 23);
  const auto groups = FormHilbertGroups(pts, 8, test::UnitWorld());
  std::vector<char> seen(pts.size(), 0);
  for (const auto& g : groups) {
    EXPECT_LE(g.size(), 8u);
    EXPECT_GE(g.size(), 1u);
    for (int idx : g) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(idx)]);
      seen[static_cast<std::size_t>(idx)] = 1;
    }
  }
  for (char s : seen) EXPECT_TRUE(s);
}

struct AnnCase {
  std::size_t providers;
  std::size_t customers;
  std::size_t group_size;
  bool clustered;
  std::uint64_t seed;
};

class GroupAnnTest : public ::testing::TestWithParam<AnnCase> {};

// The grouped searcher must emit, per provider, exactly the same NN
// sequence as an independent best-first iterator.
TEST_P(GroupAnnTest, MatchesIndependentIterators) {
  const auto& param = GetParam();
  const auto customers = param.clustered ? ClusteredPoints(param.customers, param.seed)
                                         : RandomPoints(param.customers, param.seed);
  const auto providers = RandomPoints(param.providers, param.seed + 100);
  RTree::Options options;
  options.page_size = 256;
  auto tree = RTree::BulkLoad(customers, options);

  const auto groups = FormHilbertGroups(providers, param.group_size, test::UnitWorld());
  GroupAnnSearcher searcher(tree.get(), providers, groups);

  // Interleave provider advances pseudo-randomly to stress shared state.
  std::vector<NnIterator> ref;
  for (const auto& q : providers) ref.emplace_back(tree.get(), q);
  std::vector<std::size_t> remaining(providers.size(), std::min<std::size_t>(40, customers.size()));
  Rng rng(param.seed + 7);
  std::size_t total = 0;
  for (auto r : remaining) total += r;
  while (total > 0) {
    const auto q = static_cast<std::size_t>(rng.NextBelow(providers.size()));
    if (remaining[q] == 0) continue;
    const auto got = searcher.NextNN(static_cast<int>(q));
    const auto want = ref[q].Next();
    ASSERT_EQ(got.has_value(), want.has_value());
    if (got) {
      EXPECT_NEAR(got->dist, want->dist, 1e-9) << "provider " << q;
    }
    --remaining[q];
    --total;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, GroupAnnTest,
                         ::testing::Values(AnnCase{1, 200, 4, false, 31},
                                           AnnCase{6, 300, 2, false, 32},
                                           AnnCase{10, 400, 5, true, 33},
                                           AnnCase{17, 500, 8, true, 34},
                                           AnnCase{5, 100, 16, false, 35}));

TEST(GroupAnnTest, ExhaustsDataset) {
  const auto customers = RandomPoints(50, 36);
  const auto providers = RandomPoints(3, 37);
  auto tree = RTree::BulkLoad(customers);
  const auto groups = FormHilbertGroups(providers, 3, test::UnitWorld());
  GroupAnnSearcher searcher(tree.get(), providers, groups);
  for (int q = 0; q < 3; ++q) {
    for (std::size_t i = 0; i < customers.size(); ++i) {
      EXPECT_TRUE(searcher.NextNN(q).has_value());
    }
    EXPECT_FALSE(searcher.NextNN(q).has_value());
  }
}

TEST(GroupAnnTest, SharedTraversalSavesNodeAccesses) {
  // Nearby providers in one group should touch far fewer nodes than
  // independent traversals when each consumes many NNs.
  const auto customers = RandomPoints(4000, 38);
  std::vector<Point> providers;
  for (int i = 0; i < 8; ++i) providers.push_back(Point{500.0 + i, 500.0 + i});
  RTree::Options options;
  options.page_size = 256;

  auto tree_a = RTree::BulkLoad(customers, options);
  tree_a->ResetCounters();
  {
    std::vector<NnIterator> its;
    for (const auto& q : providers) its.emplace_back(tree_a.get(), q);
    for (auto& it : its) {
      for (int i = 0; i < 200; ++i) it.Next();
    }
  }
  const auto independent = tree_a->node_accesses();

  auto tree_b = RTree::BulkLoad(customers, options);
  tree_b->ResetCounters();
  {
    const auto groups = FormHilbertGroups(providers, 8, test::UnitWorld());
    GroupAnnSearcher searcher(tree_b.get(), providers, groups);
    for (int q = 0; q < 8; ++q) {
      for (int i = 0; i < 200; ++i) searcher.NextNN(q);
    }
  }
  const auto grouped = tree_b->node_accesses();
  EXPECT_LT(grouped * 2, independent);
}

}  // namespace
}  // namespace cca
