// ANN group-size sensitivity: correctness must be invariant in the group
// size; shared traversals must save node accesses as groups grow (up to
// the candidate-duplication trade-off the paper describes).
#include <gtest/gtest.h>

#include "core/exact.h"
#include "flow/sspa.h"
#include "test_util.h"

namespace cca {
namespace {

class AnnGroupSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AnnGroupSizeTest, CostInvariantInGroupSize) {
  test::InstanceSpec spec;
  spec.nq = 12;
  spec.np = 300;
  spec.k_lo = 5;
  spec.k_hi = 10;
  spec.clustered_q = true;
  spec.clustered_p = true;
  spec.seed = 99;
  const Problem problem = test::RandomProblem(spec);
  auto db = test::MakeDb(problem);
  ExactConfig config;
  config.ann_group_size = GetParam();
  const ExactResult ida = SolveIda(problem, db.get(), config);
  EXPECT_NEAR(ida.matching.cost(), SolveSspa(problem).matching.cost(),
              1e-6 * (1 + ida.matching.cost()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, AnnGroupSizeTest, ::testing::Values<std::size_t>(1, 2, 4, 8, 32),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "g" + std::to_string(info.param);
                         });

TEST(AnnGroupSizeTest, GroupingSavesNodeAccessesOnClusteredProviders) {
  test::InstanceSpec spec;
  spec.nq = 16;
  spec.np = 2000;
  spec.k_lo = 20;
  spec.k_hi = 20;
  spec.clustered_q = true;
  spec.clustered_p = true;
  spec.seed = 100;
  const Problem problem = test::RandomProblem(spec);
  auto db = test::MakeDb(problem, /*buffer_fraction=*/0.05, /*page_size=*/256);

  ExactConfig singleton;
  singleton.ann_group_size = 1;  // degenerates to independent iterators
  db->CoolDown();
  const ExactResult alone = SolveIda(problem, db.get(), singleton);

  ExactConfig grouped;
  grouped.ann_group_size = 8;
  db->CoolDown();
  const ExactResult together = SolveIda(problem, db.get(), grouped);

  EXPECT_NEAR(alone.matching.cost(), together.matching.cost(), 1e-6);
  EXPECT_LT(together.metrics.node_accesses, alone.metrics.node_accesses);
}

}  // namespace
}  // namespace cca
