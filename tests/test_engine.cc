// IncrementalEngine tests: the engine run on the full edge set must agree
// with SSPA; reduced-cost invariants hold after every augmentation; PUA
// repair and the Theorem-2 fast path preserve results exactly.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "flow/oracle.h"
#include "flow/sspa.h"
#include "test_util.h"

namespace cca {
namespace {

// Feeds every provider->customer edge up front and augments until done,
// checking the reduced-cost invariant after each accepted path.
Matching RunEngineAllEdges(const Problem& problem, bool use_pua, bool check_invariants) {
  Metrics metrics;
  IncrementalEngine::Config config;
  config.use_pua = use_pua;
  config.unit_edges = problem.weights.empty();
  IncrementalEngine engine(problem, config, &metrics);
  for (std::size_t q = 0; q < problem.providers.size(); ++q) {
    for (std::size_t p = 0; p < problem.customers.size(); ++p) {
      engine.InsertEdge(static_cast<int>(q), static_cast<int>(p),
                        Distance(problem.providers[q].pos, problem.customers[p]));
    }
  }
  while (!engine.Done()) {
    const double d = engine.ComputeShortestPath();
    EXPECT_LT(d, 1e30) << "sink unreachable although gamma not met";
    engine.AcceptPath();
    if (check_invariants) {
      std::string error;
      EXPECT_TRUE(engine.CheckReducedCosts(&error)) << error;
    }
  }
  return engine.BuildMatching();
}

TEST(EngineTest, FullGraphMatchesSspaPaperExample) {
  Problem problem;
  problem.providers = {Provider{{0.0, 0.0}, 1}, Provider{{10.0, 0.0}, 2}};
  problem.customers = {Point{-4.0, 0.0}, Point{3.0, 0.0}};
  const Matching m = RunEngineAllEdges(problem, true, true);
  EXPECT_DOUBLE_EQ(m.cost(), 11.0);
}

TEST(EngineTest, FullGraphOptimalAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 5;
    spec.np = 25;
    spec.k_lo = 1;
    spec.k_hi = 5;
    spec.seed = seed;
    const Problem problem = test::RandomProblem(spec);
    const Matching m = RunEngineAllEdges(problem, true, true);
    std::string error;
    EXPECT_TRUE(ValidateMatching(problem, m, &error)) << error << " seed " << seed;
    const double oracle = SolveSspa(problem).matching.cost();
    EXPECT_NEAR(m.cost(), oracle, 1e-6) << "seed " << seed;
  }
}

TEST(EngineTest, PuaOnOffIdenticalCosts) {
  for (std::uint64_t seed = 20; seed < 30; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 4;
    spec.np = 20;
    spec.seed = seed;
    const Problem problem = test::RandomProblem(spec);
    const double with_pua = RunEngineAllEdges(problem, true, false).cost();
    const double without = RunEngineAllEdges(problem, false, false).cost();
    EXPECT_NEAR(with_pua, without, 1e-9) << "seed " << seed;
  }
}

// Edge-by-edge insertion interleaved with (possibly invalid) shortest path
// computations: exercises the PUA repair path specifically.
TEST(EngineTest, IncrementalInsertionWithPuaRepairs) {
  for (std::uint64_t seed = 40; seed < 48; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 3;
    spec.np = 15;
    spec.k_lo = 2;
    spec.k_hi = 4;
    spec.seed = seed;
    const Problem problem = test::RandomProblem(spec);

    // All (q, p, dist) edges sorted by length, inserted one at a time.
    struct E {
      int q, p;
      double d;
    };
    std::vector<E> all;
    for (std::size_t q = 0; q < problem.providers.size(); ++q) {
      for (std::size_t p = 0; p < problem.customers.size(); ++p) {
        all.push_back(E{static_cast<int>(q), static_cast<int>(p),
                        Distance(problem.providers[q].pos, problem.customers[p])});
      }
    }
    std::sort(all.begin(), all.end(), [](const E& a, const E& b) { return a.d < b.d; });

    Metrics metrics;
    IncrementalEngine::Config config;
    config.use_pua = true;
    IncrementalEngine engine(problem, config, &metrics);
    std::size_t next = 0;
    while (!engine.Done()) {
      const double d = engine.ComputeShortestPath();
      const double frontier = next < all.size() ? all[next].d : 1e100;
      if (d <= frontier + 1e-9) {
        engine.AcceptPath();
        std::string error;
        ASSERT_TRUE(engine.CheckReducedCosts(&error)) << error;
      } else {
        ASSERT_LT(next, all.size());
        engine.InsertEdge(all[next].q, all[next].p, all[next].d);
        ++next;
      }
    }
    const Matching m = engine.BuildMatching();
    std::string error;
    EXPECT_TRUE(ValidateMatching(problem, m, &error)) << error;
    EXPECT_NEAR(m.cost(), SolveSspa(problem).matching.cost(), 1e-6) << "seed " << seed;
    // The point of incremental discovery: not all edges were needed.
    EXPECT_LT(metrics.edges_inserted, all.size()) << "seed " << seed;
  }
}

// Fast path: feed globally sorted edges and use FastAssign while legal;
// finish with Dijkstra iterations. Must remain optimal.
TEST(EngineTest, FastPathThenGeneralPhaseOptimal) {
  for (std::uint64_t seed = 60; seed < 68; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 4;
    spec.np = 18;
    spec.k_lo = 1;
    spec.k_hi = 3;
    spec.seed = seed;
    const Problem problem = test::RandomProblem(spec);

    struct E {
      int q, p;
      double d;
    };
    std::vector<E> all;
    for (std::size_t q = 0; q < problem.providers.size(); ++q) {
      for (std::size_t p = 0; p < problem.customers.size(); ++p) {
        all.push_back(E{static_cast<int>(q), static_cast<int>(p),
                        Distance(problem.providers[q].pos, problem.customers[p])});
      }
    }
    std::sort(all.begin(), all.end(), [](const E& a, const E& b) { return a.d < b.d; });

    Metrics metrics;
    IncrementalEngine engine(problem, IncrementalEngine::Config{}, &metrics);
    std::size_t next = 0;
    while (!engine.Done() && engine.fast_mode() && next < all.size()) {
      const auto& e = all[next++];
      const int eid = engine.InsertEdge(e.q, e.p, e.d);
      if (engine.CustomerResidual(e.p) > 0) {
        EXPECT_GT(engine.FastAssign(eid), 0);
        std::string error;
        ASSERT_TRUE(engine.CheckReducedCosts(&error)) << error << " seed " << seed;
      }
    }
    while (!engine.Done()) {
      const double d = engine.ComputeShortestPath();
      const double frontier = next < all.size() ? all[next].d : 1e100;
      if (d <= frontier + 1e-9) {
        engine.AcceptPath();
        std::string error;
        ASSERT_TRUE(engine.CheckReducedCosts(&error)) << error;
      } else {
        ASSERT_LT(next, all.size());
        engine.InsertEdge(all[next].q, all[next].p, all[next].d);
        ++next;
      }
    }
    EXPECT_GT(metrics.fast_path_assigns, 0u);
    const Matching m = engine.BuildMatching();
    EXPECT_NEAR(m.cost(), SolveSspa(problem).matching.cost(), 1e-6) << "seed " << seed;
  }
}

TEST(EngineTest, ProviderBoundIsZeroUntilFull) {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 2}};
  problem.customers = {Point{1, 0}, Point{2, 0}, Point{3, 0}};
  Metrics metrics;
  IncrementalEngine engine(problem, IncrementalEngine::Config{}, &metrics);
  for (int p = 0; p < 3; ++p) {
    engine.InsertEdge(0, p, Distance(problem.providers[0].pos, problem.customers[p]));
  }
  EXPECT_DOUBLE_EQ(engine.ProviderBound(0), 0.0);
  engine.ComputeShortestPath();
  engine.AcceptPath();
  EXPECT_FALSE(engine.IsProviderFull(0));
  EXPECT_DOUBLE_EQ(engine.ProviderBound(0), 0.0);
  engine.ComputeShortestPath();
  engine.AcceptPath();
  EXPECT_TRUE(engine.IsProviderFull(0));
  EXPECT_TRUE(engine.Done());
}

TEST(EngineTest, WeightedCustomersViaGeneralPhase) {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 3}, Provider{{10, 0}, 3}};
  problem.customers = {Point{1, 0}, Point{9, 0}};
  problem.weights = {4, 1};
  const Matching m = RunEngineAllEdges(problem, true, true);
  std::string error;
  EXPECT_TRUE(ValidateMatching(problem, m, &error)) << error;
  EXPECT_NEAR(m.cost(), SolveWithNetworkOracle(problem).cost(), 1e-6);
}

TEST(EngineTest, GammaZeroInstances) {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 3}};
  Metrics metrics;
  IncrementalEngine engine(problem, IncrementalEngine::Config{}, &metrics);
  EXPECT_TRUE(engine.Done());
  EXPECT_EQ(engine.BuildMatching().size(), 0);
}

}  // namespace
}  // namespace cca
