// SSPA baseline tests: paper worked example, optimality against oracles,
// weighted customers, metric sanity.
#include <gtest/gtest.h>

#include "flow/oracle.h"
#include "flow/sspa.h"
#include "test_util.h"

namespace cca {
namespace {

TEST(SspaTest, PaperFigure2Example) {
  // Collinear embedding of the paper's Figure 2: q1.k=1, q2.k=2,
  // d(q1,p1)=4, d(q1,p2)=3, d(q2,p2)=7. The greedy first path (q1,p2) must
  // be rerouted by the second augmentation, as in the paper's walk-through.
  Problem problem;
  problem.providers = {Provider{{0.0, 0.0}, 1}, Provider{{10.0, 0.0}, 2}};
  problem.customers = {Point{-4.0, 0.0}, Point{3.0, 0.0}};
  const SspaResult result = SolveSspa(problem);
  // gamma = min(2, 3) = 2 augmenting iterations; optimal matching is
  // (q1,p1) + (q2,p2) with cost 11 (paper Section 2.2 walk-through).
  EXPECT_EQ(result.matching.size(), 2);
  EXPECT_DOUBLE_EQ(result.matching.cost(), 11.0);
  EXPECT_EQ(result.conceptual_edges, 4u);
  bool q1_p1 = false, q2_p2 = false;
  for (const auto& pair : result.matching.pairs) {
    if (pair.provider == 0 && pair.customer == 0) q1_p1 = true;
    if (pair.provider == 1 && pair.customer == 1) q2_p2 = true;
  }
  EXPECT_TRUE(q1_p1);
  EXPECT_TRUE(q2_p2);
}

TEST(SspaTest, SecondPathReroutesThroughResidualEdge) {
  // Instance where the optimal solution requires undoing a greedy choice:
  // p0 sits between q0 and q1; q0 must give p0 up.
  Problem problem;
  problem.providers = {Provider{{0, 0}, 1}, Provider{{100, 0}, 1}};
  problem.customers = {Point{45, 0}, Point{10, 0}};
  // Greedy by closest pair: (q0,p1)=10 then (q1,p0)=55: total 65.
  // Optimal: (q0,p1)=10, (q1,p0)=55 -> same here. Make it interesting:
  problem.customers = {Point{45, 0}, Point{55, 0}};
  // Greedy: (q0,p0)=45, then (q1,p1)=45: total 90. Also optimal... choose
  // an asymmetric instance instead:
  problem.providers = {Provider{{0, 0}, 1}, Provider{{60, 0}, 1}};
  problem.customers = {Point{20, 0}, Point{30, 0}};
  // Options: q0-p0 + q1-p1 = 20 + 30 = 50; q0-p1 + q1-p0 = 30 + 40 = 70.
  const SspaResult result = SolveSspa(problem);
  EXPECT_DOUBLE_EQ(result.matching.cost(), 50.0);
  EXPECT_TRUE(IsOptimalMatching(problem, result.matching));
}

struct SspaCase {
  std::size_t nq;
  std::size_t np;
  std::int32_t k_lo;
  std::int32_t k_hi;
  std::uint64_t seed;
};

class SspaRandomTest : public ::testing::TestWithParam<SspaCase> {};

TEST_P(SspaRandomTest, OptimalAndValid) {
  const auto& c = GetParam();
  test::InstanceSpec spec;
  spec.nq = c.nq;
  spec.np = c.np;
  spec.k_lo = c.k_lo;
  spec.k_hi = c.k_hi;
  spec.seed = c.seed;
  const Problem problem = test::RandomProblem(spec);
  const SspaResult result = SolveSspa(problem);
  std::string error;
  EXPECT_TRUE(ValidateMatching(problem, result.matching, &error)) << error;
  EXPECT_TRUE(IsOptimalMatching(problem, result.matching));
  // Cross-check the cost against the independent network solver.
  const Matching oracle = SolveWithNetworkOracle(problem);
  EXPECT_NEAR(result.matching.cost(), oracle.cost(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, SspaRandomTest,
    ::testing::Values(SspaCase{2, 10, 1, 2, 1},     // scarce capacity
                      SspaCase{4, 20, 10, 10, 2},   // abundant capacity
                      SspaCase{5, 25, 5, 5, 3},     // sum k == |P|
                      SspaCase{3, 30, 1, 6, 4},     // mixed
                      SspaCase{8, 40, 2, 8, 5},     //
                      SspaCase{1, 15, 7, 7, 6},     // single provider
                      SspaCase{10, 10, 1, 1, 7},    // perfect matching
                      SspaCase{6, 18, 2, 4, 8}));

TEST(SspaTest, WeightedCustomersMatchOracle) {
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 4;
    spec.np = 8;
    spec.k_lo = 2;
    spec.k_hi = 8;
    spec.seed = seed;
    Problem problem = test::RandomProblem(spec);
    Rng rng(seed);
    problem.weights.resize(problem.customers.size());
    for (auto& w : problem.weights) w = static_cast<std::int32_t>(rng.UniformInt(1, 4));
    const SspaResult result = SolveSspa(problem);
    std::string error;
    EXPECT_TRUE(ValidateMatching(problem, result.matching, &error)) << error;
    const Matching oracle = SolveWithNetworkOracle(problem);
    EXPECT_NEAR(result.matching.cost(), oracle.cost(), 1e-6) << "seed " << seed;
  }
}

TEST(SspaTest, ZeroCapacityProvidersIgnored) {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 0}, Provider{{100, 0}, 2}};
  problem.customers = {Point{1, 0}, Point{2, 0}};
  const SspaResult result = SolveSspa(problem);
  EXPECT_EQ(result.matching.size(), 2);
  for (const auto& pair : result.matching.pairs) EXPECT_EQ(pair.provider, 1);
}

TEST(SspaTest, EmptyCustomerSet) {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 3}};
  const SspaResult result = SolveSspa(problem);
  EXPECT_EQ(result.matching.size(), 0);
}

TEST(SspaTest, MetricsPopulated) {
  test::InstanceSpec spec;
  spec.nq = 4;
  spec.np = 40;
  spec.seed = 9;
  const Problem problem = test::RandomProblem(spec);
  const SspaResult result = SolveSspa(problem);
  EXPECT_EQ(result.conceptual_edges, 4u * 40u);
  EXPECT_GT(result.metrics.dijkstra_runs, 0u);
  EXPECT_EQ(result.metrics.augmentations, result.metrics.dijkstra_runs);
  EXPECT_GE(result.metrics.dijkstra_pops, result.metrics.dijkstra_runs);
}

// Successive shortest path costs are non-decreasing, so the matching cost
// must be convex in gamma: solving prefixes cannot cost more per unit.
TEST(SspaTest, CostMonotoneInCapacity) {
  test::InstanceSpec spec;
  spec.nq = 3;
  spec.np = 30;
  spec.k_lo = 2;
  spec.k_hi = 2;
  spec.seed = 11;
  Problem problem = test::RandomProblem(spec);
  const double cost_small = SolveSspa(problem).matching.cost();
  for (auto& q : problem.providers) q.capacity = 4;
  const double cost_large = SolveSspa(problem).matching.cost();
  // More capacity => larger gamma => strictly more assigned pairs => cost
  // can only grow (every pair has non-negative distance).
  EXPECT_GE(cost_large, cost_small - 1e-9);
}

}  // namespace
}  // namespace cca
