// Edge-case and metric-contract tests for the exact solver drivers.
#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/greedy.h"
#include "flow/sspa.h"
#include "test_util.h"

namespace cca {
namespace {

TEST(RiaEdgeTest, ThetaLargerThanWorldStillWorks) {
  test::InstanceSpec spec;
  spec.nq = 4;
  spec.np = 30;
  spec.seed = 5;
  const Problem problem = test::RandomProblem(spec);
  auto db = test::MakeDb(problem);
  ExactConfig config;
  config.theta = 1e7;  // single range search grabs everything
  const ExactResult r = SolveRia(problem, db.get(), config);
  EXPECT_NEAR(r.matching.cost(), SolveSspa(problem).matching.cost(), 1e-6);
  // One batch: exactly |Q| range searches.
  EXPECT_EQ(r.metrics.range_searches, problem.providers.size());
  // The whole bipartite graph was materialised.
  EXPECT_EQ(r.metrics.edges_inserted, problem.providers.size() * problem.customers.size());
}

TEST(RiaEdgeTest, SmallThetaMeansManyRangeSearches) {
  test::InstanceSpec spec;
  spec.nq = 3;
  spec.np = 40;
  spec.seed = 6;
  const Problem problem = test::RandomProblem(spec);
  auto db = test::MakeDb(problem);
  ExactConfig coarse;
  coarse.theta = 200.0;
  ExactConfig fine;
  fine.theta = 10.0;
  const ExactResult a = SolveRia(problem, db.get(), coarse);
  const ExactResult b = SolveRia(problem, db.get(), fine);
  EXPECT_LT(a.metrics.range_searches, b.metrics.range_searches);
  // Finer annuli discover fewer superfluous edges.
  EXPECT_LE(b.metrics.edges_inserted, a.metrics.edges_inserted);
  EXPECT_NEAR(a.matching.cost(), b.matching.cost(), 1e-6);
}

TEST(ExactEdgeTest, ProvidersOutnumberCustomers) {
  // gamma limited by |P|; many providers stay empty.
  test::InstanceSpec spec;
  spec.nq = 30;
  spec.np = 6;
  spec.k_lo = 2;
  spec.k_hi = 3;
  spec.seed = 7;
  const Problem problem = test::RandomProblem(spec);
  auto db = test::MakeDb(problem);
  for (auto solve : {SolveRia, SolveNia, SolveIda}) {
    const ExactResult r = solve(problem, db.get(), ExactConfig{});
    EXPECT_EQ(r.matching.size(), 6);
    std::string error;
    EXPECT_TRUE(ValidateMatching(problem, r.matching, &error)) << error;
  }
}

TEST(ExactEdgeTest, SingleCustomerSingleProvider) {
  Problem problem;
  problem.providers = {Provider{{10, 10}, 1}};
  problem.customers = {Point{20, 10}};
  auto db = test::MakeDb(problem);
  for (auto solve : {SolveRia, SolveNia, SolveIda, SolveGreedySm}) {
    const ExactResult r = solve(problem, db.get(), ExactConfig{});
    ASSERT_EQ(r.matching.size(), 1);
    EXPECT_DOUBLE_EQ(r.matching.cost(), 10.0);
  }
}

TEST(ExactEdgeTest, MetricsContracts) {
  test::InstanceSpec spec;
  spec.nq = 6;
  spec.np = 80;
  spec.k_lo = 3;
  spec.k_hi = 6;
  spec.seed = 8;
  const Problem problem = test::RandomProblem(spec);
  auto db = test::MakeDb(problem);
  const ExactResult ida = SolveIda(problem, db.get(), ExactConfig{});
  // Accepted augmentations must cover gamma units.
  EXPECT_GE(ida.metrics.augmentations, 1u);
  EXPECT_EQ(static_cast<std::int64_t>(ida.matching.size()), problem.Gamma());
  // Every inserted edge came from an NN advance in NIA/IDA.
  EXPECT_GE(ida.metrics.nn_searches, ida.metrics.edges_inserted);
  // Fast-path assignments never exceed total augmentations.
  EXPECT_LE(ida.metrics.fast_path_assigns, ida.metrics.augmentations);
  // CPU time was measured.
  EXPECT_GT(ida.metrics.cpu_millis, 0.0);
}

TEST(ExactEdgeTest, DuplicateCustomerPositions) {
  // Ties everywhere: 20 customers on 2 distinct positions.
  Problem problem;
  problem.providers = {Provider{{0, 0}, 8}, Provider{{100, 0}, 8}};
  for (int i = 0; i < 10; ++i) problem.customers.push_back(Point{30, 0});
  for (int i = 0; i < 10; ++i) problem.customers.push_back(Point{70, 0});
  auto db = test::MakeDb(problem);
  const double optimal = SolveSspa(problem).matching.cost();
  for (auto solve : {SolveRia, SolveNia, SolveIda}) {
    const ExactResult r = solve(problem, db.get(), ExactConfig{});
    EXPECT_NEAR(r.matching.cost(), optimal, 1e-6);
    EXPECT_EQ(r.matching.size(), 16);
  }
}

TEST(ExactEdgeTest, ZeroTotalCapacity) {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 0}, Provider{{10, 0}, 0}};
  problem.customers = {Point{1, 1}, Point{2, 2}};
  auto db = test::MakeDb(problem);
  for (auto solve : {SolveRia, SolveNia, SolveIda}) {
    const ExactResult r = solve(problem, db.get(), ExactConfig{});
    EXPECT_EQ(r.matching.size(), 0);
  }
}

}  // namespace
}  // namespace cca
