// Unit tests for the Status / StatusOr error model (src/common/status.h):
// the always-on boundary contract the storage layer and the serving engine
// report rejections through.
#include "common/status.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace cca {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(OkStatus().code(), StatusCode::kOk);
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const struct {
    Status status;
    StatusCode code;
    const char* name;
  } cases[] = {
      {InvalidArgumentError("bad arg"), StatusCode::kInvalidArgument, "INVALID_ARGUMENT"},
      {OutOfRangeError("past end"), StatusCode::kOutOfRange, "OUT_OF_RANGE"},
      {FailedPreconditionError("not ready"), StatusCode::kFailedPrecondition,
       "FAILED_PRECONDITION"},
      {UnavailableError("try again"), StatusCode::kUnavailable, "UNAVAILABLE"},
      {DataLossError("crc mismatch"), StatusCode::kDataLoss, "DATA_LOSS"},
      {DeadlineExceededError("too slow"), StatusCode::kDeadlineExceeded, "DEADLINE_EXCEEDED"},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
    EXPECT_EQ(c.status.ToString().rfind(c.name, 0), 0u) << c.status.ToString();
    EXPECT_STREQ(StatusCodeName(c.code), c.name);
  }
}

TEST(StatusTest, ReturnIfErrorPropagatesAndFallsThrough) {
  const auto passthrough = [](Status inner) -> Status {
    CCA_RETURN_IF_ERROR(inner);
    return OkStatus();
  };
  EXPECT_TRUE(passthrough(OkStatus()).ok());
  const Status propagated = passthrough(DataLossError("torn page"));
  EXPECT_EQ(propagated.code(), StatusCode::kDataLoss);
  EXPECT_EQ(propagated.message(), "torn page");
}

TEST(StatusOrTest, HoldsValueOnSuccess) {
  const StatusOr<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok.status().ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(*ok, 42);

  StatusOr<std::vector<int>> vec = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(vec.ok());
  EXPECT_EQ(vec->size(), 3u);
  const std::vector<int> moved = std::move(vec).value();
  EXPECT_EQ(moved.size(), 3u);
}

TEST(StatusOrTest, HoldsStatusOnError) {
  const StatusOr<int> err = InvalidArgumentError("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.status().message(), "nope");
}

TEST(StatusOrTest, OkStatusWithoutValueIsDowngraded) {
  // "Success with no payload" must never be dereferenceable.
  const StatusOr<int> bad = OkStatus();
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  const StatusOr<int> err = UnavailableError("injected fault");
  EXPECT_DEATH(static_cast<void>(err.value()), "injected fault");
}

}  // namespace
}  // namespace cca
