// Cross-backend equivalence for the discovery layer: RIA/NIA/IDA must
// produce cost-identical matchings whether candidates come from the R-tree
// (plain or grouped-ANN) or from grid ring cursors, across uniform,
// clustered and skewed instances, unit and weighted. Plus the node-access
// regression guard: at |P|=10k memory-resident, the grid backend must do
// >= 5x less index work than independent R-tree NN iterators.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "core/matching.h"
#include "test_util.h"

namespace cca {
namespace {

ExactConfig BackendConfig(DiscoveryBackend backend) {
  ExactConfig config;
  config.discovery_backend = backend;
  return config;
}

void ExpectCostEqual(const Problem& problem, const ExactResult& a, const ExactResult& b,
                     const std::string& label) {
  std::string error;
  EXPECT_TRUE(ValidateMatching(problem, a.matching, &error)) << label << ": " << error;
  EXPECT_TRUE(ValidateMatching(problem, b.matching, &error)) << label << ": " << error;
  EXPECT_EQ(a.matching.size(), b.matching.size()) << label;
  EXPECT_NEAR(a.matching.cost(), b.matching.cost(),
              1e-6 * std::max(1.0, a.matching.cost()))
      << label;
}

void ExpectBackendsEquivalent(const Problem& problem, const std::string& label) {
  auto db = test::MakeDb(problem);
  const ExactConfig rtree = BackendConfig(DiscoveryBackend::kAuto);  // grouped ANN
  const ExactConfig grid = BackendConfig(DiscoveryBackend::kGrid);
  const ExactConfig batched = BackendConfig(DiscoveryBackend::kGridBatched);

  const ExactResult ida_rtree = SolveIda(problem, db.get(), rtree);
  const ExactResult ida_grid = SolveIda(problem, db.get(), grid);
  const ExactResult ida_batched = SolveIda(problem, db.get(), batched);
  ExpectCostEqual(problem, ida_rtree, ida_grid, label + " ida");
  ExpectCostEqual(problem, ida_rtree, ida_batched, label + " ida batched");
  // The grid backends read the memory-resident point array only.
  EXPECT_EQ(ida_grid.metrics.node_accesses, 0u) << label;
  EXPECT_GT(ida_grid.metrics.grid_cursor_cells, 0u) << label;
  EXPECT_EQ(ida_grid.metrics.index_node_accesses, ida_grid.metrics.grid_cursor_cells) << label;
  EXPECT_EQ(ida_batched.metrics.node_accesses, 0u) << label;
  EXPECT_EQ(ida_batched.metrics.grid_cursor_cells,
            ida_batched.metrics.shared_frontier_cell_fetches)
      << label;
  EXPECT_LE(ida_batched.metrics.grid_cursor_cells, ida_grid.metrics.grid_cursor_cells) << label;

  const ExactResult nia_rtree = SolveNia(problem, db.get(), rtree);
  const ExactResult nia_grid = SolveNia(problem, db.get(), grid);
  const ExactResult nia_batched = SolveNia(problem, db.get(), batched);
  ExpectCostEqual(problem, nia_rtree, nia_grid, label + " nia");
  ExpectCostEqual(problem, nia_rtree, nia_batched, label + " nia batched");

  const ExactResult ria_rtree = SolveRia(problem, db.get(), rtree);
  const ExactResult ria_grid = SolveRia(problem, db.get(), grid);
  const ExactResult ria_batched = SolveRia(problem, db.get(), batched);
  ExpectCostEqual(problem, ria_rtree, ria_grid, label + " ria");
  ExpectCostEqual(problem, ria_rtree, ria_batched, label + " ria batched");
  EXPECT_EQ(ria_grid.metrics.node_accesses, 0u) << label;
  // All backends issue one (annular) range search per provider per batch.
  EXPECT_EQ(ria_rtree.metrics.range_searches, ria_grid.metrics.range_searches) << label;
  EXPECT_EQ(ria_rtree.metrics.range_searches, ria_batched.metrics.range_searches) << label;
}

TEST(BackendEquivalence, UniformUnit) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 6 + seed;
    spec.np = 80 + 20 * seed;
    spec.k_lo = 1;
    spec.k_hi = 4;
    spec.seed = seed;
    ExpectBackendsEquivalent(test::RandomProblem(spec), "uniform seed " + std::to_string(seed));
  }
}

TEST(BackendEquivalence, ClusteredUnit) {
  for (std::uint64_t seed = 10; seed <= 12; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 8;
    spec.np = 150;
    spec.k_lo = 2;
    spec.k_hi = 8;
    spec.clustered_q = true;
    spec.clustered_p = true;
    spec.seed = seed;
    ExpectBackendsEquivalent(test::RandomProblem(spec), "clustered seed " + std::to_string(seed));
  }
}

TEST(BackendEquivalence, SkewedUnit) {
  for (std::uint64_t seed = 20; seed <= 22; ++seed) {
    Problem problem;
    Rng rng(seed * 5 + 2);
    for (const auto& pos : test::SkewedPoints(7, seed * 3 + 1)) {
      problem.providers.push_back(
          Provider{pos, static_cast<std::int32_t>(rng.UniformInt(1, 5))});
    }
    problem.customers = test::SkewedPoints(110, seed * 7 + 3);
    ExpectBackendsEquivalent(problem, "skewed seed " + std::to_string(seed));
  }
}

TEST(BackendEquivalence, WeightedCustomers) {
  for (std::uint64_t seed = 30; seed <= 32; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 6;
    spec.np = 60;
    spec.k_lo = 3;
    spec.k_hi = 10;
    spec.seed = seed;
    Problem problem = test::RandomProblem(spec);
    Rng rng(seed);
    problem.weights.resize(problem.customers.size());
    for (auto& w : problem.weights) w = static_cast<std::int32_t>(rng.UniformInt(1, 4));
    ExpectBackendsEquivalent(problem, "weighted seed " + std::to_string(seed));
  }
}

TEST(BackendEquivalence, PlainBackendAndGreedyStillWork) {
  test::InstanceSpec spec;
  spec.nq = 6;
  spec.np = 90;
  spec.seed = 55;
  const Problem problem = test::RandomProblem(spec);
  auto db = test::MakeDb(problem);
  const ExactResult plain = SolveIda(problem, db.get(), BackendConfig(DiscoveryBackend::kRTreePlain));
  const ExactResult grid = SolveIda(problem, db.get(), BackendConfig(DiscoveryBackend::kGrid));
  ExpectCostEqual(problem, plain, grid, "plain vs grid");
  const double g1 =
      SolveGreedySm(problem, db.get(), BackendConfig(DiscoveryBackend::kRTreePlain)).matching.cost();
  const double g2 =
      SolveGreedySm(problem, db.get(), BackendConfig(DiscoveryBackend::kGrid)).matching.cost();
  EXPECT_NEAR(g1, g2, 1e-9);
}

// The acceptance-bar regression guard: grid-backed IDA at |P|=10k
// (memory-resident customers) must do >= 5x fewer index accesses (grid
// cells fetched) than PlainNnSource's R-tree node reads, with identical
// cost.
TEST(BackendEquivalence, GridCutsIndexAccessesAtTenThousandCustomers) {
  test::InstanceSpec spec;
  spec.nq = 100;
  spec.np = 10000;
  spec.k_lo = 10;
  spec.k_hi = 10;
  spec.seed = 123;
  const Problem problem = test::RandomProblem(spec);
  auto db = test::MakeDb(problem);  // buffer covers the whole tree

  const ExactResult plain =
      SolveIda(problem, db.get(), BackendConfig(DiscoveryBackend::kRTreePlain));
  const ExactResult grid = SolveIda(problem, db.get(), BackendConfig(DiscoveryBackend::kGrid));
  ExpectCostEqual(problem, plain, grid, "10k regression");
  EXPECT_GT(plain.metrics.index_node_accesses, 0u);
  EXPECT_GT(grid.metrics.index_node_accesses, 0u);
  EXPECT_LE(grid.metrics.index_node_accesses * 5, plain.metrics.index_node_accesses)
      << "grid cells=" << grid.metrics.index_node_accesses
      << " rtree nodes=" << plain.metrics.index_node_accesses;
}

}  // namespace
}  // namespace cca
