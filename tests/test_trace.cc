// Observability-layer tests: the log-scale latency Histogram
// (src/common/histogram.h), the AssignmentEngine stats surface
// (src/runtime/engine.h), and — in tracing-enabled builds — the span
// tracer itself (src/common/trace.h): nesting order, args, and the
// thread-local buffer drain at QueryRunner batch joins (the TSan CI job
// builds this suite with tracing ON, certifying the layer race-free).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/trace.h"
#include "runtime/engine.h"
#include "runtime/query_runner.h"
#include "test_util.h"

namespace cca {
namespace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

// The sorted-vector reference the benches used before the histogram: value
// at rank floor(p * (n - 1)).
double ReferencePercentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

TEST(HistogramTest, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, BucketSchemeInvariants) {
  // Every positive finite value lands in a bucket whose upper edge is at
  // least the value and within 12.5% of it (the <= 1/kSubBuckets relative
  // width contract the percentile accuracy rests on).
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    // Log-uniform across the histogram's covered range.
    const double exponent = -18.0 + 46.0 * rng.NextDouble();
    const double v = std::pow(2.0, exponent) * (1.0 + rng.NextDouble());
    const std::size_t b = Histogram::BucketIndex(v);
    ASSERT_LT(b, Histogram::kNumBuckets);
    const double hi = Histogram::BucketUpperEdge(b);
    EXPECT_GE(hi, v * (1.0 - 1e-12));
    EXPECT_LE(hi, v * (1.0 + 1.0 / Histogram::kSubBuckets + 1e-12));
  }
  // Bucket index is monotone in the value: edges sort.
  double prev_edge = 0.0;
  for (std::size_t b = 1; b + 1 < Histogram::kNumBuckets; ++b) {
    const double edge = Histogram::BucketUpperEdge(b);
    EXPECT_GT(edge, prev_edge) << "bucket " << b;
    prev_edge = edge;
  }
  // Out-of-range and degenerate values clamp instead of indexing out.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-3.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, PercentileWithinOneBucketOfSortedReference) {
  // The acceptance contract: any percentile from the histogram is within
  // one bucket (<= 12.5% relative) of the exact sorted-vector answer, and
  // never below it (the histogram reports the rank bucket's upper edge).
  Rng rng(99);
  std::vector<double> samples;
  Histogram h;
  for (int i = 0; i < 5000; ++i) {
    // Heavy-ish tail, like real resolve latencies: exp of a uniform.
    const double v = 0.05 * std::exp(4.0 * rng.NextDouble());
    samples.push_back(v);
    h.Record(v);
  }
  for (const double p : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double ref = ReferencePercentile(samples, p);
    const double got = h.Percentile(p);
    EXPECT_GE(got, ref * (1.0 - 1e-12)) << "p=" << p;
    EXPECT_LE(got, ref * (1.0 + 1.0 / Histogram::kSubBuckets + 1e-12)) << "p=" << p;
  }
  // Extremes are exact (tracked on the side, and percentiles clamp to them).
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), *std::min_element(samples.begin(), samples.end()));
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), *std::max_element(samples.begin(), samples.end()));
}

TEST(HistogramTest, SingleValueIsExactEverywhere) {
  Histogram h;
  h.Record(3.25);
  for (const double p : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(p), 3.25) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(h.Mean(), 3.25);
  EXPECT_DOUBLE_EQ(h.Min(), 3.25);
  EXPECT_DOUBLE_EQ(h.Max(), 3.25);
}

TEST(HistogramTest, MergeMatchesRecordingEverythingInOne) {
  Rng rng(7);
  Histogram a, b, merged_ref;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble() * 10.0;
    (i % 2 == 0 ? a : b).Record(v);
    merged_ref.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), merged_ref.Count());
  EXPECT_DOUBLE_EQ(a.Sum(), merged_ref.Sum());
  EXPECT_DOUBLE_EQ(a.Min(), merged_ref.Min());
  EXPECT_DOUBLE_EQ(a.Max(), merged_ref.Max());
  for (const double p : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), merged_ref.Percentile(p)) << "p=" << p;
  }
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(1.0);
  h.Record(2.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
}

// ---------------------------------------------------------------------------
// AssignmentEngine::Stats
// ---------------------------------------------------------------------------

TEST(EngineStatsTest, SnapshotTracksChurnAndResolves) {
  AssignmentEngine engine;
  EXPECT_EQ(engine.stats().resolves, 0u);

  const std::vector<Point> providers = test::RandomPoints(4, 21);
  const std::vector<Point> customers = test::RandomPoints(30, 22);
  std::vector<AssignmentEngine::Id> customer_ids;
  for (const Point& pos : providers) engine.InsertProvider(pos, 10);
  for (const Point& pos : customers) customer_ids.push_back(engine.InsertCustomer(pos).value());

  AssignmentEngine::Stats s = engine.stats();
  EXPECT_EQ(s.providers_inserted, 4u);
  EXPECT_EQ(s.customers_inserted, 30u);
  EXPECT_EQ(s.customers_removed, 0u);

  // First resolve is cold (nothing to warm from); units == all customers
  // (ample capacity, unit weights).
  Metrics expected_totals;
  const auto first = engine.Resolve();
  expected_totals.Merge(first.metrics);
  s = engine.stats();
  EXPECT_EQ(s.resolves, 1u);
  EXPECT_EQ(s.warm_resolves, 0u);
  EXPECT_EQ(s.units_matched, 30u);
  EXPECT_EQ(s.resolve_latency_ms.Count(), 1u);

  // Churn + two warm resolves: every counter keeps accumulating, the
  // totals ledger matches the per-outcome metrics exactly, and the
  // adoption ratio stays a valid fraction.
  for (int round = 0; round < 2; ++round) {
    engine.RemoveCustomer(customer_ids.back());
    customer_ids.pop_back();
    customer_ids.push_back(
        engine.InsertCustomer(test::RandomPoints(1, 100 + static_cast<std::uint64_t>(round))[0])
            .value());
    const auto out = engine.Resolve();
    EXPECT_TRUE(out.warm);
    expected_totals.Merge(out.metrics);
  }
  s = engine.stats();
  EXPECT_EQ(s.resolves, 3u);
  EXPECT_EQ(s.warm_resolves, 2u);
  EXPECT_EQ(s.customers_inserted, 32u);
  EXPECT_EQ(s.customers_removed, 2u);
  EXPECT_EQ(s.providers_removed, 0u);
  EXPECT_EQ(s.units_matched, 90u);  // 30 per resolve, 3 resolves
  EXPECT_EQ(s.resolve_latency_ms.Count(), 3u);
  EXPECT_GT(s.resolve_latency_ms.Max(), 0.0);
  EXPECT_EQ(s.totals.dijkstra_pops, expected_totals.dijkstra_pops);
  EXPECT_EQ(s.totals.augmentations, expected_totals.augmentations);
  EXPECT_EQ(s.totals.warm_units_adopted, expected_totals.warm_units_adopted);
  EXPECT_EQ(s.warm_units_adopted, expected_totals.warm_units_adopted);
  EXPECT_GE(s.warm_adoption_ratio(), 0.0);
  EXPECT_LE(s.warm_adoption_ratio(), 1.0);
  // Warm starts on small churn must actually adopt: most of the 60 units
  // matched by the two warm resolves were carried over, not re-augmented.
  EXPECT_GT(s.warm_units_adopted, 40u);

  // A snapshot is a copy: mutating the engine afterwards must not change it.
  const AssignmentEngine::Stats frozen = engine.stats();
  engine.InsertCustomer(Point{1.0, 2.0});
  EXPECT_EQ(frozen.customers_inserted, 32u);
  EXPECT_EQ(engine.stats().customers_inserted, 33u);
}

TEST(EngineStatsTest, ToJsonCarriesTheHeadlineFields) {
  AssignmentEngine engine;
  for (const Point& pos : test::RandomPoints(3, 31)) engine.InsertProvider(pos, 8);
  for (const Point& pos : test::RandomPoints(12, 32)) engine.InsertCustomer(pos);
  engine.Resolve();
  engine.Resolve();
  const std::string json = engine.stats().ToJson();
  for (const char* key :
       {"\"resolves\": 2", "\"warm_resolves\": 1", "\"customers_inserted\": 12",
        "\"providers_inserted\": 3", "\"units_matched\": 24", "\"warm_adoption_ratio\"",
        "\"dijkstra_pops\"", "\"resolve_ms\"", "\"p50\"", "\"p99\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing from " << json;
  }
}

// ---------------------------------------------------------------------------
// Span tracer (only in tracing-enabled builds: the default build compiles
// the macros to nothing, which is itself covered by the bench A/B in CI)
// ---------------------------------------------------------------------------
#if CCA_TRACING_ENABLED

TEST(TraceTest, SpansNestAndCarryArgs) {
  trace::Drain();  // discard anything earlier tests recorded
  trace::Start();
  {
    CCA_TRACE_SPAN_VAR(outer, "test.outer");
    outer.Arg("round", 7);
    { CCA_TRACE_SPAN("test.inner"); }
    { CCA_TRACE_SPAN("test.inner"); }
  }
  trace::Stop();
  const std::vector<trace::Event> events = trace::Drain();
  ASSERT_EQ(events.size(), 3u);

  // RAII close order: the two inners complete before the outer.
  EXPECT_STREQ(events[0].name, "test.inner");
  EXPECT_STREQ(events[1].name, "test.inner");
  EXPECT_STREQ(events[2].name, "test.outer");
  const trace::Event& outer = events[2];
  EXPECT_EQ(outer.depth, 0u);
  ASSERT_EQ(outer.num_args, 1u);
  EXPECT_STREQ(outer.args[0].key, "round");
  EXPECT_EQ(outer.args[0].value, 7u);
  for (int i = 0; i < 2; ++i) {
    const trace::Event& inner = events[static_cast<std::size_t>(i)];
    EXPECT_EQ(inner.depth, 1u);  // lexically inside the outer span
    EXPECT_EQ(inner.tid, outer.tid);
    // Time containment: inner spans start and end within the outer span.
    EXPECT_GE(inner.start_ns, outer.start_ns);
    EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
  }
  // The second inner starts at or after the first ended (sequential scopes).
  EXPECT_GE(events[1].start_ns, events[0].start_ns + events[0].dur_ns);
}

TEST(TraceTest, StoppedTracerRecordsNothing) {
  trace::Drain();
  {
    CCA_TRACE_SPAN_VAR(span, "test.ignored");
    span.Arg("k", 1);
  }
  EXPECT_TRUE(trace::Drain().empty());
}

// Worker threads in a QueryRunner pool outlive the batch; the batch-join
// flush must make their spans visible immediately after Run() returns —
// while the pool is still alive. This is also the TSan certification of
// the thread-local-buffer design: 8 workers recording concurrently, main
// thread draining at the join.
TEST(TraceTest, QueryRunnerBatchJoinDrainsWorkerBuffers) {
  const std::vector<Point> customers = test::RandomPoints(64, 5);
  std::vector<QuerySpec> batch;
  for (int i = 0; i < 32; ++i) {
    QuerySpec spec;
    spec.solver = QuerySolver::kSspa;
    spec.problem.customers = customers;
    Rng rng(static_cast<std::uint64_t>(i) + 1);
    for (const Point& pos : test::RandomPoints(4, static_cast<std::uint64_t>(i) * 3 + 11)) {
      spec.problem.providers.push_back(
          Provider{pos, static_cast<std::int32_t>(rng.UniformInt(2, 5))});
    }
    batch.push_back(std::move(spec));
  }
  SharedIndex index(customers);
  QueryRunner runner(&index, 8);

  trace::Drain();
  trace::Start();
  runner.Run(batch);
  trace::Stop();
  // Drained before the runner (and its worker threads) is destroyed: the
  // spans must already be in the sink via the batch-join flush.
  const std::vector<trace::Event> events = trace::Drain();

  std::size_t queries = 0, solves = 0;
  for (const trace::Event& e : events) {
    if (std::string_view(e.name) == "runner.query") ++queries;
    if (std::string_view(e.name) == "sspa.solve") ++solves;
  }
  EXPECT_EQ(queries, batch.size());
  EXPECT_EQ(solves, batch.size());
}

#endif  // CCA_TRACING_ENABLED

}  // namespace
}  // namespace cca
