// Oracle tests: brute force, network-based solver, Klein certificate.
#include <gtest/gtest.h>

#include "flow/oracle.h"
#include "test_util.h"

namespace cca {
namespace {

// A collinear embedding of the paper's Figure 2 example: q1.k=1, q2.k=2,
// d(q1,p1)=4, d(q1,p2)=3, d(q2,p2)=7 (d(q2,p1)=14 instead of 10, which
// affects no decision). SSPA first matches (q1,p2) at cost 3, then the
// second augmenting path reroutes through the residual edge p2->q1,
// yielding the paper's optimal matching (q1,p1),(q2,p2) of cost 11.
Problem TwoByTwo() {
  Problem problem;
  problem.providers = {Provider{{0.0, 0.0}, 1}, Provider{{10.0, 0.0}, 2}};
  problem.customers = {Point{-4.0, 0.0}, Point{3.0, 0.0}};
  EXPECT_DOUBLE_EQ(Distance(problem.providers[0].pos, problem.customers[0]), 4.0);
  EXPECT_DOUBLE_EQ(Distance(problem.providers[0].pos, problem.customers[1]), 3.0);
  EXPECT_DOUBLE_EQ(Distance(problem.providers[1].pos, problem.customers[1]), 7.0);
  EXPECT_DOUBLE_EQ(Distance(problem.providers[1].pos, problem.customers[0]), 14.0);
  return problem;
}

TEST(BruteForceTest, TrivialOneToOne) {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 1}};
  problem.customers = {Point{1, 0}, Point{5, 0}};
  const Matching m = BruteForceOptimal(problem);
  ASSERT_EQ(m.pairs.size(), 1u);
  EXPECT_EQ(m.pairs[0].customer, 0);
  EXPECT_DOUBLE_EQ(m.cost(), 1.0);
}

TEST(BruteForceTest, CapacityForcesSplit) {
  // Two customers next to q0 but q0.k = 1: the second goes to q1.
  Problem problem;
  problem.providers = {Provider{{0, 0}, 1}, Provider{{10, 0}, 1}};
  problem.customers = {Point{1, 0}, Point{2, 0}};
  const Matching m = BruteForceOptimal(problem);
  EXPECT_EQ(m.size(), 2);
  // q0 takes p0 (1 < 2), q1 takes p1 (8).
  EXPECT_DOUBLE_EQ(m.cost(), 1.0 + 8.0);
  std::string error;
  EXPECT_TRUE(ValidateMatching(problem, m, &error)) << error;
}

TEST(BruteForceTest, MoreCapacityThanCustomers) {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 5}};
  problem.customers = {Point{1, 0}, Point{2, 0}, Point{3, 0}};
  const Matching m = BruteForceOptimal(problem);
  EXPECT_EQ(m.size(), 3);
  EXPECT_DOUBLE_EQ(m.cost(), 6.0);
}

TEST(BruteForceTest, MoreCustomersThanCapacity) {
  // gamma = 1: the cheapest single pair must be chosen.
  Problem problem;
  problem.providers = {Provider{{0, 0}, 1}};
  problem.customers = {Point{5, 0}, Point{2, 0}, Point{9, 0}};
  const Matching m = BruteForceOptimal(problem);
  EXPECT_EQ(m.size(), 1);
  EXPECT_DOUBLE_EQ(m.cost(), 2.0);
  EXPECT_EQ(m.pairs[0].customer, 1);
}

TEST(NetworkOracleTest, MatchesBruteForceOnRandomTinyInstances) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 3;
    spec.np = 7;
    spec.k_lo = 1;
    spec.k_hi = 3;
    spec.seed = seed;
    const Problem problem = test::RandomProblem(spec);
    const Matching brute = BruteForceOptimal(problem);
    const Matching net = SolveWithNetworkOracle(problem);
    EXPECT_NEAR(brute.cost(), net.cost(), 1e-6) << "seed " << seed;
    std::string error;
    EXPECT_TRUE(ValidateMatching(problem, net, &error)) << error;
  }
}

TEST(NetworkOracleTest, PaperExample) {
  const Problem problem = TwoByTwo();
  const Matching m = SolveWithNetworkOracle(problem);
  // Optimal: (q1,p1) + (q2,p2) = 4 + 7 = 11 (not 3 + 10 = 13).
  EXPECT_DOUBLE_EQ(m.cost(), 11.0);
}

TEST(NetworkOracleTest, WeightedCustomers) {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 3}, Provider{{10, 0}, 3}};
  problem.customers = {Point{1, 0}, Point{9, 0}};
  problem.weights = {4, 1};
  // gamma = min(5, 6) = 5. Best: q0 takes 3 units of p0, q1 takes 1 unit of
  // p0 (cost 9) and 1 of p1 (cost 1) -- or q1 takes both.
  const Matching m = SolveWithNetworkOracle(problem);
  EXPECT_EQ(m.size(), 5);
  std::string error;
  EXPECT_TRUE(ValidateMatching(problem, m, &error)) << error;
  EXPECT_DOUBLE_EQ(m.cost(), 3.0 * 1.0 + 9.0 + 1.0);
}

TEST(KleinCertificateTest, AcceptsOptimal) {
  const Problem problem = TwoByTwo();
  const Matching m = SolveWithNetworkOracle(problem);
  EXPECT_TRUE(IsOptimalMatching(problem, m));
}

TEST(KleinCertificateTest, RejectsSuboptimalSwap) {
  const Problem problem = TwoByTwo();
  Matching bad;
  bad.Add(0, 1, 1, 3.0);   // q1 <- p2
  bad.Add(1, 0, 1, 14.0);  // q2 <- p1, total 17 > 11
  EXPECT_FALSE(IsOptimalMatching(problem, bad));
}

TEST(KleinCertificateTest, RejectsUndersizedMatching) {
  const Problem problem = TwoByTwo();
  Matching tiny;
  tiny.Add(0, 0, 1, 4.0);
  EXPECT_FALSE(IsOptimalMatching(problem, tiny));  // size 1 < gamma 2
}

TEST(KleinCertificateTest, RejectsCapacityViolation) {
  const Problem problem = TwoByTwo();
  Matching bad;
  bad.Add(0, 0, 1, 4.0);
  bad.Add(0, 1, 1, 3.0);  // q1 has k=1
  EXPECT_FALSE(IsOptimalMatching(problem, bad));
}

TEST(KleinCertificateTest, RandomisedAgreementWithBruteForce) {
  for (std::uint64_t seed = 30; seed < 45; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 3;
    spec.np = 6;
    spec.k_lo = 1;
    spec.k_hi = 4;
    spec.seed = seed;
    const Problem problem = test::RandomProblem(spec);
    const Matching opt = BruteForceOptimal(problem);
    EXPECT_TRUE(IsOptimalMatching(problem, opt)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cca
