// Matching container and validity-checker tests.
#include <gtest/gtest.h>

#include "core/matching.h"

namespace cca {
namespace {

Problem SmallProblem() {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 2}, Provider{{10, 0}, 1}};
  problem.customers = {Point{1, 0}, Point{2, 0}, Point{9, 0}};
  return problem;  // gamma = min(3, 3) = 3
}

TEST(MatchingTest, CostAndSize) {
  Matching m;
  m.Add(0, 0, 1, 1.0);
  m.Add(0, 1, 1, 2.0);
  m.Add(1, 2, 1, 1.0);
  EXPECT_DOUBLE_EQ(m.cost(), 4.0);
  EXPECT_EQ(m.size(), 3);
}

TEST(MatchingTest, WeightedUnitsScaleCost) {
  Matching m;
  m.Add(0, 0, 3, 2.0);
  EXPECT_DOUBLE_EQ(m.cost(), 6.0);
  EXPECT_EQ(m.size(), 3);
}

TEST(MatchingTest, Loads) {
  Matching m;
  m.Add(0, 0, 1, 1.0);
  m.Add(0, 1, 2, 2.0);
  const auto q_loads = m.ProviderLoads(2);
  EXPECT_EQ(q_loads[0], 3);
  EXPECT_EQ(q_loads[1], 0);
  const auto p_loads = m.CustomerLoads(3);
  EXPECT_EQ(p_loads[1], 2);
}

TEST(ValidateMatchingTest, AcceptsValid) {
  const Problem problem = SmallProblem();
  Matching m;
  m.Add(0, 0, 1, 1.0);
  m.Add(0, 1, 1, 2.0);
  m.Add(1, 2, 1, 1.0);
  std::string error;
  EXPECT_TRUE(ValidateMatching(problem, m, &error)) << error;
}

TEST(ValidateMatchingTest, RejectsWrongDistance) {
  const Problem problem = SmallProblem();
  Matching m;
  m.Add(0, 0, 1, 5.0);  // real distance is 1
  m.Add(0, 1, 1, 2.0);
  m.Add(1, 2, 1, 1.0);
  std::string error;
  EXPECT_FALSE(ValidateMatching(problem, m, &error));
  EXPECT_NE(error.find("distance"), std::string::npos);
}

TEST(ValidateMatchingTest, RejectsOverCapacity) {
  const Problem problem = SmallProblem();
  Matching m;
  m.Add(1, 0, 1, 9.0);
  m.Add(1, 1, 1, 8.0);  // provider 1 has k = 1
  m.Add(0, 2, 1, 9.0);
  std::string error;
  EXPECT_FALSE(ValidateMatching(problem, m, &error));
  EXPECT_NE(error.find("capacity"), std::string::npos);
}

TEST(ValidateMatchingTest, RejectsDuplicateCustomer) {
  const Problem problem = SmallProblem();
  Matching m;
  m.Add(0, 0, 1, 1.0);
  m.Add(1, 0, 1, 9.0);  // customer 0 twice
  m.Add(0, 1, 1, 2.0);
  std::string error;
  EXPECT_FALSE(ValidateMatching(problem, m, &error));
}

TEST(ValidateMatchingTest, RejectsUndersized) {
  const Problem problem = SmallProblem();
  Matching m;
  m.Add(0, 0, 1, 1.0);
  std::string error;
  EXPECT_FALSE(ValidateMatching(problem, m, &error));
  EXPECT_NE(error.find("gamma"), std::string::npos);
}

TEST(ValidateMatchingTest, RejectsUnknownIds) {
  const Problem problem = SmallProblem();
  Matching m;
  m.Add(7, 0, 1, 1.0);
  std::string error;
  EXPECT_FALSE(ValidateMatching(problem, m, &error));
}

TEST(ValidateMatchingTest, RejectsNonPositiveUnits) {
  const Problem problem = SmallProblem();
  Matching m;
  m.Add(0, 0, 0, 1.0);
  std::string error;
  EXPECT_FALSE(ValidateMatching(problem, m, &error));
}

TEST(ProblemTest, GammaRegimes) {
  Problem problem = SmallProblem();
  EXPECT_EQ(problem.TotalCapacity(), 3);
  EXPECT_EQ(problem.TotalWeight(), 3);
  EXPECT_EQ(problem.Gamma(), 3);
  problem.providers[0].capacity = 1;  // capacity-scarce
  EXPECT_EQ(problem.Gamma(), 2);
  problem.weights = {2, 2, 2};  // weighted customers
  EXPECT_EQ(problem.TotalWeight(), 6);
  EXPECT_EQ(problem.Gamma(), 2);
}

TEST(ProblemTest, WorldCoversEverything) {
  const Problem problem = SmallProblem();
  const Rect world = problem.World();
  for (const auto& q : problem.providers) EXPECT_TRUE(world.Contains(q.pos));
  for (const auto& p : problem.customers) EXPECT_TRUE(world.Contains(p));
}

}  // namespace
}  // namespace cca
