// Timer tests (src/common/timer.h): monotonicity is the whole contract.
//
// Every latency in the repo — cpu_millis, the serving benches' histograms,
// trace span durations — flows through Timer, so it must be pinned to a
// steady clock: a wall-clock Timer would go backwards under NTP slews and
// produce negative latencies. The compile-time pin is the static_assert on
// Clock::is_steady inside Timer itself; these tests cover the runtime
// behaviour.
#include <gtest/gtest.h>

#include <thread>

#include "common/timer.h"

namespace cca {
namespace {

TEST(TimerTest, ElapsedNeverDecreases) {
  Timer timer;
  double prev = timer.ElapsedMillis();
  EXPECT_GE(prev, 0.0);
  for (int i = 0; i < 1000; ++i) {
    const double now = timer.ElapsedMillis();
    EXPECT_GE(now, prev) << "elapsed time went backwards at iteration " << i;
    prev = now;
  }
}

TEST(TimerTest, MeasuresRealDelay) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = timer.ElapsedMillis();
  // sleep_for may overshoot but never undershoots on a steady clock.
  EXPECT_GE(ms, 20.0);
}

TEST(TimerTest, RestartRezeroes) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double before = timer.ElapsedMillis();
  EXPECT_GE(before, 5.0);
  timer.Restart();
  // After Restart the elapsed time must be (a) small and (b) still
  // monotonic from the new origin.
  const double after = timer.ElapsedMillis();
  EXPECT_LT(after, before);
  EXPECT_GE(timer.ElapsedMillis(), after);
}

}  // namespace
}  // namespace cca
