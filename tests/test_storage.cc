// Paged storage and LRU buffer pool tests, including the failure model:
// always-on bounds checks, per-page CRC32 torn-page detection, and the
// bounded retry-with-backoff recovery loop under injected faults.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/checksum.h"
#include "storage/fault_injector.h"
#include "storage/page_file.h"

namespace cca {
namespace {

std::vector<std::uint8_t> Filled(std::uint32_t size, std::uint8_t value) {
  return std::vector<std::uint8_t>(size, value);
}

TEST(PageFileTest, AllocateReadWrite) {
  PageFile file(256);
  const PageId a = file.Allocate();
  const PageId b = file.Allocate();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(file.page_count(), 2u);

  const auto data = Filled(256, 0xAB);
  ASSERT_TRUE(file.Write(a, data.data()).ok());
  std::vector<std::uint8_t> out(256);
  ASSERT_TRUE(file.Read(a, out.data()).ok());
  EXPECT_EQ(out, data);
  // Fresh pages read back zeroed.
  ASSERT_TRUE(file.Read(b, out.data()).ok());
  EXPECT_EQ(out, Filled(256, 0));
  EXPECT_EQ(file.physical_reads(), 2u);
  EXPECT_EQ(file.physical_writes(), 1u);
}

// The debug-only asserts are gone: out-of-range ids are first-class
// errors in every build type, and the output buffer is never touched.
TEST(PageFileTest, OutOfRangeIsAlwaysOnError) {
  PageFile file(64);
  file.Allocate();
  std::vector<std::uint8_t> out = Filled(64, 0x77);
  const Status read = file.Read(5, out.data());
  EXPECT_EQ(read.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(out, Filled(64, 0x77));  // untouched on failure
  const Status write = file.Write(kInvalidPage, out.data());
  EXPECT_EQ(write.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(file.physical_reads(), 0u);
  EXPECT_EQ(file.physical_writes(), 0u);
}

TEST(ChecksumTest, Crc32KnownAnswer) {
  // CRC-32/IEEE of "123456789" is the standard check value 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(PageFileTest, InjectedTransientFailureReturnsUnavailable) {
  PageFile file(64);
  const PageId p = file.Allocate();
  FaultInjectorConfig cfg;
  cfg.read_failure_rate = 1.0;
  cfg.max_consecutive_faults = 1;
  FaultInjector injector(cfg);
  file.set_fault_injector(&injector);

  std::vector<std::uint8_t> out(64);
  EXPECT_EQ(file.Read(p, out.data()).code(), StatusCode::kUnavailable);
  // The consecutive-fault cap forces the next read clean.
  EXPECT_TRUE(file.Read(p, out.data()).ok());
  EXPECT_EQ(injector.ledger().read_failures, 1u);
  EXPECT_EQ(injector.ledger().reads_seen, 2u);
}

TEST(PageFileTest, CorruptionCaughtByChecksum) {
  PageFile file(64);
  const PageId p = file.Allocate();
  const auto data = Filled(64, 0x3E);
  ASSERT_TRUE(file.Write(p, data.data()).ok());

  FaultInjectorConfig cfg;
  cfg.corruption_rate = 1.0;
  cfg.max_consecutive_faults = 1;
  FaultInjector injector(cfg);
  file.set_fault_injector(&injector);

  std::vector<std::uint8_t> out(64);
  EXPECT_EQ(file.Read(p, out.data()).code(), StatusCode::kDataLoss);
  // Backing store intact: the capped (clean) retry returns the true bytes.
  ASSERT_TRUE(file.Read(p, out.data()).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(injector.ledger().corruptions, 1u);
}

TEST(BufferPoolTest, HitAvoidsPhysicalRead) {
  PageFile file(128);
  const PageId p = file.Allocate();
  BufferPool pool(&file, 4);
  std::vector<std::uint8_t> out(128);
  ASSERT_TRUE(pool.ReadPage(p, out.data()).ok());
  ASSERT_TRUE(pool.ReadPage(p, out.data()).ok());
  ASSERT_TRUE(pool.ReadPage(p, out.data()).ok());
  EXPECT_EQ(pool.stats().logical_reads, 3u);
  EXPECT_EQ(pool.stats().faults, 1u);
  EXPECT_EQ(pool.stats().hits, 2u);
  EXPECT_EQ(file.physical_reads(), 1u);
  EXPECT_NEAR(pool.stats().hit_ratio(), 2.0 / 3.0, 1e-12);
}

TEST(BufferPoolTest, FaultVerdictOutParam) {
  PageFile file(64);
  const PageId p = file.Allocate();
  BufferPool pool(&file, 2);
  std::vector<std::uint8_t> out(64);
  bool faulted = false;
  ASSERT_TRUE(pool.ReadPage(p, out.data(), &faulted).ok());
  EXPECT_TRUE(faulted);
  ASSERT_TRUE(pool.ReadPage(p, out.data(), &faulted).ok());
  EXPECT_FALSE(faulted);
}

TEST(BufferPoolTest, LruEvictionOrder) {
  PageFile file(64);
  std::vector<PageId> pages;
  for (int i = 0; i < 4; ++i) pages.push_back(file.Allocate());
  BufferPool pool(&file, 2);
  std::vector<std::uint8_t> out(64);

  pool.ReadPage(pages[0], out.data()).IgnoreError();  // cache: {0}
  pool.ReadPage(pages[1], out.data()).IgnoreError();  // cache: {1, 0}
  pool.ReadPage(pages[0], out.data()).IgnoreError();  // hit; cache: {0, 1}
  pool.ReadPage(pages[2], out.data()).IgnoreError();  // evicts 1; cache: {2, 0}
  pool.ReadPage(pages[0], out.data()).IgnoreError();  // still a hit
  EXPECT_EQ(pool.stats().hits, 2u);
  pool.ReadPage(pages[1], out.data()).IgnoreError();  // fault again (was evicted)
  EXPECT_EQ(pool.stats().faults, 4u);
}

TEST(BufferPoolTest, ZeroCapacityAlwaysFaults) {
  PageFile file(64);
  const PageId p = file.Allocate();
  BufferPool pool(&file, 0);
  std::vector<std::uint8_t> out(64);
  ASSERT_TRUE(pool.ReadPage(p, out.data()).ok());
  ASSERT_TRUE(pool.ReadPage(p, out.data()).ok());
  EXPECT_EQ(pool.stats().faults, 2u);
  EXPECT_EQ(pool.stats().hits, 0u);
}

TEST(BufferPoolTest, WriteThroughKeepsCacheCoherent) {
  PageFile file(64);
  const PageId p = file.Allocate();
  BufferPool pool(&file, 2);
  std::vector<std::uint8_t> out(64);
  ASSERT_TRUE(pool.ReadPage(p, out.data()).ok());  // cache the zero page

  const auto data = Filled(64, 0x5C);
  ASSERT_TRUE(pool.WritePage(p, data.data()).ok());
  ASSERT_TRUE(pool.ReadPage(p, out.data()).ok());  // must observe the write, from cache
  EXPECT_EQ(out, data);
  EXPECT_EQ(pool.stats().faults, 1u);
  EXPECT_EQ(file.physical_writes(), 1u);
}

TEST(BufferPoolTest, ShrinkEvicts) {
  PageFile file(64);
  std::vector<PageId> pages;
  for (int i = 0; i < 4; ++i) pages.push_back(file.Allocate());
  BufferPool pool(&file, 4);
  std::vector<std::uint8_t> out(64);
  for (const PageId p : pages) pool.ReadPage(p, out.data()).IgnoreError();
  pool.SetCapacity(1);
  pool.ReadPage(pages[3], out.data()).IgnoreError();  // MRU page should have survived
  EXPECT_EQ(pool.stats().hits, 1u);
  pool.ReadPage(pages[0], out.data()).IgnoreError();
  EXPECT_EQ(pool.stats().faults, 5u);
}

TEST(BufferPoolTest, ClearDropsContentKeepsStats) {
  PageFile file(64);
  const PageId p = file.Allocate();
  BufferPool pool(&file, 2);
  std::vector<std::uint8_t> out(64);
  pool.ReadPage(p, out.data()).IgnoreError();
  pool.Clear();
  pool.ReadPage(p, out.data()).IgnoreError();
  EXPECT_EQ(pool.stats().faults, 2u);
  EXPECT_EQ(pool.stats().logical_reads, 2u);
}

TEST(BufferPoolTest, OutOfRangeNotRetried) {
  PageFile file(64);
  BufferPool pool(&file, 2);
  std::vector<std::uint8_t> out(64);
  const Status status = pool.ReadPage(7, out.data());
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(pool.stats().read_retries, 0u);
  // The failed frame must not be cached: a later valid allocation of the
  // same id has to hit the file, not a zombie frame.
  EXPECT_EQ(pool.stats().faults, 1u);
  for (int i = 0; i < 8; ++i) file.Allocate();
  ASSERT_TRUE(pool.ReadPage(7, out.data()).ok());
  EXPECT_EQ(file.physical_reads(), 1u);
}

// The recovery anchor: with the injector's consecutive-fault cap below the
// pool's retry budget, every logical read succeeds, the bytes are
// bit-identical to a fault-free read, and the pool's recovery counters
// reconcile exactly against the injector's ledger.
TEST(BufferPoolTest, RetryRecoversAndLedgerReconciles) {
  PageFile file(128);
  std::vector<PageId> pages;
  for (int i = 0; i < 16; ++i) pages.push_back(file.Allocate());
  std::vector<std::uint8_t> expect(128);
  for (int i = 0; i < 16; ++i) {
    expect.assign(128, static_cast<std::uint8_t>(i * 17 + 1));
    ASSERT_TRUE(file.Write(pages[i], expect.data()).ok());
  }

  FaultInjectorConfig cfg;
  cfg.read_failure_rate = 0.25;
  cfg.corruption_rate = 0.25;
  cfg.max_consecutive_faults = 3;
  cfg.seed = 42;
  static_assert(3 < BufferPool::kMaxReadRetries, "recovery guarantee");
  FaultInjector injector(cfg);
  file.set_fault_injector(&injector);

  BufferPool pool(&file, 4);  // small: plenty of evictions and re-faults
  std::vector<std::uint8_t> out(128);
  for (int round = 0; round < 50; ++round) {
    const int i = (round * 7) % 16;
    ASSERT_TRUE(pool.ReadPage(pages[i], out.data()).ok());
    EXPECT_EQ(out, Filled(128, static_cast<std::uint8_t>(i * 17 + 1)));
  }

  const BufferPool::Stats stats = pool.stats();
  const FaultInjector::Ledger& ledger = injector.ledger();
  EXPECT_GT(ledger.read_failures + ledger.corruptions, 0u);  // faults happened
  EXPECT_EQ(stats.read_failures, ledger.read_failures);
  EXPECT_EQ(stats.checksum_failures, ledger.corruptions);
  EXPECT_EQ(stats.read_retries, ledger.read_failures + ledger.corruptions);
}

// Exhausting the retry budget (cap above budget, rate 1.0) surfaces the
// last error instead of looping forever.
TEST(BufferPoolTest, RetryBudgetExhaustionSurfacesError) {
  PageFile file(64);
  const PageId p = file.Allocate();
  FaultInjectorConfig cfg;
  cfg.read_failure_rate = 1.0;
  cfg.max_consecutive_faults = 100;  // deliberately past the budget
  FaultInjector injector(cfg);
  file.set_fault_injector(&injector);

  BufferPool pool(&file, 2);
  std::vector<std::uint8_t> out(64);
  const Status status = pool.ReadPage(p, out.data());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(pool.stats().read_retries,
            static_cast<std::uint64_t>(BufferPool::kMaxReadRetries - 1));
  // Recovery after the storm: detach the injector, the page reads clean.
  file.set_fault_injector(nullptr);
  ASSERT_TRUE(pool.ReadPage(p, out.data()).ok());
}

}  // namespace
}  // namespace cca
