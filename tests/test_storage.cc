// Paged storage and LRU buffer pool tests.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace cca {
namespace {

std::vector<std::uint8_t> Filled(std::uint32_t size, std::uint8_t value) {
  return std::vector<std::uint8_t>(size, value);
}

TEST(PageFileTest, AllocateReadWrite) {
  PageFile file(256);
  const PageId a = file.Allocate();
  const PageId b = file.Allocate();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(file.page_count(), 2u);

  const auto data = Filled(256, 0xAB);
  file.Write(a, data.data());
  std::vector<std::uint8_t> out(256);
  file.Read(a, out.data());
  EXPECT_EQ(out, data);
  // Fresh pages read back zeroed.
  file.Read(b, out.data());
  EXPECT_EQ(out, Filled(256, 0));
  EXPECT_EQ(file.physical_reads(), 2u);
  EXPECT_EQ(file.physical_writes(), 1u);
}

TEST(BufferPoolTest, HitAvoidsPhysicalRead) {
  PageFile file(128);
  const PageId p = file.Allocate();
  BufferPool pool(&file, 4);
  std::vector<std::uint8_t> out(128);
  pool.ReadPage(p, out.data());
  pool.ReadPage(p, out.data());
  pool.ReadPage(p, out.data());
  EXPECT_EQ(pool.stats().logical_reads, 3u);
  EXPECT_EQ(pool.stats().faults, 1u);
  EXPECT_EQ(pool.stats().hits, 2u);
  EXPECT_EQ(file.physical_reads(), 1u);
  EXPECT_NEAR(pool.stats().hit_ratio(), 2.0 / 3.0, 1e-12);
}

TEST(BufferPoolTest, LruEvictionOrder) {
  PageFile file(64);
  std::vector<PageId> pages;
  for (int i = 0; i < 4; ++i) pages.push_back(file.Allocate());
  BufferPool pool(&file, 2);
  std::vector<std::uint8_t> out(64);

  pool.ReadPage(pages[0], out.data());  // cache: {0}
  pool.ReadPage(pages[1], out.data());  // cache: {1, 0}
  pool.ReadPage(pages[0], out.data());  // hit; cache: {0, 1}
  pool.ReadPage(pages[2], out.data());  // evicts 1; cache: {2, 0}
  pool.ReadPage(pages[0], out.data());  // still a hit
  EXPECT_EQ(pool.stats().hits, 2u);
  pool.ReadPage(pages[1], out.data());  // fault again (was evicted)
  EXPECT_EQ(pool.stats().faults, 4u);
}

TEST(BufferPoolTest, ZeroCapacityAlwaysFaults) {
  PageFile file(64);
  const PageId p = file.Allocate();
  BufferPool pool(&file, 0);
  std::vector<std::uint8_t> out(64);
  pool.ReadPage(p, out.data());
  pool.ReadPage(p, out.data());
  EXPECT_EQ(pool.stats().faults, 2u);
  EXPECT_EQ(pool.stats().hits, 0u);
}

TEST(BufferPoolTest, WriteThroughKeepsCacheCoherent) {
  PageFile file(64);
  const PageId p = file.Allocate();
  BufferPool pool(&file, 2);
  std::vector<std::uint8_t> out(64);
  pool.ReadPage(p, out.data());  // cache the zero page

  const auto data = Filled(64, 0x5C);
  pool.WritePage(p, data.data());
  pool.ReadPage(p, out.data());  // must observe the write, served from cache
  EXPECT_EQ(out, data);
  EXPECT_EQ(pool.stats().faults, 1u);
  EXPECT_EQ(file.physical_writes(), 1u);
}

TEST(BufferPoolTest, ShrinkEvicts) {
  PageFile file(64);
  std::vector<PageId> pages;
  for (int i = 0; i < 4; ++i) pages.push_back(file.Allocate());
  BufferPool pool(&file, 4);
  std::vector<std::uint8_t> out(64);
  for (const PageId p : pages) pool.ReadPage(p, out.data());
  pool.SetCapacity(1);
  pool.ReadPage(pages[3], out.data());  // MRU page should have survived
  EXPECT_EQ(pool.stats().hits, 1u);
  pool.ReadPage(pages[0], out.data());
  EXPECT_EQ(pool.stats().faults, 5u);
}

TEST(BufferPoolTest, ClearDropsContentKeepsStats) {
  PageFile file(64);
  const PageId p = file.Allocate();
  BufferPool pool(&file, 2);
  std::vector<std::uint8_t> out(64);
  pool.ReadPage(p, out.data());
  pool.Clear();
  pool.ReadPage(p, out.data());
  EXPECT_EQ(pool.stats().faults, 2u);
  EXPECT_EQ(pool.stats().logical_reads, 2u);
}

}  // namespace
}  // namespace cca
