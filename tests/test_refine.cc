// Refinement heuristic tests (paper Section 4.3).
#include <gtest/gtest.h>

#include "core/refine.h"
#include "test_util.h"

namespace cca {
namespace {

Problem LineProblem() {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 2}, Provider{{100, 0}, 2}};
  problem.customers = {Point{10, 0}, Point{20, 0}, Point{80, 0}, Point{90, 0}};
  return problem;
}

RefineTask TaskFor(const Problem& problem, std::vector<int> providers,
                   std::vector<std::int64_t> quotas, std::vector<int> customers) {
  RefineTask task;
  task.providers = std::move(providers);
  task.quotas = std::move(quotas);
  for (int c : customers) {
    task.customers.push_back(RTree::Hit{static_cast<std::uint32_t>(c),
                                        problem.customers[static_cast<std::size_t>(c)], 0.0});
  }
  return task;
}

class RefineModeTest : public ::testing::TestWithParam<RefineMode> {};

TEST_P(RefineModeTest, AssignsEveryoneWhenQuotaSuffices) {
  const Problem problem = LineProblem();
  const RefineTask task = TaskFor(problem, {0, 1}, {2, 2}, {0, 1, 2, 3});
  Matching m;
  RefineGroup(problem, task, GetParam(), &m);
  EXPECT_EQ(m.size(), 4);
  // Obvious split: near customers to q0, far ones to q1.
  for (const auto& pair : m.pairs) {
    if (pair.customer <= 1) {
      EXPECT_EQ(pair.provider, 0);
    } else {
      EXPECT_EQ(pair.provider, 1);
    }
  }
  EXPECT_DOUBLE_EQ(m.cost(), 10 + 20 + 20 + 10);
}

TEST_P(RefineModeTest, RespectsQuotas) {
  const Problem problem = LineProblem();
  const RefineTask task = TaskFor(problem, {0, 1}, {1, 2}, {0, 1, 2, 3});
  Matching m;
  RefineGroup(problem, task, GetParam(), &m);
  EXPECT_EQ(m.size(), 3);  // 1 + 2 quota
  const auto loads = m.ProviderLoads(2);
  EXPECT_LE(loads[0], 1);
  EXPECT_LE(loads[1], 2);
  // No customer twice.
  const auto p_loads = m.CustomerLoads(4);
  for (auto l : p_loads) EXPECT_LE(l, 1);
}

TEST_P(RefineModeTest, LeavesExtraCustomersUnassigned) {
  const Problem problem = LineProblem();
  const RefineTask task = TaskFor(problem, {0}, {1}, {0, 1});
  Matching m;
  RefineGroup(problem, task, GetParam(), &m);
  ASSERT_EQ(m.size(), 1);
  EXPECT_EQ(m.pairs[0].customer, 0);  // nearest one wins
}

TEST_P(RefineModeTest, EmptyInputsNoop) {
  const Problem problem = LineProblem();
  Matching m;
  RefineGroup(problem, TaskFor(problem, {}, {}, {0, 1}), GetParam(), &m);
  EXPECT_EQ(m.size(), 0);
  RefineGroup(problem, TaskFor(problem, {0}, {1}, {}), GetParam(), &m);
  EXPECT_EQ(m.size(), 0);
}

TEST_P(RefineModeTest, StoredDistancesAreExact) {
  const Problem problem = LineProblem();
  const RefineTask task = TaskFor(problem, {0, 1}, {2, 2}, {0, 1, 2, 3});
  Matching m;
  RefineGroup(problem, task, GetParam(), &m);
  for (const auto& pair : m.pairs) {
    EXPECT_NEAR(pair.distance,
                Distance(problem.providers[static_cast<std::size_t>(pair.provider)].pos,
                         problem.customers[static_cast<std::size_t>(pair.customer)]),
                1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, RefineModeTest,
                         ::testing::Values(RefineMode::kNearestNeighbor,
                                           RefineMode::kExclusiveNearestNeighbor,
                                           RefineMode::kExact),
                         [](const ::testing::TestParamInfo<RefineMode>& info) {
                           switch (info.param) {
                             case RefineMode::kNearestNeighbor:
                               return "NN";
                             case RefineMode::kExclusiveNearestNeighbor:
                               return "ExclusiveNN";
                             case RefineMode::kExact:
                               return "Exact";
                           }
                           return "unknown";
                         });

// Exact refinement must never be beaten by either heuristic on the same
// local problem.
TEST(RefineDifferenceTest, ExactRefinementDominatesHeuristics) {
  test::InstanceSpec spec;
  spec.nq = 4;
  spec.np = 25;
  spec.k_lo = 3;
  spec.k_hi = 8;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    spec.seed = seed;
    const Problem problem = test::RandomProblem(spec);
    RefineTask task;
    for (std::size_t i = 0; i < problem.providers.size(); ++i) {
      task.providers.push_back(static_cast<int>(i));
      task.quotas.push_back(problem.providers[i].capacity);
    }
    for (std::size_t j = 0; j < problem.customers.size(); ++j) {
      task.customers.push_back(
          RTree::Hit{static_cast<std::uint32_t>(j), problem.customers[j], 0.0});
    }
    Matching exact, nn, ex;
    RefineGroup(problem, task, RefineMode::kExact, &exact);
    RefineGroup(problem, task, RefineMode::kNearestNeighbor, &nn);
    RefineGroup(problem, task, RefineMode::kExclusiveNearestNeighbor, &ex);
    EXPECT_EQ(exact.size(), nn.size());
    EXPECT_LE(exact.cost(), nn.cost() + 1e-9) << "seed " << seed;
    EXPECT_LE(exact.cost(), ex.cost() + 1e-9) << "seed " << seed;
  }
}

// The two heuristics differ on adversarial inputs: exclusive-NN commits to
// the globally closest pair first.
TEST(RefineDifferenceTest, ExclusivePicksGlobalClosestFirst) {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 1}, Provider{{6, 0}, 1}};
  problem.customers = {Point{5, 0}, Point{7, 0}};
  // Pairs: (q0,p0)=5 (q0,p1)=7 (q1,p0)=1 (q1,p1)=1.
  const RefineTask task{{0, 1}, {1, 1},
                        {RTree::Hit{0, problem.customers[0], 0.0},
                         RTree::Hit{1, problem.customers[1], 0.0}}};
  Matching ex;
  RefineGroup(problem, task, RefineMode::kExclusiveNearestNeighbor, &ex);
  // Exclusive: q1 grabs p0 (dist 1), then q0 must take p1 (dist 7) = 8.
  EXPECT_DOUBLE_EQ(ex.cost(), 8.0);
  Matching nn;
  RefineGroup(problem, task, RefineMode::kNearestNeighbor, &nn);
  // Round-robin starting at q0: q0 takes p0 (5), q1 takes p1 (1) = 6.
  EXPECT_DOUBLE_EQ(nn.cost(), 6.0);
}

}  // namespace
}  // namespace cca
