// Concurrent query engine tests (src/runtime/query_runner.h).
//
// The engine's contract is determinism: a batch's outcomes are identical
// at any thread count, and identical to calling the solvers directly —
// concurrency buys throughput, never different answers. Page faults are
// the one exception on R-tree-backed queries (the shared LRU sees a
// different interleaving), so those comparisons skip the fault ledger;
// grid-backed queries never touch the pool and must match it exactly.
// Plus raw concurrent-cursor stress: many threads draining grid cursors /
// R-tree NN iterators over one shared index must each see exactly the
// serial answer stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/greedy.h"
#include "flow/sspa.h"
#include "geo/grid.h"
#include "geo/grid_cursor.h"
#include "rtree/nn_iterator.h"
#include "rtree/rtree.h"
#include "runtime/query_runner.h"
#include "test_util.h"

namespace cca {
namespace {

bool UsesRTree(const QuerySpec& spec) {
  return spec.solver != QuerySolver::kSspa &&
         spec.exact.discovery_backend != DiscoveryBackend::kGrid &&
         spec.exact.discovery_backend != DiscoveryBackend::kGridBatched;
}

// A mixed batch over `customers`: every solver, both grid and R-tree
// discovery, distinct provider fleets.
std::vector<QuerySpec> MixedBatch(const std::vector<Point>& customers) {
  const struct {
    QuerySolver solver;
    DiscoveryBackend backend;
  } mix[] = {
      {QuerySolver::kIda, DiscoveryBackend::kGrid},
      {QuerySolver::kIda, DiscoveryBackend::kGridBatched},
      {QuerySolver::kIda, DiscoveryBackend::kRTreeGrouped},
      {QuerySolver::kIda, DiscoveryBackend::kRTreePlain},
      {QuerySolver::kNia, DiscoveryBackend::kGrid},
      {QuerySolver::kRia, DiscoveryBackend::kGrid},
      {QuerySolver::kGreedy, DiscoveryBackend::kGrid},
      {QuerySolver::kSspa, DiscoveryBackend::kGrid},
      {QuerySolver::kIda, DiscoveryBackend::kGrid},
      {QuerySolver::kNia, DiscoveryBackend::kGridBatched},
  };
  std::vector<QuerySpec> batch;
  std::uint64_t seed = 40;
  for (const auto& m : mix) {
    QuerySpec spec;
    spec.solver = m.solver;
    spec.exact.discovery_backend = m.backend;
    spec.problem.customers = customers;
    Rng rng(++seed);
    for (const Point& pos : test::RandomPoints(7, seed * 11 + 1)) {
      spec.problem.providers.push_back(
          Provider{pos, static_cast<std::int32_t>(rng.UniformInt(2, 6))});
    }
    batch.push_back(std::move(spec));
  }
  return batch;
}

void ExpectOutcomesIdentical(const std::vector<QuerySpec>& batch,
                             const std::vector<QueryOutcome>& a,
                             const std::vector<QueryOutcome>& b, const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string at = label + " query " + std::to_string(i);
    EXPECT_EQ(a[i].matching.cost(), b[i].matching.cost()) << at;  // bit-identical
    EXPECT_EQ(a[i].matching.size(), b[i].matching.size()) << at;
    EXPECT_EQ(a[i].metrics.dijkstra_pops, b[i].metrics.dijkstra_pops) << at;
    EXPECT_EQ(a[i].metrics.dijkstra_relaxes, b[i].metrics.dijkstra_relaxes) << at;
    EXPECT_EQ(a[i].metrics.augmentations, b[i].metrics.augmentations) << at;
    EXPECT_EQ(a[i].metrics.edges_inserted, b[i].metrics.edges_inserted) << at;
    EXPECT_EQ(a[i].metrics.nn_searches, b[i].metrics.nn_searches) << at;
    if (!UsesRTree(batch[i])) {
      // Grid queries never touch the shared LRU: the whole I/O ledger is
      // reproducible, faults included.
      EXPECT_EQ(a[i].metrics.page_faults, b[i].metrics.page_faults) << at;
      EXPECT_EQ(a[i].metrics.index_node_accesses, b[i].metrics.index_node_accesses) << at;
      EXPECT_EQ(a[i].metrics.grid_cursor_cells, b[i].metrics.grid_cursor_cells) << at;
    } else {
      // R-tree traversal order is deterministic even if fault counts are
      // not: logical node accesses must match.
      EXPECT_EQ(a[i].metrics.node_accesses, b[i].metrics.node_accesses) << at;
    }
  }
}

TEST(QueryRunnerTest, ThreadCountNeverChangesAnswers) {
  const std::vector<Point> customers = test::RandomPoints(600, 77);
  const std::vector<QuerySpec> batch = MixedBatch(customers);
  SharedIndex index(customers);

  QueryRunner serial(&index, 1);
  const std::vector<QueryOutcome> base = serial.Run(batch);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    QueryRunner runner(&index, threads);
    ExpectOutcomesIdentical(batch, base, runner.Run(batch),
                            std::to_string(threads) + " threads");
    // Re-running on the same pool must be stable too (workers park and
    // wake across batches).
    ExpectOutcomesIdentical(batch, base, runner.Run(batch),
                            std::to_string(threads) + " threads rerun");
  }
}

TEST(QueryRunnerTest, MatchesDirectSolverCalls) {
  const std::vector<Point> customers = test::RandomPoints(500, 9);
  const std::vector<QuerySpec> batch = MixedBatch(customers);
  SharedIndex index(customers);
  QueryRunner runner(&index, 4);
  const std::vector<QueryOutcome> outcomes = runner.Run(batch);

  // Direct calls with private per-solve state (own CustomerDb, own grids):
  // the runner's shared-index injection must be invisible in the results.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const QuerySpec& spec = batch[i];
    auto db = std::make_unique<CustomerDb>(customers, CustomerDb::Options{});
    Matching direct;
    Metrics direct_metrics;
    if (spec.solver == QuerySolver::kSspa) {
      SspaResult r = SolveSspa(spec.problem, spec.sspa);
      direct = std::move(r.matching);
      direct_metrics = r.metrics;
    } else {
      ExactResult r;
      switch (spec.solver) {
        case QuerySolver::kRia: r = SolveRia(spec.problem, db.get(), spec.exact); break;
        case QuerySolver::kNia: r = SolveNia(spec.problem, db.get(), spec.exact); break;
        case QuerySolver::kGreedy: r = SolveGreedySm(spec.problem, db.get(), spec.exact); break;
        default: r = SolveIda(spec.problem, db.get(), spec.exact); break;
      }
      direct = std::move(r.matching);
      direct_metrics = r.metrics;
    }
    const std::string at = "query " + std::to_string(i);
    EXPECT_EQ(direct.cost(), outcomes[i].matching.cost()) << at;
    EXPECT_EQ(direct_metrics.dijkstra_pops, outcomes[i].metrics.dijkstra_pops) << at;
    EXPECT_EQ(direct_metrics.augmentations, outcomes[i].metrics.augmentations) << at;
    EXPECT_EQ(direct_metrics.dijkstra_relaxes, outcomes[i].metrics.dijkstra_relaxes) << at;
    if (!UsesRTree(spec)) {
      // Same resolution, so borrowing the shared grid must not change the
      // cell ledger either.
      EXPECT_EQ(direct_metrics.grid_cursor_cells, outcomes[i].metrics.grid_cursor_cells) << at;
    }
  }
}

TEST(QueryRunnerTest, AggregateSumsPerQueryBundles) {
  const std::vector<Point> customers = test::RandomPoints(300, 5);
  SharedIndex index(customers);
  std::vector<QuerySpec> batch = MixedBatch(customers);
  QueryRunner runner(&index, 3);
  const std::vector<QueryOutcome> outcomes = runner.Run(batch);
  const Metrics total = QueryRunner::Aggregate(outcomes);
  std::uint64_t pops = 0, aug = 0;
  for (const auto& o : outcomes) {
    pops += o.metrics.dijkstra_pops;
    aug += o.metrics.augmentations;
  }
  EXPECT_EQ(total.dijkstra_pops, pops);
  EXPECT_EQ(total.augmentations, aug);
  EXPECT_GT(total.augmentations, 0u);
}

TEST(QueryRunnerTest, WeightedSspaRunsThroughTheRunner) {
  const std::vector<Point> customers = test::RandomPoints(200, 31);
  SharedIndex::Options options;
  options.build_customer_db = false;  // SSPA-only batch needs no R-tree
  SharedIndex index(customers, options);
  QuerySpec spec;
  spec.solver = QuerySolver::kSspa;
  spec.problem.customers = customers;
  Rng rng(8);
  for (const Point& pos : test::RandomPoints(5, 88)) {
    spec.problem.providers.push_back(Provider{pos, 40});
  }
  spec.problem.weights.resize(customers.size());
  for (auto& w : spec.problem.weights) w = static_cast<std::int32_t>(rng.UniformInt(1, 3));
  const std::vector<QuerySpec> batch(6, spec);
  QueryRunner runner(&index, 3);
  const std::vector<QueryOutcome> outcomes = runner.Run(batch);
  const SspaResult direct = SolveSspa(spec.problem, spec.sspa);
  for (const auto& o : outcomes) {
    EXPECT_EQ(o.matching.cost(), direct.matching.cost());
    EXPECT_EQ(o.metrics.dijkstra_pops, direct.metrics.dijkstra_pops);
  }
}

// --- raw shared-structure stress --------------------------------------------

// Many threads each drain a private GridNnCursor over ONE shared grid; every
// thread must observe exactly the stream a serial drain of the same query
// point produces.
TEST(ConcurrentCursorStress, GridCursorsShareOneGrid) {
  const std::vector<Point> points = test::ClusteredPoints(2000, 17);
  const UniformGrid grid(points);
  const std::vector<Point> queries = test::RandomPoints(8, 4);

  // Serial expectation per query.
  std::vector<std::vector<std::pair<std::int32_t, double>>> expected(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    GridNnCursor cursor(grid, queries[i]);
    for (int n = 0; n < 200; ++n) {
      const auto next = cursor.Next();
      if (!next) break;
      expected[i].push_back(*next);
    }
  }

  std::vector<std::vector<std::pair<std::int32_t, double>>> got(queries.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    threads.emplace_back([&, i] {
      GridNnCursor cursor(grid, queries[i]);
      for (int n = 0; n < 200; ++n) {
        const auto next = cursor.Next();
        if (!next) break;
        got[i].push_back(*next);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(got[i].size(), expected[i].size()) << "query " << i;
    EXPECT_EQ(got[i], expected[i]) << "query " << i;
  }
}

// Same for best-first NN iterators over one paged R-tree: the buffer pool
// serializes page reads and the per-thread scratch keeps deserialisation
// private, so concurrent streams must equal the serial ones exactly.
TEST(ConcurrentCursorStress, NnIteratorsShareOneRTree) {
  const std::vector<Point> points = test::RandomPoints(1500, 23);
  RTree::Options options;
  options.page_size = 512;
  options.buffer_pages = 8;  // tiny pool: force heavy concurrent faulting
  const std::unique_ptr<RTree> tree = RTree::BulkLoad(points, options);
  const std::vector<Point> queries = test::RandomPoints(8, 91);

  std::vector<std::vector<std::uint32_t>> expected(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    NnIterator it(tree.get(), queries[i]);
    for (int n = 0; n < 120; ++n) {
      const auto next = it.Next();
      if (!next) break;
      expected[i].push_back(next->oid);
    }
  }

  std::vector<std::vector<std::uint32_t>> got(queries.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    threads.emplace_back([&, i] {
      NnIterator it(tree.get(), queries[i]);
      for (int n = 0; n < 120; ++n) {
        const auto next = it.Next();
        if (!next) break;
        got[i].push_back(next->oid);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "query " << i;
  }
}

}  // namespace
}  // namespace cca
