// R-tree behaviour across page sizes and fill factors (parameterised
// property sweep): structure and query correctness must be invariant.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "rtree/rtree.h"
#include "test_util.h"

namespace cca {
namespace {

struct PageCase {
  std::uint32_t page_size;
  double bulk_fill;
  std::size_t n;
};

class PageSizeTest : public ::testing::TestWithParam<PageCase> {};

TEST_P(PageSizeTest, BulkLoadStructureAndQueries) {
  const auto& param = GetParam();
  RTree::Options options;
  options.page_size = param.page_size;
  options.bulk_fill = param.bulk_fill;
  const auto pts = test::RandomPoints(param.n, 101 + param.page_size);
  auto tree = RTree::BulkLoad(pts, options);
  ASSERT_EQ(tree->size(), pts.size());
  std::string error;
  ASSERT_TRUE(tree->CheckInvariants(&error)) << error;

  // Representative queries vs brute force.
  Rng rng(55);
  std::vector<RTree::Hit> hits;
  for (int iter = 0; iter < 8; ++iter) {
    const Point c{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    const double r = rng.Uniform(10, 250);
    tree->RangeSearch(c, r, &hits);
    std::size_t brute = 0;
    for (const auto& p : pts) {
      if (Distance(c, p) <= r) ++brute;
    }
    EXPECT_EQ(hits.size(), brute);
  }
}

TEST_P(PageSizeTest, DynamicInsertStructure) {
  const auto& param = GetParam();
  RTree::Options options;
  options.page_size = param.page_size;
  RTree tree(options);
  const auto pts = test::ClusteredPoints(param.n / 2 + 10, 202 + param.page_size);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    tree.Insert(pts[i], static_cast<std::uint32_t>(i));
  }
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
}

INSTANTIATE_TEST_SUITE_P(Pages, PageSizeTest,
                         ::testing::Values(PageCase{128, 0.7, 400},   // fanout 5/3
                                           PageCase{256, 0.85, 800},  //
                                           PageCase{512, 0.85, 1500}, //
                                           PageCase{1024, 0.85, 3000},// the paper's page
                                           PageCase{2048, 0.99, 2000},
                                           PageCase{1024, 0.55, 1000}),
                         [](const ::testing::TestParamInfo<PageCase>& info) {
                           return "p" + std::to_string(info.param.page_size) + "_n" +
                                  std::to_string(info.param.n);
                         });

// Smaller pages mean deeper trees; sanity-check the relation.
TEST(PageSizeRelationTest, SmallerPagesDeeperTrees) {
  const auto pts = test::RandomPoints(4000, 77);
  RTree::Options small_pages;
  small_pages.page_size = 128;
  RTree::Options big_pages;
  big_pages.page_size = 2048;
  const auto small_tree = RTree::BulkLoad(pts, small_pages);
  const auto big_tree = RTree::BulkLoad(pts, big_pages);
  EXPECT_GT(small_tree->height(), big_tree->height());
  EXPECT_GT(small_tree->page_count(), big_tree->page_count());
}

}  // namespace
}  // namespace cca
