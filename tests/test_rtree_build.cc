// R-tree construction tests: dynamic inserts, STR bulk loading, structural
// invariants (MBR tightness, aggregate counts, balance).
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rtree/node.h"
#include "rtree/rtree.h"
#include "test_util.h"

namespace cca {
namespace {

using test::RandomPoints;

TEST(RTreeNodeTest, CapacitiesForDefaultPage) {
  // 1 KB pages: 8-byte header, 24-byte leaf entries, 40-byte internal.
  EXPECT_EQ(RTreeNode::LeafCapacity(1024), (1024u - 8) / 24);
  EXPECT_EQ(RTreeNode::InternalCapacity(1024), (1024u - 8) / 40);
}

TEST(RTreeNodeTest, SerializeRoundTripLeaf) {
  RTreeNode node;
  node.is_leaf = true;
  node.leaf_entries = {{{1.5, 2.5}, 7}, {{-3.0, 4.0}, 9}};
  std::vector<std::uint8_t> page(1024);
  node.Serialize(page.data(), 1024);
  const RTreeNode back = RTreeNode::Deserialize(page.data(), 1024);
  ASSERT_TRUE(back.is_leaf);
  ASSERT_EQ(back.leaf_entries.size(), 2u);
  EXPECT_EQ(back.leaf_entries[0].pos, (Point{1.5, 2.5}));
  EXPECT_EQ(back.leaf_entries[0].oid, 7u);
  EXPECT_EQ(back.leaf_entries[1].oid, 9u);
}

TEST(RTreeNodeTest, SerializeRoundTripInternal) {
  RTreeNode node;
  node.is_leaf = false;
  node.entries = {{Rect::FromCorners({0, 0}, {5, 5}), 3, 100},
                  {Rect::FromCorners({10, 10}, {20, 30}), 4, 250}};
  std::vector<std::uint8_t> page(1024);
  node.Serialize(page.data(), 1024);
  const RTreeNode back = RTreeNode::Deserialize(page.data(), 1024);
  ASSERT_FALSE(back.is_leaf);
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[0].child, 3u);
  EXPECT_EQ(back.entries[0].count, 100u);
  EXPECT_EQ(back.entries[1].mbr, Rect::FromCorners({10, 10}, {20, 30}));
  EXPECT_EQ(back.TotalCount(), 350u);
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0);
  std::vector<RTree::Hit> hits;
  tree.RangeSearch({0, 0}, 100, &hits);
  EXPECT_TRUE(hits.empty());
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error));
}

TEST(RTreeTest, SingleInsert) {
  RTree tree;
  tree.Insert({5, 5}, 42);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1);
  std::vector<RTree::Hit> hits;
  tree.RangeSearch({5, 5}, 0.1, &hits);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].oid, 42u);
}

class RTreeBuildParamTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RTreeBuildParamTest, DynamicInsertInvariants) {
  RTree::Options options;
  options.page_size = 256;  // small pages force multi-level trees
  RTree tree(options);
  const auto points = RandomPoints(GetParam(), 11 + GetParam());
  for (std::size_t i = 0; i < points.size(); ++i) {
    tree.Insert(points[i], static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(tree.size(), points.size());
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
}

TEST_P(RTreeBuildParamTest, BulkLoadInvariants) {
  RTree::Options options;
  options.page_size = 256;
  const auto points = RandomPoints(GetParam(), 23 + GetParam());
  auto tree = RTree::BulkLoad(points, options);
  EXPECT_EQ(tree->size(), points.size());
  std::string error;
  EXPECT_TRUE(tree->CheckInvariants(&error)) << error;
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeBuildParamTest,
                         ::testing::Values<std::size_t>(1, 2, 9, 10, 11, 40, 100, 500, 2000));

TEST(RTreeTest, HeightGrowsLogarithmically) {
  RTree::Options options;
  options.page_size = 256;
  const auto small = RTree::BulkLoad(RandomPoints(50, 1), options);
  const auto large = RTree::BulkLoad(RandomPoints(5000, 2), options);
  EXPECT_GE(large->height(), small->height());
  EXPECT_LE(large->height(), 6);
}

TEST(RTreeTest, BulkLoadOidsMatchInput) {
  const auto points = RandomPoints(300, 5);
  auto tree = RTree::BulkLoad(points);
  std::vector<RTree::Hit> hits;
  tree->RangeSearch({500, 500}, 2000.0, &hits);  // grab everything
  ASSERT_EQ(hits.size(), points.size());
  std::vector<char> seen(points.size(), 0);
  for (const auto& h : hits) {
    EXPECT_EQ(h.pos, points[h.oid]);
    EXPECT_FALSE(seen[h.oid]) << "duplicate oid";
    seen[h.oid] = 1;
  }
}

TEST(RTreeTest, InsertAfterBulkLoadKeepsInvariants) {
  RTree::Options options;
  options.page_size = 256;
  const auto base = RandomPoints(400, 6);
  auto tree = RTree::BulkLoad(base, options);
  const auto extra = RandomPoints(200, 7);
  for (std::size_t i = 0; i < extra.size(); ++i) {
    tree->Insert(extra[i], static_cast<std::uint32_t>(base.size() + i));
  }
  EXPECT_EQ(tree->size(), base.size() + extra.size());
  std::string error;
  EXPECT_TRUE(tree->CheckInvariants(&error)) << error;
}

TEST(RTreeTest, DuplicatePointsSupported) {
  RTree::Options options;
  options.page_size = 256;
  RTree tree(options);
  for (int i = 0; i < 150; ++i) tree.Insert({7, 7}, static_cast<std::uint32_t>(i));
  EXPECT_EQ(tree.size(), 150u);
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
  std::vector<RTree::Hit> hits;
  tree.RangeSearch({7, 7}, 0.0, &hits);
  EXPECT_EQ(hits.size(), 150u);
}

TEST(RTreeTest, BufferFractionSizesPool) {
  const auto points = RandomPoints(5000, 8);
  auto tree = RTree::BulkLoad(points);
  tree->SetBufferFraction(0.01);
  EXPECT_GE(tree->buffer().capacity(), 1u);
  EXPECT_LT(tree->buffer().capacity(), tree->page_count() / 50 + 2);
}

TEST(RTreeTest, NodeAccessCounterAdvances) {
  const auto points = RandomPoints(1000, 9);
  auto tree = RTree::BulkLoad(points);
  tree->ResetCounters();
  std::vector<RTree::Hit> hits;
  tree->RangeSearch({500, 500}, 50.0, &hits);
  EXPECT_GT(tree->node_accesses(), 0u);
}

}  // namespace
}  // namespace cca
