// Hungarian baseline tests: must agree with SSPA/brute force on every
// capacity regime it supports.
#include <gtest/gtest.h>

#include "flow/hungarian.h"
#include "flow/oracle.h"
#include "flow/sspa.h"
#include "test_util.h"

namespace cca {
namespace {

TEST(HungarianTest, OneToOneTinyInstance) {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 1}, Provider{{10, 0}, 1}};
  problem.customers = {Point{1, 0}, Point{9, 0}};
  const HungarianResult result = SolveHungarian(problem);
  EXPECT_EQ(result.matching.size(), 2);
  EXPECT_DOUBLE_EQ(result.matching.cost(), 2.0);
  EXPECT_EQ(result.matrix_cells, 4u);
}

TEST(HungarianTest, PaperFigure2Example) {
  Problem problem;
  problem.providers = {Provider{{0.0, 0.0}, 1}, Provider{{10.0, 0.0}, 2}};
  problem.customers = {Point{-4.0, 0.0}, Point{3.0, 0.0}};
  const HungarianResult result = SolveHungarian(problem);
  EXPECT_DOUBLE_EQ(result.matching.cost(), 11.0);
  // Capacity expansion: 3 slots x 2 customers.
  EXPECT_EQ(result.matrix_cells, 6u);
}

TEST(HungarianTest, CapacityExpansionRespectsLimits) {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 2}, Provider{{100, 0}, 3}};
  problem.customers = {Point{1, 0}, Point{2, 0}, Point{3, 0}, Point{99, 0}};
  const HungarianResult result = SolveHungarian(problem);
  std::string error;
  EXPECT_TRUE(ValidateMatching(problem, result.matching, &error)) << error;
  // q0 (k=2) takes the two nearest, q1 takes p2 and p3.
  const auto loads = result.matching.ProviderLoads(2);
  EXPECT_LE(loads[0], 2);
  EXPECT_LE(loads[1], 3);
}

TEST(HungarianTest, MoreSlotsThanCustomers) {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 5}};
  problem.customers = {Point{3, 0}, Point{4, 0}};
  const HungarianResult result = SolveHungarian(problem);
  EXPECT_EQ(result.matching.size(), 2);
  EXPECT_DOUBLE_EQ(result.matching.cost(), 7.0);
}

TEST(HungarianTest, MoreCustomersThanSlots) {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 1}};
  problem.customers = {Point{8, 0}, Point{2, 0}, Point{5, 0}};
  const HungarianResult result = SolveHungarian(problem);
  EXPECT_EQ(result.matching.size(), 1);
  EXPECT_DOUBLE_EQ(result.matching.cost(), 2.0);
}

TEST(HungarianTest, EmptyInstances) {
  Problem no_customers;
  no_customers.providers = {Provider{{0, 0}, 3}};
  EXPECT_EQ(SolveHungarian(no_customers).matching.size(), 0);
  Problem no_capacity;
  no_capacity.providers = {Provider{{0, 0}, 0}};
  no_capacity.customers = {Point{1, 1}};
  EXPECT_EQ(SolveHungarian(no_capacity).matching.size(), 0);
}

struct HungarianCase {
  std::size_t nq;
  std::size_t np;
  std::int32_t k_lo;
  std::int32_t k_hi;
  std::uint64_t seed;
};

class HungarianRandomTest : public ::testing::TestWithParam<HungarianCase> {};

TEST_P(HungarianRandomTest, AgreesWithSspa) {
  const auto& c = GetParam();
  test::InstanceSpec spec;
  spec.nq = c.nq;
  spec.np = c.np;
  spec.k_lo = c.k_lo;
  spec.k_hi = c.k_hi;
  spec.seed = c.seed;
  const Problem problem = test::RandomProblem(spec);
  const HungarianResult hungarian = SolveHungarian(problem);
  const SspaResult sspa = SolveSspa(problem);
  EXPECT_NEAR(hungarian.matching.cost(), sspa.matching.cost(),
              1e-6 * (1.0 + sspa.matching.cost()));
  std::string error;
  EXPECT_TRUE(ValidateMatching(problem, hungarian.matching, &error)) << error;
  EXPECT_TRUE(IsOptimalMatching(problem, hungarian.matching));
}

INSTANTIATE_TEST_SUITE_P(Regimes, HungarianRandomTest,
                         ::testing::Values(HungarianCase{3, 12, 1, 1, 1},   // one-to-one-ish
                                           HungarianCase{4, 20, 2, 5, 2},   // scarce
                                           HungarianCase{4, 10, 5, 8, 3},   // abundant
                                           HungarianCase{6, 24, 4, 4, 4},   // balanced
                                           HungarianCase{2, 30, 3, 9, 5},   //
                                           HungarianCase{8, 16, 1, 3, 6}));

}  // namespace
}  // namespace cca
