// Metrics bundle tests.
#include <gtest/gtest.h>

#include <cstring>

#include "common/metrics.h"

namespace cca {
namespace {

// Merge completeness without naming any counter: the static_assert in
// metrics.cc pins the layout to kMetricsCounterCount uint64s followed by
// cpu_millis, so a memcpy view covers every counter — present and future.
// A counter added to the struct but forgotten in Merge shows up here as a
// slot whose sum is wrong, instead of silently under-reporting forever.
TEST(MetricsTest, MergeCoversEveryCounterSlot) {
  Metrics a, b;
  std::uint64_t vals[kMetricsCounterCount];
  for (std::size_t i = 0; i < kMetricsCounterCount; ++i) vals[i] = i + 1;
  std::memcpy(&a, vals, sizeof(vals));
  std::memcpy(&b, vals, sizeof(vals));
  a.cpu_millis = 1.0;
  b.cpu_millis = 2.0;
  a.Merge(b);
  std::uint64_t merged[kMetricsCounterCount];
  std::memcpy(merged, &a, sizeof(merged));
  for (std::size_t i = 0; i < kMetricsCounterCount; ++i) {
    EXPECT_EQ(merged[i], 2 * (i + 1)) << "counter slot " << i << " not merged";
  }
  EXPECT_DOUBLE_EQ(a.cpu_millis, 3.0);
}

TEST(MetricsTest, IoTimeModel) {
  Metrics m;
  EXPECT_DOUBLE_EQ(m.io_millis(), 0.0);
  m.page_faults = 7;
  EXPECT_DOUBLE_EQ(m.io_millis(), 70.0);  // 10 ms per fault (paper 5.1)
  m.cpu_millis = 12.5;
  EXPECT_DOUBLE_EQ(m.total_millis(), 82.5);
}

TEST(MetricsTest, AccumulateAddsEverything) {
  Metrics a, b;
  a.edges_inserted = 3;
  a.dijkstra_runs = 2;
  a.page_faults = 1;
  a.cpu_millis = 5.0;
  b.edges_inserted = 10;
  b.dijkstra_runs = 1;
  b.page_faults = 4;
  b.cpu_millis = 2.0;
  b.fast_path_assigns = 6;
  a.Accumulate(b);
  EXPECT_EQ(a.edges_inserted, 13u);
  EXPECT_EQ(a.dijkstra_runs, 3u);
  EXPECT_EQ(a.page_faults, 5u);
  EXPECT_EQ(a.fast_path_assigns, 6u);
  EXPECT_DOUBLE_EQ(a.cpu_millis, 7.0);
}

TEST(MetricsTest, MergeAndPlusEqualsMatchAccumulate) {
  Metrics a, b;
  a.dijkstra_pops = 4;
  a.dense_cells_checked = 9;
  b.dijkstra_pops = 6;
  b.dense_cells_checked = 1;
  b.augmentations = 2;
  Metrics via_merge = a;
  via_merge.Merge(b);
  Metrics via_plus = a;
  via_plus += b;
  EXPECT_EQ(via_merge.dijkstra_pops, 10u);
  EXPECT_EQ(via_merge.dense_cells_checked, 10u);
  EXPECT_EQ(via_merge.augmentations, 2u);
  EXPECT_EQ(via_plus.dijkstra_pops, via_merge.dijkstra_pops);
  EXPECT_EQ(via_plus.dense_cells_checked, via_merge.dense_cells_checked);
  EXPECT_EQ(via_plus.augmentations, via_merge.augmentations);
}

TEST(MetricsTest, PlusEqualsChains) {
  Metrics total, q1, q2;
  q1.page_faults = 2;
  q2.page_faults = 3;
  (total += q1) += q2;
  EXPECT_EQ(total.page_faults, 5u);
}

TEST(MetricsTest, ResetClears) {
  Metrics m;
  m.edges_inserted = 5;
  m.cpu_millis = 3.0;
  m.Reset();
  EXPECT_EQ(m.edges_inserted, 0u);
  EXPECT_DOUBLE_EQ(m.cpu_millis, 0.0);
}

TEST(MetricsTest, ToStringMentionsKeyCounters) {
  Metrics m;
  m.edges_inserted = 42;
  const std::string s = m.ToString();
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("Esub"), std::string::npos);
}

// ToString completeness via the same memcpy view as the Merge test: every
// counter slot gets a distinct sentinel value, and every sentinel must
// appear in the printed line. Since ToString is generated from
// CCA_METRICS_COUNTER_FIELDS (like Merge and kMetricsCounterCount), this
// pins the whole table: a counter whose row was dropped would print
// nothing and fail here.
TEST(MetricsTest, ToStringCoversEveryCounterSlot) {
  Metrics m;
  std::uint64_t vals[kMetricsCounterCount];
  // Distinct, high, non-overlapping decimal patterns: 1000001, 1000002, ...
  // (small sentinels like 1/2/3 would collide as substrings of each other).
  for (std::size_t i = 0; i < kMetricsCounterCount; ++i) vals[i] = 1000001 + i;
  std::memcpy(&m, vals, sizeof(vals));
  const std::string s = m.ToString();
  for (std::size_t i = 0; i < kMetricsCounterCount; ++i) {
    EXPECT_NE(s.find(std::to_string(vals[i])), std::string::npos)
        << "counter slot " << i << " missing from ToString: " << s;
  }
  // The label=value shape holds for a known field, and every zero counter
  // stays out of the line.
  Metrics quiet;
  quiet.dijkstra_pops = 7;
  const std::string qs = quiet.ToString();
  EXPECT_NE(qs.find("dijkstra_pops=7"), std::string::npos) << qs;
  EXPECT_EQ(qs.find("Esub"), std::string::npos) << qs;
}

}  // namespace
}  // namespace cca
