// RIA / NIA / IDA on small hand-checkable instances: each must equal the
// brute-force optimum and pass the Klein optimality certificate.
#include <gtest/gtest.h>

#include "core/exact.h"
#include "flow/oracle.h"
#include "test_util.h"

namespace cca {
namespace {

struct Solver {
  const char* name;
  ExactResult (*solve)(const Problem&, CustomerDb*, const ExactConfig&);
};

const Solver kSolvers[] = {
    {"RIA", SolveRia},
    {"NIA", SolveNia},
    {"IDA", SolveIda},
};

class ExactSmallTest : public ::testing::TestWithParam<Solver> {};

TEST_P(ExactSmallTest, PaperFigure2Example) {
  Problem problem;
  problem.providers = {Provider{{0.0, 0.0}, 1}, Provider{{10.0, 0.0}, 2}};
  problem.customers = {Point{-4.0, 0.0}, Point{3.0, 0.0}};
  auto db = test::MakeDb(problem);
  const ExactResult result = GetParam().solve(problem, db.get(), ExactConfig{});
  EXPECT_DOUBLE_EQ(result.matching.cost(), 11.0) << GetParam().name;
  EXPECT_EQ(result.matching.size(), 2);
}

TEST_P(ExactSmallTest, SingleProviderTakesNearest) {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 2}};
  problem.customers = {Point{5, 0}, Point{1, 0}, Point{9, 0}, Point{2, 0}};
  auto db = test::MakeDb(problem);
  const ExactResult result = GetParam().solve(problem, db.get(), ExactConfig{});
  EXPECT_DOUBLE_EQ(result.matching.cost(), 3.0) << GetParam().name;  // 1 + 2
}

TEST_P(ExactSmallTest, RequiresReassignmentChain) {
  // A line instance where greedy NN assignment is suboptimal and a
  // residual-path reassignment is required for optimality.
  Problem problem;
  problem.providers = {Provider{{0, 0}, 1}, Provider{{60, 0}, 1}};
  problem.customers = {Point{20, 0}, Point{30, 0}};
  auto db = test::MakeDb(problem);
  const ExactResult result = GetParam().solve(problem, db.get(), ExactConfig{});
  EXPECT_DOUBLE_EQ(result.matching.cost(), 50.0) << GetParam().name;
}

TEST_P(ExactSmallTest, AllProvidersFullLeavesCustomersOut) {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 1}, Provider{{100, 0}, 1}};
  problem.customers = {Point{1, 0}, Point{99, 0}, Point{50, 0}};
  auto db = test::MakeDb(problem);
  const ExactResult result = GetParam().solve(problem, db.get(), ExactConfig{});
  EXPECT_EQ(result.matching.size(), 2);
  EXPECT_DOUBLE_EQ(result.matching.cost(), 2.0);
  std::string error;
  EXPECT_TRUE(ValidateMatching(problem, result.matching, &error)) << error;
}

TEST_P(ExactSmallTest, RandomTinyAgainstBruteForce) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 3;
    spec.np = 8;
    spec.k_lo = 1;
    spec.k_hi = 3;
    spec.seed = seed;
    const Problem problem = test::RandomProblem(spec);
    auto db = test::MakeDb(problem);
    const ExactResult result = GetParam().solve(problem, db.get(), ExactConfig{});
    const Matching brute = BruteForceOptimal(problem);
    EXPECT_NEAR(result.matching.cost(), brute.cost(), 1e-6)
        << GetParam().name << " seed " << seed;
    std::string error;
    EXPECT_TRUE(ValidateMatching(problem, result.matching, &error)) << error;
    EXPECT_TRUE(IsOptimalMatching(problem, result.matching))
        << GetParam().name << " seed " << seed;
  }
}

TEST_P(ExactSmallTest, DegenerateGammaZero) {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 4}};
  // No customers at all.
  auto db = test::MakeDb(problem);
  const ExactResult result = GetParam().solve(problem, db.get(), ExactConfig{});
  EXPECT_EQ(result.matching.size(), 0);
}

TEST_P(ExactSmallTest, CoincidentPoints) {
  Problem problem;
  problem.providers = {Provider{{5, 5}, 2}, Provider{{5, 5}, 1}};
  problem.customers = {Point{5, 5}, Point{5, 5}, Point{5, 5}};
  auto db = test::MakeDb(problem);
  const ExactResult result = GetParam().solve(problem, db.get(), ExactConfig{});
  EXPECT_EQ(result.matching.size(), 3);
  EXPECT_DOUBLE_EQ(result.matching.cost(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Solvers, ExactSmallTest, ::testing::ValuesIn(kSolvers),
                         [](const ::testing::TestParamInfo<Solver>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace cca
