// CustomerDb and IoScope accounting tests.
#include <gtest/gtest.h>

#include "core/customer_db.h"
#include "test_util.h"

namespace cca {
namespace {

TEST(CustomerDbTest, BuildsTreeWithRequestedOptions) {
  const auto pts = test::RandomPoints(2000, 3);
  CustomerDb::Options options;
  options.rtree.page_size = 512;
  options.buffer_fraction = 0.01;
  CustomerDb db(pts, options);
  EXPECT_EQ(db.size(), 2000u);
  EXPECT_EQ(db.tree()->size(), 2000u);
  EXPECT_GE(db.tree()->buffer().capacity(), 1u);
  EXPECT_LT(db.tree()->buffer().capacity(), db.tree()->page_count());
  // Counters start clean.
  EXPECT_EQ(db.page_faults(), 0u);
  EXPECT_EQ(db.node_accesses(), 0u);
}

TEST(CustomerDbTest, MinBufferPagesFloorApplies) {
  const auto pts = test::RandomPoints(500, 4);  // tiny tree
  CustomerDb::Options options;
  options.rtree.page_size = 1024;
  options.buffer_fraction = 0.01;
  options.min_buffer_pages = 16;
  CustomerDb db(pts, options);
  EXPECT_GE(db.tree()->buffer().capacity(), 16u);
}

TEST(CustomerDbTest, FullBufferFractionCachesEverything) {
  const auto pts = test::RandomPoints(1500, 5);
  CustomerDb::Options options;
  options.buffer_fraction = 2.0;
  CustomerDb db(pts, options);
  db.Prewarm();
  const auto faults_before = db.page_faults();
  std::vector<RTree::Hit> hits;
  db.tree()->RangeSearch({500, 500}, 400.0, &hits);
  db.tree()->KnnSearch({100, 100}, 25, &hits);
  EXPECT_EQ(db.page_faults(), faults_before);  // all hits after prewarm
}

TEST(CustomerDbTest, CoolDownForcesColdStart) {
  const auto pts = test::RandomPoints(1500, 6);
  CustomerDb::Options options;
  options.buffer_fraction = 2.0;
  CustomerDb db(pts, options);
  std::vector<RTree::Hit> hits;
  db.tree()->RangeSearch({500, 500}, 100.0, &hits);
  const auto warm = db.page_faults();
  db.tree()->RangeSearch({500, 500}, 100.0, &hits);
  EXPECT_EQ(db.page_faults(), warm);  // warm: no new faults
  db.CoolDown();
  db.tree()->RangeSearch({500, 500}, 100.0, &hits);
  EXPECT_GT(db.page_faults(), warm);  // cold again
}

TEST(IoScopeTest, DiffsExactlyTheScopedWork) {
  const auto pts = test::RandomPoints(3000, 7);
  CustomerDb::Options options;
  options.rtree.page_size = 512;
  options.buffer_fraction = 0.05;
  CustomerDb db(pts, options);
  std::vector<RTree::Hit> hits;
  db.tree()->RangeSearch({200, 200}, 150.0, &hits);  // outside any scope

  Metrics m;
  {
    IoScope scope(&db, &m);
    db.tree()->RangeSearch({800, 800}, 150.0, &hits);
  }
  EXPECT_GT(m.node_accesses, 0u);
  EXPECT_GT(m.page_faults, 0u);
  EXPECT_LE(m.page_faults, m.node_accesses);

  // Finish() is idempotent via the destructor: no double counting.
  Metrics m2;
  IoScope scope2(&db, &m2);
  scope2.Finish();
  scope2.Finish();
  EXPECT_EQ(m2.node_accesses, 0u);
}

TEST(IoScopeTest, NestedScopesAccumulateIndependently) {
  const auto pts = test::RandomPoints(3000, 8);
  CustomerDb::Options options;
  options.rtree.page_size = 512;
  options.buffer_fraction = 0.05;
  CustomerDb db(pts, options);
  std::vector<RTree::Hit> hits;

  Metrics outer, inner;
  IoScope outer_scope(&db, &outer);
  db.tree()->RangeSearch({100, 900}, 100.0, &hits);
  {
    IoScope inner_scope(&db, &inner);
    db.tree()->RangeSearch({900, 100}, 100.0, &hits);
  }
  outer_scope.Finish();
  EXPECT_GT(inner.node_accesses, 0u);
  EXPECT_GE(outer.node_accesses, inner.node_accesses);
}

}  // namespace
}  // namespace cca
