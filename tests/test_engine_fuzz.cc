// Randomised stress tests for the incremental engine: arbitrary edge
// insertion orders, PUA repair torture, weighted-customer fuzz. Every run
// must end optimal (vs. independent solvers) with clean reduced costs.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "flow/oracle.h"
#include "flow/sspa.h"
#include "test_util.h"

namespace cca {
namespace {

struct EdgeTriple {
  int q, p;
  double d;
};

std::vector<EdgeTriple> AllEdges(const Problem& problem) {
  std::vector<EdgeTriple> edges;
  for (std::size_t q = 0; q < problem.providers.size(); ++q) {
    for (std::size_t p = 0; p < problem.customers.size(); ++p) {
      edges.push_back(EdgeTriple{static_cast<int>(q), static_cast<int>(p),
                                 Distance(problem.providers[q].pos, problem.customers[p])});
    }
  }
  return edges;
}

// Feed all edges in a random (non-sorted!) order before solving: Esub
// construction order must not matter once the graph is complete.
TEST(EngineFuzzTest, RandomInsertionOrderStillOptimal) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 4;
    spec.np = 22;
    spec.k_lo = 1;
    spec.k_hi = 6;
    spec.seed = seed;
    const Problem problem = test::RandomProblem(spec);
    auto edges = AllEdges(problem);
    Rng rng(seed * 17);
    for (std::size_t i = edges.size(); i > 1; --i) {
      std::swap(edges[i - 1], edges[static_cast<std::size_t>(rng.NextBelow(i))]);
    }
    Metrics metrics;
    IncrementalEngine engine(problem, IncrementalEngine::Config{}, &metrics);
    for (const auto& e : edges) engine.InsertEdge(e.q, e.p, e.d);
    while (!engine.Done()) {
      ASSERT_LT(engine.ComputeShortestPath(), 1e30);
      engine.AcceptPath();
    }
    std::string error;
    EXPECT_TRUE(engine.CheckReducedCosts(&error)) << error;
    EXPECT_NEAR(engine.BuildMatching().cost(), SolveSspa(problem).matching.cost(), 1e-6)
        << "seed " << seed;
  }
}

// PUA torture: edges arrive one at a time in random order while a Dijkstra
// run is live; a path is accepted only when it beats every edge still
// outside Esub (sound because shorter unexplored edges are a superset of
// what any bound could exclude).
TEST(EngineFuzzTest, PuaRepairWithRandomArrivalOrder) {
  for (std::uint64_t seed = 30; seed <= 40; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 3;
    spec.np = 16;
    spec.k_lo = 2;
    spec.k_hi = 4;
    spec.seed = seed;
    const Problem problem = test::RandomProblem(spec);
    auto edges = AllEdges(problem);
    Rng rng(seed * 23);
    for (std::size_t i = edges.size(); i > 1; --i) {
      std::swap(edges[i - 1], edges[static_cast<std::size_t>(rng.NextBelow(i))]);
    }
    Metrics metrics;
    IncrementalEngine::Config config;
    config.use_pua = true;
    IncrementalEngine engine(problem, config, &metrics);
    std::size_t next = 0;
    // Minimum length among edges not yet inserted (recomputed lazily).
    auto remaining_min = [&] {
      double best = 1e100;
      for (std::size_t i = next; i < edges.size(); ++i) best = std::min(best, edges[i].d);
      return best;
    };
    while (!engine.Done()) {
      const double d = engine.ComputeShortestPath();
      if (d <= remaining_min() + 1e-9) {
        engine.AcceptPath();
        std::string error;
        ASSERT_TRUE(engine.CheckReducedCosts(&error)) << error << " seed " << seed;
      } else {
        ASSERT_LT(next, edges.size());
        engine.InsertEdge(edges[next].q, edges[next].p, edges[next].d);
        ++next;
      }
    }
    EXPECT_NEAR(engine.BuildMatching().cost(), SolveSspa(problem).matching.cost(), 1e-6)
        << "seed " << seed;
  }
}

// Weighted customers with random weights, engine vs. the generic network
// oracle.
TEST(EngineFuzzTest, WeightedCustomersRandomised) {
  for (std::uint64_t seed = 50; seed <= 62; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 3;
    spec.np = 7;
    spec.k_lo = 2;
    spec.k_hi = 9;
    spec.seed = seed;
    Problem problem = test::RandomProblem(spec);
    Rng rng(seed * 31);
    problem.weights.resize(problem.customers.size());
    for (auto& w : problem.weights) w = static_cast<std::int32_t>(rng.UniformInt(1, 5));

    Metrics metrics;
    IncrementalEngine::Config config;
    config.unit_edges = false;
    IncrementalEngine engine(problem, config, &metrics);
    for (std::size_t q = 0; q < problem.providers.size(); ++q) {
      for (std::size_t p = 0; p < problem.customers.size(); ++p) {
        engine.InsertEdge(static_cast<int>(q), static_cast<int>(p),
                          Distance(problem.providers[q].pos, problem.customers[p]));
      }
    }
    while (!engine.Done()) {
      ASSERT_LT(engine.ComputeShortestPath(), 1e30);
      engine.AcceptPath();
      std::string error;
      ASSERT_TRUE(engine.CheckReducedCosts(&error)) << error;
    }
    const Matching m = engine.BuildMatching();
    std::string error;
    EXPECT_TRUE(ValidateMatching(problem, m, &error)) << error;
    EXPECT_NEAR(m.cost(), SolveWithNetworkOracle(problem).cost(), 1e-6) << "seed " << seed;
  }
}

// Multi-unit augmentation consistency: weighted instances where bottleneck
// pushes >1 unit must match a unit-expanded formulation of the same
// problem (each weighted customer cloned into unit copies).
TEST(EngineFuzzTest, WeightedEqualsUnitExpansion) {
  for (std::uint64_t seed = 70; seed <= 78; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 3;
    spec.np = 5;
    spec.k_lo = 3;
    spec.k_hi = 7;
    spec.seed = seed;
    Problem weighted = test::RandomProblem(spec);
    Rng rng(seed * 37);
    weighted.weights.resize(weighted.customers.size());
    for (auto& w : weighted.weights) w = static_cast<std::int32_t>(rng.UniformInt(1, 4));

    Problem expanded;
    expanded.providers = weighted.providers;
    for (std::size_t j = 0; j < weighted.customers.size(); ++j) {
      for (int u = 0; u < weighted.weights[j]; ++u) {
        expanded.customers.push_back(weighted.customers[j]);
      }
    }
    const double weighted_cost = SolveSspa(weighted).matching.cost();
    const double expanded_cost = SolveSspa(expanded).matching.cost();
    EXPECT_NEAR(weighted_cost, expanded_cost, 1e-6) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cca
