// Shared helpers for the CCA test suites: deterministic random instance
// builders and solver comparison utilities.
#ifndef CCA_TESTS_TEST_UTIL_H_
#define CCA_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/customer_db.h"
#include "core/problem.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace cca::test {

inline Rect UnitWorld() { return Rect{{0.0, 0.0}, {1000.0, 1000.0}}; }

// Uniform random points in the [0,1000]^2 world.
inline std::vector<Point> RandomPoints(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(Point{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)});
  }
  return pts;
}

// Clustered points: `clusters` Gaussian blobs plus 20% uniform noise.
inline std::vector<Point> ClusteredPoints(std::size_t n, std::uint64_t seed, int clusters = 5,
                                          double sigma = 40.0) {
  Rng rng(seed);
  std::vector<Point> centres;
  for (int c = 0; c < clusters; ++c) {
    centres.push_back(Point{rng.Uniform(100.0, 900.0), rng.Uniform(100.0, 900.0)});
  }
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < 0.2) {
      pts.push_back(Point{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)});
    } else {
      const auto& c = centres[static_cast<std::size_t>(rng.NextBelow(centres.size()))];
      const double x = std::min(1000.0, std::max(0.0, c.x + rng.NextGaussian() * sigma));
      const double y = std::min(1000.0, std::max(0.0, c.y + rng.NextGaussian() * sigma));
      pts.push_back(Point{x, y});
    }
  }
  return pts;
}

// Skewed points: 90% of the mass packed into a small hot rectangle at the
// origin, the rest uniform across the world (exercises the grid
// auto-tuner and non-uniform cell occupancy).
inline std::vector<Point> SkewedPoints(std::size_t n, std::uint64_t seed, double hot_w = 80.0,
                                       double hot_h = 50.0) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < 0.9) {
      pts.push_back(Point{rng.Uniform(0.0, hot_w), rng.Uniform(0.0, hot_h)});
    } else {
      pts.push_back(Point{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)});
    }
  }
  return pts;
}

struct InstanceSpec {
  std::size_t nq = 4;
  std::size_t np = 30;
  std::int32_t k_lo = 2;      // capacities drawn uniformly from [k_lo, k_hi]
  std::int32_t k_hi = 6;
  bool clustered_q = false;
  bool clustered_p = false;
  std::uint64_t seed = 1;
};

// Builds a random CCA instance per `spec` (unit customer weights).
inline Problem RandomProblem(const InstanceSpec& spec) {
  Problem problem;
  const auto q_pts = spec.clustered_q ? ClusteredPoints(spec.nq, spec.seed * 7 + 1)
                                      : RandomPoints(spec.nq, spec.seed * 7 + 1);
  const auto p_pts = spec.clustered_p ? ClusteredPoints(spec.np, spec.seed * 13 + 2)
                                      : RandomPoints(spec.np, spec.seed * 13 + 2);
  Rng rng(spec.seed * 31 + 3);
  problem.providers.reserve(spec.nq);
  for (const auto& pos : q_pts) {
    problem.providers.push_back(
        Provider{pos, static_cast<std::int32_t>(rng.UniformInt(spec.k_lo, spec.k_hi))});
  }
  problem.customers = p_pts;
  return problem;
}

// Builds an in-memory CustomerDb (small pages to force realistic fanout
// even for small instances).
inline std::unique_ptr<CustomerDb> MakeDb(const Problem& problem, double buffer_fraction = 1.5,
                                          std::uint32_t page_size = 512) {
  CustomerDb::Options options;
  options.rtree.page_size = page_size;
  options.buffer_fraction = buffer_fraction;
  return std::make_unique<CustomerDb>(problem.customers, options);
}

}  // namespace cca::test

#endif  // CCA_TESTS_TEST_UTIL_H_
