// A/B soundness gate for the hierarchical adaptive grid (geo/hier_grid.h):
// SSPA with use_hierarchy on and off must produce the *same trajectory* —
// matching cost, Dijkstra pops and augmentation count all agree — because
// the coarse-tail rejection only ever discards relaxes certified
// irrelevant (coarse floor <= every resident tau, so the coarse bound is a
// union of per-cell bounds already proven sound). Randomized across
// distributions (uniform / clustered / skewed), unit and weighted
// customers, and every relax flavour (ring grid, dense fallback,
// shared-frontier sweep), plus the output-sensitivity regression guard for
// the hierarchical dense fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "flow/sspa.h"
#include "runtime/query_runner.h"
#include "test_util.h"

namespace cca {
namespace {

enum class Relax { kGrid, kDense, kShared };

SspaResult RunFlavour(const Problem& problem, Relax relax, bool hierarchy) {
  SspaConfig config;
  config.use_grid = relax != Relax::kDense;
  config.use_shared_frontier = relax == Relax::kShared;
  config.shared_frontier_min_customers = 0;  // exercise the sweep at any size
  config.use_hierarchy = hierarchy;
  return SolveSspa(problem, config);
}

const char* Name(Relax relax) {
  switch (relax) {
    case Relax::kGrid:
      return "grid";
    case Relax::kDense:
      return "dense";
    default:
      return "shared";
  }
}

// Identical trajectory: cost within float tolerance, augmentation count
// exactly equal, pops equal up to boundary ties. (Every Dijkstra run ends
// by popping the path's final customer and then the sink at the same key,
// and zero-reduced-cost arcs after potential updates routinely put more
// nodes at exactly that key; which of those tied nodes the binary heap
// surfaces before the sink depends on insertion history, which
// legitimately differs between coarse-first and flat cell enumeration.
// Labels strictly below the path distance — and hence the matching and
// the augmentation structure — are enumeration-order independent, which
// is what the coarse bound's soundness argument certifies. The existing
// grid-vs-dense suite gates the same way for the same reason. Relax
// counts may drift further and are not compared: the order shifts *which*
// certified-irrelevant candidates get bound-checked, never the labels.)
void ExpectSameTrajectory(const Problem& problem, const std::string& label) {
  for (const Relax relax : {Relax::kGrid, Relax::kDense, Relax::kShared}) {
    const SspaResult on = RunFlavour(problem, relax, /*hierarchy=*/true);
    const SspaResult off = RunFlavour(problem, relax, /*hierarchy=*/false);
    const std::string tag = label + " " + Name(relax);
    std::string error;
    EXPECT_TRUE(ValidateMatching(problem, on.matching, &error)) << tag << ": " << error;
    EXPECT_NEAR(on.matching.cost(), off.matching.cost(),
                1e-6 * std::max(1.0, off.matching.cost()))
        << tag;
    // At most a handful of tie pops per Dijkstra run; one run per
    // augmentation bounds the total drift.
    const auto pop_gap = on.metrics.dijkstra_pops > off.metrics.dijkstra_pops
                             ? on.metrics.dijkstra_pops - off.metrics.dijkstra_pops
                             : off.metrics.dijkstra_pops - on.metrics.dijkstra_pops;
    EXPECT_LE(pop_gap, off.metrics.augmentations) << tag;
    EXPECT_EQ(on.metrics.augmentations, off.metrics.augmentations) << tag;
    // The hierarchy actually engaged (it is not equivalence-by-vacuity):
    // every flavour routes through the two-level structure when on.
    if (problem.customers.size() > 1) {
      EXPECT_GT(on.metrics.coarse_cells_descended + on.metrics.coarse_tails_pruned, 0u) << tag;
      EXPECT_EQ(off.metrics.coarse_cells_descended, 0u) << tag;
      EXPECT_EQ(off.metrics.coarse_tails_pruned, 0u) << tag;
      EXPECT_EQ(off.metrics.hier_splits, 0u) << tag;
    }
  }
}

Problem MakeInstance(const char* dist, std::size_t nq, std::size_t np, bool weighted,
                     std::uint64_t seed) {
  Problem problem;
  const auto q_pts = test::RandomPoints(nq, seed * 7 + 1);
  Rng rng(seed * 31 + 3);
  problem.providers.reserve(nq);
  for (const auto& pos : q_pts) {
    problem.providers.push_back(
        Provider{pos, static_cast<std::int32_t>(rng.UniformInt(2, 8))});
  }
  if (std::string(dist) == "clustered") {
    problem.customers = test::ClusteredPoints(np, seed * 13 + 2);
  } else if (std::string(dist) == "skewed") {
    problem.customers = test::SkewedPoints(np, seed * 13 + 2);
  } else {
    problem.customers = test::RandomPoints(np, seed * 13 + 2);
  }
  if (weighted) {
    problem.weights.resize(np);
    for (auto& w : problem.weights) w = static_cast<std::int32_t>(rng.UniformInt(1, 4));
  }
  return problem;
}

TEST(SspaHierEquivalence, RandomizedAcrossDistributionsAndWeights) {
  for (const char* dist : {"uniform", "clustered", "skewed"}) {
    for (const bool weighted : {false, true}) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const Problem problem = MakeInstance(dist, 6 + seed, 120 + 60 * seed, weighted, seed);
        ExpectSameTrajectory(problem, std::string(dist) + (weighted ? " weighted" : " unit") +
                                          " seed " + std::to_string(seed));
      }
    }
  }
}

TEST(SspaHierEquivalence, SplitThresholdVariantsAgree) {
  // The split policy only redistributes points between fine cells; any
  // threshold (including "never split") must leave the trajectory alone.
  const Problem problem = MakeInstance("skewed", 8, 400, /*weighted=*/true, 5);
  SspaConfig base;
  base.use_grid = true;
  base.use_hierarchy = true;
  const SspaResult reference = SolveSspa(problem, base);
  for (const std::size_t threshold : {1u, 64u, 100000u}) {
    SspaConfig config = base;
    config.hier_split_threshold = threshold;
    const SspaResult got = SolveSspa(problem, config);
    EXPECT_NEAR(got.matching.cost(), reference.matching.cost(),
                1e-6 * std::max(1.0, reference.matching.cost()))
        << "threshold " << threshold;
    const auto pop_gap = got.metrics.dijkstra_pops > reference.metrics.dijkstra_pops
                             ? got.metrics.dijkstra_pops - reference.metrics.dijkstra_pops
                             : reference.metrics.dijkstra_pops - got.metrics.dijkstra_pops;
    EXPECT_LE(pop_gap, reference.metrics.augmentations) << "threshold " << threshold;
    EXPECT_EQ(got.metrics.augmentations, reference.metrics.augmentations)
        << "threshold " << threshold;
  }
}

TEST(SspaHierEquivalence, SharedIndexInjectionMatchesPrivateBuild) {
  // A solve borrowing the SharedIndex's hierarchical grid must be
  // bit-identical to one building its own (same counters included — the
  // borrowed structure is the same structure).
  const Problem problem = MakeInstance("skewed", 8, 300, /*weighted=*/false, 9);
  SharedIndex::Options options;
  options.build_customer_db = false;
  const SharedIndex index(problem.customers, options);
  QueryRunner runner(&index, 1);
  QuerySpec spec;
  spec.solver = QuerySolver::kSspa;
  spec.problem = problem;
  spec.sspa.use_grid = true;
  spec.sspa.use_hierarchy = true;
  const QueryOutcome outcome = runner.Run({spec}).front();
  const SspaResult direct = SolveSspa(problem, spec.sspa);
  EXPECT_NEAR(outcome.matching.cost(), direct.matching.cost(),
              1e-9 * std::max(1.0, direct.matching.cost()));
  EXPECT_EQ(outcome.metrics.dijkstra_pops, direct.metrics.dijkstra_pops);
  EXPECT_EQ(outcome.metrics.dijkstra_relaxes, direct.metrics.dijkstra_relaxes);
  EXPECT_EQ(outcome.metrics.coarse_tails_pruned, direct.metrics.coarse_tails_pruned);
  EXPECT_EQ(outcome.metrics.coarse_cells_descended, direct.metrics.coarse_cells_descended);
  EXPECT_EQ(outcome.metrics.hier_splits, direct.metrics.hier_splits);
}

// The output-sensitivity claim the dense fallback's hierarchy exists for:
// descending only into coarse cells whose aggregated floor survives the
// reduced-cost test must collapse dense_cells_checked by a large constant
// factor. The acceptance-bar shape (100x10k, >=10x) runs in Release only;
// Debug keeps a smaller shape with a proportionally softer bar so the
// guard still trips on a broken descent filter without minutes of -O0.
TEST(SspaHierEquivalence, DenseDescentCollapsesCellChecks) {
#ifdef NDEBUG
  const std::size_t nq = 100, np = 10000;
  const double min_ratio = 10.0;
#else
  const std::size_t nq = 30, np = 2500;
  const double min_ratio = 3.0;
#endif
  Problem problem;
  const auto q_pts = test::RandomPoints(nq, 71);
  Rng rng(73);
  for (const auto& pos : q_pts) {
    problem.providers.push_back(Provider{pos, static_cast<std::int32_t>(np / nq / 2)});
  }
  problem.customers = test::RandomPoints(np, 72);
  const SspaResult hier = RunFlavour(problem, Relax::kDense, /*hierarchy=*/true);
  const SspaResult flat = RunFlavour(problem, Relax::kDense, /*hierarchy=*/false);
  EXPECT_NEAR(hier.matching.cost(), flat.matching.cost(),
              1e-6 * std::max(1.0, flat.matching.cost()));
  EXPECT_EQ(hier.metrics.augmentations, flat.metrics.augmentations);
  ASSERT_GT(hier.metrics.dense_cells_checked, 0u);
  const double ratio = static_cast<double>(flat.metrics.dense_cells_checked) /
                       static_cast<double>(hier.metrics.dense_cells_checked);
  EXPECT_GE(ratio, min_ratio) << "dense descent stopped being output-sensitive: "
                              << flat.metrics.dense_cells_checked << " flat vs "
                              << hier.metrics.dense_cells_checked << " hierarchical";
}

}  // namespace
}  // namespace cca
