// CellTauTable (geo/grid.h): the incremental per-cell floor of a
// monotonically raised per-point value (the SSPA customer potentials).
// The solver-facing invariant is that a cell's floor never exceeds the
// min value of the cell's residents — that is what makes the per-cell
// reduced-cost bound a certified lower bound (src/flow/README.md). The
// implementation additionally keeps floors *exact* after every Raise,
// which these tests pin down under randomized augmentation-like update
// sequences, along with the cached global floor and the slot alignment
// of the value array with the grid's clustered slices.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "geo/grid.h"
#include "test_util.h"

namespace cca {
namespace {

// Brute-force per-cell minimum over a shadow (point-id-indexed) copy.
double BruteFloor(const UniformGrid& grid, const std::vector<double>& by_id,
                  std::size_t cell) {
  double floor = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < by_id.size(); ++i) {
    if (grid.cell_of_point(i) == cell) floor = std::min(floor, by_id[i]);
  }
  return floor;
}

TEST(CellTauFloorTest, StartsAtZeroEverywhere) {
  const auto pts = test::RandomPoints(300, 11);
  const UniformGrid grid(pts, 4.0);
  CellTauTable table(grid);
  EXPECT_EQ(table.GlobalFloor(), 0.0);
  for (const std::int32_t c : grid.nonempty_cells()) {
    EXPECT_EQ(table.CellFloor(static_cast<std::size_t>(c)), 0.0);
  }
}

TEST(CellTauFloorTest, EmptyCellsFloorAtInfinity) {
  // A sparse set over a wide box leaves most cells empty; their floor must
  // never win a min against occupied cells.
  std::vector<Point> pts{{0, 0}, {1000, 1000}};
  const UniformGrid grid(pts, 1.0);
  CellTauTable table(grid);
  std::size_t empty_cells = 0;
  for (std::size_t c = 0; c < grid.num_cells(); ++c) {
    if (grid.cell_begin(c) == grid.cell_end(c)) {
      EXPECT_EQ(table.CellFloor(c), std::numeric_limits<double>::infinity());
      ++empty_cells;
    }
  }
  EXPECT_GT(empty_cells, 0u);
  EXPECT_EQ(table.GlobalFloor(), 0.0);
}

// The core invariant under randomized monotone update sequences: after
// every batch of raises (an "augmentation"), each touched or untouched
// cell's floor equals — and in particular never exceeds — the min value
// of its residents, and the global floor equals the min over all points.
TEST(CellTauFloorTest, RandomizedAugmentationSequencesKeepFloorsExact) {
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    const auto pts = test::RandomPoints(400, 31 + seed);
    const UniformGrid grid(pts, 4.0);
    CellTauTable table(grid);
    std::vector<double> by_id(pts.size(), 0.0);
    Rng rng(seed);
    for (int round = 0; round < 60; ++round) {
      // A batch of raises, like one augmentation's shortest-path tree:
      // a random subset of points receives a positive delta.
      const std::size_t touched = 1 + rng.UniformInt(0, 40);
      for (std::size_t t = 0; t < touched; ++t) {
        const auto i = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(pts.size()) - 1));
        by_id[i] += rng.Uniform(0.0, 10.0);
        table.Raise(i, by_id[i]);
      }
      double global = std::numeric_limits<double>::infinity();
      for (const std::int32_t c : grid.nonempty_cells()) {
        const auto cell = static_cast<std::size_t>(c);
        const double brute = BruteFloor(grid, by_id, cell);
        EXPECT_LE(table.CellFloor(cell), brute) << "round " << round;  // soundness
        EXPECT_EQ(table.CellFloor(cell), brute) << "round " << round;  // exactness
        global = std::min(global, brute);
      }
      EXPECT_EQ(table.GlobalFloor(), global) << "round " << round;
    }
  }
}

TEST(CellTauFloorTest, LoweringAttemptsAreIgnored) {
  const auto pts = test::RandomPoints(50, 77);
  const UniformGrid grid(pts, 4.0);
  CellTauTable table(grid);
  table.Raise(7, 5.0);
  const std::size_t cell = grid.cell_of_point(7);
  table.Raise(7, 3.0);  // violates the monotone contract: must be a no-op
  EXPECT_EQ(table.values()[grid.slot_of_point(7)], 5.0);
  const double expect = BruteFloor(grid, [&] {
    std::vector<double> by_id(pts.size(), 0.0);
    by_id[7] = 5.0;
    return by_id;
  }(), cell);
  EXPECT_EQ(table.CellFloor(cell), expect);
}

TEST(CellTauFloorTest, ValuesAlignWithClusteredSlices) {
  const auto pts = test::RandomPoints(200, 91);
  const UniformGrid grid(pts, 4.0);
  CellTauTable table(grid);
  std::vector<double> by_id(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    by_id[i] = static_cast<double>(i) + 1.0;
    table.Raise(i, by_id[i]);
  }
  // values()[slice.first_slot + i] must be the value of slice.ids[i] — the
  // contract that lets DistanceBlockSelect stream taus next to xs/ys.
  for (const std::int32_t c : grid.nonempty_cells()) {
    const UniformGrid::CellSlice slice = grid.Cell(static_cast<std::size_t>(c));
    for (std::size_t i = 0; i < slice.count; ++i) {
      EXPECT_EQ(table.values()[slice.first_slot + i],
                by_id[static_cast<std::size_t>(slice.ids[i])]);
    }
  }
}

// --- between-solve population edits (the AssignmentEngine contract) -----
// Remove / Insert are legal only between solves; a solve in flight stays
// on the monotone Raise. The contract is exact refloors in *both*
// directions, including the cached global floor.

TEST(CellTauFloorTest, SeededConstructionStartsExact) {
  const auto pts = test::RandomPoints(300, 101);
  const UniformGrid grid(pts, 4.0);
  std::vector<double> by_id(pts.size());
  Rng rng(5);
  for (auto& v : by_id) v = rng.Uniform(0.0, 50.0);
  CellTauTable table(grid, by_id);
  double global = std::numeric_limits<double>::infinity();
  for (const std::int32_t c : grid.nonempty_cells()) {
    const auto cell = static_cast<std::size_t>(c);
    EXPECT_EQ(table.CellFloor(cell), BruteFloor(grid, by_id, cell));
    global = std::min(global, BruteFloor(grid, by_id, cell));
    // Seeds land slot-ordered, aligned with the grid's clustered slices.
    const UniformGrid::CellSlice slice = grid.Cell(cell);
    for (std::size_t i = 0; i < slice.count; ++i) {
      EXPECT_EQ(table.values()[slice.first_slot + i],
                by_id[static_cast<std::size_t>(slice.ids[i])]);
    }
  }
  EXPECT_EQ(table.GlobalFloor(), global);
}

TEST(CellTauFloorTest, RemoveRefloorsCellAndGlobalExactly) {
  // One cell holding the global min plus a far cell: removing the min
  // resident must raise the cell floor to the runner-up, and emptying the
  // cell entirely must leave it at +infinity (like a never-occupied cell)
  // with the global floor migrating to the survivors.
  std::vector<Point> pts{{0, 0}, {1, 1}, {900, 900}};
  const UniformGrid grid(pts, 2.0);
  CellTauTable table(grid, {3.0, 8.0, 5.0});
  const std::size_t cell_a = grid.cell_of_point(0);
  ASSERT_EQ(cell_a, grid.cell_of_point(1));
  ASSERT_NE(cell_a, grid.cell_of_point(2));
  EXPECT_EQ(table.GlobalFloor(), 3.0);
  table.Remove(0);
  EXPECT_EQ(table.CellFloor(cell_a), 8.0);
  EXPECT_EQ(table.GlobalFloor(), 5.0);
  EXPECT_EQ(table.values()[grid.slot_of_point(0)],
            std::numeric_limits<double>::infinity());
  table.Remove(1);  // cell_a now fully removed
  EXPECT_EQ(table.CellFloor(cell_a), std::numeric_limits<double>::infinity());
  EXPECT_EQ(table.GlobalFloor(), 5.0);
  table.Remove(2);  // empty population: global floor drains to +infinity
  EXPECT_EQ(table.GlobalFloor(), std::numeric_limits<double>::infinity());
}

TEST(CellTauFloorTest, InsertLowersFloorsAndReadmitsRemovedPoints) {
  std::vector<Point> pts{{0, 0}, {1, 1}, {900, 900}};
  const UniformGrid grid(pts, 2.0);
  CellTauTable table(grid, {3.0, 8.0, 5.0});
  const std::size_t cell_a = grid.cell_of_point(0);
  // Unlike Raise, Insert may move a live value in either direction.
  table.Insert(1, 1.0);
  EXPECT_EQ(table.CellFloor(cell_a), 1.0);
  EXPECT_EQ(table.GlobalFloor(), 1.0);
  table.Insert(1, 9.0);  // back up: floor refloors to the other resident
  EXPECT_EQ(table.CellFloor(cell_a), 3.0);
  // Remove then re-admit — the engine's departure/arrival round trip.
  table.Remove(0);
  table.Remove(1);
  ASSERT_EQ(table.CellFloor(cell_a), std::numeric_limits<double>::infinity());
  table.Insert(0, 2.5);
  EXPECT_EQ(table.CellFloor(cell_a), 2.5);
  EXPECT_EQ(table.GlobalFloor(), 2.5);
}

TEST(CellTauFloorTest, RandomizedEditSequencesKeepFloorsExact) {
  const auto pts = test::RandomPoints(250, 113);
  const UniformGrid grid(pts, 4.0);
  std::vector<double> by_id(pts.size(), 0.0);
  CellTauTable table(grid, by_id);
  Rng rng(17);
  for (int round = 0; round < 200; ++round) {
    const auto i = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(pts.size()) - 1));
    const double r = rng.NextDouble();
    if (r < 0.4) {
      by_id[i] = std::numeric_limits<double>::infinity();
      table.Remove(i);
    } else {
      by_id[i] = rng.Uniform(0.0, 30.0);
      table.Insert(i, by_id[i]);
    }
    if (round % 20 != 19) continue;
    double global = std::numeric_limits<double>::infinity();
    for (const std::int32_t c : grid.nonempty_cells()) {
      const auto cell = static_cast<std::size_t>(c);
      EXPECT_EQ(table.CellFloor(cell), BruteFloor(grid, by_id, cell))
          << "round " << round;
      global = std::min(global, BruteFloor(grid, by_id, cell));
    }
    EXPECT_EQ(table.GlobalFloor(), global) << "round " << round;
  }
}

TEST(CellTauFloorTest, GlobalFloorTracksDisplacedMinimumAcrossCells) {
  // Two far-apart clumps in different cells: raise the clump holding the
  // global min and the cached global floor must migrate to the other.
  std::vector<Point> pts{{0, 0}, {1, 1}, {900, 900}, {901, 901}};
  const UniformGrid grid(pts, 2.0);
  CellTauTable table(grid);
  ASSERT_NE(grid.cell_of_point(0), grid.cell_of_point(2));
  table.Raise(2, 4.0);
  table.Raise(3, 6.0);
  EXPECT_EQ(table.GlobalFloor(), 0.0);  // clump A still at 0
  table.Raise(0, 10.0);
  table.Raise(1, 12.0);
  EXPECT_EQ(table.GlobalFloor(), 4.0);  // min moved to clump B
  table.Raise(2, 20.0);
  EXPECT_EQ(table.GlobalFloor(), 6.0);
}

}  // namespace
}  // namespace cca
