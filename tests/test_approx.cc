// Approximate solver tests: validity, the Theorem-3/4 error bounds,
// quality behaviour in delta, refinement modes.
#include <string>

#include <gtest/gtest.h>

#include "core/approx.h"
#include "flow/sspa.h"
#include "test_util.h"

namespace cca {
namespace {

struct ApproxCase {
  std::string label;
  test::InstanceSpec spec;
  double delta;
  RefineMode refine;
};

class ApproxParamTest : public ::testing::TestWithParam<ApproxCase> {};

TEST_P(ApproxParamTest, SaValidWithinTheorem3Bound) {
  const auto& param = GetParam();
  const Problem problem = test::RandomProblem(param.spec);
  auto db = test::MakeDb(problem);
  ApproxConfig config;
  config.delta = param.delta;
  config.refine = param.refine;
  const ApproxResult sa = SolveSa(problem, db.get(), config);

  std::string error;
  EXPECT_TRUE(ValidateMatching(problem, sa.matching, &error)) << "SA: " << error;
  const double optimal = SolveSspa(problem).matching.cost();
  EXPECT_GE(sa.matching.cost(), optimal - 1e-6);
  EXPECT_LE(sa.matching.cost(), optimal + SaErrorBound(problem.Gamma(), param.delta) + 1e-6);
  EXPECT_GE(sa.num_groups, 1u);
}

TEST_P(ApproxParamTest, CaValidWithinTheorem4Bound) {
  const auto& param = GetParam();
  const Problem problem = test::RandomProblem(param.spec);
  auto db = test::MakeDb(problem);
  ApproxConfig config;
  config.delta = param.delta;
  config.refine = param.refine;
  const ApproxResult ca = SolveCa(problem, db.get(), config);

  std::string error;
  EXPECT_TRUE(ValidateMatching(problem, ca.matching, &error)) << "CA: " << error;
  const double optimal = SolveSspa(problem).matching.cost();
  EXPECT_GE(ca.matching.cost(), optimal - 1e-6);
  EXPECT_LE(ca.matching.cost(), optimal + CaErrorBound(problem.Gamma(), param.delta) + 1e-6);
}

test::InstanceSpec Spec(std::size_t nq, std::size_t np, std::int32_t k, bool clustered,
                        std::uint64_t seed) {
  test::InstanceSpec s;
  s.nq = nq;
  s.np = np;
  s.k_lo = k;
  s.k_hi = k;
  s.clustered_p = clustered;
  s.seed = seed;
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ApproxParamTest,
    ::testing::Values(
        ApproxCase{"SmallDeltaNN", Spec(6, 80, 8, false, 1), 10.0,
                   RefineMode::kNearestNeighbor},
        ApproxCase{"SmallDeltaEx", Spec(6, 80, 8, false, 2), 10.0,
                   RefineMode::kExclusiveNearestNeighbor},
        ApproxCase{"MediumDeltaNN", Spec(8, 100, 6, true, 3), 40.0,
                   RefineMode::kNearestNeighbor},
        ApproxCase{"LargeDeltaEx", Spec(8, 100, 6, true, 4), 160.0,
                   RefineMode::kExclusiveNearestNeighbor},
        ApproxCase{"ScarceCapacity", Spec(5, 120, 4, false, 5), 40.0,
                   RefineMode::kNearestNeighbor},
        ApproxCase{"AbundantCapacity", Spec(5, 40, 30, false, 6), 40.0,
                   RefineMode::kExclusiveNearestNeighbor}),
    [](const ::testing::TestParamInfo<ApproxCase>& info) { return info.param.label; });

TEST(ApproxTest, TinyDeltaNearOptimal) {
  // delta -> 0 degenerates to singleton groups: the result must match the
  // exact optimum (refinement of singleton groups is trivial).
  test::InstanceSpec spec = Spec(5, 60, 6, false, 7);
  const Problem problem = test::RandomProblem(spec);
  auto db = test::MakeDb(problem);
  ApproxConfig config;
  config.delta = 1e-6;
  const ApproxResult sa = SolveSa(problem, db.get(), config);
  const double optimal = SolveSspa(problem).matching.cost();
  EXPECT_NEAR(sa.matching.cost(), optimal, 1e-3);
}

TEST(ApproxTest, QualityDegradesGracefullyWithDelta) {
  const Problem problem = test::RandomProblem(Spec(8, 150, 10, true, 8));
  auto db = test::MakeDb(problem);
  const double optimal = SolveSspa(problem).matching.cost();
  double prev_groups = 1e18;
  for (double delta : {10.0, 80.0, 640.0}) {
    ApproxConfig config;
    config.delta = delta;
    const ApproxResult ca = SolveCa(problem, db.get(), config);
    const double ratio = ca.matching.cost() / optimal;
    EXPECT_GE(ratio, 1.0 - 1e-9);
    EXPECT_LE(ratio, 1.0 + CaErrorBound(problem.Gamma(), delta) / optimal + 1e-9);
    // Group count must shrink as delta grows.
    EXPECT_LE(static_cast<double>(ca.num_groups), prev_groups);
    prev_groups = static_cast<double>(ca.num_groups);
  }
}

TEST(ApproxTest, CaConciseWeightsCoverAllCustomers) {
  const Problem problem = test::RandomProblem(Spec(4, 200, 10, true, 9));
  auto db = test::MakeDb(problem);
  ApproxConfig config;
  config.delta = 50.0;
  const ApproxResult ca = SolveCa(problem, db.get(), config);
  // gamma = min(|P|, sum k) = 40 here; the final matching must hit it.
  EXPECT_EQ(ca.matching.size(), problem.Gamma());
}

TEST(ApproxTest, SaConciseCostBelowFinalCost) {
  // The concise matching solves a relaxation-ish problem on representatives;
  // refinement adds per-pair displacement, so the final cost should exceed
  // the concise cost minus slack (sanity relation, not a theorem).
  const Problem problem = test::RandomProblem(Spec(10, 100, 5, false, 10));
  auto db = test::MakeDb(problem);
  ApproxConfig config;
  config.delta = 60.0;
  const ApproxResult sa = SolveSa(problem, db.get(), config);
  EXPECT_GT(sa.concise_cost, 0.0);
  EXPECT_GE(sa.matching.cost(),
            sa.concise_cost - SaErrorBound(problem.Gamma(), config.delta));
}

TEST(ApproxTest, DeterministicAcrossRuns) {
  const Problem problem = test::RandomProblem(Spec(6, 90, 5, true, 11));
  auto db = test::MakeDb(problem);
  ApproxConfig config;
  config.delta = 40.0;
  const ApproxResult a = SolveCa(problem, db.get(), config);
  const ApproxResult b = SolveCa(problem, db.get(), config);
  EXPECT_DOUBLE_EQ(a.matching.cost(), b.matching.cost());
  EXPECT_EQ(a.num_groups, b.num_groups);
}

TEST(ApproxTest, RefineModesBothValid) {
  const Problem problem = test::RandomProblem(Spec(7, 110, 6, true, 12));
  auto db = test::MakeDb(problem);
  for (RefineMode mode :
       {RefineMode::kNearestNeighbor, RefineMode::kExclusiveNearestNeighbor}) {
    ApproxConfig config;
    config.delta = 30.0;
    config.refine = mode;
    const ApproxResult sa = SolveSa(problem, db.get(), config);
    const ApproxResult ca = SolveCa(problem, db.get(), config);
    std::string error;
    EXPECT_TRUE(ValidateMatching(problem, sa.matching, &error)) << error;
    EXPECT_TRUE(ValidateMatching(problem, ca.matching, &error)) << error;
  }
}

}  // namespace
}  // namespace cca
