// Delta-bounded partition descent tests (CA partitioning substrate).
#include <vector>

#include <gtest/gtest.h>

#include "rtree/partition_scan.h"
#include "rtree/rtree.h"
#include "test_util.h"

namespace cca {
namespace {

using test::ClusteredPoints;
using test::RandomPoints;

struct ScanCase {
  std::size_t n;
  double delta;
  bool clustered;
  std::uint64_t seed;
};

class DeltaPartitionTest : public ::testing::TestWithParam<ScanCase> {};

TEST_P(DeltaPartitionTest, CoversDatasetWithBoundedDiagonals) {
  const auto& param = GetParam();
  const auto pts = param.clustered ? ClusteredPoints(param.n, param.seed)
                                   : RandomPoints(param.n, param.seed);
  RTree::Options options;
  options.page_size = 256;
  auto tree = RTree::BulkLoad(pts, options);
  const auto entries = DeltaPartition(tree.get(), param.delta);

  std::uint64_t total = 0;
  std::vector<char> seen(pts.size(), 0);
  std::vector<RTree::Hit> members;
  for (const auto& e : entries) {
    EXPECT_LE(e.rect.Diagonal(), param.delta + 1e-9);
    EXPECT_GE(e.count, 1u);
    total += e.count;
    CollectPoints(tree.get(), e, &members);
    EXPECT_EQ(members.size(), e.count);
    for (const auto& h : members) {
      EXPECT_TRUE(e.rect.Contains(h.pos))
          << "member outside its group rect";
      EXPECT_FALSE(seen[h.oid]) << "point assigned to two groups";
      seen[h.oid] = 1;
    }
  }
  EXPECT_EQ(total, pts.size());
}

INSTANTIATE_TEST_SUITE_P(Cases, DeltaPartitionTest,
                         ::testing::Values(ScanCase{200, 100.0, false, 41},
                                           ScanCase{1000, 50.0, false, 42},
                                           ScanCase{1000, 10.0, false, 43},
                                           ScanCase{2000, 25.0, true, 44},
                                           ScanCase{500, 1500.0, false, 45},
                                           ScanCase{100, 2.0, true, 46}));

TEST(DeltaPartitionTest, HugeDeltaYieldsSingleGroup) {
  const auto pts = RandomPoints(300, 47);
  auto tree = RTree::BulkLoad(pts);
  const auto entries = DeltaPartition(tree.get(), 1e6);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].count, 300u);
  EXPECT_EQ(entries[0].subtree, tree->root());
}

TEST(DeltaPartitionTest, TinyDeltaSplitsLeaves) {
  const auto pts = RandomPoints(400, 48);
  RTree::Options options;
  options.page_size = 256;
  auto tree = RTree::BulkLoad(pts, options);
  const auto entries = DeltaPartition(tree.get(), 1.0);
  // With a delta far below leaf MBR sizes, most groups come from
  // conceptual leaf splits and carry explicit points.
  std::size_t with_points = 0;
  for (const auto& e : entries) {
    if (e.subtree == kInvalidPage) ++with_points;
  }
  EXPECT_GT(with_points, entries.size() / 2);
}

TEST(DeltaPartitionTest, DescentReadsFewerNodesForLargeDelta) {
  const auto pts = RandomPoints(5000, 49);
  RTree::Options options;
  options.page_size = 256;
  auto tree = RTree::BulkLoad(pts, options);
  tree->ResetCounters();
  DeltaPartition(tree.get(), 200.0);
  const auto coarse = tree->node_accesses();
  tree->ResetCounters();
  DeltaPartition(tree.get(), 5.0);
  const auto fine = tree->node_accesses();
  EXPECT_LT(coarse, fine);
}

}  // namespace
}  // namespace cca
