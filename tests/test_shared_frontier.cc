// Shared-frontier batched discovery (geo/shared_frontier.h and the
// grid-batched NnSource backend): per-subscriber streams must stay exact
// incremental NN streams while cells are fetched once per group, across
// the edge cases the per-cursor backends never hit — empty subscriber
// sets, mid-stream retirement, duplicate/co-located points — plus the
// fetch-amortisation regression guard at |Q|=100, |P|=10k.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "core/matching.h"
#include "core/nn_source.h"
#include "flow/sspa.h"
#include "geo/grid_cursor.h"
#include "geo/shared_frontier.h"
#include "test_util.h"

namespace cca {
namespace {

// Full expected stream of (oid, dist) for one query, ascending (dist, oid).
std::vector<std::pair<std::int32_t, double>> BruteForceStream(const std::vector<Point>& pts,
                                                              const Point& q) {
  std::vector<std::pair<std::int32_t, double>> hits;
  hits.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    hits.emplace_back(static_cast<std::int32_t>(i), Distance(q, pts[i]));
  }
  std::sort(hits.begin(), hits.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second < b.second : a.first < b.first;
  });
  return hits;
}

TEST(SharedFrontierTest, SingleSubscriberDegeneratesToGridNnCursor) {
  const auto pts = test::RandomPoints(500, 41);
  const UniformGrid grid(pts, 32.0);
  for (const Point& q : {Point{500, 500}, Point{0, 0}, Point{1200, -40}}) {
    SharedFrontier frontier(grid, {q});
    GridNnCursor cursor(grid, q);
    std::size_t served = 0;
    while (true) {
      const auto from_frontier = frontier.NextNN(0);
      const auto from_cursor = cursor.Next();
      ASSERT_EQ(from_frontier.has_value(), from_cursor.has_value());
      if (!from_frontier) break;
      // Identical hit order, not merely identical distances.
      ASSERT_EQ(from_frontier->first, from_cursor->first) << "hit " << served;
      ASSERT_DOUBLE_EQ(from_frontier->second, from_cursor->second) << "hit " << served;
      ++served;
    }
    EXPECT_EQ(served, pts.size());
    // A lone subscriber shares with nobody: every fetch is delivered once,
    // and the fetch count matches the private cursor exactly.
    EXPECT_EQ(frontier.stats().cell_fetches, cursor.cells_visited());
    EXPECT_EQ(frontier.stats().fanout, frontier.stats().cell_fetches);
  }
}

TEST(SharedFrontierTest, MultiSubscriberStreamsAreExactAndShareFetches) {
  const auto pts = test::RandomPoints(400, 43);
  const UniformGrid grid(pts, 64.0);
  // A tight clump of subscribers (the Hilbert-group case) plus one far.
  const std::vector<Point> queries{{480, 510}, {505, 505}, {520, 490}, {40, 960}};
  SharedFrontier frontier(grid, queries);
  std::uint64_t solo_fetches = 0;
  for (std::size_t s = 0; s < queries.size(); ++s) {
    const auto expect = BruteForceStream(pts, queries[s]);
    double prev = -1.0;
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_DOUBLE_EQ(frontier.PeekDistance(static_cast<int>(s)), expect[i].second);
      const auto hit = frontier.NextNN(static_cast<int>(s));
      ASSERT_TRUE(hit.has_value());
      EXPECT_DOUBLE_EQ(hit->second, expect[i].second) << "subscriber " << s << " hit " << i;
      EXPECT_GE(hit->second, prev);
      prev = hit->second;
    }
    EXPECT_FALSE(frontier.NextNN(static_cast<int>(s)).has_value());
    GridNnCursor solo(grid, queries[s]);
    while (solo.Next()) {
    }
    solo_fetches += solo.cells_visited();
  }
  // Full drains touch every cell once per subscriber when solo; the shared
  // frontier fetches each cell exactly once.
  EXPECT_LT(frontier.stats().cell_fetches, solo_fetches);
  EXPECT_GT(frontier.stats().fanout, frontier.stats().cell_fetches);
}

TEST(SharedFrontierTest, EmptySubscriberSetIsInert) {
  const auto pts = test::RandomPoints(50, 47);
  const UniformGrid grid(pts, 8.0);
  SharedFrontier frontier(grid, {});
  EXPECT_EQ(frontier.num_subscribers(), 0u);
  EXPECT_EQ(frontier.stats().cell_fetches, 0u);
  EXPECT_EQ(frontier.stats().fanout, 0u);
}

TEST(SharedFrontierTest, EmptyProviderSetBuildsThroughFactory) {
  Problem problem;
  problem.customers = test::RandomPoints(60, 53);
  auto db = test::MakeDb(problem);
  ExactConfig config;
  config.discovery_backend = DiscoveryBackend::kGridBatched;
  Metrics metrics;
  auto source = MakeNnSource(db.get(), problem, config, &metrics);
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(metrics.shared_frontier_cell_fetches, 0u);
}

TEST(SharedFrontierTest, DuplicateAndColocatedPointsServedOncePerSubscriber) {
  // Three stacked duplicates plus co-located pairs inside one cell.
  std::vector<Point> pts{{10, 10}, {10, 10}, {10, 10}, {12, 11}, {12, 11},
                         {40, 40}, {40, 45}, {90, 15}, {15, 90}, {60, 60}};
  const UniformGrid grid(pts, 4.0);
  const std::vector<Point> queries{{10, 10}, {85, 80}};
  SharedFrontier frontier(grid, queries);
  for (std::size_t s = 0; s < queries.size(); ++s) {
    const auto expect = BruteForceStream(pts, queries[s]);
    for (std::size_t i = 0; i < expect.size(); ++i) {
      const auto hit = frontier.NextNN(static_cast<int>(s));
      ASSERT_TRUE(hit.has_value());
      EXPECT_DOUBLE_EQ(hit->second, expect[i].second);
      // Co-located points land in one cell, so equal-distance candidates
      // are all heap-resident together and tie-break on ascending id.
      EXPECT_EQ(hit->first, expect[i].first) << "subscriber " << s << " hit " << i;
    }
    EXPECT_FALSE(frontier.NextNN(static_cast<int>(s)).has_value());
  }
}

TEST(SharedFrontierTest, UnsubscribedMemberStopsReceivingDeliveries) {
  const auto pts = test::RandomPoints(300, 59);
  const UniformGrid grid(pts, 32.0);
  SharedFrontier frontier(grid, {Point{200, 200}, Point{210, 190}});
  frontier.Unsubscribe(1);
  const auto expect = BruteForceStream(pts, Point{200, 200});
  for (std::size_t i = 0; i < expect.size(); ++i) {
    const auto hit = frontier.NextNN(0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(hit->second, expect[i].second);
  }
  EXPECT_FALSE(frontier.subscribed(1));
  // Every fetch delivered to subscriber 0 alone; the terminated stream
  // serves nothing.
  EXPECT_EQ(frontier.stats().fanout, frontier.stats().cell_fetches);
  EXPECT_FALSE(frontier.NextNN(1).has_value());
  EXPECT_EQ(frontier.PeekDistance(1), std::numeric_limits<double>::infinity());
}

TEST(SharedFrontierTest, MidStreamUnsubscribeKeepsRemainingStreamsExact) {
  const auto pts = test::RandomPoints(300, 61);
  const UniformGrid grid(pts, 32.0);
  SharedFrontier frontier(grid, {Point{500, 480}, Point{520, 500}});
  const auto expect0 = BruteForceStream(pts, Point{500, 480});
  const auto expect1 = BruteForceStream(pts, Point{520, 500});
  // Interleave a while, retire subscriber 1 (capacity exhausted), then
  // finish subscriber 0: its stream must not miss or reorder anything.
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(frontier.NextNN(0)->second, expect0[i].second);
    EXPECT_DOUBLE_EQ(frontier.NextNN(1)->second, expect1[i].second);
  }
  frontier.Unsubscribe(1);
  for (std::size_t i = 20; i < expect0.size(); ++i) {
    const auto hit = frontier.NextNN(0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(hit->second, expect0[i].second) << "hit " << i;
  }
  EXPECT_FALSE(frontier.NextNN(0).has_value());
  // Unsubscribing terminates the stream: no more hits, ever — the slot's
  // pending candidates were released, and subscriber 0's later demand
  // cannot resurrect it.
  EXPECT_FALSE(frontier.NextNN(1).has_value());
  EXPECT_EQ(frontier.PeekDistance(1), std::numeric_limits<double>::infinity());
}

// The leak regression Unsubscribe fixes: a retired slot used to keep its
// whole candidate heap (every delivered-but-unserved point) and its
// per-cell delivery map alive for the frontier's lifetime, while shared
// deliveries kept refilling the heap of the *demanding* retiree.
TEST(SharedFrontierTest, UnsubscribeReleasesQueuedCandidatesAndSlot) {
  const auto pts = test::RandomPoints(400, 63);
  const UniformGrid grid(pts, 32.0);
  SharedFrontier frontier(grid, {Point{500, 500}, Point{505, 495}});
  // Pull a few hits so subscriber 1's heap holds delivered-but-unserved
  // candidates (its clump-mate's demand multiplexes whole cells to it).
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(frontier.NextNN(0).has_value());
    ASSERT_TRUE(frontier.NextNN(1).has_value());
  }
  ASSERT_GT(frontier.queued_candidates(1), 0u);
  ASSERT_GT(frontier.delivered_map_capacity(1), 0u);
  frontier.Unsubscribe(1);
  EXPECT_EQ(frontier.queued_candidates(1), 0u);
  EXPECT_EQ(frontier.delivered_map_capacity(1), 0u);
  // Draining subscriber 0 afterwards must not repopulate the freed slot.
  while (frontier.NextNN(0)) {
  }
  EXPECT_EQ(frontier.queued_candidates(1), 0u);
  EXPECT_EQ(frontier.delivered_map_capacity(1), 0u);
  EXPECT_FALSE(frontier.subscribed(1));
}

TEST(SharedCellSweepTest, ResidentCellsChargeOnlyOnce) {
  const auto pts = test::RandomPoints(200, 67);
  const UniformGrid grid(pts, 8.0);
  SharedCellSweep sweep(grid);
  sweep.Reset(Point{300, 300});
  std::size_t served_first = 0;
  while (sweep.NextCell()) ++served_first;
  const std::uint64_t fetches_first = sweep.stats().cell_fetches;
  EXPECT_EQ(fetches_first, served_first);  // cold sweep: every serve is a fetch
  // Second scan from a nearby query: same cells, all resident.
  sweep.Reset(Point{310, 295});
  std::size_t served_second = 0;
  while (sweep.NextCell()) ++served_second;
  EXPECT_EQ(sweep.stats().cell_fetches, fetches_first);
  EXPECT_EQ(sweep.stats().fanout, served_first + served_second);
}

// Greedy retires providers as their capacity saturates — the end-to-end
// exercise of NnSource::Retire on the batched backend.
TEST(SharedFrontierBackend, GreedyRetiresProvidersAndMatchesGridBackend) {
  test::InstanceSpec spec;
  spec.nq = 10;
  spec.np = 200;
  spec.k_lo = 2;
  spec.k_hi = 5;
  spec.seed = 71;
  const Problem problem = test::RandomProblem(spec);
  auto db = test::MakeDb(problem);
  ExactConfig grid;
  grid.discovery_backend = DiscoveryBackend::kGrid;
  ExactConfig batched;
  batched.discovery_backend = DiscoveryBackend::kGridBatched;
  const double g = SolveGreedySm(problem, db.get(), grid).matching.cost();
  const double b = SolveGreedySm(problem, db.get(), batched).matching.cost();
  EXPECT_NEAR(g, b, 1e-9);
}

// SSPA on the shared sweep: identical relax trajectory (same cells in the
// same order), identical matchings — only the cell-fetch ledger shrinks.
TEST(SharedFrontierBackend, SspaSharedSweepMatchesPrivateCursor) {
  for (const bool weighted : {false, true}) {
    test::InstanceSpec spec;
    spec.nq = 12;
    spec.np = 400;
    spec.k_lo = 2;
    spec.k_hi = 8;
    spec.seed = weighted ? 73u : 79u;
    Problem problem = test::RandomProblem(spec);
    if (weighted) {
      Rng rng(5);
      problem.weights.resize(problem.customers.size());
      for (auto& w : problem.weights) w = static_cast<std::int32_t>(rng.UniformInt(1, 3));
    }
    SspaConfig plain;
    SspaConfig shared = plain;
    shared.use_shared_frontier = true;
    const SspaResult a = SolveSspa(problem, plain);
    const SspaResult b = SolveSspa(problem, shared);
    EXPECT_NEAR(a.matching.cost(), b.matching.cost(), 1e-6);
    EXPECT_EQ(a.metrics.dijkstra_relaxes, b.metrics.dijkstra_relaxes);
    EXPECT_EQ(a.metrics.grid_rings_scanned, b.metrics.grid_rings_scanned);
    EXPECT_LE(b.metrics.grid_cursor_cells, a.metrics.grid_cursor_cells);
    EXPECT_EQ(b.metrics.shared_frontier_fanout, a.metrics.grid_cursor_cells);
    EXPECT_GT(b.metrics.shared_frontier_cell_fetches, 0u);
  }
}

// Below SspaConfig::shared_frontier_min_customers the sweep's per-solve
// setup is pure overhead (the 10x200 bench row paid ~5x wall clock for
// it), so small instances silently fall back to the private cursor:
// identical relax trajectory and matching, zero shared-frontier metrics.
TEST(SharedFrontierBackend, SspaSmallInstanceFallsBackToPrivateCursor) {
  test::InstanceSpec spec;
  spec.nq = 10;
  spec.np = 200;  // below the default 256-customer threshold
  spec.k_lo = 2;
  spec.k_hi = 5;
  spec.seed = 83;
  const Problem problem = test::RandomProblem(spec);
  SspaConfig plain;
  SspaConfig shared = plain;
  shared.use_shared_frontier = true;
  const SspaResult a = SolveSspa(problem, plain);
  const SspaResult b = SolveSspa(problem, shared);
  EXPECT_EQ(b.metrics.shared_frontier_cell_fetches, 0u);
  EXPECT_EQ(b.metrics.shared_frontier_fanout, 0u);
  EXPECT_EQ(b.metrics.grid_cursor_cells, a.metrics.grid_cursor_cells);
  EXPECT_EQ(b.metrics.dijkstra_relaxes, a.metrics.dijkstra_relaxes);
  EXPECT_NEAR(a.matching.cost(), b.matching.cost(), 1e-9);
  // Forcing the sweep (threshold 0) still works and still matches.
  SspaConfig forced = shared;
  forced.shared_frontier_min_customers = 0;
  const SspaResult c = SolveSspa(problem, forced);
  EXPECT_GT(c.metrics.shared_frontier_cell_fetches, 0u);
  EXPECT_LT(c.metrics.grid_cursor_cells, a.metrics.grid_cursor_cells);
  EXPECT_EQ(c.metrics.dijkstra_relaxes, a.metrics.dijkstra_relaxes);
  EXPECT_NEAR(a.matching.cost(), c.matching.cost(), 1e-9);
}

// The acceptance-bar regression guard: at |Q|=100, |P|=10k the batched
// frontier must fetch at most half the cells the per-provider cursors
// fetch, with a cost-identical matching.
TEST(SharedFrontierBackend, HalvesCellFetchesAtHundredProvidersTenThousandCustomers) {
  test::InstanceSpec spec;
  spec.nq = 100;
  spec.np = 10000;
  spec.k_lo = 10;
  spec.k_hi = 10;
  spec.seed = 123;
  const Problem problem = test::RandomProblem(spec);
  auto db = test::MakeDb(problem);
  ExactConfig grid;
  grid.discovery_backend = DiscoveryBackend::kGrid;
  ExactConfig batched;
  batched.discovery_backend = DiscoveryBackend::kGridBatched;

  const ExactResult per_cursor = SolveIda(problem, db.get(), grid);
  const ExactResult shared = SolveIda(problem, db.get(), batched);
  EXPECT_NEAR(per_cursor.matching.cost(), shared.matching.cost(),
              1e-6 * std::max(1.0, per_cursor.matching.cost()));
  EXPECT_GT(shared.metrics.shared_frontier_cell_fetches, 0u);
  EXPECT_LE(shared.metrics.shared_frontier_cell_fetches * 2,
            per_cursor.metrics.grid_cursor_cells)
      << "shared fetches=" << shared.metrics.shared_frontier_cell_fetches
      << " per-cursor cells=" << per_cursor.metrics.grid_cursor_cells;
  // The batched ledger stays consistent: every charged cell is a fetch,
  // and sharing delivered each fetch to more than one subscriber overall.
  EXPECT_EQ(shared.metrics.grid_cursor_cells, shared.metrics.shared_frontier_cell_fetches);
  EXPECT_EQ(shared.metrics.index_node_accesses, shared.metrics.shared_frontier_cell_fetches);
  EXPECT_GT(shared.metrics.shared_frontier_fanout, shared.metrics.shared_frontier_cell_fetches);
}

}  // namespace
}  // namespace cca
