// Property test: grid-pruned SSPA and dense SSPA must produce matchings of
// equal total cost (the optimum is unique in cost, not in pairing) on
// seeded random instances across distributions, plus a relax-count
// regression guard for the pruning itself.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "flow/sspa.h"
#include "test_util.h"

namespace cca {
namespace {

SspaResult RunGrid(const Problem& problem) {
  SspaConfig config;
  config.use_grid = true;
  return SolveSspa(problem, config);
}

SspaResult RunDense(const Problem& problem) {
  SspaConfig config;
  config.use_grid = false;
  return SolveSspa(problem, config);
}

// Every relax-strategy flavour the solver has: grid / dense x per-cell tau
// floors on (fused DistanceBlockSelect kernel) / off (legacy global-floor
// paths), plus the shared-frontier sweep with floors.
SspaResult RunFlavour(const Problem& problem, bool use_grid, bool floors,
                      bool shared = false) {
  SspaConfig config;
  config.use_grid = use_grid;
  config.use_cell_floors = floors;
  config.use_shared_frontier = shared;
  config.shared_frontier_min_customers = 0;  // exercise the sweep at any size
  return SolveSspa(problem, config);
}

// Candidates the dense scan looked at: it examines every customer on every
// provider pop and either relaxes it or prunes it against the certified
// upper bound, so relaxes + pruned equals the pre-prune dense relax count.
std::uint64_t DenseExamined(const SspaResult& dense) {
  return dense.metrics.dijkstra_relaxes + dense.metrics.relaxes_pruned;
}

void ExpectEquivalent(const Problem& problem, const std::string& label) {
  const SspaResult grid = RunGrid(problem);
  const SspaResult dense = RunDense(problem);
  std::string error;
  EXPECT_TRUE(ValidateMatching(problem, grid.matching, &error)) << label << ": " << error;
  EXPECT_TRUE(ValidateMatching(problem, dense.matching, &error)) << label << ": " << error;
  EXPECT_NEAR(grid.matching.cost(), dense.matching.cost(),
              1e-6 * std::max(1.0, dense.matching.cost()))
      << label;
  // The pruned path must never relax (meaningfully) more than the
  // candidates dense examined; dense itself may relax far fewer, since its
  // per-candidate upper-bound prune is finer-grained than the grid's cell
  // bound. The small slack absorbs tie-induced differences in which nodes
  // get popped (and hence relax their customer-side edges) between runs.
  EXPECT_LE(grid.metrics.dijkstra_relaxes, DenseExamined(dense) * 11 / 10 + 8) << label;
  // Identical augmentation structure: both run one Dijkstra per path.
  EXPECT_EQ(grid.metrics.augmentations, dense.metrics.augmentations) << label;
}

Problem SkewedProblem(std::size_t nq, std::size_t np, std::int32_t k_lo, std::int32_t k_hi,
                      std::uint64_t seed) {
  Problem problem;
  const auto q_pts = test::SkewedPoints(nq, seed * 3 + 1);
  Rng rng(seed * 5 + 2);
  for (const auto& pos : q_pts) {
    problem.providers.push_back(
        Provider{pos, static_cast<std::int32_t>(rng.UniformInt(k_lo, k_hi))});
  }
  problem.customers = test::SkewedPoints(np, seed * 7 + 3);
  return problem;
}

TEST(SspaGridEquivalence, UniformInstances) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 5 + seed;
    spec.np = 60 + 15 * seed;
    spec.k_lo = 1;
    spec.k_hi = static_cast<std::int32_t>(2 + seed % 4);
    spec.seed = seed;
    ExpectEquivalent(test::RandomProblem(spec), "uniform seed " + std::to_string(seed));
  }
}

TEST(SspaGridEquivalence, GaussianClusteredInstances) {
  for (std::uint64_t seed = 10; seed <= 15; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 8;
    spec.np = 120;
    spec.k_lo = 2;
    spec.k_hi = 8;
    spec.clustered_q = true;
    spec.clustered_p = true;
    spec.seed = seed;
    ExpectEquivalent(test::RandomProblem(spec), "clustered seed " + std::to_string(seed));
  }
}

TEST(SspaGridEquivalence, SkewedInstances) {
  for (std::uint64_t seed = 20; seed <= 24; ++seed) {
    ExpectEquivalent(SkewedProblem(7, 90, 1, 5, seed), "skewed seed " + std::to_string(seed));
  }
}

TEST(SspaGridEquivalence, WeightedCustomers) {
  for (std::uint64_t seed = 30; seed <= 35; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 6;
    spec.np = 40;
    spec.k_lo = 3;
    spec.k_hi = 12;
    spec.seed = seed;
    Problem problem = test::RandomProblem(spec);
    Rng rng(seed);
    problem.weights.resize(problem.customers.size());
    for (auto& w : problem.weights) w = static_cast<std::int32_t>(rng.UniformInt(1, 5));
    ExpectEquivalent(problem, "weighted seed " + std::to_string(seed));
  }
}

TEST(SspaGridEquivalence, ScarceCapacity) {
  // gamma limited by capacity: most customers stay unassigned, so the sink
  // label stays small and pruning is at its most aggressive.
  test::InstanceSpec spec;
  spec.nq = 3;
  spec.np = 150;
  spec.k_lo = 1;
  spec.k_hi = 2;
  spec.seed = 77;
  ExpectEquivalent(test::RandomProblem(spec), "scarce");
}

TEST(SspaGridEquivalence, DegenerateGeometries) {
  // Collinear customers (zero-height grid) and coincident points.
  Problem collinear;
  collinear.providers = {Provider{{0, 0}, 2}, Provider{{100, 0}, 2}};
  for (int i = 0; i < 20; ++i) collinear.customers.push_back(Point{5.0 * i, 0.0});
  ExpectEquivalent(collinear, "collinear");

  Problem coincident;
  coincident.providers = {Provider{{10, 10}, 3}};
  for (int i = 0; i < 5; ++i) coincident.customers.push_back(Point{10, 10});
  ExpectEquivalent(coincident, "coincident");
}

// Cell-floor on/off equivalence: the per-cell tau floors and the fused
// early-reject kernel may only skip candidates whose label could not have
// influenced the run, so costs, pop counts and augmentation counts must be
// identical with pruning on vs off, across distributions, unit and
// weighted, grid and dense and shared-sweep relax strategies.
void ExpectCellFloorEquivalent(const Problem& problem, const std::string& label) {
  const SspaResult off = RunFlavour(problem, /*use_grid=*/true, /*floors=*/false);
  for (const bool use_grid : {true, false}) {
    const SspaResult on = RunFlavour(problem, use_grid, /*floors=*/true);
    const std::string sub = label + (use_grid ? " grid" : " dense");
    std::string error;
    EXPECT_TRUE(ValidateMatching(problem, on.matching, &error)) << sub << ": " << error;
    EXPECT_NEAR(on.matching.cost(), off.matching.cost(),
                1e-6 * std::max(1.0, off.matching.cost()))
        << sub;
    EXPECT_EQ(on.metrics.dijkstra_pops, off.metrics.dijkstra_pops) << sub;
    EXPECT_EQ(on.metrics.augmentations, off.metrics.augmentations) << sub;
    // The kernel never relaxes a candidate the legacy path pruned.
    EXPECT_LE(on.metrics.dijkstra_relaxes, off.metrics.dijkstra_relaxes) << sub;
  }
  const SspaResult shared = RunFlavour(problem, /*use_grid=*/true, /*floors=*/true,
                                       /*shared=*/true);
  EXPECT_NEAR(shared.matching.cost(), off.matching.cost(),
              1e-6 * std::max(1.0, off.matching.cost()))
      << label << " shared";
  EXPECT_EQ(shared.metrics.dijkstra_pops, off.metrics.dijkstra_pops) << label << " shared";
  EXPECT_EQ(shared.metrics.augmentations, off.metrics.augmentations) << label << " shared";
}

TEST(SspaCellFloorEquivalence, UniformClusteredSkewedUnitAndWeighted) {
  for (const bool weighted : {false, true}) {
    for (int kind = 0; kind < 3; ++kind) {
      for (std::uint64_t seed = 50; seed <= 52; ++seed) {
        Problem problem;
        std::string label;
        if (kind == 2) {
          problem = SkewedProblem(7, 110, 1, 5, seed);
          label = "skewed";
        } else {
          test::InstanceSpec spec;
          spec.nq = 8;
          spec.np = 130;
          spec.k_lo = 2;
          spec.k_hi = 7;
          spec.clustered_q = kind == 1;
          spec.clustered_p = kind == 1;
          spec.seed = seed;
          problem = test::RandomProblem(spec);
          label = kind == 1 ? "clustered" : "uniform";
        }
        if (weighted) {
          Rng rng(seed * 11 + 1);
          problem.weights.resize(problem.customers.size());
          for (auto& w : problem.weights) w = static_cast<std::int32_t>(rng.UniformInt(1, 4));
          label += " weighted";
        }
        ExpectCellFloorEquivalent(problem, label + " seed " + std::to_string(seed));
      }
    }
  }
}

// The pruning regression guard: on a mid-size uniform instance the grid
// path must relax at least 5x fewer edges than the candidates the dense
// scan has to examine.
TEST(SspaGridEquivalence, PruningActuallyPrunes) {
  test::InstanceSpec spec;
  spec.nq = 20;
  spec.np = 2000;
  spec.k_lo = 10;
  spec.k_hi = 10;
  spec.seed = 42;
  const Problem problem = test::RandomProblem(spec);
  const SspaResult grid = RunGrid(problem);
  const SspaResult dense = RunDense(problem);
  EXPECT_NEAR(grid.matching.cost(), dense.matching.cost(), 1e-6 * dense.matching.cost());
  EXPECT_LE(grid.metrics.dijkstra_relaxes * 5, DenseExamined(dense))
      << "grid=" << grid.metrics.dijkstra_relaxes << " dense=" << DenseExamined(dense);
  EXPECT_GT(grid.metrics.relaxes_pruned, 0u);
  EXPECT_GT(grid.metrics.grid_rings_scanned, 0u);
  EXPECT_GT(grid.metrics.grid_cursor_cells, 0u);
  // The fused kernel keeps the materialised-distance count at the same
  // order as the surviving relaxes (it can sit below dijkstra_relaxes,
  // which also counts the distance-free customer-side reverse/sink
  // relaxes) — nowhere near the examined candidates.
  EXPECT_GT(grid.metrics.cells_pruned, 0u);
  EXPECT_GT(grid.metrics.distances_computed, 0u);
  EXPECT_LE(grid.metrics.distances_computed, grid.metrics.dijkstra_relaxes);
  EXPECT_LE(grid.metrics.distances_computed * 5, DenseExamined(dense))
      << "distances=" << grid.metrics.distances_computed;
  // With the cell partition + kernel, even the dense fallback stops
  // materialising every examined candidate's distance.
  EXPECT_LE(dense.metrics.distances_computed * 5, DenseExamined(dense))
      << "dense distances=" << dense.metrics.distances_computed;
}

// Legacy flavours (floors off) must keep their historical accounting:
// every examined dense candidate pays a distance, and the grid path pays
// one per scanned-cell resident.
TEST(SspaGridEquivalence, LegacyFlavoursStillMaterialiseEveryDistance) {
  test::InstanceSpec spec;
  spec.nq = 6;
  spec.np = 300;
  spec.k_lo = 4;
  spec.k_hi = 4;
  spec.seed = 9;
  const Problem problem = test::RandomProblem(spec);
  const SspaResult dense_off = RunFlavour(problem, /*use_grid=*/false, /*floors=*/false);
  // Every scanned lane pays a distance (examined = relaxed + pruned; the
  // handful of saturated-serving lanes are scanned but counted as neither).
  EXPECT_GE(dense_off.metrics.distances_computed, DenseExamined(dense_off));
  const SspaResult grid_off = RunFlavour(problem, /*use_grid=*/true, /*floors=*/false);
  EXPECT_GT(grid_off.metrics.distances_computed, 0u);
  const SspaResult grid_on = RunFlavour(problem, /*use_grid=*/true, /*floors=*/true);
  EXPECT_LT(grid_on.metrics.distances_computed, grid_off.metrics.distances_computed);
}

// The dense fallback's upper-bound prune (index-free run_ub trick): it must
// actually skip heap work on a capacity-scarce instance, without changing
// the optimum.
TEST(SspaGridEquivalence, DenseUpperBoundPruneActive) {
  test::InstanceSpec spec;
  spec.nq = 10;
  spec.np = 800;
  spec.k_lo = 2;
  spec.k_hi = 4;
  spec.seed = 7;
  const Problem problem = test::RandomProblem(spec);
  const SspaResult dense = RunDense(problem);
  EXPECT_GT(dense.metrics.relaxes_pruned, 0u);
  EXPECT_LT(dense.metrics.dijkstra_relaxes, DenseExamined(dense));
  EXPECT_NEAR(dense.matching.cost(), RunGrid(problem).matching.cost(),
              1e-6 * std::max(1.0, dense.matching.cost()));
}

// Auto-tuned resolution (grid_target_per_cell <= 0) must stay cost-exact,
// including on the skewed instances that motivated it.
TEST(SspaGridEquivalence, AutoTunedResolutionEquivalence) {
  for (std::uint64_t seed = 40; seed <= 43; ++seed) {
    const Problem problem = SkewedProblem(7, 120, 1, 5, seed);
    SspaConfig config;
    config.use_grid = true;
    config.grid_target_per_cell = 0.0;  // auto-tune from density
    const SspaResult tuned = SolveSspa(problem, config);
    const SspaResult dense = RunDense(problem);
    std::string error;
    EXPECT_TRUE(ValidateMatching(problem, tuned.matching, &error)) << error;
    EXPECT_NEAR(tuned.matching.cost(), dense.matching.cost(),
                1e-6 * std::max(1.0, dense.matching.cost()))
        << "auto-tuned seed " << seed;
  }
}

}  // namespace
}  // namespace cca
