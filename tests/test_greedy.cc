// Greedy spatial-matching baseline tests: validity, determinism, and the
// quality gap relative to optimal CCA.
#include <gtest/gtest.h>

#include "core/greedy.h"
#include "flow/sspa.h"
#include "test_util.h"

namespace cca {
namespace {

TEST(GreedySmTest, CommitsGloballyClosestPairsInOrder) {
  Problem problem;
  problem.providers = {Provider{{0, 0}, 1}, Provider{{60, 0}, 1}};
  problem.customers = {Point{20, 0}, Point{30, 0}};
  auto db = test::MakeDb(problem);
  const ExactResult greedy = SolveGreedySm(problem, db.get(), ExactConfig{});
  // Greedy: closest pair is (q0, p0) at 20; then q1 must take p1 at 30:
  // total 50 -- here this coincides with the optimum.
  EXPECT_DOUBLE_EQ(greedy.matching.cost(), 50.0);
}

TEST(GreedySmTest, IsSuboptimalWhereChainsAreNeeded) {
  // p0 sits just left of q1; greedy gives it to q1, forcing p1 to trek to
  // q0. Optimal swaps both.
  Problem problem;
  problem.providers = {Provider{{0, 0}, 1}, Provider{{50, 0}, 1}};
  problem.customers = {Point{45, 0}, Point{55, 0}};
  auto db = test::MakeDb(problem);
  const ExactResult greedy = SolveGreedySm(problem, db.get(), ExactConfig{});
  const double optimal = SolveSspa(problem).matching.cost();
  // Greedy: (q1,p0)=5 then (q0,p1)=55 -> 60. Optimal: 45 + 5 = 50.
  EXPECT_DOUBLE_EQ(greedy.matching.cost(), 60.0);
  EXPECT_DOUBLE_EQ(optimal, 50.0);
}

TEST(GreedySmTest, AlwaysValidAndNeverBelowOptimal) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    test::InstanceSpec spec;
    spec.nq = 6;
    spec.np = 60;
    spec.k_lo = 2;
    spec.k_hi = 6;
    spec.clustered_p = (seed % 2 == 0);
    spec.seed = seed;
    const Problem problem = test::RandomProblem(spec);
    auto db = test::MakeDb(problem);
    const ExactResult greedy = SolveGreedySm(problem, db.get(), ExactConfig{});
    std::string error;
    EXPECT_TRUE(ValidateMatching(problem, greedy.matching, &error)) << error;
    const double optimal = SolveSspa(problem).matching.cost();
    EXPECT_GE(greedy.matching.cost(), optimal - 1e-9) << "seed " << seed;
  }
}

TEST(GreedySmTest, RespectsCapacitiesUnderPressure) {
  Problem problem;
  problem.providers = {Provider{{500, 500}, 3}};
  problem.customers = test::RandomPoints(20, 77);
  auto db = test::MakeDb(problem);
  const ExactResult greedy = SolveGreedySm(problem, db.get(), ExactConfig{});
  EXPECT_EQ(greedy.matching.size(), 3);
  // With a single provider, greedy == optimal (k nearest customers).
  EXPECT_NEAR(greedy.matching.cost(), SolveSspa(problem).matching.cost(), 1e-9);
}

TEST(GreedySmTest, DeterministicAcrossNnSources) {
  const Problem problem = [] {
    test::InstanceSpec spec;
    spec.nq = 5;
    spec.np = 80;
    spec.seed = 42;
    return test::RandomProblem(spec);
  }();
  auto db = test::MakeDb(problem);
  ExactConfig plain;
  plain.use_ann_grouping = false;
  ExactConfig grouped;
  grouped.use_ann_grouping = true;
  const double a = SolveGreedySm(problem, db.get(), plain).matching.cost();
  const double b = SolveGreedySm(problem, db.get(), grouped).matching.cost();
  EXPECT_NEAR(a, b, 1e-9);
}

}  // namespace
}  // namespace cca
