// Unit tests for the uniform grid: cell assignment, ring enumeration order
// and coverage, and the ring-tail lower bound that the pruned SSPA relax
// relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "common/rng.h"
#include "geo/grid.h"

namespace cca {
namespace {

std::vector<Point> UniformPoints(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(Point{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)});
  }
  return pts;
}

// Collects (ring, id) pairs in visit order.
std::vector<std::pair<int, std::int32_t>> EnumerateAll(const UniformGrid& grid, const Point& q) {
  std::vector<std::pair<int, std::int32_t>> out;
  for (int ring = 0; ring <= grid.MaxRing(q); ++ring) {
    grid.VisitRing(q, ring, [&](int, int, const UniformGrid::CellSlice& slice) {
      for (std::size_t i = 0; i < slice.count; ++i) out.emplace_back(ring, slice.ids[i]);
    });
  }
  return out;
}

TEST(UniformGridTest, RingsCoverEveryPointExactlyOnce) {
  const auto pts = UniformPoints(500, 7);
  const UniformGrid grid(pts);
  for (const Point& q : {Point{500, 500}, Point{0, 0}, Point{999, 1}, Point{-50, 1200}}) {
    const auto visited = EnumerateAll(grid, q);
    std::set<std::int32_t> ids;
    for (const auto& [ring, id] : visited) ids.insert(id);
    EXPECT_EQ(visited.size(), pts.size());
    EXPECT_EQ(ids.size(), pts.size());
  }
}

TEST(UniformGridTest, CellSlicesCarryMatchingCoordinates) {
  const auto pts = UniformPoints(200, 11);
  const UniformGrid grid(pts);
  const Point q{321, 654};
  for (int ring = 0; ring <= grid.MaxRing(q); ++ring) {
    grid.VisitRing(q, ring, [&](int cx, int cy, const UniformGrid::CellSlice& slice) {
      const Rect cell = grid.CellRect(cx, cy);
      for (std::size_t i = 0; i < slice.count; ++i) {
        const Point original = pts[static_cast<std::size_t>(slice.ids[i])];
        EXPECT_DOUBLE_EQ(slice.xs[i], original.x);
        EXPECT_DOUBLE_EQ(slice.ys[i], original.y);
        // Closed cell rectangles: boundary points may land in either
        // neighbouring cell, so containment holds with a half-open caveat
        // only at the grid's far edge; Contains is inclusive, so it holds.
        EXPECT_TRUE(cell.Contains(original))
            << "point " << slice.ids[i] << " outside its cell";
      }
    });
  }
}

TEST(UniformGridTest, RingOrderMatchesChebyshevDistance) {
  const auto pts = UniformPoints(300, 13);
  const UniformGrid grid(pts);
  const Point q{500, 500};
  int qx = 0, qy = 0;
  grid.Locate(q, &qx, &qy);
  for (int ring = 0; ring <= grid.MaxRing(q); ++ring) {
    grid.VisitRing(q, ring, [&](int cx, int cy, const UniformGrid::CellSlice&) {
      const int cheb = std::max(std::abs(cx - qx), std::abs(cy - qy));
      EXPECT_EQ(cheb, ring);
    });
  }
}

TEST(UniformGridTest, RingTailMinDistLowerBoundsAllLaterRings) {
  const auto pts = UniformPoints(400, 17);
  const UniformGrid grid(pts);
  Rng rng(19);
  for (int trial = 0; trial < 20; ++trial) {
    const Point q{rng.Uniform(-100.0, 1100.0), rng.Uniform(-100.0, 1100.0)};
    const auto visited = EnumerateAll(grid, q);
    for (int ring = 0; ring <= grid.MaxRing(q); ++ring) {
      const double bound = grid.RingTailMinDist(q, ring);
      double actual_min = std::numeric_limits<double>::infinity();
      for (const auto& [r, id] : visited) {
        if (r >= ring) {
          actual_min = std::min(actual_min, Distance(q, pts[static_cast<std::size_t>(id)]));
        }
      }
      if (actual_min < std::numeric_limits<double>::infinity()) {
        EXPECT_LE(bound, actual_min + 1e-9)
            << "ring " << ring << " bound overshoots at trial " << trial;
      }
    }
  }
}

TEST(UniformGridTest, RingTailMinDistMonotone) {
  const auto pts = UniformPoints(400, 23);
  const UniformGrid grid(pts);
  const Point q{250, 750};
  double prev = 0.0;
  for (int ring = 0; ring <= grid.MaxRing(q) + 3; ++ring) {
    const double bound = grid.RingTailMinDist(q, ring);
    EXPECT_GE(bound, prev - 1e-12) << "ring " << ring;
    prev = bound;
  }
}

TEST(UniformGridTest, DegenerateInputs) {
  // Empty set.
  const UniformGrid empty_grid(std::vector<Point>{});
  EXPECT_EQ(empty_grid.size(), 0u);
  EXPECT_EQ(empty_grid.MaxRing(Point{0, 0}), 0);

  // All points coincide.
  const UniformGrid point_grid(std::vector<Point>(10, Point{5, 5}));
  EXPECT_EQ(point_grid.size(), 10u);
  const auto visited = EnumerateAll(point_grid, Point{5, 5});
  EXPECT_EQ(visited.size(), 10u);

  // Collinear (zero height): grid degenerates to one row.
  std::vector<Point> line;
  for (int i = 0; i < 50; ++i) line.push_back(Point{static_cast<double>(i), 3.0});
  const UniformGrid line_grid(line);
  EXPECT_EQ(line_grid.rows(), 1);
  EXPECT_EQ(EnumerateAll(line_grid, Point{25, 3}).size(), 50u);
}

TEST(UniformGridTest, ResolutionTracksTarget) {
  const auto pts = UniformPoints(1000, 29);
  const UniformGrid coarse(pts, 50.0);
  const UniformGrid fine(pts, 2.0);
  EXPECT_GT(static_cast<long>(fine.cols()) * fine.rows(),
            static_cast<long>(coarse.cols()) * coarse.rows());
}

TEST(UniformGridTest, AutoTuneRefinesSkewedOccupancy) {
  // 90% of the mass in a corner strip, the rest spread across the world:
  // at the static default most points share a handful of cells.
  Rng rng(31);
  std::vector<Point> pts;
  for (int i = 0; i < 2000; ++i) {
    if (rng.NextDouble() < 0.9) {
      pts.push_back(Point{rng.Uniform(0.0, 60.0), rng.Uniform(0.0, 40.0)});
    } else {
      pts.push_back(Point{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)});
    }
  }
  const UniformGrid fixed(pts);      // static default resolution
  const UniformGrid tuned(pts, 0.0); // auto-tuned
  EXPECT_GT(fixed.MeanOccupancy(), 1.5 * UniformGrid::kDefaultTargetPerCell)
      << "instance not skewed enough to exercise the tuner";
  EXPECT_LT(tuned.MeanOccupancy(), fixed.MeanOccupancy());
  EXPECT_GT(tuned.NonEmptyCells(), fixed.NonEmptyCells());
  // Every point still lands in exactly one cell at the tuned resolution.
  EXPECT_EQ(EnumerateAll(tuned, Point{30, 20}).size(), pts.size());
}

TEST(UniformGridTest, AutoTuneLeavesUniformDataAlone) {
  const auto pts = UniformPoints(1000, 37);
  const UniformGrid fixed(pts);
  const UniformGrid tuned(pts, 0.0);
  EXPECT_EQ(tuned.cols(), fixed.cols());
  EXPECT_EQ(tuned.rows(), fixed.rows());
  // Occupancy on target: the tuner never rebuilt.
  EXPECT_EQ(tuned.build_count(), 1);
}

TEST(UniformGridTest, AutoTuneRebuildCountsOneRebuild) {
  // The skewed instance from AutoTuneRefinesSkewedOccupancy retunes
  // exactly once: measure pass plus one finer rebuild.
  Rng rng(31);
  std::vector<Point> pts;
  for (int i = 0; i < 2000; ++i) {
    if (rng.NextDouble() < 0.9) {
      pts.push_back(Point{rng.Uniform(0.0, 60.0), rng.Uniform(0.0, 40.0)});
    } else {
      pts.push_back(Point{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)});
    }
  }
  const UniformGrid tuned(pts, 0.0);
  EXPECT_EQ(tuned.build_count(), 2);
}

TEST(UniformGridTest, AutoTuneSkipsNoOpRebuild) {
  // Co-located points trip the occupancy trigger (everything in one cell)
  // but the tuned target resolves to the same degenerate 1x1 resolution —
  // the rebuild would reproduce the grid bit for bit, so it is skipped.
  const std::vector<Point> pts(16, Point{42.0, 17.0});
  const UniformGrid tuned(pts, 0.0);
  EXPECT_GT(tuned.MeanOccupancy(), 1.5 * UniformGrid::kDefaultTargetPerCell);
  EXPECT_EQ(tuned.cols(), 1);
  EXPECT_EQ(tuned.rows(), 1);
  EXPECT_EQ(tuned.build_count(), 1);
  EXPECT_EQ(tuned.Cell(0, 0).count, pts.size());
}

}  // namespace
}  // namespace cca
