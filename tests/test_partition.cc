// SA / CA partitioning tests (paper Sections 4.1, 4.2).
#include <gtest/gtest.h>

#include "core/partition.h"
#include "test_util.h"

namespace cca {
namespace {

std::vector<Provider> MakeProviders(std::size_t n, std::uint64_t seed, std::int32_t k = 4) {
  const auto pts = test::RandomPoints(n, seed);
  std::vector<Provider> providers;
  for (const auto& p : pts) providers.push_back(Provider{p, k});
  return providers;
}

class ProviderPartitionTest : public ::testing::TestWithParam<double> {};

TEST_P(ProviderPartitionTest, GroupsRespectDelta) {
  const double delta = GetParam();
  const auto providers = MakeProviders(120, 5);
  const auto groups = PartitionProviders(providers, delta, test::UnitWorld());
  std::vector<char> seen(providers.size(), 0);
  for (const auto& g : groups) {
    EXPECT_LE(g.mbr.Diagonal(), delta + 1e-9);
    EXPECT_FALSE(g.members.empty());
    std::int64_t cap = 0;
    for (int idx : g.members) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(idx)]);
      seen[static_cast<std::size_t>(idx)] = 1;
      cap += providers[static_cast<std::size_t>(idx)].capacity;
      // Every member lies within delta of the representative (the bound
      // Theorem 3 uses).
      EXPECT_LE(Distance(providers[static_cast<std::size_t>(idx)].pos, g.representative),
                delta + 1e-9);
    }
    EXPECT_EQ(cap, g.capacity);
    EXPECT_TRUE(g.mbr.Contains(g.representative));
  }
  for (char s : seen) EXPECT_TRUE(s);
}

INSTANTIATE_TEST_SUITE_P(Deltas, ProviderPartitionTest,
                         ::testing::Values(5.0, 20.0, 80.0, 300.0, 5000.0));

TEST(ProviderPartitionTest, SmallerDeltaMoreGroups) {
  const auto providers = MakeProviders(200, 6);
  const auto coarse = PartitionProviders(providers, 400.0, test::UnitWorld());
  const auto fine = PartitionProviders(providers, 20.0, test::UnitWorld());
  EXPECT_LT(coarse.size(), fine.size());
}

TEST(ProviderPartitionTest, WeightedCentroidFollowsCapacity) {
  std::vector<Provider> providers = {Provider{{0, 0}, 9}, Provider{{10, 0}, 1}};
  const auto groups = PartitionProviders(providers, 100.0, test::UnitWorld());
  ASSERT_EQ(groups.size(), 1u);
  // Centroid = (0*9 + 10*1) / 10 = 1.
  EXPECT_NEAR(groups[0].representative.x, 1.0, 1e-12);
  EXPECT_NEAR(groups[0].representative.y, 0.0, 1e-12);
  EXPECT_EQ(groups[0].capacity, 10);
}

TEST(ProviderPartitionTest, HugeDeltaSingleGroup) {
  const auto providers = MakeProviders(50, 7);
  const auto groups = PartitionProviders(providers, 1e9, test::UnitWorld());
  EXPECT_EQ(groups.size(), 1u);
}

class CustomerPartitionTest : public ::testing::TestWithParam<double> {};

TEST_P(CustomerPartitionTest, GroupsCoverAllCustomersWithinDelta) {
  const double delta = GetParam();
  const auto pts = test::ClusteredPoints(1500, 8);
  RTree::Options options;
  options.page_size = 256;
  auto tree = RTree::BulkLoad(pts, options);
  const auto groups = PartitionCustomers(tree.get(), delta, test::UnitWorld());

  std::uint64_t total = 0;
  std::vector<RTree::Hit> members;
  for (const auto& g : groups) {
    EXPECT_LE(g.mbr.Diagonal(), delta + 1e-9);
    EXPECT_GE(g.count, 1u);
    total += g.count;
    // Representative at the MBR centre => every member within delta/2
    // (the Theorem-4 displacement bound).
    std::size_t part_total = 0;
    for (const auto& part : g.parts) {
      CollectPoints(tree.get(), part, &members);
      part_total += members.size();
      for (const auto& h : members) {
        EXPECT_LE(Distance(h.pos, g.representative), delta / 2 + 1e-9);
      }
    }
    EXPECT_EQ(part_total, g.count);
  }
  EXPECT_EQ(total, pts.size());
}

INSTANTIATE_TEST_SUITE_P(Deltas, CustomerPartitionTest,
                         ::testing::Values(10.0, 40.0, 160.0, 2000.0));

TEST(CustomerPartitionTest, MergeReducesGroupCount) {
  const auto pts = test::RandomPoints(2000, 9);
  RTree::Options options;
  options.page_size = 256;
  auto tree = RTree::BulkLoad(pts, options);
  const double delta = 120.0;
  const auto raw = DeltaPartition(tree.get(), delta);
  const auto merged = PartitionCustomers(tree.get(), delta, test::UnitWorld());
  EXPECT_LE(merged.size(), raw.size());
}

}  // namespace
}  // namespace cca
