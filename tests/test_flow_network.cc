// Generic FlowNetwork tests: min-cost flow on hand instances, residual
// bookkeeping, negative-cycle detection.
#include <gtest/gtest.h>

#include "flow/flow_network.h"

namespace cca {
namespace {

TEST(FlowNetworkTest, SingleEdge) {
  FlowNetwork net(2);
  const int e = net.AddEdge(0, 1, 5, 2.0);
  const auto result = net.MinCostFlow(0, 1, 3);
  EXPECT_EQ(result.flow, 3);
  EXPECT_DOUBLE_EQ(result.cost, 6.0);
  EXPECT_EQ(net.FlowOn(e), 3);
}

TEST(FlowNetworkTest, CapacityLimitsFlow) {
  FlowNetwork net(2);
  net.AddEdge(0, 1, 2, 1.0);
  const auto result = net.MinCostFlow(0, 1, 10);
  EXPECT_EQ(result.flow, 2);
}

TEST(FlowNetworkTest, PrefersCheaperParallelPath) {
  FlowNetwork net(4);
  // 0 -> 1 -> 3 costs 2; 0 -> 2 -> 3 costs 10.
  const int cheap_a = net.AddEdge(0, 1, 1, 1.0);
  net.AddEdge(1, 3, 1, 1.0);
  const int pricey_a = net.AddEdge(0, 2, 1, 5.0);
  net.AddEdge(2, 3, 1, 5.0);
  const auto one = net.MinCostFlow(0, 3, 1);
  EXPECT_DOUBLE_EQ(one.cost, 2.0);
  EXPECT_EQ(net.FlowOn(cheap_a), 1);
  EXPECT_EQ(net.FlowOn(pricey_a), 0);
  // Second unit must take the expensive path.
  const auto two = net.MinCostFlow(0, 3, 1);
  EXPECT_DOUBLE_EQ(two.cost, 10.0);
}

TEST(FlowNetworkTest, UsesResidualReroute) {
  // Classic rerouting: the cheap middle edge must be partially undone.
  FlowNetwork net(4);
  net.AddEdge(0, 1, 1, 1.0);
  net.AddEdge(0, 2, 1, 4.0);
  net.AddEdge(1, 2, 1, 1.0);
  net.AddEdge(1, 3, 1, 6.0);
  net.AddEdge(2, 3, 2, 1.0);
  const auto result = net.MinCostFlow(0, 3, 2);
  EXPECT_EQ(result.flow, 2);
  // Optimal: 0-1-2-3 (3) + 0-2-3 (5) = 8.
  EXPECT_DOUBLE_EQ(result.cost, 8.0);
}

TEST(FlowNetworkTest, HandlesNegativeCostEdges) {
  FlowNetwork net(3);
  net.AddEdge(0, 1, 1, 5.0);
  net.AddEdge(1, 2, 1, -3.0);
  const auto result = net.MinCostFlow(0, 2, 1);
  EXPECT_DOUBLE_EQ(result.cost, 2.0);
}

TEST(FlowNetworkTest, DisconnectedReturnsPartialFlow) {
  FlowNetwork net(4);
  net.AddEdge(0, 1, 1, 1.0);
  // Node 3 unreachable.
  const auto result = net.MinCostFlow(0, 3, 5);
  EXPECT_EQ(result.flow, 0);
}

TEST(NegativeCycleTest, CleanGraphHasNone) {
  FlowNetwork net(3);
  net.AddEdge(0, 1, 1, 1.0);
  net.AddEdge(1, 2, 1, 1.0);
  net.AddEdge(2, 0, 1, 1.0);
  EXPECT_FALSE(net.HasNegativeCycle());
}

TEST(NegativeCycleTest, DetectsNegativeCycle) {
  FlowNetwork net(3);
  net.AddEdge(0, 1, 1, 1.0);
  net.AddEdge(1, 2, 1, -2.0);
  net.AddEdge(2, 0, 1, 0.5);
  EXPECT_TRUE(net.HasNegativeCycle());
}

TEST(NegativeCycleTest, SaturatedEdgesDoNotCount) {
  // The cycle 0->1->0 would cost -8, but the 0->1 leg has zero remaining
  // capacity and must be ignored.
  FlowNetwork net(2);
  net.AddEdge(0, 1, 0, -10.0);  // saturated: not residual
  net.AddEdge(1, 0, 1, 2.0);
  EXPECT_FALSE(net.HasNegativeCycle());
}

TEST(NegativeCycleTest, AppearsAfterSuboptimalFlow) {
  // Push flow along the expensive path by force; the residual graph then
  // contains a negative cycle (the signature of suboptimality).
  FlowNetwork net(4);
  net.AddEdge(0, 1, 1, 10.0);
  net.AddEdge(1, 3, 1, 10.0);
  net.AddEdge(0, 2, 1, 1.0);
  net.AddEdge(2, 3, 1, 1.0);
  // Manually shove a unit down the pricey route via a targeted solve on a
  // sub-network: saturate by setting up a temporary throttle.
  FlowNetwork forced(4);
  const int a = forced.AddEdge(0, 1, 1, 10.0);
  const int b = forced.AddEdge(1, 3, 1, 10.0);
  forced.AddEdge(0, 2, 1, 1.0);
  forced.AddEdge(2, 3, 1, 1.0);
  // Route a unit over 0-1-3 only.
  FlowNetwork pricey_only(4);
  pricey_only.AddEdge(0, 1, 1, 10.0);
  pricey_only.AddEdge(1, 3, 1, 10.0);
  const auto sent = pricey_only.MinCostFlow(0, 3, 1);
  ASSERT_EQ(sent.flow, 1);
  (void)a;
  (void)b;
  // Rebuild the full residual state by hand: 0->1 and 1->3 carry flow.
  FlowNetwork residual(4);
  residual.AddEdge(1, 0, 1, -10.0);  // reversed
  residual.AddEdge(3, 1, 1, -10.0);  // reversed
  residual.AddEdge(0, 2, 1, 1.0);
  residual.AddEdge(2, 3, 1, 1.0);
  // Cycle 3->1->0->2->3 costs -10-10+1+1 = -18 < 0.
  EXPECT_TRUE(residual.HasNegativeCycle());
}

}  // namespace
}  // namespace cca
