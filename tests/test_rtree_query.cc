// R-tree query correctness against brute force: circular ranges, annular
// ranges, and k-NN, across data distributions and query shapes.
#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rtree/rtree.h"
#include "test_util.h"

namespace cca {
namespace {

using test::ClusteredPoints;
using test::RandomPoints;

std::vector<std::uint32_t> BruteRange(const std::vector<Point>& pts, const Point& c, double lo,
                                      double hi) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double d = Distance(c, pts[i]);
    if (d <= hi && d > lo) out.push_back(static_cast<std::uint32_t>(i));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint32_t> Oids(const std::vector<RTree::Hit>& hits) {
  std::vector<std::uint32_t> out;
  out.reserve(hits.size());
  for (const auto& h : hits) out.push_back(h.oid);
  std::sort(out.begin(), out.end());
  return out;
}

struct QueryCase {
  bool clustered;
  std::size_t n;
  std::uint64_t seed;
};

class RangeQueryTest : public ::testing::TestWithParam<QueryCase> {};

TEST_P(RangeQueryTest, CircularRangeMatchesBruteForce) {
  const auto& param = GetParam();
  const auto pts = param.clustered ? ClusteredPoints(param.n, param.seed)
                                   : RandomPoints(param.n, param.seed);
  RTree::Options options;
  options.page_size = 256;
  auto tree = RTree::BulkLoad(pts, options);
  Rng rng(param.seed * 3 + 1);
  std::vector<RTree::Hit> hits;
  for (int iter = 0; iter < 25; ++iter) {
    const Point c{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    const double r = rng.Uniform(0, 300);
    tree->RangeSearch(c, r, &hits);
    EXPECT_EQ(Oids(hits), BruteRange(pts, c, -1.0, r));
    for (const auto& h : hits) EXPECT_NEAR(h.dist, Distance(c, h.pos), 1e-9);
  }
}

TEST_P(RangeQueryTest, AnnularRangeMatchesBruteForce) {
  const auto& param = GetParam();
  const auto pts = param.clustered ? ClusteredPoints(param.n, param.seed)
                                   : RandomPoints(param.n, param.seed);
  RTree::Options options;
  options.page_size = 256;
  auto tree = RTree::BulkLoad(pts, options);
  Rng rng(param.seed * 5 + 2);
  std::vector<RTree::Hit> hits;
  for (int iter = 0; iter < 25; ++iter) {
    const Point c{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    const double lo = rng.Uniform(0, 200);
    const double hi = lo + rng.Uniform(0, 200);
    tree->AnnularRangeSearch(c, lo, hi, &hits);
    EXPECT_EQ(Oids(hits), BruteRange(pts, c, lo, hi));
  }
}

TEST_P(RangeQueryTest, KnnMatchesBruteForce) {
  const auto& param = GetParam();
  const auto pts = param.clustered ? ClusteredPoints(param.n, param.seed)
                                   : RandomPoints(param.n, param.seed);
  RTree::Options options;
  options.page_size = 256;
  auto tree = RTree::BulkLoad(pts, options);
  Rng rng(param.seed * 7 + 3);
  std::vector<RTree::Hit> hits;
  for (int iter = 0; iter < 15; ++iter) {
    const Point c{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    const std::size_t k = 1 + rng.NextBelow(std::min<std::size_t>(50, pts.size()));
    tree->KnnSearch(c, k, &hits);
    ASSERT_EQ(hits.size(), k);
    // Ascending order.
    for (std::size_t i = 1; i < hits.size(); ++i) {
      EXPECT_LE(hits[i - 1].dist, hits[i].dist + 1e-12);
    }
    // Same distance multiset as brute force (point ties permitted).
    std::vector<double> brute;
    for (const auto& p : pts) brute.push_back(Distance(c, p));
    std::sort(brute.begin(), brute.end());
    for (std::size_t i = 0; i < k; ++i) EXPECT_NEAR(hits[i].dist, brute[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, RangeQueryTest,
                         ::testing::Values(QueryCase{false, 60, 1}, QueryCase{false, 500, 2},
                                           QueryCase{false, 3000, 3}, QueryCase{true, 500, 4},
                                           QueryCase{true, 3000, 5}));

TEST(RangeQueryEdgeTest, ZeroRadiusFindsExactPoint) {
  const auto pts = RandomPoints(200, 9);
  auto tree = RTree::BulkLoad(pts);
  std::vector<RTree::Hit> hits;
  tree->RangeSearch(pts[17], 0.0, &hits);
  ASSERT_GE(hits.size(), 1u);
  bool found = false;
  for (const auto& h : hits) found |= (h.oid == 17);
  EXPECT_TRUE(found);
}

TEST(RangeQueryEdgeTest, NegativeRadiusEmpty) {
  const auto pts = RandomPoints(50, 10);
  auto tree = RTree::BulkLoad(pts);
  std::vector<RTree::Hit> hits;
  tree->RangeSearch({500, 500}, -5.0, &hits);
  EXPECT_TRUE(hits.empty());
}

TEST(RangeQueryEdgeTest, AnnulusBoundariesAreHalfOpen) {
  // Points at distance exactly lo are excluded; at exactly hi included.
  std::vector<Point> pts{{10, 0}, {20, 0}, {30, 0}};
  auto tree = RTree::BulkLoad(pts);
  std::vector<RTree::Hit> hits;
  tree->AnnularRangeSearch({0, 0}, 10.0, 20.0, &hits);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].oid, 1u);
}

TEST(RangeQueryEdgeTest, KnnWithKLargerThanDataset) {
  const auto pts = RandomPoints(20, 11);
  auto tree = RTree::BulkLoad(pts);
  std::vector<RTree::Hit> hits;
  tree->KnnSearch({1, 1}, 50, &hits);
  EXPECT_EQ(hits.size(), 20u);
}

TEST(RangeQueryEdgeTest, PruningTouchesFewNodesOnSmallRanges) {
  const auto pts = RandomPoints(5000, 12);
  RTree::Options options;
  options.page_size = 512;
  auto tree = RTree::BulkLoad(pts, options);
  tree->ResetCounters();
  std::vector<RTree::Hit> hits;
  tree->RangeSearch({500, 500}, 10.0, &hits);
  const auto small_range = tree->node_accesses();
  tree->ResetCounters();
  tree->RangeSearch({500, 500}, 800.0, &hits);
  const auto big_range = tree->node_accesses();
  EXPECT_LT(small_range * 5, big_range);  // pruning must actually prune
}

}  // namespace
}  // namespace cca
