// End-to-end integration: generated road-network workload, disk-resident
// R-tree with a 1% LRU buffer, all exact solvers agreeing, approximations
// within bounds, and I/O accounting behaving sensibly.
#include <gtest/gtest.h>

#include "core/approx.h"
#include "core/exact.h"
#include "flow/sspa.h"
#include "gen/generator.h"
#include "test_util.h"

namespace cca {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto net = DefaultNetwork(4242);
    DatasetSpec q_spec;
    q_spec.count = 25;
    q_spec.seed = 1001;
    q_spec.distribution = PointDistribution::kClustered;
    DatasetSpec p_spec;
    p_spec.count = 2500;
    p_spec.seed = 1002;
    p_spec.distribution = PointDistribution::kClustered;
    problem_ = MakeProblem(net, q_spec, p_spec, FixedCapacities(25, 80));

    CustomerDb::Options options;
    options.rtree.page_size = 1024;  // the paper's page size
    options.buffer_fraction = 0.01;  // the paper's buffer size
    db_ = std::make_unique<CustomerDb>(problem_.customers, options);
  }

  Problem problem_;
  std::unique_ptr<CustomerDb> db_;
};

TEST_F(IntegrationTest, AllExactSolversAgreeOnRoadNetworkData) {
  const double optimal = SolveSspa(problem_).matching.cost();
  const ExactResult ria = SolveRia(problem_, db_.get(), ExactConfig{});
  const ExactResult nia = SolveNia(problem_, db_.get(), ExactConfig{});
  const ExactResult ida = SolveIda(problem_, db_.get(), ExactConfig{});

  const double tol = 1e-5 * (1.0 + optimal);
  EXPECT_NEAR(ria.matching.cost(), optimal, tol);
  EXPECT_NEAR(nia.matching.cost(), optimal, tol);
  EXPECT_NEAR(ida.matching.cost(), optimal, tol);

  std::string error;
  EXPECT_TRUE(ValidateMatching(problem_, ida.matching, &error)) << error;

  // The incremental solvers must prune the bipartite graph hard: on this
  // workload, well below 50% of |Q| x |P| edges.
  const auto full = problem_.providers.size() * problem_.customers.size();
  EXPECT_LT(ida.metrics.edges_inserted, full / 2);
  EXPECT_LE(ida.metrics.edges_inserted, nia.metrics.edges_inserted + 2);
}

TEST_F(IntegrationTest, IoAccountingBehaves) {
  const ExactResult ida = SolveIda(problem_, db_.get(), ExactConfig{});
  EXPECT_GT(ida.metrics.node_accesses, 0u);
  EXPECT_GT(ida.metrics.page_faults, 0u);
  // Faults cannot exceed logical node accesses.
  EXPECT_LE(ida.metrics.page_faults, ida.metrics.node_accesses);
  EXPECT_GT(ida.metrics.io_millis(), 0.0);
  // The buffer is tiny (1%), so there must be misses beyond the cold set,
  // yet hits too (locality).
  EXPECT_LT(db_->tree()->buffer().capacity(), db_->tree()->page_count());
}

TEST_F(IntegrationTest, GroupedAnnReducesIo) {
  ExactConfig grouped;
  grouped.use_ann_grouping = true;
  ExactConfig plain;
  plain.use_ann_grouping = false;
  db_->CoolDown();
  const ExactResult with_ann = SolveIda(problem_, db_.get(), grouped);
  db_->CoolDown();
  const ExactResult without_ann = SolveIda(problem_, db_.get(), plain);
  EXPECT_NEAR(with_ann.matching.cost(), without_ann.matching.cost(), 1e-5);
  EXPECT_LE(with_ann.metrics.node_accesses, without_ann.metrics.node_accesses);
}

TEST_F(IntegrationTest, ApproximationsWithinBoundsAndCheaper) {
  const ExactResult ida = SolveIda(problem_, db_.get(), ExactConfig{});
  const double optimal = ida.matching.cost();

  ApproxConfig sa_config;
  sa_config.delta = 40.0;  // the paper's SA default
  const ApproxResult sa = SolveSa(problem_, db_.get(), sa_config);
  ApproxConfig ca_config;
  ca_config.delta = 10.0;  // the paper's CA default
  const ApproxResult ca = SolveCa(problem_, db_.get(), ca_config);

  std::string error;
  EXPECT_TRUE(ValidateMatching(problem_, sa.matching, &error)) << error;
  EXPECT_TRUE(ValidateMatching(problem_, ca.matching, &error)) << error;

  EXPECT_LE(sa.matching.cost(), optimal + SaErrorBound(problem_.Gamma(), sa_config.delta));
  EXPECT_LE(ca.matching.cost(), optimal + CaErrorBound(problem_.Gamma(), ca_config.delta));
  EXPECT_GE(sa.matching.cost(), optimal - 1e-6);
  EXPECT_GE(ca.matching.cost(), optimal - 1e-6);

  // CA's headline property (paper Figure 14): near-optimal quality at a
  // fraction of IDA's cost. Check the quality side deterministically.
  EXPECT_LT(ca.matching.cost() / optimal, 1.5);
}

TEST_F(IntegrationTest, MixedCapacitiesStillOptimal) {
  Problem mixed = problem_;
  const auto caps = MixedCapacities(mixed.providers.size(), 40, 120, 77);
  for (std::size_t i = 0; i < mixed.providers.size(); ++i) {
    mixed.providers[i].capacity = caps[i];
  }
  const double optimal = SolveSspa(mixed).matching.cost();
  const ExactResult ida = SolveIda(mixed, db_.get(), ExactConfig{});
  EXPECT_NEAR(ida.matching.cost(), optimal, 1e-5 * (1.0 + optimal));
}

}  // namespace
}  // namespace cca
