// Workload generator tests: road network structure, point distributions,
// capacity vectors.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "gen/road_network.h"

namespace cca {
namespace {

TEST(RoadNetworkTest, GridIsConnected) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto net = RoadNetwork::MakeGrid(12, 12, DefaultWorld(), seed);
    EXPECT_TRUE(net.IsConnected()) << "seed " << seed;
    EXPECT_EQ(net.junctions.size(), 144u);
    EXPECT_GT(net.edges.size(), 144u);  // more streets than junctions
  }
}

TEST(RoadNetworkTest, JunctionsInsideWorld) {
  const auto net = DefaultNetwork();
  for (const auto& j : net.junctions) {
    EXPECT_TRUE(net.world.Contains(j));
  }
}

TEST(RoadNetworkTest, EdgeLengthsMatchGeometry) {
  const auto net = DefaultNetwork();
  for (const auto& e : net.edges) {
    EXPECT_NEAR(e.length,
                Distance(net.junctions[static_cast<std::size_t>(e.a)],
                         net.junctions[static_cast<std::size_t>(e.b)]),
                1e-9);
    EXPECT_GT(e.length, 0.0);
  }
}

TEST(RoadNetworkTest, PointOnEdgeInterpolates) {
  const auto net = DefaultNetwork();
  const auto& e = net.edges[0];
  const Point a = net.junctions[static_cast<std::size_t>(e.a)];
  const Point b = net.junctions[static_cast<std::size_t>(e.b)];
  EXPECT_EQ(net.PointOnEdge(0, 0.0), a);
  EXPECT_EQ(net.PointOnEdge(0, 1.0), b);
  const Point mid = net.PointOnEdge(0, 0.5);
  EXPECT_NEAR(Distance(mid, a), Distance(mid, b), 1e-9);
}

TEST(RoadNetworkTest, DeterministicPerSeed) {
  const auto a = RoadNetwork::MakeGrid(10, 10, DefaultWorld(), 7);
  const auto b = RoadNetwork::MakeGrid(10, 10, DefaultWorld(), 7);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].a, b.edges[i].a);
    EXPECT_EQ(a.edges[i].b, b.edges[i].b);
  }
}

// Every generated point must lie on some network edge (within epsilon).
double DistToSegment(const Point& p, const Point& a, const Point& b) {
  const double dx = b.x - a.x, dy = b.y - a.y;
  const double len2 = dx * dx + dy * dy;
  double t = len2 == 0 ? 0.0 : ((p.x - a.x) * dx + (p.y - a.y) * dy) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return Distance(p, Point{a.x + t * dx, a.y + t * dy});
}

TEST(GeneratorTest, PointsLieOnNetwork) {
  const auto net = RoadNetwork::MakeGrid(8, 8, DefaultWorld(), 3);
  DatasetSpec spec;
  spec.count = 200;
  spec.seed = 5;
  spec.distribution = PointDistribution::kClustered;
  const auto pts = GeneratePoints(net, spec);
  ASSERT_EQ(pts.size(), 200u);
  for (const auto& p : pts) {
    double best = 1e100;
    for (const auto& e : net.edges) {
      best = std::min(best, DistToSegment(p, net.junctions[static_cast<std::size_t>(e.a)],
                                          net.junctions[static_cast<std::size_t>(e.b)]));
    }
    EXPECT_LT(best, 1e-6);
  }
}

TEST(GeneratorTest, Deterministic) {
  const auto net = DefaultNetwork();
  DatasetSpec spec;
  spec.count = 500;
  spec.seed = 9;
  const auto a = GeneratePoints(net, spec);
  const auto b = GeneratePoints(net, spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(GeneratorTest, SeedsProduceDifferentData) {
  const auto net = DefaultNetwork();
  DatasetSpec a_spec, b_spec;
  a_spec.count = b_spec.count = 100;
  a_spec.seed = 1;
  b_spec.seed = 2;
  const auto a = GeneratePoints(net, a_spec);
  const auto b = GeneratePoints(net, b_spec);
  int equal = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++equal;
  }
  EXPECT_LT(equal, 5);
}

// Clustered data must be substantially more concentrated than uniform:
// compare the mean distance to the nearest of the 10 densest grid cells.
TEST(GeneratorTest, ClusteredIsDenserThanUniform) {
  const auto net = DefaultNetwork();
  DatasetSpec clustered;
  clustered.count = 4000;
  clustered.seed = 11;
  clustered.distribution = PointDistribution::kClustered;
  DatasetSpec uniform = clustered;
  uniform.distribution = PointDistribution::kUniform;

  auto mean_nn_spread = [](const std::vector<Point>& pts) {
    // Average distance of each point to the dataset centroid quantised in
    // a 20x20 histogram: clustered data concentrates mass in few cells.
    std::vector<int> hist(400, 0);
    for (const auto& p : pts) {
      const int cx = std::min(19, static_cast<int>(p.x / 50.0));
      const int cy = std::min(19, static_cast<int>(p.y / 50.0));
      ++hist[static_cast<std::size_t>(cy * 20 + cx)];
    }
    std::sort(hist.begin(), hist.end(), std::greater<>());
    // Mass captured by the 40 densest cells (10% of the area).
    double top = 0;
    for (int i = 0; i < 40; ++i) top += hist[static_cast<std::size_t>(i)];
    return top / static_cast<double>(pts.size());
  };
  const double c = mean_nn_spread(GeneratePoints(net, clustered));
  const double u = mean_nn_spread(GeneratePoints(net, uniform));
  EXPECT_GT(c, u + 0.2) << "clustered=" << c << " uniform=" << u;
}

TEST(GeneratorTest, CapacityVectors) {
  const auto fixed = FixedCapacities(10, 80);
  EXPECT_EQ(fixed.size(), 10u);
  for (auto k : fixed) EXPECT_EQ(k, 80);
  const auto mixed = MixedCapacities(1000, 40, 120, 3);
  std::int64_t total = 0;
  for (auto k : mixed) {
    EXPECT_GE(k, 40);
    EXPECT_LE(k, 120);
    total += k;
  }
  // Mean should be near the midpoint.
  EXPECT_NEAR(static_cast<double>(total) / 1000.0, 80.0, 5.0);
}

TEST(GeneratorTest, MakeProblemAssemblesEverything) {
  const auto net = DefaultNetwork();
  DatasetSpec q_spec;
  q_spec.count = 20;
  q_spec.seed = 21;
  DatasetSpec p_spec;
  p_spec.count = 300;
  p_spec.seed = 22;
  const Problem problem = MakeProblem(net, q_spec, p_spec, FixedCapacities(20, 7));
  EXPECT_EQ(problem.providers.size(), 20u);
  EXPECT_EQ(problem.customers.size(), 300u);
  EXPECT_EQ(problem.TotalCapacity(), 140);
  EXPECT_EQ(problem.Gamma(), 140);
}

}  // namespace
}  // namespace cca
