// Geometry kernel tests: distances, MBR algebra, mindist/maxdist bounds.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace cca {
namespace {

TEST(PointTest, DistanceBasics) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
}

TEST(PointTest, DistanceSymmetry) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const Point a{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    const Point b{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
  }
}

TEST(PointTest, TriangleInequality) {
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    const Point a{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const Point b{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const Point c{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    EXPECT_LE(Distance(a, c), Distance(a, b) + Distance(b, c) + 1e-12);
  }
}

TEST(RectTest, EmptyRect) {
  Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  EXPECT_DOUBLE_EQ(r.Diagonal(), 0.0);
  EXPECT_FALSE(r.Contains(Point{0, 0}));
  EXPECT_TRUE(std::isinf(MinDist(Point{0, 0}, r)));
}

TEST(RectTest, ExpandFromEmptyAdoptsPoint) {
  Rect r;
  r.Expand(Point{2, 3});
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.lo, (Point{2, 3}));
  EXPECT_EQ(r.hi, (Point{2, 3}));
  EXPECT_DOUBLE_EQ(r.Diagonal(), 0.0);
}

TEST(RectTest, ExpandGrowsMonotonically) {
  Rect r = Rect::FromPoint({5, 5});
  r.Expand(Point{1, 9});
  EXPECT_EQ(r.lo, (Point{1, 5}));
  EXPECT_EQ(r.hi, (Point{5, 9}));
  r.Expand(Point{3, 7});  // interior point: no change
  EXPECT_EQ(r.lo, (Point{1, 5}));
  EXPECT_EQ(r.hi, (Point{5, 9}));
}

TEST(RectTest, AreaMarginDiagonal) {
  const Rect r = Rect::FromCorners({0, 0}, {3, 4});
  EXPECT_DOUBLE_EQ(r.Area(), 12.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 7.0);
  EXPECT_DOUBLE_EQ(r.Diagonal(), 5.0);
  EXPECT_EQ(r.Center(), (Point{1.5, 2.0}));
}

TEST(RectTest, ContainsAndIntersects) {
  const Rect a = Rect::FromCorners({0, 0}, {10, 10});
  const Rect b = Rect::FromCorners({2, 2}, {4, 4});
  const Rect c = Rect::FromCorners({9, 9}, {12, 12});
  const Rect d = Rect::FromCorners({20, 20}, {30, 30});
  EXPECT_TRUE(a.Contains(b));
  EXPECT_FALSE(b.Contains(a));
  EXPECT_TRUE(a.Intersects(c));
  EXPECT_FALSE(a.Intersects(d));
  EXPECT_TRUE(a.Contains(Point{10, 10}));  // closed boundaries
  EXPECT_FALSE(a.Contains(Point{10.0001, 10}));
}

TEST(RectTest, UnionAndEnlargement) {
  const Rect a = Rect::FromCorners({0, 0}, {2, 2});
  const Rect b = Rect::FromCorners({4, 4}, {6, 6});
  const Rect u = Rect::Union(a, b);
  EXPECT_EQ(u, Rect::FromCorners({0, 0}, {6, 6}));
  EXPECT_DOUBLE_EQ(Rect::Enlargement(a, b), 36.0 - 4.0);
  EXPECT_DOUBLE_EQ(Rect::Enlargement(a, a), 0.0);
}

TEST(MinDistTest, PointRectCases) {
  const Rect r = Rect::FromCorners({2, 2}, {4, 4});
  EXPECT_DOUBLE_EQ(MinDist(Point{3, 3}, r), 0.0);   // inside
  EXPECT_DOUBLE_EQ(MinDist(Point{2, 2}, r), 0.0);   // corner
  EXPECT_DOUBLE_EQ(MinDist(Point{0, 3}, r), 2.0);   // left face
  EXPECT_DOUBLE_EQ(MinDist(Point{3, 7}, r), 3.0);   // above
  EXPECT_DOUBLE_EQ(MinDist(Point{0, 0}, r), std::sqrt(8.0));  // diagonal
}

TEST(MaxDistTest, PointRectCases) {
  const Rect r = Rect::FromCorners({2, 2}, {4, 4});
  EXPECT_DOUBLE_EQ(MaxDist(Point{3, 3}, r), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(MaxDist(Point{0, 0}, r), std::sqrt(32.0));
}

// MinDist/MaxDist must bound the distance to every point inside the rect.
TEST(MinMaxDistTest, BoundsRandomisedProperty) {
  Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    const Rect r = Rect::FromCorners({rng.Uniform(0, 50), rng.Uniform(0, 50)},
                                     {rng.Uniform(50, 100), rng.Uniform(50, 100)});
    const Point q{rng.Uniform(-50, 150), rng.Uniform(-50, 150)};
    for (int s = 0; s < 20; ++s) {
      const Point inside{rng.Uniform(r.lo.x, r.hi.x), rng.Uniform(r.lo.y, r.hi.y)};
      const double d = Distance(q, inside);
      EXPECT_LE(MinDist(q, r), d + 1e-9);
      EXPECT_GE(MaxDist(q, r), d - 1e-9);
    }
  }
}

TEST(RectRectMinDistTest, Cases) {
  const Rect a = Rect::FromCorners({0, 0}, {2, 2});
  EXPECT_DOUBLE_EQ(MinDist(a, Rect::FromCorners({1, 1}, {3, 3})), 0.0);  // overlap
  EXPECT_DOUBLE_EQ(MinDist(a, Rect::FromCorners({5, 0}, {6, 2})), 3.0);  // right gap
  EXPECT_DOUBLE_EQ(MinDist(a, Rect::FromCorners({5, 6}, {7, 8})),
                   Distance({2, 2}, {5, 6}));  // diagonal gap
}

// mindist(A, B) lower-bounds the distance between any two contained points.
TEST(RectRectMinDistTest, LowerBoundProperty) {
  Rng rng(123);
  for (int iter = 0; iter < 100; ++iter) {
    const Rect a = Rect::FromCorners({rng.Uniform(0, 40), rng.Uniform(0, 40)},
                                     {rng.Uniform(40, 80), rng.Uniform(40, 80)});
    const Rect b = Rect::FromCorners({rng.Uniform(100, 140), rng.Uniform(0, 140)},
                                     {rng.Uniform(140, 180), rng.Uniform(140, 180)});
    for (int s = 0; s < 10; ++s) {
      const Point pa{rng.Uniform(a.lo.x, a.hi.x), rng.Uniform(a.lo.y, a.hi.y)};
      const Point pb{rng.Uniform(b.lo.x, b.hi.x), rng.Uniform(b.lo.y, b.hi.y)};
      EXPECT_LE(MinDist(a, b), Distance(pa, pb) + 1e-9);
    }
  }
}

}  // namespace
}  // namespace cca
