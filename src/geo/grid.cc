#include "geo/grid.h"

#include <algorithm>
#include <cmath>

namespace cca {

UniformGrid::UniformGrid(const std::vector<Point>& points, double target_per_cell) {
  for (const auto& p : points) bounds_.Expand(p);
  if (bounds_.empty()) bounds_ = Rect::FromPoint(Point{0.0, 0.0});
  if (target_per_cell > 0.0) {
    Build(points, target_per_cell);
    return;
  }
  // Auto-tune: measure occupancy at the default resolution. On skewed
  // inputs most of the bounding box is empty, so the occupied cells hold
  // far more than the target; shrinking the cell area by target/occupancy
  // brings the occupied mean back to the target (clamped so the cell count
  // stays O(n)).
  Build(points, kDefaultTargetPerCell);
  const double occupancy = MeanOccupancy();
  if (occupancy > 1.5 * kDefaultTargetPerCell) {
    const double tuned =
        std::max(1.0, kDefaultTargetPerCell * (kDefaultTargetPerCell / occupancy));
    // Skip the rebuild when the tuned target resolves to the resolution
    // already built (degenerate extents clamp to the same cell geometry):
    // re-binning the points would reproduce the CSR arrays bit for bit.
    double cell = 0.0;
    int cols = 0, rows = 0;
    ResolutionFor(points.size(), tuned, &cell, &cols, &rows);
    if (cell != cell_ || cols != cols_ || rows != rows_) Build(points, tuned);
  }
}

void UniformGrid::ResolutionFor(std::size_t n_points, double target_per_cell, double* cell,
                                int* cols, int* rows) const {
  const double w = bounds_.width();
  const double h = bounds_.height();
  const double n = static_cast<double>(n_points);
  const double cells_target = std::max(1.0, n / std::max(1.0, target_per_cell));
  if (w > 0.0 && h > 0.0) {
    *cell = std::sqrt(w * h / cells_target);
  } else if (w > 0.0 || h > 0.0) {
    *cell = std::max(w, h) / cells_target;  // collinear: one row/column
  } else {
    *cell = 1.0;  // all points coincide (or empty): a single cell
  }
  *cols = std::max(1, static_cast<int>(std::ceil(w / *cell)));
  *rows = std::max(1, static_cast<int>(std::ceil(h / *cell)));
}

void UniformGrid::Build(const std::vector<Point>& points, double target_per_cell) {
  ++build_count_;
  ResolutionFor(points.size(), target_per_cell, &cell_, &cols_, &rows_);

  const std::size_t num_cells = static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  start_.assign(num_cells + 1, 0);
  items_.resize(points.size());
  xs_.resize(points.size());
  ys_.resize(points.size());

  std::vector<std::int32_t> cell_of(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    int cx = 0, cy = 0;
    Locate(points[i], &cx, &cy);
    cell_of[i] = static_cast<std::int32_t>(CellIndex(cx, cy));
    ++start_[static_cast<std::size_t>(cell_of[i]) + 1];
  }
  for (std::size_t c = 0; c < num_cells; ++c) start_[c + 1] += start_[c];
  std::vector<std::int32_t> cursor(start_.begin(), start_.end() - 1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto slot = static_cast<std::size_t>(cursor[static_cast<std::size_t>(cell_of[i])]++);
    items_[slot] = static_cast<std::int32_t>(i);
    xs_[slot] = points[i].x;
    ys_[slot] = points[i].y;
  }
}

std::size_t UniformGrid::NonEmptyCells() const {
  std::size_t occupied = 0;
  for (std::size_t c = 0; c + 1 < start_.size(); ++c) {
    if (start_[c + 1] > start_[c]) ++occupied;
  }
  return occupied;
}

double UniformGrid::MeanOccupancy() const {
  const std::size_t occupied = NonEmptyCells();
  return occupied == 0 ? 0.0 : static_cast<double>(items_.size()) / static_cast<double>(occupied);
}

void UniformGrid::Locate(const Point& q, int* cx, int* cy) const {
  const int x = static_cast<int>(std::floor((q.x - bounds_.lo.x) / cell_));
  const int y = static_cast<int>(std::floor((q.y - bounds_.lo.y) / cell_));
  *cx = std::clamp(x, 0, cols_ - 1);
  *cy = std::clamp(y, 0, rows_ - 1);
}

int UniformGrid::MaxRing(const Point& q) const {
  int cx = 0, cy = 0;
  Locate(q, &cx, &cy);
  const int dx = std::max(cx, cols_ - 1 - cx);
  const int dy = std::max(cy, rows_ - 1 - cy);
  return std::max(dx, dy);
}

double UniformGrid::RingTailMinDist(const Point& q, int ring) const {
  // Every indexed point lies inside the bounding box, so its distance to
  // an exterior query is at least MinDist(q, bounds): without this floor a
  // query outside the box gets a useless 0 bound for the small rings whose
  // cell square does not contain it, and NN cursors for exterior providers
  // could never certify a candidate before exhausting the grid.
  const double outside = MinDist(q, bounds_);
  if (ring <= 0) return outside;
  int cx = 0, cy = 0;
  Locate(q, &cx, &cy);
  // Every point in ring >= r lies outside the square of cells at Chebyshev
  // distance <= r-1; if q is inside that square, its distance to the
  // square's boundary bounds all remaining rings from below.
  const int half = ring - 1;
  const double lx = bounds_.lo.x + static_cast<double>(cx - half) * cell_;
  const double hx = bounds_.lo.x + static_cast<double>(cx + half + 1) * cell_;
  const double ly = bounds_.lo.y + static_cast<double>(cy - half) * cell_;
  const double hy = bounds_.lo.y + static_cast<double>(cy + half + 1) * cell_;
  if (q.x < lx || q.x > hx || q.y < ly || q.y > hy) return outside;
  const double side = std::min(std::min(q.x - lx, hx - q.x), std::min(q.y - ly, hy - q.y));
  return std::max(std::max(side, 0.0), outside);
}

Rect UniformGrid::CellRect(int cx, int cy) const {
  const double lx = bounds_.lo.x + static_cast<double>(cx) * cell_;
  const double ly = bounds_.lo.y + static_cast<double>(cy) * cell_;
  return Rect{{lx, ly}, {lx + cell_, ly + cell_}};
}

UniformGrid::CellSlice UniformGrid::Cell(int cx, int cy) const {
  const std::size_t c = CellIndex(cx, cy);
  const auto begin = static_cast<std::size_t>(start_[c]);
  const auto end = static_cast<std::size_t>(start_[c + 1]);
  CellSlice slice;
  slice.ids = items_.data() + begin;
  slice.xs = xs_.data() + begin;
  slice.ys = ys_.data() + begin;
  slice.count = end - begin;
  return slice;
}

}  // namespace cca
