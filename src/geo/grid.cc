#include "geo/grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cca {

UniformGrid::UniformGrid(const std::vector<Point>& points, double target_per_cell) {
  for (const auto& p : points) bounds_.Expand(p);
  if (bounds_.empty()) bounds_ = Rect::FromPoint(Point{0.0, 0.0});
  if (target_per_cell > 0.0) {
    Build(points, target_per_cell);
    return;
  }
  // Auto-tune: measure occupancy at the default resolution. On skewed
  // inputs most of the bounding box is empty, so the occupied cells hold
  // far more than the target; shrinking the cell area by target/occupancy
  // brings the occupied mean back to the target (clamped so the cell count
  // stays O(n)).
  Build(points, kDefaultTargetPerCell);
  const double occupancy = MeanOccupancy();
  if (occupancy > 1.5 * kDefaultTargetPerCell) {
    const double tuned =
        std::max(1.0, kDefaultTargetPerCell * (kDefaultTargetPerCell / occupancy));
    // Skip the rebuild when the tuned target resolves to the resolution
    // already built (degenerate extents clamp to the same cell geometry):
    // re-binning the points would reproduce the CSR arrays bit for bit.
    double cell = 0.0;
    int cols = 0, rows = 0;
    ResolutionFor(points.size(), tuned, &cell, &cols, &rows);
    if (cell != cell_ || cols != cols_ || rows != rows_) Build(points, tuned);
  }
}

void UniformGrid::ResolutionFor(std::size_t n_points, double target_per_cell, double* cell,
                                int* cols, int* rows) const {
  const double w = bounds_.width();
  const double h = bounds_.height();
  const double n = static_cast<double>(n_points);
  const double cells_target = std::max(1.0, n / std::max(1.0, target_per_cell));
  if (w > 0.0 && h > 0.0) {
    *cell = std::sqrt(w * h / cells_target);
  } else if (w > 0.0 || h > 0.0) {
    *cell = std::max(w, h) / cells_target;  // collinear: one row/column
  } else {
    *cell = 1.0;  // all points coincide (or empty): a single cell
  }
  *cols = std::max(1, static_cast<int>(std::ceil(w / *cell)));
  *rows = std::max(1, static_cast<int>(std::ceil(h / *cell)));
}

void UniformGrid::Build(const std::vector<Point>& points, double target_per_cell) {
  ++build_count_;
  ResolutionFor(points.size(), target_per_cell, &cell_, &cols_, &rows_);

  const std::size_t num_cells = static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  start_.assign(num_cells + 1, 0);
  items_.resize(points.size());
  xs_.resize(points.size());
  ys_.resize(points.size());

  cell_of_.resize(points.size());
  slot_of_.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    int cx = 0, cy = 0;
    Locate(points[i], &cx, &cy);
    cell_of_[i] = static_cast<std::int32_t>(CellIndex(cx, cy));
    ++start_[static_cast<std::size_t>(cell_of_[i]) + 1];
  }
  for (std::size_t c = 0; c < num_cells; ++c) start_[c + 1] += start_[c];
  std::vector<std::int32_t> cursor(start_.begin(), start_.end() - 1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto slot = static_cast<std::size_t>(cursor[static_cast<std::size_t>(cell_of_[i])]++);
    items_[slot] = static_cast<std::int32_t>(i);
    xs_[slot] = points[i].x;
    ys_[slot] = points[i].y;
    slot_of_[i] = static_cast<std::int32_t>(slot);
  }
  nonempty_cells_.clear();
  for (std::size_t c = 0; c < num_cells; ++c) {
    if (start_[c + 1] > start_[c]) nonempty_cells_.push_back(static_cast<std::int32_t>(c));
  }
}

std::size_t UniformGrid::NonEmptyCells() const {
  std::size_t occupied = 0;
  for (std::size_t c = 0; c + 1 < start_.size(); ++c) {
    if (start_[c + 1] > start_[c]) ++occupied;
  }
  return occupied;
}

double UniformGrid::MeanOccupancy() const {
  const std::size_t occupied = NonEmptyCells();
  return occupied == 0 ? 0.0 : static_cast<double>(items_.size()) / static_cast<double>(occupied);
}

void UniformGrid::Locate(const Point& q, int* cx, int* cy) const {
  const int x = static_cast<int>(std::floor((q.x - bounds_.lo.x) / cell_));
  const int y = static_cast<int>(std::floor((q.y - bounds_.lo.y) / cell_));
  *cx = std::clamp(x, 0, cols_ - 1);
  *cy = std::clamp(y, 0, rows_ - 1);
}

int UniformGrid::MaxRing(const Point& q) const {
  int cx = 0, cy = 0;
  Locate(q, &cx, &cy);
  const int dx = std::max(cx, cols_ - 1 - cx);
  const int dy = std::max(cy, rows_ - 1 - cy);
  return std::max(dx, dy);
}

double UniformGrid::RingTailMinDist(const Point& q, int ring) const {
  // Every indexed point lies inside the bounding box, so its distance to
  // an exterior query is at least MinDist(q, bounds): without this floor a
  // query outside the box gets a useless 0 bound for the small rings whose
  // cell square does not contain it, and NN cursors for exterior providers
  // could never certify a candidate before exhausting the grid.
  const double outside = MinDist(q, bounds_);
  if (ring <= 0) return outside;
  int cx = 0, cy = 0;
  Locate(q, &cx, &cy);
  // Every point in ring >= r lies outside the square of cells at Chebyshev
  // distance <= r-1; if q is inside that square, its distance to the
  // square's boundary bounds all remaining rings from below.
  const int half = ring - 1;
  const double lx = bounds_.lo.x + static_cast<double>(cx - half) * cell_;
  const double hx = bounds_.lo.x + static_cast<double>(cx + half + 1) * cell_;
  const double ly = bounds_.lo.y + static_cast<double>(cy - half) * cell_;
  const double hy = bounds_.lo.y + static_cast<double>(cy + half + 1) * cell_;
  if (q.x < lx || q.x > hx || q.y < ly || q.y > hy) return outside;
  const double side = std::min(std::min(q.x - lx, hx - q.x), std::min(q.y - ly, hy - q.y));
  return std::max(std::max(side, 0.0), outside);
}

Rect UniformGrid::CellRect(int cx, int cy) const {
  const double lx = bounds_.lo.x + static_cast<double>(cx) * cell_;
  const double ly = bounds_.lo.y + static_cast<double>(cy) * cell_;
  return Rect{{lx, ly}, {lx + cell_, ly + cell_}};
}

UniformGrid::CellSlice UniformGrid::Cell(int cx, int cy) const {
  const std::size_t c = CellIndex(cx, cy);
  const auto begin = static_cast<std::size_t>(start_[c]);
  const auto end = static_cast<std::size_t>(start_[c + 1]);
  CellSlice slice;
  slice.ids = items_.data() + begin;
  slice.xs = xs_.data() + begin;
  slice.ys = ys_.data() + begin;
  slice.count = end - begin;
  slice.first_slot = begin;
  return slice;
}

CellTauTable::CellTauTable(const UniformGrid& grid)
    : grid_(&grid),
      values_(grid.size(), 0.0),
      floors_(grid.num_cells(), std::numeric_limits<double>::infinity()) {
  for (const std::int32_t c : grid.nonempty_cells()) {
    floors_[static_cast<std::size_t>(c)] = 0.0;
  }
}

CellTauTable::CellTauTable(const UniformGrid& grid, const std::vector<double>& initial)
    : grid_(&grid),
      values_(grid.size()),
      floors_(grid.num_cells(), std::numeric_limits<double>::infinity()) {
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[grid.slot_of_point(i)] = initial[i];
  }
  for (const std::int32_t c : grid.nonempty_cells()) {
    const auto cell = static_cast<std::size_t>(c);
    double floor = values_[grid.cell_begin(cell)];
    for (std::size_t s = grid.cell_begin(cell) + 1; s < grid.cell_end(cell); ++s) {
      floor = std::min(floor, values_[s]);
    }
    floors_[cell] = floor;
  }
  // Cached global starts stale; the first GlobalFloor() call rescans.
  global_dirty_ = !grid.nonempty_cells().empty();
}

void CellTauTable::Raise(std::size_t point_id, double value) {
  if (value <= values_[grid_->slot_of_point(point_id)]) {
    return;  // monotone contract: never lower a value
  }
  Set(point_id, value);
}

void CellTauTable::Remove(std::size_t point_id) {
  Set(point_id, std::numeric_limits<double>::infinity());
}

void CellTauTable::Set(std::size_t point_id, double value) {
  const std::size_t slot = grid_->slot_of_point(point_id);
  const double old = values_[slot];
  if (value == old) return;
  values_[slot] = value;
  const std::size_t cell = grid_->cell_of_point(point_id);
  double floor = floors_[cell];
  if (value < floor) {
    // New cell minimum: no rescan needed, and the cached global can only
    // move down to the same value.
    floor = value;
  } else if (old <= floors_[cell]) {
    // The old value held the cell's minimum (old > floor means somebody
    // else holds it and the floor is unaffected): rescan the residents.
    // Removed residents read +infinity, so a fully-removed cell floors at
    // +infinity exactly like an empty one.
    const std::size_t end = grid_->cell_end(cell);
    floor = values_[grid_->cell_begin(cell)];
    for (std::size_t s = grid_->cell_begin(cell) + 1; s < end; ++s) {
      floor = std::min(floor, values_[s]);
    }
  }
  if (floor != floors_[cell]) {
    if (!global_dirty_) {
      if (floor < global_floor_) {
        // Lowered below the cached global: the new global is exactly this.
        global_floor_ = floor;
      } else if (floors_[cell] == global_floor_) {
        // The global floor is the min over cell floors; it can only move
        // when the cell holding it moves, so defer the rescan until
        // someone asks.
        global_dirty_ = true;
      }
    }
    floors_[cell] = floor;
  }
}

double CellTauTable::GlobalFloor() {
  if (global_dirty_) {
    global_dirty_ = false;
    global_floor_ = std::numeric_limits<double>::infinity();
    for (const std::int32_t c : grid_->nonempty_cells()) {
      global_floor_ = std::min(global_floor_, floors_[static_cast<std::size_t>(c)]);
    }
    if (grid_->nonempty_cells().empty()) global_floor_ = 0.0;
  }
  return global_floor_;
}

}  // namespace cca
