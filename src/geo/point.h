// 2-D point type and distance kernels.
//
// The paper works in Euclidean 2-space with datasets normalised to
// [0, 1000]^2; all algorithms here extend to higher dimensionality, but the
// reproduction fixes d=2 like the evaluation does.
#ifndef CCA_GEO_POINT_H_
#define CCA_GEO_POINT_H_

#include <cmath>

namespace cca {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) { return a.x == b.x && a.y == b.y; }
  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }
};

// Squared Euclidean distance; preferred in comparisons to avoid sqrt.
inline double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

// Euclidean distance, the edge length `dist(q, p)` of the paper.
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

}  // namespace cca

#endif  // CCA_GEO_POINT_H_
