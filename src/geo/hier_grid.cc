#include "geo/hier_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cca {

namespace {

// Same resolution rule as UniformGrid::ResolutionFor, applied to the coarse
// lattice (square cells near `target_per_cell` residents on average, with
// the collinear / coincident fallbacks).
void CoarseResolutionFor(const Rect& bounds, std::size_t n_points, double target_per_cell,
                         double* cell, int* cols, int* rows) {
  const double w = bounds.width();
  const double h = bounds.height();
  const double n = static_cast<double>(n_points);
  const double cells_target = std::max(1.0, n / std::max(1.0, target_per_cell));
  if (w > 0.0 && h > 0.0) {
    *cell = std::sqrt(w * h / cells_target);
  } else if (w > 0.0 || h > 0.0) {
    *cell = std::max(w, h) / cells_target;  // collinear: one row/column
  } else {
    *cell = 1.0;  // all points coincide (or empty): a single cell
  }
  *cols = std::max(1, static_cast<int>(std::ceil(w / *cell)));
  *rows = std::max(1, static_cast<int>(std::ceil(h / *cell)));
}

}  // namespace

HierarchicalGrid::HierarchicalGrid(const std::vector<Point>& points, const Options& options) {
  for (const auto& p : points) bounds_.Expand(p);
  if (bounds_.empty()) bounds_ = Rect::FromPoint(Point{0.0, 0.0});

  const double coarse_target = options.coarse_target_per_cell > 0.0
                                   ? options.coarse_target_per_cell
                                   : 16.0 * UniformGrid::kDefaultTargetPerCell;
  const double fine_target = options.fine_target_per_cell > 0.0
                                 ? options.fine_target_per_cell
                                 : UniformGrid::kDefaultTargetPerCell;
  split_threshold_ =
      options.split_threshold > 0
          ? options.split_threshold
          : static_cast<std::size_t>(std::max(1.0, std::ceil(4.0 * fine_target)));

  CoarseResolutionFor(bounds_, points.size(), coarse_target, &cell_, &cols_, &rows_);
  const std::size_t num_coarse_cells = num_coarse();

  // Pass 1: coarse occupancy decides each cell's split factor.
  coarse_of_.resize(points.size());
  std::vector<std::int32_t> coarse_count(num_coarse_cells, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    int cx = 0, cy = 0;
    LocateCoarse(points[i], &cx, &cy);
    coarse_of_[i] = static_cast<std::int32_t>(CoarseIndex(cx, cy));
    ++coarse_count[static_cast<std::size_t>(coarse_of_[i])];
  }
  split_.resize(num_coarse_cells);
  fine_offset_.assign(num_coarse_cells + 1, 0);
  for (std::size_t c = 0; c < num_coarse_cells; ++c) {
    const auto occ = static_cast<std::size_t>(coarse_count[c]);
    int s = 1;
    if (occ > split_threshold_) {
      // Aim the children near the fine target; at least 2x2 (otherwise the
      // split buys nothing), at most kMaxSplit x kMaxSplit.
      const double want = std::ceil(std::sqrt(static_cast<double>(occ) / fine_target));
      s = std::clamp(static_cast<int>(want), 2, Options::kMaxSplit);
      ++splits_;
    }
    split_[c] = s;
    fine_offset_[c + 1] = fine_offset_[c] + static_cast<std::int32_t>(s) * s;
  }
  const auto num_fine_cells = static_cast<std::size_t>(fine_offset_[num_coarse_cells]);
  fine_owner_.resize(num_fine_cells);
  for (std::size_t c = 0; c < num_coarse_cells; ++c) {
    for (auto f = fine_offset_[c]; f < fine_offset_[c + 1]; ++f) {
      fine_owner_[static_cast<std::size_t>(f)] = static_cast<std::int32_t>(c);
    }
  }

  // Pass 2: CSR over fine cells (counting sort, like UniformGrid::Build).
  // Fine ids of a coarse cell are consecutive, so the slot order clusters
  // by coarse cell first, then by fine child — coarse_count(c) is one
  // subtraction on the CSR bounds.
  start_.assign(num_fine_cells + 1, 0);
  items_.resize(points.size());
  xs_.resize(points.size());
  ys_.resize(points.size());
  fine_of_.resize(points.size());
  slot_of_.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto c = static_cast<std::size_t>(coarse_of_[i]);
    const int s = split_[c];
    std::size_t f = static_cast<std::size_t>(fine_offset_[c]);
    if (s > 1) {
      const Rect r = CoarseRect(c);
      const double sub = cell_ / static_cast<double>(s);
      const int fx = std::clamp(
          static_cast<int>(std::floor((points[i].x - r.lo.x) / sub)), 0, s - 1);
      const int fy = std::clamp(
          static_cast<int>(std::floor((points[i].y - r.lo.y) / sub)), 0, s - 1);
      f += static_cast<std::size_t>(fy) * static_cast<std::size_t>(s) +
           static_cast<std::size_t>(fx);
    }
    fine_of_[i] = static_cast<std::int32_t>(f);
    ++start_[f + 1];
  }
  for (std::size_t f = 0; f < num_fine_cells; ++f) start_[f + 1] += start_[f];
  std::vector<std::int32_t> cursor(start_.begin(), start_.end() - 1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto slot = static_cast<std::size_t>(cursor[static_cast<std::size_t>(fine_of_[i])]++);
    items_[slot] = static_cast<std::int32_t>(i);
    xs_[slot] = points[i].x;
    ys_[slot] = points[i].y;
    slot_of_[i] = static_cast<std::int32_t>(slot);
  }
  nonempty_coarse_.clear();
  for (std::size_t c = 0; c < num_coarse_cells; ++c) {
    if (coarse_count[c] > 0) nonempty_coarse_.push_back(static_cast<std::int32_t>(c));
  }
}

void HierarchicalGrid::LocateCoarse(const Point& q, int* cx, int* cy) const {
  const int x = static_cast<int>(std::floor((q.x - bounds_.lo.x) / cell_));
  const int y = static_cast<int>(std::floor((q.y - bounds_.lo.y) / cell_));
  *cx = std::clamp(x, 0, cols_ - 1);
  *cy = std::clamp(y, 0, rows_ - 1);
}

int HierarchicalGrid::MaxRing(const Point& q) const {
  int cx = 0, cy = 0;
  LocateCoarse(q, &cx, &cy);
  const int dx = std::max(cx, cols_ - 1 - cx);
  const int dy = std::max(cy, rows_ - 1 - cy);
  return std::max(dx, dy);
}

double HierarchicalGrid::RingTailMinDist(const Point& q, int ring) const {
  // Same reasoning as UniformGrid::RingTailMinDist, on the coarse lattice:
  // the bound is floored by MinDist(q, bounds) so exterior queries keep a
  // useful bound on the rings whose cell square does not contain them.
  const double outside = MinDist(q, bounds_);
  if (ring <= 0) return outside;
  int cx = 0, cy = 0;
  LocateCoarse(q, &cx, &cy);
  const int half = ring - 1;
  const double lx = bounds_.lo.x + static_cast<double>(cx - half) * cell_;
  const double hx = bounds_.lo.x + static_cast<double>(cx + half + 1) * cell_;
  const double ly = bounds_.lo.y + static_cast<double>(cy - half) * cell_;
  const double hy = bounds_.lo.y + static_cast<double>(cy + half + 1) * cell_;
  if (q.x < lx || q.x > hx || q.y < ly || q.y > hy) return outside;
  const double side = std::min(std::min(q.x - lx, hx - q.x), std::min(q.y - ly, hy - q.y));
  return std::max(std::max(side, 0.0), outside);
}

Rect HierarchicalGrid::CoarseRect(std::size_t c) const {
  const auto cx = static_cast<double>(c % static_cast<std::size_t>(cols_));
  const auto cy = static_cast<double>(c / static_cast<std::size_t>(cols_));
  const double lx = bounds_.lo.x + cx * cell_;
  const double ly = bounds_.lo.y + cy * cell_;
  return Rect{{lx, ly}, {lx + cell_, ly + cell_}};
}

Rect HierarchicalGrid::FineRect(std::size_t f) const {
  const auto c = static_cast<std::size_t>(fine_owner_[f]);
  const int s = split_[c];
  const Rect coarse = CoarseRect(c);
  if (s == 1) return coarse;
  const auto local = f - static_cast<std::size_t>(fine_offset_[c]);
  const auto fx = static_cast<double>(local % static_cast<std::size_t>(s));
  const auto fy = static_cast<double>(local / static_cast<std::size_t>(s));
  const double sub = cell_ / static_cast<double>(s);
  const double lx = coarse.lo.x + fx * sub;
  const double ly = coarse.lo.y + fy * sub;
  return Rect{{lx, ly}, {lx + sub, ly + sub}};
}

UniformGrid::CellSlice HierarchicalGrid::FineCell(std::size_t f) const {
  const auto begin = static_cast<std::size_t>(start_[f]);
  const auto end = static_cast<std::size_t>(start_[f + 1]);
  UniformGrid::CellSlice slice;
  slice.ids = items_.data() + begin;
  slice.xs = xs_.data() + begin;
  slice.ys = ys_.data() + begin;
  slice.count = end - begin;
  slice.first_slot = begin;
  return slice;
}

HierTauTable::HierTauTable(const HierarchicalGrid& grid)
    : grid_(&grid),
      values_(grid.size(), 0.0),
      fine_floors_(grid.num_fine(), std::numeric_limits<double>::infinity()),
      coarse_floors_(grid.num_coarse(), std::numeric_limits<double>::infinity()) {
  for (std::size_t f = 0; f < grid.num_fine(); ++f) {
    if (grid.fine_cell_end(f) > grid.fine_cell_begin(f)) fine_floors_[f] = 0.0;
  }
  for (const std::int32_t c : grid.nonempty_coarse()) {
    coarse_floors_[static_cast<std::size_t>(c)] = 0.0;
  }
}

HierTauTable::HierTauTable(const HierarchicalGrid& grid, const std::vector<double>& initial)
    : grid_(&grid),
      values_(grid.size()),
      fine_floors_(grid.num_fine(), std::numeric_limits<double>::infinity()),
      coarse_floors_(grid.num_coarse(), std::numeric_limits<double>::infinity()) {
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[grid.slot_of_point(i)] = initial[i];
  }
  for (std::size_t f = 0; f < grid.num_fine(); ++f) {
    const std::size_t begin = grid.fine_cell_begin(f);
    const std::size_t end = grid.fine_cell_end(f);
    if (begin == end) continue;
    double floor = values_[begin];
    for (std::size_t s = begin + 1; s < end; ++s) floor = std::min(floor, values_[s]);
    fine_floors_[f] = floor;
  }
  for (const std::int32_t c : grid.nonempty_coarse()) {
    const auto coarse = static_cast<std::size_t>(c);
    double floor = std::numeric_limits<double>::infinity();
    for (std::size_t f = grid.fine_begin(coarse); f < grid.fine_end(coarse); ++f) {
      floor = std::min(floor, fine_floors_[f]);
    }
    coarse_floors_[coarse] = floor;
  }
  // Cached global starts stale; the first GlobalFloor() call rescans.
  global_dirty_ = !grid.nonempty_coarse().empty();
}

void HierTauTable::Raise(std::size_t point_id, double value) {
  if (value <= values_[grid_->slot_of_point(point_id)]) {
    return;  // monotone contract: never lower a value
  }
  Set(point_id, value);
}

void HierTauTable::Remove(std::size_t point_id) {
  Set(point_id, std::numeric_limits<double>::infinity());
}

void HierTauTable::Set(std::size_t point_id, double value) {
  const std::size_t slot = grid_->slot_of_point(point_id);
  const double old = values_[slot];
  if (value == old) return;
  values_[slot] = value;
  const std::size_t fine = grid_->fine_of_point(point_id);
  double fine_floor = fine_floors_[fine];
  if (value < fine_floor) {
    // New fine minimum: no rescan needed.
    fine_floor = value;
  } else if (old <= fine_floors_[fine]) {
    // The old value held the fine cell's minimum (old > floor means
    // another resident holds it): rescan. Removed residents read
    // +infinity, so a fully-removed fine cell floors at +infinity.
    const std::size_t end = grid_->fine_cell_end(fine);
    fine_floor = values_[grid_->fine_cell_begin(fine)];
    for (std::size_t s = grid_->fine_cell_begin(fine) + 1; s < end; ++s) {
      fine_floor = std::min(fine_floor, values_[s]);
    }
  }
  if (fine_floor == fine_floors_[fine]) return;
  const double old_fine = fine_floors_[fine];
  fine_floors_[fine] = fine_floor;
  // Cascade one level up: the coarse floor is the min over child fine
  // floors, so it only moves when the child holding it moved.
  const std::size_t coarse = grid_->coarse_of_point(point_id);
  double coarse_floor = coarse_floors_[coarse];
  if (fine_floor < coarse_floor) {
    coarse_floor = fine_floor;
  } else if (old_fine <= coarse_floors_[coarse]) {
    coarse_floor = std::numeric_limits<double>::infinity();
    const std::size_t fine_end = grid_->fine_end(coarse);
    for (std::size_t f = grid_->fine_begin(coarse); f < fine_end; ++f) {
      coarse_floor = std::min(coarse_floor, fine_floors_[f]);
    }
  }
  if (coarse_floor != coarse_floors_[coarse]) {
    if (!global_dirty_) {
      if (coarse_floor < global_floor_) {
        // Lowered below the cached global: the new global is exactly this.
        global_floor_ = coarse_floor;
      } else if (coarse_floors_[coarse] == global_floor_) {
        // The global floor only moves with the coarse cell that held it;
        // defer the rescan until someone asks.
        global_dirty_ = true;
      }
    }
    coarse_floors_[coarse] = coarse_floor;
  }
}

double HierTauTable::GlobalFloor() {
  if (global_dirty_) {
    global_dirty_ = false;
    global_floor_ = std::numeric_limits<double>::infinity();
    for (const std::int32_t c : grid_->nonempty_coarse()) {
      global_floor_ = std::min(global_floor_, coarse_floors_[static_cast<std::size_t>(c)]);
    }
    if (grid_->nonempty_coarse().empty()) global_floor_ = 0.0;
  }
  return global_floor_;
}

}  // namespace cca
