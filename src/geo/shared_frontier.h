// Shared-frontier batched discovery over a UniformGrid.
//
// Per-provider `GridNnCursor`s re-fetch the same cells when nearby
// providers sweep overlapping neighbourhoods (ROADMAP: "Batched
// multi-provider relaxation"). The two structures here amortise those cell
// visits, the grid analogue of the paper's grouped-ANN traversal
// (Section 3.4.2, rtree/ann_iterator.h):
//
//   * `SharedFrontier` serves one *group* of subscribed query points with
//     exact incremental NN streams from a single cell sweep. Cells expand
//     on demand in the demanding subscriber's mindist order; each first
//     expansion is one `cell_fetches` unit and its points are multiplexed
//     into the candidate heap of every active subscriber that has not been
//     handed the cell yet (`fanout` counts the deliveries). A subscriber's
//     walker skips cells it already received, so while subscribers stay
//     active a cell is fetched at most once per frontier no matter how
//     many of them need it. (Unsubscribing *terminates* a stream and
//     releases its queued candidates; see `Unsubscribe`.)
//   * `SharedCellSweep` is the re-scannable flavour for relax-style
//     consumers (the SSPA grid relax re-scans each provider's
//     neighbourhood on every pop with fresh bounds, so points cannot be
//     handed out eagerly): every scan walks its own ring order, but a cell
//     is charged as a fetch only on its first materialisation — later
//     serves of a resident cell are `fanout` (the sweep keeps swept cells
//     resident, like a buffer that never evicts the frontier).
//
// Soundness of the per-subscriber tail bounds (the core/README.md
// contract): subscriber q's uncertified candidates all lie in cells q's
// walker has not served, and every such cell c satisfies
// MinDist(q, c) >= walker.TailMinDist(); points delivered early sit in
// q's heap already, so serving the heap top once
// top.dist <= walker.TailMinDist() never skips a closer unseen point.
#ifndef CCA_GEO_SHARED_FRONTIER_H_
#define CCA_GEO_SHARED_FRONTIER_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "geo/grid.h"
#include "geo/grid_cursor.h"
#include "geo/point.h"

namespace cca {

// Cell-fetch accounting shared by both frontier flavours. `cell_fetches`
// counts first materialisations (the index-read unit, charged into
// Metrics::grid_cursor_cells / index_node_accesses by callers);
// `fanout` counts cell -> subscriber deliveries, so fanout / cell_fetches
// is the achieved sharing factor (1.0 = no sharing).
struct SharedFrontierStats {
  std::uint64_t cell_fetches = 0;
  std::uint64_t fanout = 0;
};

// One shared sweep serving exact per-subscriber NN streams. Subscribers
// are fixed at construction (callers group nearby providers, e.g. by
// Hilbert order); `Unsubscribe` terminates one and releases its state.
class SharedFrontier {
 public:
  SharedFrontier(const UniformGrid& grid, const std::vector<Point>& queries);

  std::size_t num_subscribers() const { return subs_.size(); }
  bool subscribed(int q) const { return subs_[static_cast<std::size_t>(q)].active; }

  // Terminates `q`'s stream (provider retired: capacity exhausted or the
  // solver is done with it) and releases its subscription slot — the
  // queued candidate heap and the per-cell delivery map, which together
  // dominate a subscriber's footprint and previously leaked for the rest
  // of the frontier's lifetime. Other members' streams are unaffected;
  // they also stop paying fanout work into `q`. After unsubscribing,
  // NextNN(q) returns nullopt and PeekDistance(q) is +infinity — the
  // stream is over, not merely un-amortised.
  void Unsubscribe(int q);

  // Next nearest point of subscriber `q` as (point id, distance), in
  // non-decreasing distance (ties among fetched candidates in ascending
  // id, exactly like GridNnCursor), or nullopt when the grid is exhausted.
  std::optional<std::pair<std::int32_t, double>> NextNN(int q);

  // Distance the next NextNN(q) would return (+infinity when exhausted);
  // may expand cells to certify, never consumes candidates.
  double PeekDistance(int q);

  const SharedFrontierStats& stats() const { return stats_; }

  // Test-only introspection: queued candidates and delivery-map capacity
  // of `q`'s slot, both zero once Unsubscribe released it.
  std::size_t queued_candidates(int q) const {
    return subs_[static_cast<std::size_t>(q)].heap.size();
  }
  std::size_t delivered_map_capacity(int q) const {
    return subs_[static_cast<std::size_t>(q)].delivered.capacity();
  }

 private:
  struct Subscriber {
    Point query;
    GridRingCursor walker;
    // NnCandidate ordering shared with GridNnCursor: the tie-break must
    // match for the single-subscriber degeneracy to hold.
    std::priority_queue<NnCandidate, std::vector<NnCandidate>, NnCandidateFarther> heap;
    std::vector<char> delivered;  // cell index -> points already in heap
    bool active = true;
  };

  // Expands q's sweep until its heap top is certified by its walker's
  // tail bound (or the grid drains), multiplexing each fetched cell.
  // (Cells carry their own side-table key, CellView::cell, so no grid
  // pointer is needed here.)
  void Refine(int q);

  std::vector<Subscriber> subs_;
  SharedFrontierStats stats_;
};

// Re-scannable shared sweep: one embedded ring cursor (Reset per scan)
// over a resident-cell set shared by all scans. Mirrors the subset of the
// GridRingCursor API the SSPA relax loop consumes.
class SharedCellSweep {
 public:
  explicit SharedCellSweep(const UniformGrid& grid);

  // Rewinds onto a new query point (one scan per provider pop).
  void Reset(const Point& query) { cursor_.Reset(query); }

  double TailMinDist() const { return cursor_.TailMinDist(); }
  std::size_t points_remaining() const { return cursor_.points_remaining(); }

  // Next non-empty cell in the current scan's ring order; charges a fetch
  // on first materialisation, a fanout unit on every serve.
  std::optional<GridRingCursor::CellView> NextCell();

  const SharedFrontierStats& stats() const { return stats_; }

 private:
  GridRingCursor cursor_;
  std::vector<char> resident_;
  SharedFrontierStats stats_;
};

// Re-scannable shared sweep over a HierarchicalGrid, the hierarchical
// sibling of SharedCellSweep. Coarse-cell traversal passes straight through
// (coarse cells are aggregate reads, not index fetches); residency is
// tracked per *fine* cell, and the consumer charges a fine cell via
// ChargeFine only when its bounds failed to reject it and the slice is
// actually opened — so coarse-tail rejections keep unopened regions out of
// the fetch ledger entirely, and re-scans of a resident fine cell cost a
// fanout unit, not a fetch.
class HierCellSweep {
 public:
  explicit HierCellSweep(const HierarchicalGrid& grid);

  // Rewinds onto a new query point (one scan per provider pop).
  void Reset(const Point& query) { cursor_.Reset(query); }

  double TailMinDist() const { return cursor_.TailMinDist(); }
  std::size_t points_remaining() const { return cursor_.points_remaining(); }

  // Next occupied coarse cell in the current scan's ring order.
  std::optional<HierRingCursor::CoarseView> NextCoarse() { return cursor_.NextCoarse(); }

  // Accounts an opened fine cell: a fetch on first materialisation across
  // all scans, a fanout unit on every open.
  void ChargeFine(std::size_t fine);

  const HierarchicalGrid& grid() const { return cursor_.grid(); }
  const SharedFrontierStats& stats() const { return stats_; }

 private:
  HierRingCursor cursor_;
  std::vector<char> resident_;
  SharedFrontierStats stats_;
};

}  // namespace cca

#endif  // CCA_GEO_SHARED_FRONTIER_H_
