#include "geo/grid_cursor.h"

#include <algorithm>

#include "common/trace.h"

namespace cca {

GridRingCursor::GridRingCursor(const UniformGrid& grid, const Point& query) : grid_(&grid) {
  Reset(query);
}

void GridRingCursor::Reset(const Point& query) {
  query_ = query;
  ring_ = 0;
  max_ring_ = grid_->MaxRing(query);
  exhausted_ = false;
  points_remaining_ = grid_->size();
  cells_visited_ = 0;
  FillRing();
}

void GridRingCursor::FillRing() {
  buffer_.clear();
  pos_ = 0;
  while (ring_ <= max_ring_) {
    grid_->VisitRing(query_, ring_, [&](int cx, int cy, const UniformGrid::CellSlice& slice) {
      buffer_.push_back(CellView{cx, cy, ring_, grid_->CellIndex(cx, cy),
                                 MinDist(query_, grid_->CellRect(cx, cy)), slice});
    });
    if (!buffer_.empty()) {
      // Serving a ring's cells nearest-first lets TailMinDist() tighten
      // past the coarse ring bound as soon as the close cells are consumed.
      // (Single-cell rings — ring 0, and clipped boundary rings — are the
      // common case on the SSPA hot path; skip the sort call for them.)
      if (buffer_.size() > 1) {
        std::sort(buffer_.begin(), buffer_.end(),
                  [](const CellView& a, const CellView& b) { return a.min_dist < b.min_dist; });
      }
      next_ring_bound_ = grid_->RingTailMinDist(query_, ring_ + 1);
      return;
    }
    ++ring_;  // empty ring: skip it (no points to bound)
  }
  exhausted_ = true;
}

std::optional<GridRingCursor::CellView> GridRingCursor::NextCell() {
  if (exhausted_) return std::nullopt;
  const CellView cell = buffer_[pos_++];
  ++cells_visited_;
  points_remaining_ -= cell.slice.count;
  if (pos_ == buffer_.size()) {
    ++ring_;
    FillRing();
  }
  return cell;
}

GridNnCursor::GridNnCursor(const UniformGrid& grid, const Point& query)
    : cells_(grid, query), query_(query) {}

void GridNnCursor::Refine() {
  while (!cells_.exhausted() && (heap_.empty() || heap_.top().dist > cells_.TailMinDist())) {
    const auto cell = cells_.NextCell();
    if (!cell) break;
    for (std::size_t i = 0; i < cell->slice.count; ++i) {
      heap_.push(NnCandidate{Distance(query_, Point{cell->slice.xs[i], cell->slice.ys[i]}),
                             cell->slice.ids[i]});
    }
  }
}

std::optional<std::pair<std::int32_t, double>> GridNnCursor::Next() {
  Refine();
  if (heap_.empty()) return std::nullopt;
  const NnCandidate top = heap_.top();
  heap_.pop();
  return std::make_pair(top.oid, top.dist);
}

double GridNnCursor::PeekDistance() {
  Refine();
  return heap_.empty() ? std::numeric_limits<double>::infinity() : heap_.top().dist;
}

HierRingCursor::HierRingCursor(const HierarchicalGrid& grid, const Point& query)
    : grid_(&grid) {
  Reset(query);
}

void HierRingCursor::Reset(const Point& query) {
  query_ = query;
  ring_ = 0;
  max_ring_ = grid_->MaxRing(query);
  exhausted_ = false;
  points_remaining_ = grid_->size();
  coarse_visited_ = 0;
  FillRing();
}

void HierRingCursor::FillRing() {
  buffer_.clear();
  pos_ = 0;
  while (ring_ <= max_ring_) {
    grid_->VisitCoarseRing(query_, ring_, [&](int cx, int cy) {
      const std::size_t c = grid_->CoarseIndex(cx, cy);
      const std::size_t count = grid_->coarse_count(c);
      if (count == 0) return;
      buffer_.push_back(CoarseView{cx, cy, ring_, c, MinDist(query_, grid_->CoarseRect(c)),
                                   count, grid_->fine_begin(c), grid_->fine_end(c)});
    });
    if (!buffer_.empty()) {
      // Nearest-first within a ring, same as GridRingCursor: TailMinDist()
      // tightens past the ring bound as the close coarse cells drain.
      if (buffer_.size() > 1) {
        std::sort(buffer_.begin(), buffer_.end(), [](const CoarseView& a, const CoarseView& b) {
          return a.min_dist < b.min_dist;
        });
      }
      next_ring_bound_ = grid_->RingTailMinDist(query_, ring_ + 1);
      return;
    }
    ++ring_;  // empty ring: skip it (no points to bound)
  }
  exhausted_ = true;
}

std::optional<HierRingCursor::CoarseView> HierRingCursor::NextCoarse() {
  if (exhausted_) return std::nullopt;
  const CoarseView cell = buffer_[pos_++];
  ++coarse_visited_;
  points_remaining_ -= cell.count;
  if (pos_ == buffer_.size()) {
    ++ring_;
    FillRing();
  }
  return cell;
}

HierNnCursor::HierNnCursor(const HierarchicalGrid& grid, const Point& query)
    : coarse_(grid, query), query_(query) {}

double HierNnCursor::FrontierBound() const {
  double bound = coarse_.TailMinDist();
  if (!fine_heap_.empty()) bound = std::min(bound, fine_heap_.top().min_dist);
  return bound;
}

void HierNnCursor::Refine() {
  const HierarchicalGrid& grid = coarse_.grid();
  while (heap_.empty() || heap_.top().dist > FrontierBound()) {
    // Open whichever frontier entry owns the bound: the parked fine cell if
    // it is at least as close as every unserved coarse cell, otherwise the
    // next coarse cell (whose occupied children then join the fine heap).
    if (!fine_heap_.empty() && fine_heap_.top().min_dist <= coarse_.TailMinDist()) {
      const auto f = static_cast<std::size_t>(fine_heap_.top().fine);
      fine_heap_.pop();
      ++fine_visited_;
      CCA_TRACE_SPAN_VAR(descend_span, "hier.descend");
      descend_span.Arg("fine_cell", static_cast<std::uint64_t>(f));
      const UniformGrid::CellSlice slice = grid.FineCell(f);
      for (std::size_t i = 0; i < slice.count; ++i) {
        heap_.push(NnCandidate{Distance(query_, Point{slice.xs[i], slice.ys[i]}), slice.ids[i]});
      }
      continue;
    }
    const auto coarse = coarse_.NextCoarse();
    if (!coarse) {
      if (fine_heap_.empty()) break;  // grid fully drained
      continue;
    }
    for (std::size_t f = coarse->fine_begin; f < coarse->fine_end; ++f) {
      if (grid.fine_cell_end(f) == grid.fine_cell_begin(f)) continue;
      fine_heap_.push(FineEntry{MinDist(query_, grid.FineRect(f)), static_cast<std::int32_t>(f)});
    }
  }
}

std::optional<std::pair<std::int32_t, double>> HierNnCursor::Next() {
  Refine();
  if (heap_.empty()) return std::nullopt;
  const NnCandidate top = heap_.top();
  heap_.pop();
  return std::make_pair(top.oid, top.dist);
}

double HierNnCursor::PeekDistance() {
  Refine();
  return heap_.empty() ? std::numeric_limits<double>::infinity() : heap_.top().dist;
}

}  // namespace cca
