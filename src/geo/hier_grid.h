// Two-level hierarchical adaptive grid over a static point set.
//
// A coarse uniform lattice covers the bounding box; every coarse cell whose
// occupancy exceeds `split_threshold` subdivides into an s x s block of fine
// cells sized so the children land near `fine_target_per_cell` residents
// (quadtree-style, but the split factor adapts per region instead of
// recursing to a fixed depth). Sparse regions keep a single fine cell per
// coarse cell, dense regions get up to max_split x max_split children — the
// per-region answer to the flat auto-tuner's one-resolution-fits-all
// mis-sizing on skewed inputs.
//
// The coarse level carries the aggregates the SSPA pruning stack consumes
// (see src/geo/README.md for the contract):
//
//   * occupancy: a coarse cell's resident count is O(1) (its children's
//     slots are contiguous), so whole coarse tails are accounted without
//     touching children;
//   * tau floors: `HierTauTable` maintains the per-fine-cell floor of the
//     monotonically raised customer potentials exactly like CellTauTable,
//     plus a per-coarse floor = min over the cell's children, so the relax
//     loops can reject an entire coarse cell with one compare
//     (mindist(coarse) + coarse_floor >= upper bound) instead of s^2 fine
//     checks.
//
// Point storage mirrors UniformGrid: one CSR over *fine* cells with
// cell-clustered coordinate copies (`UniformGrid::CellSlice` is reused as
// the slice type), fine cells of a coarse cell contiguous in both the
// fine-cell and the slot order, and id -> coarse/fine/slot inverse maps.
#ifndef CCA_GEO_HIER_GRID_H_
#define CCA_GEO_HIER_GRID_H_

#include <cstdint>
#include <cstddef>
#include <vector>

#include "geo/grid.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace cca {

class HierarchicalGrid {
 public:
  struct Options {
    // Average residents per *coarse* cell the builder aims for. The
    // default keeps the coarse lattice ~16x coarser than the default fine
    // resolution, so a coarse-tail rejection retires ~16 fine checks.
    double coarse_target_per_cell = 16.0 * UniformGrid::kDefaultTargetPerCell;
    // Residents a split coarse cell's children aim for.
    double fine_target_per_cell = UniformGrid::kDefaultTargetPerCell;
    // A coarse cell splits when it holds more residents than this; 0
    // auto-derives 4x the fine target (cells already near the fine target
    // gain nothing from subdividing).
    std::size_t split_threshold = 0;
    // Cap on the per-cell subdivision factor (children per axis).
    static constexpr int kMaxSplit = 8;
  };

  explicit HierarchicalGrid(const std::vector<Point>& points)
      : HierarchicalGrid(points, Options{}) {}
  HierarchicalGrid(const std::vector<Point>& points, const Options& options);

  std::size_t size() const { return items_.size(); }
  const Rect& bounds() const { return bounds_; }
  int coarse_cols() const { return cols_; }
  int coarse_rows() const { return rows_; }
  double coarse_cell_size() const { return cell_; }
  std::size_t num_coarse() const {
    return static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  }
  std::size_t num_fine() const { return fine_owner_.size(); }
  // Coarse cells that subdivided (split factor > 1).
  std::size_t splits() const { return splits_; }
  std::size_t split_threshold() const { return split_threshold_; }

  // --- coarse lattice geometry (mirrors UniformGrid's ring contract) ------
  void LocateCoarse(const Point& q, int* cx, int* cy) const;
  std::size_t CoarseIndex(int cx, int cy) const {
    return static_cast<std::size_t>(cy) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(cx);
  }
  Rect CoarseRect(std::size_t c) const;
  // Largest coarse ring that still intersects the lattice around q.
  int MaxRing(const Point& q) const;
  // Lower bound on dist(q, p) for every point in coarse ring `ring` or any
  // later ring (non-decreasing in `ring`; the coarse analogue of
  // UniformGrid::RingTailMinDist, with the same outside-the-box floor).
  double RingTailMinDist(const Point& q, int ring) const;

  // --- per-coarse aggregates ---------------------------------------------
  // Subdivision factor of coarse cell `c` (1 = unsplit).
  int split(std::size_t c) const { return split_[c]; }
  // Global fine-cell id range of `c`: [fine_begin, fine_begin + split^2).
  std::size_t fine_begin(std::size_t c) const {
    return static_cast<std::size_t>(fine_offset_[c]);
  }
  std::size_t fine_end(std::size_t c) const {
    return static_cast<std::size_t>(fine_offset_[c + 1]);
  }
  // Residents of coarse cell `c`, O(1) (children are slot-contiguous).
  std::size_t coarse_count(std::size_t c) const {
    return static_cast<std::size_t>(start_[fine_offset_[c + 1]] - start_[fine_offset_[c]]);
  }
  // Linear indices of the occupied coarse cells, ascending.
  const std::vector<std::int32_t>& nonempty_coarse() const { return nonempty_coarse_; }

  // --- fine cells ---------------------------------------------------------
  // Owning coarse cell of fine cell `f`.
  std::size_t coarse_of_fine(std::size_t f) const {
    return static_cast<std::size_t>(fine_owner_[f]);
  }
  Rect FineRect(std::size_t f) const;
  // Slot span and clustered slice of fine cell `f` (slice type shared with
  // UniformGrid so the fused relax kernel serves both).
  std::size_t fine_cell_begin(std::size_t f) const {
    return static_cast<std::size_t>(start_[f]);
  }
  std::size_t fine_cell_end(std::size_t f) const {
    return static_cast<std::size_t>(start_[f + 1]);
  }
  UniformGrid::CellSlice FineCell(std::size_t f) const;

  // Calls fn(cx, cy) for every lattice cell of coarse ring `ring` around
  // the (clamped) coarse cell of `q` (same traversal as
  // UniformGrid::VisitRing; occupancy filtering is the caller's business —
  // coarse_count() is O(1)).
  template <typename Fn>
  void VisitCoarseRing(const Point& q, int ring, Fn&& fn) const {
    int cx = 0, cy = 0;
    LocateCoarse(q, &cx, &cy);
    if (ring == 0) {
      fn(cx, cy);
      return;
    }
    const int x_lo = cx - ring, x_hi = cx + ring;
    const int y_lo = cy - ring, y_hi = cy + ring;
    // Top and bottom rows of the ring square.
    for (int y : {y_lo, y_hi}) {
      if (y < 0 || y >= rows_) continue;
      const int from = x_lo < 0 ? 0 : x_lo;
      const int to = x_hi >= cols_ ? cols_ - 1 : x_hi;
      for (int x = from; x <= to; ++x) fn(x, y);
    }
    // Left and right columns, excluding the corners already visited.
    for (int x : {x_lo, x_hi}) {
      if (x < 0 || x >= cols_) continue;
      const int from = y_lo + 1 < 0 ? 0 : y_lo + 1;
      const int to = y_hi - 1 >= rows_ ? rows_ - 1 : y_hi - 1;
      for (int y = from; y <= to; ++y) fn(x, y);
    }
  }

  // --- inverse maps -------------------------------------------------------
  std::size_t coarse_of_point(std::size_t i) const {
    return static_cast<std::size_t>(coarse_of_[i]);
  }
  std::size_t fine_of_point(std::size_t i) const {
    return static_cast<std::size_t>(fine_of_[i]);
  }
  std::size_t slot_of_point(std::size_t i) const {
    return static_cast<std::size_t>(slot_of_[i]);
  }

 private:
  Rect bounds_;
  double cell_ = 1.0;  // coarse cell side
  int cols_ = 1;
  int rows_ = 1;
  std::size_t split_threshold_ = 0;
  std::size_t splits_ = 0;
  std::vector<std::int32_t> split_;        // per coarse cell: children per axis
  std::vector<std::int32_t> fine_offset_;  // coarse -> first fine id, size C+1
  std::vector<std::int32_t> fine_owner_;   // fine -> coarse
  std::vector<std::int32_t> start_;        // CSR: fine -> first slot, size F+1
  std::vector<std::int32_t> items_;        // point ids, clustered by fine cell
  std::vector<double> xs_;                 // coordinates aligned with items_
  std::vector<double> ys_;
  std::vector<std::int32_t> coarse_of_;  // point id -> coarse index
  std::vector<std::int32_t> fine_of_;    // point id -> fine index
  std::vector<std::int32_t> slot_of_;    // point id -> slot
  std::vector<std::int32_t> nonempty_coarse_;
};

// Two-level floor table of a per-point scalar that only ever increases (the
// SSPA customer potentials tau_p), the hierarchical sibling of
// CellTauTable. Fine floors follow the same incremental recipe (a raise
// refloors its fine cell only when it held the min); a changed fine floor
// propagates into its coarse cell's floor the same way, and the cached
// global floor rescans coarse floors only when displaced. The aggregation
// invariant consumers rely on — CoarseFloor(c) <= FineFloor(f) for every
// child f, and every floor is a lower bound on its residents' values — is
// maintained exactly (src/geo/README.md spells out why that makes the
// coarse-tail rejection sound under in-flight monotone raises).
// Population edits follow the CellTauTable contract (src/geo/grid.h):
// `Remove`/`Insert` mask residents out of (or re-admit them into) every
// floor level with exact refloors in both directions, and are only legal
// *between* solves — a solve in flight stays on the monotone Raise.
class HierTauTable {
 public:
  explicit HierTauTable(const HierarchicalGrid& grid);
  // Seeded construction for warm starts: `initial[i]` seeds point id `i`;
  // fine and coarse floors start exact over the seeds.
  HierTauTable(const HierarchicalGrid& grid, const std::vector<double>& initial);

  // Raises point `point_id` to `value` (lower values are ignored, keeping
  // the monotone contract) and restores the exactness of its fine and
  // coarse floors.
  void Raise(std::size_t point_id, double value);

  // Removes point `point_id` from the population: its value becomes
  // +infinity and the fine -> coarse -> global floors refloor exactly.
  void Remove(std::size_t point_id);

  // (Re)admits point `point_id` at `value`, lowering or reflooring every
  // level as needed.
  void Insert(std::size_t point_id, double value) { Set(point_id, value); }

  double FineFloor(std::size_t f) const { return fine_floors_[f]; }
  double CoarseFloor(std::size_t c) const { return coarse_floors_[c]; }
  // Exact min value over every indexed point (0 for an empty grid);
  // cached, rescanning occupied coarse floors only after displacement.
  double GlobalFloor();

  // Slot-ordered value array aligned with the grid's clustered slices:
  // values()[slice.first_slot + i] is the value of slice.ids[i].
  const double* values() const { return values_.data(); }

 private:
  // Shared write path: assigns the value and restores fine/coarse/global
  // floor exactness in whichever direction the minima moved.
  void Set(std::size_t point_id, double value);

  const HierarchicalGrid* grid_;
  std::vector<double> values_;         // slot-ordered
  std::vector<double> fine_floors_;    // per fine cell; +infinity when empty
  std::vector<double> coarse_floors_;  // per coarse cell; +infinity when empty
  double global_floor_ = 0.0;
  bool global_dirty_ = false;
};

}  // namespace cca

#endif  // CCA_GEO_HIER_GRID_H_
