// 2-D Hilbert space-filling curve.
//
// The paper uses Hilbert ordering twice: to group service providers for the
// incremental ANN search (Section 3.4.2) and to order providers during SA
// partitioning (Section 4.1). We expose a fixed-order (2^16 cells per axis)
// encoder over an arbitrary bounding rectangle.
#ifndef CCA_GEO_HILBERT_H_
#define CCA_GEO_HILBERT_H_

#include <cstdint>

#include "geo/point.h"
#include "geo/rect.h"

namespace cca {

// Number of bits of resolution per axis used when quantising coordinates.
inline constexpr int kHilbertOrder = 16;

// Maps discrete cell coordinates (x, y), each in [0, 2^order), to the
// Hilbert curve index (d2xy inverse). `order` <= 31.
std::uint64_t HilbertIndex(std::uint32_t x, std::uint32_t y, int order = kHilbertOrder);

// Inverse mapping: Hilbert index -> cell coordinates.
void HilbertCell(std::uint64_t index, std::uint32_t* x, std::uint32_t* y,
                 int order = kHilbertOrder);

// Quantises `p` onto the `world` rectangle and returns its Hilbert index.
// Points outside `world` are clamped.
std::uint64_t HilbertValue(const Point& p, const Rect& world, int order = kHilbertOrder);

}  // namespace cca

#endif  // CCA_GEO_HILBERT_H_
