// Stateful candidate-discovery cursors over a UniformGrid.
//
// This is the shared primitive behind every grid-backed discovery path:
// the spatially-pruned SSPA relax (src/flow/sspa.cc), the grid NN source
// that drives NIA/IDA's edge frontier (src/core/nn_source.cc), and RIA's
// grid-backed annular range search. The contract (see src/core/README.md):
//
//   * `GridRingCursor` enumerates the non-empty cells around one query
//     point in expanding Chebyshev rings, cells within a ring served in
//     ascending MinDist(query, cell) order. `TailMinDist()` is a certified
//     lower bound on dist(query, p) for every point in a cell that has not
//     been returned yet, and is non-decreasing across NextCell() calls.
//   * `GridNnCursor` refines the cell stream into an exact incremental
//     nearest-neighbour stream (non-decreasing point distances) by holding
//     fetched points in a candidate heap and serving the top as soon as its
//     distance is within `TailMinDist()`.
// (RIA's nested annular batches need no separate range primitive: the
// grid backend drains a persistent NN stream per provider up to each new
// T, so inner cells are never re-fetched across batches — see
// src/core/ria.cc.)
//
// Both cursors report the number of cells fetched so backends can be compared
// apples-to-apples against R-tree node accesses (Metrics::grid_cursor_cells
// / Metrics::index_node_accesses).
#ifndef CCA_GEO_GRID_CURSOR_H_
#define CCA_GEO_GRID_CURSOR_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "geo/grid.h"
#include "geo/hier_grid.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace cca {

// Candidate-heap entry for exact-NN refinement over fetched cells, and
// its ordering: nearest first, equal distances by ascending id. Shared by
// GridNnCursor and SharedFrontier so their streams tie-break identically
// (SharedFrontier's single-subscriber degeneracy depends on it).
struct NnCandidate {
  double dist;
  std::int32_t oid;
};
struct NnCandidateFarther {
  bool operator()(const NnCandidate& a, const NnCandidate& b) const {
    return a.dist != b.dist ? a.dist > b.dist : a.oid > b.oid;
  }
};

class GridRingCursor {
 public:
  struct CellView {
    int cx = 0;
    int cy = 0;
    int ring = 0;
    std::size_t cell = 0;   // UniformGrid::CellIndex(cx, cy), the side-table key
    double min_dist = 0.0;  // MinDist(query, cell rect)
    UniformGrid::CellSlice slice;
  };

  GridRingCursor(const UniformGrid& grid, const Point& query);

  // Rewinds the cursor onto a new query point, reusing the ring buffer's
  // capacity — hot loops (one relax per provider pop in SSPA) reset one
  // cursor instead of constructing fresh ones.
  void Reset(const Point& query);

  // Lower bound on dist(query, p) over every point not yet returned by
  // NextCell(); +infinity once the grid is exhausted. Non-decreasing.
  // Remaining cells are the still-buffered cells of the current ring
  // (sorted by min_dist, so the head is their minimum) and everything in
  // later rings (next_ring_bound_, cached once per ring fill — this sits
  // on the per-cell hot path of the SSPA relax).
  double TailMinDist() const {
    if (exhausted_) return std::numeric_limits<double>::infinity();
    return pos_ < buffer_.size() ? std::min(buffer_[pos_].min_dist, next_ring_bound_)
                                 : next_ring_bound_;
  }

  bool exhausted() const { return exhausted_; }

  // Next non-empty cell, or nullopt when every cell has been served.
  std::optional<CellView> NextCell();

  // Total points held by cells not yet returned (for prune accounting).
  std::size_t points_remaining() const { return points_remaining_; }

  // Number of cells fetched so far (the grid analogue of node accesses).
  std::uint64_t cells_visited() const { return cells_visited_; }

 private:
  // Buffers the cells of the next non-empty ring, sorted by min_dist;
  // marks the cursor exhausted when no ring remains.
  void FillRing();

  const UniformGrid* grid_;
  Point query_;
  int ring_ = 0;
  int max_ring_ = 0;
  bool exhausted_ = false;
  double next_ring_bound_ = 0.0;  // RingTailMinDist(query, ring_ + 1)
  std::size_t pos_ = 0;
  std::size_t points_remaining_ = 0;
  std::uint64_t cells_visited_ = 0;
  std::vector<CellView> buffer_;
};

// Exact incremental NN stream over a grid: Next() yields (point id,
// distance) pairs in non-decreasing distance order until the grid is
// exhausted. Equal-distance candidates already fetched are served in
// ascending id order (the stream is deterministic; ties spanning a
// not-yet-fetched cell are served in fetch order).
class GridNnCursor {
 public:
  GridNnCursor(const UniformGrid& grid, const Point& query);

  std::optional<std::pair<std::int32_t, double>> Next();

  // Distance the next Next() would return (+infinity when exhausted); may
  // fetch cells to find out, like NnIterator::PeekDistance.
  double PeekDistance();

  std::uint64_t cells_visited() const { return cells_.cells_visited(); }

 private:
  // Fetches cells until the heap top is certified (<= TailMinDist) or the
  // grid drains.
  void Refine();

  GridRingCursor cells_;
  Point query_;
  std::priority_queue<NnCandidate, std::vector<NnCandidate>, NnCandidateFarther> heap_;
};

// Coarse-level ring cursor over a HierarchicalGrid (geo/hier_grid.h): the
// hierarchical sibling of GridRingCursor, enumerating occupied *coarse*
// cells in expanding coarse rings, nearest-first within a ring. A served
// CoarseView carries the O(1) aggregates (resident count, fine-child id
// range); the consumer decides per coarse cell whether to reject its whole
// tail on the aggregated bound or descend into FineCell() slices — that
// split is what makes the SSPA coarse-tail exit O(1) per rejected region
// (see src/geo/README.md). TailMinDist() keeps the GridRingCursor contract:
// a non-decreasing certified lower bound on dist(query, p) over every point
// in a coarse cell not yet returned.
class HierRingCursor {
 public:
  struct CoarseView {
    int cx = 0;
    int cy = 0;
    int ring = 0;
    std::size_t cell = 0;   // HierarchicalGrid::CoarseIndex(cx, cy)
    double min_dist = 0.0;  // MinDist(query, coarse rect)
    std::size_t count = 0;  // residents of the whole coarse cell
    std::size_t fine_begin = 0;  // global fine-cell id range [begin, end)
    std::size_t fine_end = 0;
  };

  HierRingCursor(const HierarchicalGrid& grid, const Point& query);

  // Rewinds onto a new query, reusing the ring buffer's capacity (one
  // cursor per SSPA solve, reset per provider pop).
  void Reset(const Point& query);

  // Lower bound on dist(query, p) over every point in a not-yet-returned
  // coarse cell; +infinity once exhausted. Non-decreasing.
  double TailMinDist() const {
    if (exhausted_) return std::numeric_limits<double>::infinity();
    return pos_ < buffer_.size() ? std::min(buffer_[pos_].min_dist, next_ring_bound_)
                                 : next_ring_bound_;
  }

  bool exhausted() const { return exhausted_; }

  // Next occupied coarse cell, or nullopt when all have been served.
  std::optional<CoarseView> NextCoarse();

  // Points held by coarse cells not yet returned (for prune accounting).
  std::size_t points_remaining() const { return points_remaining_; }

  // Coarse cells served so far (coarse-level traversal work; fine-cell
  // fetches are charged by the consumer, which decides what to open).
  std::uint64_t coarse_visited() const { return coarse_visited_; }

  const HierarchicalGrid& grid() const { return *grid_; }

 private:
  void FillRing();

  const HierarchicalGrid* grid_;
  Point query_;
  int ring_ = 0;
  int max_ring_ = 0;
  bool exhausted_ = false;
  double next_ring_bound_ = 0.0;  // grid_->RingTailMinDist(query, ring_ + 1)
  std::size_t pos_ = 0;
  std::size_t points_remaining_ = 0;
  std::uint64_t coarse_visited_ = 0;
  std::vector<CoarseView> buffer_;
};

// Exact incremental NN stream over a HierarchicalGrid, mirroring
// GridNnCursor's contract (non-decreasing distances; fetched equal-distance
// candidates served in ascending id order). Two-stage best-first refinement:
// coarse cells stream in from a HierRingCursor and park their occupied fine
// children on a min-heap keyed by MinDist(query, fine rect); a fine cell is
// materialised into the candidate heap only when its bound is due, so dense
// far-away regions never get opened.
class HierNnCursor {
 public:
  HierNnCursor(const HierarchicalGrid& grid, const Point& query);

  std::optional<std::pair<std::int32_t, double>> Next();

  // Distance the next Next() would return (+infinity when exhausted); may
  // fetch cells to find out.
  double PeekDistance();

  // Fine cells materialised (the ledger comparable to GridNnCursor's
  // cells_visited; coarse traversal is not charged here).
  std::uint64_t cells_visited() const { return fine_visited_; }

 private:
  struct FineEntry {
    double min_dist;
    std::int32_t fine;
  };
  struct FineFarther {
    bool operator()(const FineEntry& a, const FineEntry& b) const {
      return a.min_dist != b.min_dist ? a.min_dist > b.min_dist : a.fine > b.fine;
    }
  };

  // Certified lower bound on every not-yet-materialised point: coarse cells
  // still in the ring cursor, plus fine cells parked on the heap.
  double FrontierBound() const;
  void Refine();

  HierRingCursor coarse_;
  Point query_;
  std::uint64_t fine_visited_ = 0;
  std::priority_queue<FineEntry, std::vector<FineEntry>, FineFarther> fine_heap_;
  std::priority_queue<NnCandidate, std::vector<NnCandidate>, NnCandidateFarther> heap_;
};

}  // namespace cca

#endif  // CCA_GEO_GRID_CURSOR_H_
