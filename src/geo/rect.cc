#include "geo/rect.h"

#include <cmath>

namespace cca {

double Rect::Diagonal() const {
  if (empty()) return 0.0;
  const double w = width();
  const double h = height();
  return std::sqrt(w * w + h * h);
}

void Rect::Expand(const Point& p) {
  lo.x = std::min(lo.x, p.x);
  lo.y = std::min(lo.y, p.y);
  hi.x = std::max(hi.x, p.x);
  hi.y = std::max(hi.y, p.y);
}

void Rect::Expand(const Rect& r) {
  if (r.empty()) return;
  Expand(r.lo);
  Expand(r.hi);
}

Rect Rect::Union(const Rect& a, const Rect& b) {
  Rect u = a;
  u.Expand(b);
  return u;
}

double Rect::Enlargement(const Rect& a, const Rect& b) {
  return Union(a, b).Area() - a.Area();
}

double MinDist(const Point& p, const Rect& r) {
  if (r.empty()) return std::numeric_limits<double>::infinity();
  const double dx = std::max({r.lo.x - p.x, 0.0, p.x - r.hi.x});
  const double dy = std::max({r.lo.y - p.y, 0.0, p.y - r.hi.y});
  return std::sqrt(dx * dx + dy * dy);
}

double MaxDist(const Point& p, const Rect& r) {
  if (r.empty()) return 0.0;
  const double dx = std::max(std::abs(p.x - r.lo.x), std::abs(p.x - r.hi.x));
  const double dy = std::max(std::abs(p.y - r.lo.y), std::abs(p.y - r.hi.y));
  return std::sqrt(dx * dx + dy * dy);
}

double MinDist(const Rect& a, const Rect& b) {
  if (a.empty() || b.empty()) return std::numeric_limits<double>::infinity();
  const double dx = std::max({b.lo.x - a.hi.x, 0.0, a.lo.x - b.hi.x});
  const double dy = std::max({b.lo.y - a.hi.y, 0.0, a.lo.y - b.hi.y});
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace cca
