#include "geo/shared_frontier.h"

#include <limits>

#include "common/trace.h"

namespace cca {

SharedFrontier::SharedFrontier(const UniformGrid& grid, const std::vector<Point>& queries) {
  const std::size_t num_cells = grid.num_cells();
  subs_.reserve(queries.size());
  for (const auto& q : queries) {
    subs_.push_back(Subscriber{q, GridRingCursor(grid, q), {}, std::vector<char>(num_cells, 0),
                               /*active=*/true});
  }
}

void SharedFrontier::Unsubscribe(int q) {
  Subscriber& sub = subs_[static_cast<std::size_t>(q)];
  sub.active = false;
  // Release the slot, not just the delivery flag: the candidate heap and
  // the per-cell delivery map are the subscriber's footprint, and a
  // frontier outlives its retirees (greedy retires providers one by one
  // while the group keeps sweeping).
  sub.heap = {};
  sub.delivered.clear();
  sub.delivered.shrink_to_fit();
}

void SharedFrontier::Refine(int q) {
  Subscriber& sub = subs_[static_cast<std::size_t>(q)];
  if (!sub.active) return;  // terminated stream: nothing to expand into
  while (!sub.walker.exhausted() &&
         (sub.heap.empty() || sub.heap.top().dist > sub.walker.TailMinDist())) {
    const auto cell = sub.walker.NextCell();
    if (!cell) break;
    const std::size_t id = cell->cell;
    // Multiplexed to this subscriber on an earlier fetch: the points are
    // already in its heap, the walk past the cell just tightens the bound.
    if (sub.delivered[id]) continue;
    CCA_TRACE_SPAN_VAR(fetch_span, "frontier.cell_fetch");
    fetch_span.Arg("cell", static_cast<std::uint64_t>(id));
    ++stats_.cell_fetches;
    // One fetch, every active subscriber that still lacks the cell gets
    // its points — the grouped-ANN delivery rule. The demander is active
    // by construction (Refine returns early for terminated streams).
    for (Subscriber& member : subs_) {
      if (!member.active || member.delivered[id]) continue;
      member.delivered[id] = 1;
      ++stats_.fanout;
      for (std::size_t i = 0; i < cell->slice.count; ++i) {
        member.heap.push(
            NnCandidate{Distance(member.query, Point{cell->slice.xs[i], cell->slice.ys[i]}),
                        cell->slice.ids[i]});
      }
    }
  }
}

std::optional<std::pair<std::int32_t, double>> SharedFrontier::NextNN(int q) {
  Refine(q);
  auto& heap = subs_[static_cast<std::size_t>(q)].heap;
  if (heap.empty()) return std::nullopt;
  const NnCandidate top = heap.top();
  heap.pop();
  return std::make_pair(top.oid, top.dist);
}

double SharedFrontier::PeekDistance(int q) {
  Refine(q);
  const auto& heap = subs_[static_cast<std::size_t>(q)].heap;
  return heap.empty() ? std::numeric_limits<double>::infinity() : heap.top().dist;
}

SharedCellSweep::SharedCellSweep(const UniformGrid& grid)
    : cursor_(grid, Point{}), resident_(grid.num_cells(), 0) {}

std::optional<GridRingCursor::CellView> SharedCellSweep::NextCell() {
  const auto cell = cursor_.NextCell();
  if (!cell) return cell;
  auto& slot = resident_[cell->cell];
  if (slot == 0) {
    slot = 1;
    ++stats_.cell_fetches;
  }
  ++stats_.fanout;
  return cell;
}

HierCellSweep::HierCellSweep(const HierarchicalGrid& grid)
    : cursor_(grid, Point{}), resident_(grid.num_fine(), 0) {}

void HierCellSweep::ChargeFine(std::size_t fine) {
  auto& slot = resident_[fine];
  if (slot == 0) {
    slot = 1;
    ++stats_.cell_fetches;
  }
  ++stats_.fanout;
}

}  // namespace cca
