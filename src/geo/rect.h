// Axis-aligned minimum bounding rectangle (MBR).
#ifndef CCA_GEO_RECT_H_
#define CCA_GEO_RECT_H_

#include <algorithm>
#include <limits>

#include "geo/point.h"

namespace cca {

// Closed axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y].
//
// A default-constructed Rect is *empty* (inverted bounds); Expand() on an
// empty rectangle adopts the argument. Empty rectangles have zero area and
// infinite mindist to everything.
struct Rect {
  Point lo{std::numeric_limits<double>::infinity(), std::numeric_limits<double>::infinity()};
  Point hi{-std::numeric_limits<double>::infinity(), -std::numeric_limits<double>::infinity()};

  static Rect FromPoint(const Point& p) { return Rect{p, p}; }
  static Rect FromCorners(const Point& a, const Point& b) {
    return Rect{{std::min(a.x, b.x), std::min(a.y, b.y)},
                {std::max(a.x, b.x), std::max(a.y, b.y)}};
  }

  bool empty() const { return lo.x > hi.x || lo.y > hi.y; }

  double width() const { return empty() ? 0.0 : hi.x - lo.x; }
  double height() const { return empty() ? 0.0 : hi.y - lo.y; }
  double Area() const { return width() * height(); }
  // Half-perimeter, the classic R-tree "margin" split objective.
  double Margin() const { return width() + height(); }
  // Length of the MBR diagonal; the delta constraint of Section 4 bounds it.
  double Diagonal() const;
  Point Center() const { return {(lo.x + hi.x) * 0.5, (lo.y + hi.y) * 0.5}; }

  bool Contains(const Point& p) const {
    return !empty() && p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  bool Contains(const Rect& r) const {
    return r.empty() || (!empty() && r.lo.x >= lo.x && r.hi.x <= hi.x && r.lo.y >= lo.y &&
                         r.hi.y <= hi.y);
  }
  bool Intersects(const Rect& r) const {
    return !empty() && !r.empty() && lo.x <= r.hi.x && r.lo.x <= hi.x && lo.y <= r.hi.y &&
           r.lo.y <= hi.y;
  }

  // Grows this rectangle to cover `p` / `r`.
  void Expand(const Point& p);
  void Expand(const Rect& r);

  // Smallest enclosing rectangle of the union.
  static Rect Union(const Rect& a, const Rect& b);
  // Area increase caused by expanding `a` to also cover `b`; the Guttman
  // insertion heuristic minimises this.
  static double Enlargement(const Rect& a, const Rect& b);

  friend bool operator==(const Rect& a, const Rect& b) { return a.lo == b.lo && a.hi == b.hi; }
};

// Minimum Euclidean distance from point `p` to rectangle `r` (0 if inside).
// Lower-bounds the distance from `p` to every point stored under `r`;
// drives best-first NN search and circular range pruning.
double MinDist(const Point& p, const Rect& r);

// Maximum Euclidean distance from `p` to any point of `r`; upper bound used
// by the annular range search to prune fully-inside subtrees.
double MaxDist(const Point& p, const Rect& r);

// Minimum distance between two rectangles (0 if intersecting). Used by the
// grouped incremental ANN search (paper Section 3.4.2) which orders R-tree
// entries by mindist(MBR(group), MBR(entry)).
double MinDist(const Rect& a, const Rect& b);

}  // namespace cca

#endif  // CCA_GEO_RECT_H_
