// Uniform grid over a static point set, with expanding-ring enumeration.
//
// The grid partitions the bounding box of the indexed points into square
// cells of roughly `target_per_cell` points each and stores, per cell, the
// point ids *and* a cell-clustered copy of the coordinates (SoA), so a
// caller can run the blocked distance kernel straight over a cell's slice
// without gathering.
//
// Ring enumeration serves the spatially-pruned SSPA relax (src/flow): ring r
// around a query point q is the set of cells at Chebyshev distance exactly r
// from q's (clamped) cell. `RingTailMinDist(q, r)` lower-bounds the
// Euclidean distance from q to every point stored in ring r *or any later
// ring*, and is non-decreasing in r, which is what makes the early exit in
// the relax loop sound (see src/flow/README.md).
#ifndef CCA_GEO_GRID_H_
#define CCA_GEO_GRID_H_

#include <cstdint>
#include <cstddef>
#include <vector>

#include "geo/point.h"
#include "geo/rect.h"

namespace cca {

class UniformGrid {
 public:
  // A cell's contents: point ids plus the matching cell-clustered
  // coordinate slices (xs[i]/ys[i] are the coordinates of ids[i]).
  // `first_slot` is the slice's offset into the grid's clustered arrays, so
  // side tables laid out in slot order (CellTauTable values) can be sliced
  // in lockstep with the coordinates.
  struct CellSlice {
    const std::int32_t* ids = nullptr;
    const double* xs = nullptr;
    const double* ys = nullptr;
    std::size_t count = 0;
    std::size_t first_slot = 0;
  };

  // Default resolution: average points per cell the builder aims for.
  static constexpr double kDefaultTargetPerCell = 4.0;

  // Builds the grid over `points`. `target_per_cell` tunes the resolution;
  // degenerate inputs (empty set, collinear points, all-equal points) fall
  // back to a single row/column/cell. A non-positive `target_per_cell`
  // auto-tunes the resolution from the instance's density: the grid is
  // first built at the default resolution, and when the point set turns
  // out skewed (occupied cells far above target because most of the
  // bounding box is empty), it is rebuilt with a proportionally finer cell
  // so the *occupied* cells land near the target again.
  explicit UniformGrid(const std::vector<Point>& points,
                       double target_per_cell = kDefaultTargetPerCell);

  std::size_t size() const { return static_cast<std::size_t>(items_.size()); }
  int cols() const { return cols_; }
  int rows() const { return rows_; }
  double cell_size() const { return cell_; }
  const Rect& bounds() const { return bounds_; }

  // Occupancy diagnostics (used by the auto-tuner and its tests).
  std::size_t NonEmptyCells() const;
  // Average number of points per *occupied* cell (0 for an empty grid).
  double MeanOccupancy() const;
  // CSR (re)builds performed so far: 1 for a fixed resolution, 2 when the
  // auto-tuner rebuilt finer — and still 1 when the tuned target resolves
  // to the resolution already built (degenerate extents), which the tuner
  // skips as a no-op.
  int build_count() const { return build_count_; }

  // Cell coordinates of `q`, clamped into the grid.
  void Locate(const Point& q, int* cx, int* cy) const;

  // Largest ring index that still intersects the grid when centred on the
  // (clamped) cell of `q`; rings beyond this are empty.
  int MaxRing(const Point& q) const;

  // Lower bound on dist(q, p) for every point p stored in ring `ring` or
  // any ring after it (non-decreasing in `ring`; 0 when no useful bound
  // exists, e.g. q outside the grid).
  double RingTailMinDist(const Point& q, int ring) const;

  // Geometric extent of cell (cx, cy); MinDist(q, CellRect(...)) gives the
  // per-cell lower bound used to skip individual cells inside a ring.
  Rect CellRect(int cx, int cy) const;

  CellSlice Cell(int cx, int cy) const;

  // Row-major index of cell (cx, cy) in [0, cols*rows): the addressing
  // contract for per-cell side tables (shared-frontier delivered/resident
  // bitmaps and CellTauTable floors key on it).
  std::size_t CellIndex(int cx, int cy) const {
    return static_cast<std::size_t>(cy) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(cx);
  }

  std::size_t num_cells() const {
    return static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  }

  // Linear-index flavours of the cell accessors, for callers that sweep
  // cells without ring geometry (the cell-partitioned dense SSPA scan).
  CellSlice Cell(std::size_t cell_index) const {
    return Cell(static_cast<int>(cell_index % static_cast<std::size_t>(cols_)),
                static_cast<int>(cell_index / static_cast<std::size_t>(cols_)));
  }
  Rect CellRect(std::size_t cell_index) const {
    return CellRect(static_cast<int>(cell_index % static_cast<std::size_t>(cols_)),
                    static_cast<int>(cell_index / static_cast<std::size_t>(cols_)));
  }

  // Inverse maps of the clustered layout: the cell holding point `i`, and
  // the slot of point `i` inside the clustered arrays (items_/xs_/ys_ and
  // any slot-ordered side table).
  std::size_t cell_of_point(std::size_t i) const {
    return static_cast<std::size_t>(cell_of_[i]);
  }
  std::size_t slot_of_point(std::size_t i) const {
    return static_cast<std::size_t>(slot_of_[i]);
  }

  // Slot span [begin, end) of a cell inside the clustered arrays.
  std::size_t cell_begin(std::size_t cell_index) const {
    return static_cast<std::size_t>(start_[cell_index]);
  }
  std::size_t cell_end(std::size_t cell_index) const {
    return static_cast<std::size_t>(start_[cell_index + 1]);
  }

  // Linear indices of the occupied cells, ascending (built once per
  // (re)build; the dense cell sweep and CellTauTable's global-floor rescan
  // iterate it instead of the full cols*rows lattice).
  const std::vector<std::int32_t>& nonempty_cells() const { return nonempty_cells_; }

  // Calls fn(cx, cy, slice) for every non-empty cell of ring `ring` around
  // the (clamped) cell of `q`.
  template <typename Fn>
  void VisitRing(const Point& q, int ring, Fn&& fn) const {
    int cx = 0, cy = 0;
    Locate(q, &cx, &cy);
    if (ring == 0) {
      VisitCell(cx, cy, fn);
      return;
    }
    const int x_lo = cx - ring, x_hi = cx + ring;
    const int y_lo = cy - ring, y_hi = cy + ring;
    // Top and bottom rows of the ring square.
    for (int y : {y_lo, y_hi}) {
      if (y < 0 || y >= rows_) continue;
      const int from = x_lo < 0 ? 0 : x_lo;
      const int to = x_hi >= cols_ ? cols_ - 1 : x_hi;
      for (int x = from; x <= to; ++x) VisitCell(x, y, fn);
    }
    // Left and right columns, excluding the corners already visited.
    for (int x : {x_lo, x_hi}) {
      if (x < 0 || x >= cols_) continue;
      const int from = y_lo + 1 < 0 ? 0 : y_lo + 1;
      const int to = y_hi - 1 >= rows_ ? rows_ - 1 : y_hi - 1;
      for (int y = from; y <= to; ++y) VisitCell(x, y, fn);
    }
  }

 private:
  // Resolution Build would choose for `n` points at `target_per_cell`
  // (pure function of bounds_ — lets the auto-tuner detect no-op rebuilds
  // without touching the CSR arrays).
  void ResolutionFor(std::size_t n, double target_per_cell, double* cell, int* cols,
                     int* rows) const;

  // (Re)builds the CSR layout at the given resolution; `bounds_` must
  // already be set.
  void Build(const std::vector<Point>& points, double target_per_cell);

  template <typename Fn>
  void VisitCell(int cx, int cy, Fn& fn) const {
    const CellSlice slice = Cell(cx, cy);
    if (slice.count > 0) fn(cx, cy, slice);
  }

  Rect bounds_;
  double cell_ = 1.0;
  int cols_ = 1;
  int rows_ = 1;
  int build_count_ = 0;
  std::vector<std::int32_t> start_;  // CSR: cell -> first slot, size cols*rows+1
  std::vector<std::int32_t> items_;  // point ids, clustered by cell
  std::vector<double> xs_;           // coordinates aligned with items_
  std::vector<double> ys_;
  std::vector<std::int32_t> cell_of_;  // point id -> cell index
  std::vector<std::int32_t> slot_of_;  // point id -> slot in items_/xs_/ys_
  std::vector<std::int32_t> nonempty_cells_;  // occupied cell indices, ascending
};

// Per-cell floor of a per-point scalar that only ever increases (the SSPA
// customer potentials tau_p), maintained incrementally. The table keeps
//
//   * `values()`: a slot-ordered copy of the scalar, aligned with the
//     grid's clustered coordinate slices so a kernel can stream
//     `values() + slice.first_slot` next to `slice.xs`/`slice.ys`;
//   * `CellFloor(c)`: the exact min over cell c's residents (+infinity for
//     empty cells), recomputed by an O(residents) slice scan only when the
//     raised point held the cell's minimum;
//   * `GlobalFloor()`: the exact min over all residents, re-derived from
//     the per-cell floors only when the cell that held it moved.
//
// Soundness under monotone updates (the src/flow/README.md invariant): a
// stored floor is the min of values current at some earlier time; values
// never decrease, so it remains a lower bound on the cell's residents even
// before the incremental recompute lands. This class keeps floors *exact*
// after every Raise, but consumers only ever rely on the lower-bound
// direction.
// Population edits (warm-started serving engines, src/runtime/engine.h):
// `Remove` masks a resident out of every floor (its value becomes
// +infinity, so kernels streaming values() reject it for free) and
// `Insert` re-admits one at an arbitrary value — both restore floor
// exactness, including *lowering* floors, which the in-solve Raise cascade
// never does. The contract is temporal, not structural: population edits
// happen between solves, while a solve in flight only ever calls the
// monotone Raise (src/geo/README.md).
class CellTauTable {
 public:
  explicit CellTauTable(const UniformGrid& grid);
  // Seeded construction for warm starts: `initial[i]` is the starting
  // value of point id `i` (must cover every indexed point; values are
  // stored slot-ordered internally). Floors start exact over the seeds.
  CellTauTable(const UniformGrid& grid, const std::vector<double>& initial);

  // Raises point `point_id` to `value` (must be >= the stored value;
  // lower values are ignored, keeping the monotone contract) and restores
  // the exactness of the resident cell's floor.
  void Raise(std::size_t point_id, double value);

  // Removes point `point_id` from the population: its value becomes
  // +infinity and its cell's floor is refloored exactly (a cell whose
  // residents are all removed reads +infinity, like an empty cell).
  void Remove(std::size_t point_id);

  // (Re)admits point `point_id` at `value` — the inverse of Remove, also
  // usable to overwrite a live value in either direction. Floors (cell and
  // global) are lowered or refloored exactly as needed.
  void Insert(std::size_t point_id, double value) { Set(point_id, value); }

  // Exact min value over the residents of `cell_index` (+infinity when the
  // cell is empty).
  double CellFloor(std::size_t cell_index) const { return floors_[cell_index]; }

  // Exact min value over every indexed point (0 for an empty grid); cached,
  // rescanning the occupied cells' floors only after a Raise displaced it.
  double GlobalFloor();

  // Slot-ordered value array: values()[slice.first_slot + i] is the value
  // of point slice.ids[i].
  const double* values() const { return values_.data(); }

 private:
  // Shared write path: assigns the value and restores cell/global floor
  // exactness in whichever direction the assignment moved the minimum.
  void Set(std::size_t point_id, double value);

  const UniformGrid* grid_;
  std::vector<double> values_;  // slot-ordered, aligned with grid slices
  std::vector<double> floors_;  // per cell; +infinity when empty
  double global_floor_ = 0.0;
  bool global_dirty_ = false;
};

}  // namespace cca

#endif  // CCA_GEO_GRID_H_
