#include "geo/hilbert.h"

#include <algorithm>

namespace cca {
namespace {

// One step of the classic Hilbert rotation/reflection.
inline void Rotate(std::uint32_t n, std::uint32_t* x, std::uint32_t* y, std::uint32_t rx,
                   std::uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = n - 1 - *x;
      *y = n - 1 - *y;
    }
    std::swap(*x, *y);
  }
}

}  // namespace

std::uint64_t HilbertIndex(std::uint32_t x, std::uint32_t y, int order) {
  std::uint64_t d = 0;
  for (std::uint32_t s = 1u << (order - 1); s > 0; s >>= 1) {
    const std::uint32_t rx = (x & s) > 0 ? 1u : 0u;
    const std::uint32_t ry = (y & s) > 0 ? 1u : 0u;
    d += static_cast<std::uint64_t>(s) * s * ((3 * rx) ^ ry);
    Rotate(s, &x, &y, rx, ry);
  }
  return d;
}

void HilbertCell(std::uint64_t index, std::uint32_t* x, std::uint32_t* y, int order) {
  std::uint32_t cx = 0;
  std::uint32_t cy = 0;
  for (std::uint32_t s = 1; s < (1u << order); s <<= 1) {
    const std::uint32_t rx = 1u & static_cast<std::uint32_t>(index / 2);
    const std::uint32_t ry = 1u & static_cast<std::uint32_t>(index ^ rx);
    Rotate(s, &cx, &cy, rx, ry);
    cx += s * rx;
    cy += s * ry;
    index /= 4;
  }
  *x = cx;
  *y = cy;
}

std::uint64_t HilbertValue(const Point& p, const Rect& world, int order) {
  const double n = static_cast<double>(1u << order);
  const double w = std::max(world.width(), 1e-12);
  const double h = std::max(world.height(), 1e-12);
  double fx = (p.x - world.lo.x) / w * n;
  double fy = (p.y - world.lo.y) / h * n;
  const double max_cell = n - 1.0;
  fx = std::clamp(fx, 0.0, max_cell);
  fy = std::clamp(fy, 0.0, max_cell);
  return HilbertIndex(static_cast<std::uint32_t>(fx), static_cast<std::uint32_t>(fy), order);
}

}  // namespace cca
