#include "core/partition.h"

#include <algorithm>
#include <numeric>

#include "geo/hilbert.h"

namespace cca {

std::vector<ProviderGroup> PartitionProviders(const std::vector<Provider>& providers,
                                              double delta, const Rect& world) {
  // Process providers in Hilbert order (paper Section 4.1).
  std::vector<int> order(providers.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::uint64_t> hv(providers.size());
  for (std::size_t i = 0; i < providers.size(); ++i) {
    hv[i] = HilbertValue(providers[i].pos, world);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return hv[static_cast<std::size_t>(a)] < hv[static_cast<std::size_t>(b)];
  });

  std::vector<ProviderGroup> groups;
  for (int idx : order) {
    const Point pos = providers[static_cast<std::size_t>(idx)].pos;
    ProviderGroup* target = nullptr;
    for (auto& g : groups) {
      Rect merged = g.mbr;
      merged.Expand(pos);
      if (merged.Diagonal() <= delta) {
        target = &g;
        break;
      }
    }
    if (target == nullptr) {
      groups.emplace_back();
      target = &groups.back();
    }
    target->members.push_back(idx);
    target->mbr.Expand(pos);
    target->capacity += providers[static_cast<std::size_t>(idx)].capacity;
  }

  // Capacity-weighted centroids (paper: coordinates averaged with weights
  // q.k, so a high-capacity provider pulls the representative toward it).
  for (auto& g : groups) {
    double wx = 0.0, wy = 0.0, wsum = 0.0;
    for (int idx : g.members) {
      const auto& q = providers[static_cast<std::size_t>(idx)];
      const double w = std::max<double>(1.0, static_cast<double>(q.capacity));
      wx += q.pos.x * w;
      wy += q.pos.y * w;
      wsum += w;
    }
    g.representative = Point{wx / wsum, wy / wsum};
  }
  return groups;
}

std::vector<CustomerGroup> PartitionCustomers(RTree* tree, double delta, const Rect& world) {
  std::vector<BaseEntry> base = DeltaPartition(tree, delta);

  // Merge step (paper Section 4.2): Hilbert-order the delta-entries by MBR
  // centre and first-fit them into hyper-entries under the same diagonal
  // constraint.
  std::vector<int> order(base.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::uint64_t> hv(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    hv[i] = HilbertValue(base[i].rect.Center(), world);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return hv[static_cast<std::size_t>(a)] < hv[static_cast<std::size_t>(b)];
  });

  std::vector<CustomerGroup> groups;
  for (int idx : order) {
    BaseEntry& entry = base[static_cast<std::size_t>(idx)];
    if (entry.count == 0) continue;
    CustomerGroup* target = nullptr;
    for (auto& g : groups) {
      const Rect merged = Rect::Union(g.mbr, entry.rect);
      if (merged.Diagonal() <= delta) {
        target = &g;
        break;
      }
    }
    if (target == nullptr) {
      groups.emplace_back();
      target = &groups.back();
    }
    target->mbr.Expand(entry.rect);
    target->count += entry.count;
    target->parts.push_back(std::move(entry));
  }
  for (auto& g : groups) g.representative = g.mbr.Center();
  return groups;
}

}  // namespace cca
