// Matching (assignment) result type and validity checking.
#ifndef CCA_CORE_MATCHING_H_
#define CCA_CORE_MATCHING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/problem.h"

namespace cca {

struct MatchPair {
  std::int32_t provider = -1;
  std::int32_t customer = -1;
  std::int32_t units = 1;     // >1 only for weighted (concise) instances
  double distance = 0.0;      // dist(q, p)
};

// A capacity constrained assignment M. `cost()` is the paper's Psi(M):
// the sum of pair distances weighted by assigned units.
struct Matching {
  std::vector<MatchPair> pairs;

  void Add(std::int32_t provider, std::int32_t customer, std::int32_t units, double distance) {
    pairs.push_back(MatchPair{provider, customer, units, distance});
  }

  double cost() const;
  std::int64_t size() const;  // total assigned units

  // Units assigned per provider / per customer (index -> units).
  std::vector<std::int64_t> ProviderLoads(std::size_t num_providers) const;
  std::vector<std::int64_t> CustomerLoads(std::size_t num_customers) const;
};

// Checks matching validity against `problem` (paper Section 1):
//  (i)  every provider q serves at most q.k units, every customer p is
//       assigned at most weight(p) units (exactly once for unit weights),
//  (ii) |M| equals gamma = min(total weight, total capacity),
//  (iii) every stored pair distance matches the point geometry.
// Returns false and fills `error` on the first violation.
bool ValidateMatching(const Problem& problem, const Matching& matching, std::string* error);

}  // namespace cca

#endif  // CCA_CORE_MATCHING_H_
