#include "core/refine.h"

#include <algorithm>
#include <cassert>

#include "flow/sspa.h"

namespace cca {
namespace {

struct PairCand {
  double dist;
  int provider_slot;  // index into task.providers
  int cust_slot;      // index into task.customers
};

void RefineNearestNeighbor(const Problem& problem, const RefineTask& task, Matching* out) {
  const auto np = task.providers.size();
  const auto nc = task.customers.size();
  // Per-provider customer lists in ascending distance, consumed lazily.
  std::vector<std::vector<PairCand>> lists(np);
  for (std::size_t i = 0; i < np; ++i) {
    const Point q = problem.providers[static_cast<std::size_t>(task.providers[i])].pos;
    lists[i].reserve(nc);
    for (std::size_t j = 0; j < nc; ++j) {
      lists[i].push_back(
          PairCand{Distance(q, task.customers[j].pos), static_cast<int>(i), static_cast<int>(j)});
    }
    std::sort(lists[i].begin(), lists[i].end(),
              [](const PairCand& a, const PairCand& b) { return a.dist < b.dist; });
  }
  std::vector<std::size_t> cursor(np, 0);
  std::vector<std::int64_t> quota = task.quotas;
  std::vector<char> taken(nc, 0);
  std::size_t remaining = nc;
  std::int64_t quota_left = 0;
  for (auto v : quota) quota_left += v;

  // Round-robin: each provider with quota grabs its next unassigned NN.
  while (remaining > 0 && quota_left > 0) {
    bool progressed = false;
    for (std::size_t i = 0; i < np && remaining > 0; ++i) {
      if (quota[i] <= 0) continue;
      auto& cur = cursor[i];
      while (cur < lists[i].size() && taken[static_cast<std::size_t>(lists[i][cur].cust_slot)]) {
        ++cur;
      }
      if (cur >= lists[i].size()) continue;
      const PairCand& cand = lists[i][cur];
      taken[static_cast<std::size_t>(cand.cust_slot)] = 1;
      --remaining;
      --quota[i];
      --quota_left;
      progressed = true;
      out->Add(task.providers[i],
               static_cast<std::int32_t>(task.customers[static_cast<std::size_t>(cand.cust_slot)].oid),
               1, cand.dist);
    }
    if (!progressed) break;
  }
}

void RefineExclusive(const Problem& problem, const RefineTask& task, Matching* out) {
  const auto np = task.providers.size();
  const auto nc = task.customers.size();
  std::vector<PairCand> pairs;
  pairs.reserve(np * nc);
  for (std::size_t i = 0; i < np; ++i) {
    const Point q = problem.providers[static_cast<std::size_t>(task.providers[i])].pos;
    for (std::size_t j = 0; j < nc; ++j) {
      pairs.push_back(
          PairCand{Distance(q, task.customers[j].pos), static_cast<int>(i), static_cast<int>(j)});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const PairCand& a, const PairCand& b) { return a.dist < b.dist; });
  std::vector<std::int64_t> quota = task.quotas;
  std::vector<char> taken(nc, 0);
  for (const PairCand& cand : pairs) {
    if (taken[static_cast<std::size_t>(cand.cust_slot)]) continue;
    if (quota[static_cast<std::size_t>(cand.provider_slot)] <= 0) continue;
    taken[static_cast<std::size_t>(cand.cust_slot)] = 1;
    --quota[static_cast<std::size_t>(cand.provider_slot)];
    out->Add(task.providers[static_cast<std::size_t>(cand.provider_slot)],
             static_cast<std::int32_t>(task.customers[static_cast<std::size_t>(cand.cust_slot)].oid),
             1, cand.dist);
  }
}

// Exact local refinement: the group becomes a standalone CCA instance with
// provider capacities equal to the concise-matching quotas, solved with
// dense SSPA (local problems are small).
void RefineExact(const Problem& problem, const RefineTask& task, Matching* out) {
  Problem local;
  local.providers.reserve(task.providers.size());
  for (std::size_t i = 0; i < task.providers.size(); ++i) {
    local.providers.push_back(
        Provider{problem.providers[static_cast<std::size_t>(task.providers[i])].pos,
                 static_cast<std::int32_t>(task.quotas[i])});
  }
  local.customers.reserve(task.customers.size());
  for (const auto& h : task.customers) local.customers.push_back(h.pos);
  const SspaResult solved = SolveSspa(local);
  for (const auto& pair : solved.matching.pairs) {
    out->Add(task.providers[static_cast<std::size_t>(pair.provider)],
             static_cast<std::int32_t>(
                 task.customers[static_cast<std::size_t>(pair.customer)].oid),
             pair.units, pair.distance);
  }
}

}  // namespace

void RefineGroup(const Problem& problem, const RefineTask& task, RefineMode mode, Matching* out) {
  assert(task.providers.size() == task.quotas.size());
  if (task.customers.empty() || task.providers.empty()) return;
  switch (mode) {
    case RefineMode::kNearestNeighbor:
      RefineNearestNeighbor(problem, task, out);
      break;
    case RefineMode::kExclusiveNearestNeighbor:
      RefineExclusive(problem, task, out);
      break;
    case RefineMode::kExact:
      RefineExact(problem, task, out);
      break;
  }
}

}  // namespace cca
