// Incremental NN streams for the edge-discovery side of NIA/IDA.
//
// `NnSource` hands out, per service provider, the next nearest customer on
// demand. The interface is backend-neutral — a `Hit` is just (customer id,
// distance), with no R-tree types leaking through — and three backends
// implement it (see src/core/README.md for the layer contract):
//
//   * PlainNnSource    independent best-first R-tree iterators, one per
//                      provider;
//   * GroupedNnSource  the shared Hilbert-grouped ANN traversal of paper
//                      Section 3.4.2;
//   * GridNnSource     uniform-grid ring cursors over the memory-resident
//                      customer array (src/geo/grid_cursor.h) — no R-tree
//                      nodes are touched and no page I/O is charged;
//   * BatchedGridSource Hilbert-grouped SharedFrontier sweeps
//                      (src/geo/shared_frontier.h): each group fetches a
//                      cell once and multiplexes its points to every
//                      member, the grid analogue of GroupedNnSource.
//
// The concrete classes live in nn_source.cc; callers go through the
// factory, which resolves ExactConfig::discovery_backend.
#ifndef CCA_CORE_NN_SOURCE_H_
#define CCA_CORE_NN_SOURCE_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "common/metrics.h"
#include "core/exact.h"
#include "core/problem.h"

namespace cca {

class CustomerDb;

class NnSource {
 public:
  // Backend-neutral discovery hit: the customer's object id (== index into
  // Problem::customers) and its distance to the querying provider.
  struct Hit {
    std::int32_t oid = -1;
    double dist = 0.0;
  };

  virtual ~NnSource() = default;
  // Next nearest customer of provider `q` (non-decreasing distance per
  // provider), or nullopt when exhausted.
  virtual std::optional<Hit> NextNN(int q) = 0;
  // Distance the next NextNN(q) would return (+infinity when exhausted)
  // without consuming it; may read index structures to find out. RIA's
  // grid path drains a source batch-by-batch against this bound.
  virtual double PeekDistance(int q) = 0;
  // Provider `q`'s stream will not be consumed again (capacity exhausted,
  // or the solver retired it). Batched sources terminate the stream and
  // release its subscription slot — queued candidates and delivery
  // bookkeeping — so a retiree stops costing both memory and fanout work;
  // per-provider backends ignore the call. After Retire, NextNN(q)
  // returns nullopt and PeekDistance(q) is +infinity on batched sources.
  virtual void Retire(int q) { (void)q; }
};

// Resolves kAuto against the legacy `use_ann_grouping` switch.
DiscoveryBackend ResolveDiscoveryBackend(const ExactConfig& config, std::size_t num_providers);

// Resolves ExactConfig::grid_stream_target_per_cell for the exact-solver
// grid backend: non-positive falls back to a coarse streaming default
// (fat cells amortise cursor fetches the way R-tree leaf pages do).
double ResolveGridTargetPerCell(const ExactConfig& config);

// Factory honouring ExactConfig::discovery_backend. The grid backend reads
// `db->points()` and reports its cursor cells into `metrics`
// (grid_cursor_cells / index_node_accesses); the R-tree backends report
// through the tree's own counters (harvested by IoScope).
std::unique_ptr<NnSource> MakeNnSource(CustomerDb* db, const Problem& problem,
                                       const ExactConfig& config, Metrics* metrics);

}  // namespace cca

#endif  // CCA_CORE_NN_SOURCE_H_
