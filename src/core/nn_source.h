// Incremental NN streams for the edge-discovery side of NIA/IDA.
//
// `NnSource` hands out, per service provider, the next nearest customer on
// demand. Two implementations: independent best-first iterators (one per
// provider) and the shared grouped ANN traversal of paper Section 3.4.2,
// selectable through ExactConfig::use_ann_grouping.
#ifndef CCA_CORE_NN_SOURCE_H_
#define CCA_CORE_NN_SOURCE_H_

#include <memory>
#include <optional>
#include <vector>

#include "core/problem.h"
#include "rtree/ann_iterator.h"
#include "rtree/nn_iterator.h"
#include "rtree/rtree.h"

namespace cca {

class NnSource {
 public:
  virtual ~NnSource() = default;
  // Next nearest customer of provider `q`, or nullopt when exhausted.
  virtual std::optional<RTree::Hit> NextNN(int q) = 0;
};

// One independent best-first NN iterator per provider.
class PlainNnSource : public NnSource {
 public:
  PlainNnSource(RTree* tree, const std::vector<Provider>& providers);
  std::optional<RTree::Hit> NextNN(int q) override;

 private:
  std::vector<NnIterator> iterators_;
};

// Hilbert-grouped shared traversal (paper Algorithm 6).
class GroupedNnSource : public NnSource {
 public:
  GroupedNnSource(RTree* tree, const std::vector<Provider>& providers,
                  std::size_t max_group_size, const Rect& world);
  std::optional<RTree::Hit> NextNN(int q) override;

 private:
  std::unique_ptr<GroupAnnSearcher> searcher_;
};

// Factory honouring the config switch.
std::unique_ptr<NnSource> MakeNnSource(RTree* tree, const std::vector<Provider>& providers,
                                       bool use_ann_grouping, std::size_t max_group_size,
                                       const Rect& world);

}  // namespace cca

#endif  // CCA_CORE_NN_SOURCE_H_
