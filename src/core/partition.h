// Partitioning phase of the approximate methods (paper Sections 4.1, 4.2).
//
// SA groups *service providers*: Hilbert-ordered first-fit into groups
// whose MBR diagonal stays within delta; each group is represented by its
// capacity-weighted centroid carrying the summed capacity.
//
// CA groups *customers*: a delta-bounded R-tree descent (partition_scan.h)
// followed by a merge of the resulting entries into hyper-entries, again
// under the delta diagonal constraint; each group is represented by its
// MBR centre carrying the group cardinality as weight. The MBR-centre
// choice is what gives CA its delta/2 per-point displacement (Theorem 4).
#ifndef CCA_CORE_PARTITION_H_
#define CCA_CORE_PARTITION_H_

#include <cstdint>
#include <vector>

#include "core/problem.h"
#include "geo/rect.h"
#include "rtree/partition_scan.h"
#include "rtree/rtree.h"

namespace cca {

struct ProviderGroup {
  std::vector<int> members;  // indices into the provider vector
  Rect mbr;
  Point representative;       // capacity-weighted centroid
  std::int64_t capacity = 0;  // summed member capacity
};

std::vector<ProviderGroup> PartitionProviders(const std::vector<Provider>& providers,
                                              double delta, const Rect& world);

struct CustomerGroup {
  Rect mbr;
  std::uint32_t count = 0;
  Point representative;          // MBR centre
  std::vector<BaseEntry> parts;  // underlying delta-entries (for refinement)
};

std::vector<CustomerGroup> PartitionCustomers(RTree* tree, double delta, const Rect& world);

}  // namespace cca

#endif  // CCA_CORE_PARTITION_H_
