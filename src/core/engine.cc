#include "core/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cca {

IncrementalEngine::IncrementalEngine(const Problem& problem, const Config& config,
                                     Metrics* metrics)
    : problem_(problem),
      config_(config),
      metrics_(metrics),
      nq_(problem.providers.size()),
      unit_(config.unit_edges),
      gamma_(problem.Gamma()) {
  used_.assign(nq_, 0);
  tau_q_delta_.assign(nq_, 0.0);
  q_adj_.resize(nq_);
  for (std::size_t q = 0; q < nq_; ++q) {
    if (problem_.providers[q].capacity <= 0) ++full_count_;
  }
  if (full_count_ > 0) fast_mode_ = false;
  GrowNodeArrays();
}

void IncrementalEngine::GrowNodeArrays() {
  const std::size_t nodes = 1 + nq_ + custs_.size();
  if (alpha_.size() < nodes) {
    alpha_.resize(nodes, kInf);
    prev_node_.resize(nodes, -1);
    prev_edge_.resize(nodes, -1);
    pop_epoch_.resize(nodes, 0);
    touch_epoch_.resize(nodes, 0);
    hd_.Resize(nodes);
    hf_.Resize(nodes);
  }
}

int IncrementalEngine::LocalCustomer(int global_id) {
  auto it = cust_index_.find(global_id);
  if (it != cust_index_.end()) return it->second;
  const int local = static_cast<int>(custs_.size());
  CustState state;
  state.global_id = global_id;
  state.weight = problem_.weight(static_cast<std::size_t>(global_id));
  custs_.push_back(std::move(state));
  cust_index_.emplace(global_id, local);
  GrowNodeArrays();
  return local;
}

std::int64_t IncrementalEngine::EdgeCap(const EdgeRec& e) const {
  if (unit_) return 1;
  return std::min<std::int64_t>(
      problem_.providers[static_cast<std::size_t>(e.provider)].capacity,
      custs_[static_cast<std::size_t>(e.cust)].weight);
}

double IncrementalEngine::ReducedForward(const EdgeRec& e) const {
  return e.dist - TauQ(e.provider) + custs_[static_cast<std::size_t>(e.cust)].tau;
}

double IncrementalEngine::ReducedBackward(const EdgeRec& e) const {
  return -e.dist - custs_[static_cast<std::size_t>(e.cust)].tau + TauQ(e.provider);
}

void IncrementalEngine::RecomputeMinFwd(CustState* cust) {
  cust->min_fwd = kInf;
  for (std::int32_t eid : cust->edges) {
    const EdgeRec& e = edges_[static_cast<std::size_t>(eid)];
    if (e.flow < EdgeCap(e)) cust->min_fwd = std::min(cust->min_fwd, e.dist);
  }
}

int IncrementalEngine::InsertEdge(int provider, int customer, double dist) {
  const int local = LocalCustomer(customer);
  const int eid = static_cast<int>(edges_.size());
  edges_.push_back(EdgeRec{static_cast<std::int32_t>(provider),
                           static_cast<std::int32_t>(local), dist, 0});
  q_adj_[static_cast<std::size_t>(provider)].push_back(eid);
  CustState& cust = custs_[static_cast<std::size_t>(local)];
  cust.edges.push_back(eid);
  cust.min_fwd = std::min(cust.min_fwd, dist);
  ++metrics_->edges_inserted;
  if (run_live_) {
    if (config_.use_pua) {
      RepairAfterInsert(eid);
    } else {
      run_live_ = false;
    }
  }
  return eid;
}

// --- Theorem-2 fast path -------------------------------------------------------

std::int64_t IncrementalEngine::FastAssign(int edge_id) {
  assert(fast_mode_ && full_count_ == 0);
  EdgeRec& e = edges_[static_cast<std::size_t>(edge_id)];
  CustState& cust = custs_[static_cast<std::size_t>(e.cust)];
  const std::int64_t residual = cust.weight - cust.sink_flow;
  if (residual <= 0) return 0;

  const auto q = static_cast<std::size_t>(e.provider);
  std::int64_t push = std::min<std::int64_t>(problem_.providers[q].capacity - used_[q], residual);
  if (unit_) push = std::min<std::int64_t>(push, 1);
  push = std::min(push, gamma_ - assigned_);
  assert(push > 0);

  // The popped edge is the globally shortest pending one, so its length is
  // the real cost of the shortest augmenting path (Theorem 2). Potentials
  // of all providers jump to that value; customer potentials stay lazy.
  assert(e.dist >= last_d_ - 1e-9);
  last_d_ = std::max(last_d_, e.dist);
  tau_q_offset_ = last_d_;
  tau_max_ = std::max(tau_max_, last_d_);

  e.flow += push;
  used_[q] += push;
  cust.sink_flow += push;
  assigned_ += push;
  ++metrics_->fast_path_assigns;
  ++metrics_->augmentations;

  if (unit_) RecomputeMinFwd(&cust);
  if (used_[q] >= problem_.providers[q].capacity) {
    ++full_count_;
    EnsureGeneralMode();
  }
  return push;
}

void IncrementalEngine::EnsureGeneralMode() {
  if (!fast_mode_) return;
  // Materialise the closed-form lazy customer potentials (DESIGN.md 3.3):
  // tau(p) = max(0, last_d - min forward-residual edge length). Unsaturated
  // customers always evaluate to 0 by construction.
  for (CustState& cust : custs_) {
    cust.tau = std::max(0.0, last_d_ - cust.min_fwd);
  }
  fast_mode_ = false;
}

// --- Dijkstra -------------------------------------------------------------------

void IncrementalEngine::RelaxInto(int node, double cand, int from_node, int via_edge) {
  if (node == SinkNode()) {
    if (cand < sink_alpha_) {
      sink_alpha_ = cand;
      sink_prev_cust_ = from_node;
    }
    return;
  }
  const auto n = static_cast<std::size_t>(node);
  if (touch_epoch_[n] != epoch_) {
    touch_epoch_[n] = epoch_;
    alpha_[n] = kInf;
    prev_node_[n] = -1;
    prev_edge_[n] = -1;
  }
  if (cand < alpha_[n]) {
    alpha_[n] = cand;
    prev_node_[n] = from_node;
    prev_edge_[n] = via_edge;
    if (repair_mode_ && !hd_.Contains(node)) {
      hf_.PushOrDecrease(node, cand);
    } else {
      hd_.PushOrDecrease(node, cand);
    }
  }
}

void IncrementalEngine::ExpandNode(int node) {
  const auto n = static_cast<std::size_t>(node);
  if (pop_epoch_[n] != epoch_) {
    pop_epoch_[n] = epoch_;
    touched_.push_back(node);
  }
  ++metrics_->dijkstra_pops;
  const double base = alpha_[n];
  if (IsProviderNode(node)) {
    const int q = ProviderOf(node);
    const double tau_q = TauQ(q);
    for (std::int32_t eid : q_adj_[static_cast<std::size_t>(q)]) {
      const EdgeRec& e = edges_[static_cast<std::size_t>(eid)];
      if (e.flow >= EdgeCap(e)) continue;
      ++metrics_->dijkstra_relaxes;
      const double w =
          std::max(0.0, e.dist - tau_q + custs_[static_cast<std::size_t>(e.cust)].tau);
      RelaxInto(CustomerNode(e.cust), base + w, node, eid);
    }
  } else {
    const int c = CustomerOf(node);
    const CustState& cust = custs_[static_cast<std::size_t>(c)];
    if (cust.sink_flow < cust.weight) {
      ++metrics_->dijkstra_relaxes;
      RelaxInto(SinkNode(), base + std::max(0.0, -cust.tau), node, -1);
    }
    for (std::int32_t eid : cust.edges) {
      const EdgeRec& e = edges_[static_cast<std::size_t>(eid)];
      if (e.flow <= 0) continue;
      ++metrics_->dijkstra_relaxes;
      const double w = std::max(0.0, ReducedBackward(e));
      RelaxInto(ProviderNode(e.provider), base + w, node, eid);
    }
  }
}

void IncrementalEngine::StartFreshRun() {
  ++epoch_;
  hd_.Clear();
  hf_.Clear();
  touched_.clear();
  sink_alpha_ = kInf;
  sink_prev_cust_ = -1;
  for (std::size_t q = 0; q < nq_; ++q) {
    if (used_[q] >= problem_.providers[q].capacity) continue;
    const int node = ProviderNode(static_cast<int>(q));
    const auto n = static_cast<std::size_t>(node);
    touch_epoch_[n] = epoch_;
    alpha_[n] = TauQ(static_cast<int>(q));
    prev_node_[n] = -1;  // fed by the source
    prev_edge_[n] = -1;
    hd_.PushOrDecrease(node, alpha_[n]);
  }
  run_live_ = true;
  ++metrics_->dijkstra_runs;
}

void IncrementalEngine::RunMainLoop() {
  while (!hd_.empty() && hd_.Min().second < sink_alpha_) {
    const auto [node, key] = hd_.PopMin();
    (void)key;
    ExpandNode(node);
  }
}

void IncrementalEngine::RepairAfterInsert(int edge_id) {
  const EdgeRec& e = edges_[static_cast<std::size_t>(edge_id)];
  const int qnode = ProviderNode(e.provider);
  const auto qn = static_cast<std::size_t>(qnode);
  if (touch_epoch_[qn] != epoch_) return;  // provider unreached; nothing to repair
  ++metrics_->dijkstra_resumes;
  repair_mode_ = true;
  if (e.flow < EdgeCap(e)) {
    const double w = std::max(0.0, ReducedForward(e));
    RelaxInto(CustomerNode(e.cust), alpha_[qn] + w, qnode, edge_id);
  }
  while (!hf_.empty()) {
    const auto [node, key] = hf_.PopMin();
    if (key >= sink_alpha_) continue;  // cannot contribute a better path
    ExpandNode(node);
  }
  repair_mode_ = false;
  // The caller re-enters RunMainLoop via ComputeShortestPath to settle any
  // frontier entries the cascade improved.
}

double IncrementalEngine::ComputeShortestPath() {
  EnsureGeneralMode();
  if (!run_live_) StartFreshRun();
  RunMainLoop();
  return sink_alpha_;
}

void IncrementalEngine::AcceptPath() {
  assert(run_live_ && sink_alpha_ < kInf && sink_prev_cust_ >= 0);
  const double d = sink_alpha_;

  // Bottleneck pass.
  std::int64_t push = gamma_ - assigned_;
  {
    const int last_cust = CustomerOf(sink_prev_cust_);
    const CustState& cust = custs_[static_cast<std::size_t>(last_cust)];
    push = std::min(push, cust.weight - cust.sink_flow);
  }
  int cur = sink_prev_cust_;
  while (prev_node_[static_cast<std::size_t>(cur)] != -1) {
    const int eid = prev_edge_[static_cast<std::size_t>(cur)];
    const EdgeRec& e = edges_[static_cast<std::size_t>(eid)];
    if (IsProviderNode(cur)) {
      push = std::min(push, e.flow);  // traversing the reversed edge
    } else {
      push = std::min(push, EdgeCap(e) - e.flow);
    }
    cur = prev_node_[static_cast<std::size_t>(cur)];
  }
  assert(IsProviderNode(cur));
  const auto first_q = static_cast<std::size_t>(ProviderOf(cur));
  push = std::min(push, problem_.providers[first_q].capacity - used_[first_q]);
  assert(push > 0);

  // Apply pass.
  {
    CustState& cust = custs_[static_cast<std::size_t>(CustomerOf(sink_prev_cust_))];
    cust.sink_flow += push;
  }
  cur = sink_prev_cust_;
  while (prev_node_[static_cast<std::size_t>(cur)] != -1) {
    const int eid = prev_edge_[static_cast<std::size_t>(cur)];
    EdgeRec& e = edges_[static_cast<std::size_t>(eid)];
    if (IsProviderNode(cur)) {
      e.flow -= push;
      assert(e.flow >= 0);
    } else {
      e.flow += push;
    }
    cur = prev_node_[static_cast<std::size_t>(cur)];
  }
  used_[first_q] += push;
  if (used_[first_q] >= problem_.providers[first_q].capacity) ++full_count_;
  assigned_ += push;
  ++metrics_->augmentations;

  // Potential update: every node de-heaped with a final distance below the
  // accepted path cost moves up to it (paper Algorithm 1 lines 8-9).
  for (int node : touched_) {
    const auto n = static_cast<std::size_t>(node);
    const double delta = d - alpha_[n];
    if (delta <= 0.0) continue;
    if (IsProviderNode(node)) {
      const auto q = static_cast<std::size_t>(ProviderOf(node));
      tau_q_delta_[q] += delta;
      tau_max_ = std::max(tau_max_, TauQ(static_cast<int>(q)));
    } else {
      custs_[static_cast<std::size_t>(CustomerOf(node))].tau += delta;
    }
  }
  last_d_ = std::max(last_d_, d);
  run_live_ = false;
}

// --- bounds -----------------------------------------------------------------------

bool IncrementalEngine::IsProviderFull(int provider) const {
  const auto q = static_cast<std::size_t>(provider);
  return used_[q] >= problem_.providers[q].capacity;
}

std::int64_t IncrementalEngine::CustomerResidual(int customer) const {
  auto it = cust_index_.find(customer);
  if (it == cust_index_.end()) return problem_.weight(static_cast<std::size_t>(customer));
  const CustState& cust = custs_[static_cast<std::size_t>(it->second)];
  return cust.weight - cust.sink_flow;
}

double IncrementalEngine::ProviderBound(int provider) const {
  if (!IsProviderFull(provider)) return 0.0;
  const int node = ProviderNode(provider);
  const auto n = static_cast<std::size_t>(node);
  const double tau = TauQ(provider);
  // De-heaped in the latest run: alpha is the exact distance there, and
  // real distances only grow across augmentations.
  if (epoch_ > 0 && pop_epoch_[n] == epoch_) return std::max(0.0, alpha_[n] - tau);
  if (run_live_) {
    // Not de-heaped at quiescence: its distance is at least the sink's.
    if (sink_alpha_ == kInf) return kInf;
    return std::max(0.0, sink_alpha_ - tau);
  }
  // Between runs: the last accepted path cost lower-bounds every
  // unvisited node's distance, and distances are monotone.
  return std::max(0.0, last_d_ - tau);
}

// --- results ----------------------------------------------------------------------

Matching IncrementalEngine::BuildMatching() const {
  Matching matching;
  for (const EdgeRec& e : edges_) {
    if (e.flow > 0) {
      matching.Add(e.provider, custs_[static_cast<std::size_t>(e.cust)].global_id,
                   static_cast<std::int32_t>(e.flow), e.dist);
    }
  }
  return matching;
}

double IncrementalEngine::DebugCustomerTau(int customer) const {
  auto it = cust_index_.find(customer);
  if (it == cust_index_.end()) return 0.0;
  const CustState& cust = custs_[static_cast<std::size_t>(it->second)];
  return fast_mode_ ? std::max(0.0, last_d_ - cust.min_fwd) : cust.tau;
}

bool IncrementalEngine::CheckReducedCosts(std::string* error) const {
  constexpr double kEps = 1e-6;
  auto eff_tau_p = [&](const CustState& cust) {
    return fast_mode_ ? std::max(0.0, last_d_ - cust.min_fwd) : cust.tau;
  };
  for (const EdgeRec& e : edges_) {
    const CustState& cust = custs_[static_cast<std::size_t>(e.cust)];
    const double tp = eff_tau_p(cust);
    if (e.flow < EdgeCap(e)) {
      if (e.dist - TauQ(e.provider) + tp < -kEps) {
        if (error != nullptr) *error = "negative reduced cost on forward edge";
        return false;
      }
    }
    if (e.flow > 0) {
      if (-e.dist - tp + TauQ(e.provider) < -kEps) {
        if (error != nullptr) *error = "negative reduced cost on residual edge";
        return false;
      }
    }
  }
  for (const CustState& cust : custs_) {
    if (cust.sink_flow < cust.weight && eff_tau_p(cust) > kEps) {
      if (error != nullptr) *error = "unsaturated customer with positive potential";
      return false;
    }
    if (cust.sink_flow > cust.weight) {
      if (error != nullptr) *error = "customer over-assigned";
      return false;
    }
  }
  for (std::size_t q = 0; q < nq_; ++q) {
    if (TauQ(static_cast<int>(q)) < -kEps) {
      if (error != nullptr) *error = "negative provider potential";
      return false;
    }
    if (used_[q] > problem_.providers[q].capacity) {
      if (error != nullptr) *error = "provider over capacity";
      return false;
    }
  }
  return true;
}

}  // namespace cca
