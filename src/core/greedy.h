// Greedy spatial-matching baseline (paper Section 2.3 related work [12, 14]).
//
// The SM join repeatedly commits the globally closest (provider, customer)
// pair: unlike CCA it performs local assignments with no global cost
// objective, so its matching is generally suboptimal. We adapt it to
// capacitated providers (a provider stays in play until its capacity is
// exhausted) and drive it with the same incremental NN streams the exact
// solvers use. The baseline benchmark quantifies the quality gap that
// motivates CCA in the first place.
#ifndef CCA_CORE_GREEDY_H_
#define CCA_CORE_GREEDY_H_

#include "core/exact.h"

namespace cca {

// Greedy globally-closest-pair assignment; same result shape as the exact
// solvers but WITHOUT optimality: use only as a baseline. Requires unit
// customer weights.
ExactResult SolveGreedySm(const Problem& problem, CustomerDb* db,
                          const ExactConfig& config = {});

}  // namespace cca

#endif  // CCA_CORE_GREEDY_H_
