#include "core/problem.h"

#include <algorithm>

namespace cca {

std::int64_t Problem::TotalCapacity() const {
  std::int64_t total = 0;
  for (const auto& q : providers) total += q.capacity;
  return total;
}

std::int64_t Problem::TotalWeight() const {
  if (weights.empty()) return static_cast<std::int64_t>(customers.size());
  std::int64_t total = 0;
  for (auto w : weights) total += w;
  return total;
}

std::int64_t Problem::Gamma() const { return std::min(TotalWeight(), TotalCapacity()); }

Rect Problem::World() const {
  Rect world;
  for (const auto& q : providers) world.Expand(q.pos);
  for (const auto& p : customers) world.Expand(p);
  return world;
}

}  // namespace cca
