#include "core/problem.h"

#include <algorithm>
#include <cmath>

namespace cca {

void PointsSoA::Assign(const std::vector<Point>& points) {
  x.resize(points.size());
  y.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    x[i] = points[i].x;
    y[i] = points[i].y;
  }
}

void DistanceBlock(const Point& q, const double* xs, const double* ys, std::size_t n,
                   double* out) {
  const double qx = q.x;
  const double qy = q.y;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - qx;
    const double dy = ys[i] - qy;
    out[i] = std::sqrt(dx * dx + dy * dy);
  }
}

std::size_t DistanceBlockSelect(const Point& q, const double* xs, const double* ys,
                                const double* taus, std::size_t n, double cutoff,
                                std::int32_t* idx, double* d2_out) {
  // Pass 1 (SIMD): squared distances and squared per-lane thresholds. No
  // branches, no sqrt — multiply/add over contiguous arrays, which is what
  // the vectorization smoke check (tools/check_vectorization.py) pins.
  double d2[kDistanceBlock];
  double r2[kDistanceBlock];
  const double qx = q.x;
  const double qy = q.y;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - qx;
    const double dy = ys[i] - qy;
    d2[i] = dx * dx + dy * dy;
    // Signed square r*|r| instead of clamp-then-square: a non-positive
    // threshold yields r2 <= 0, which the strict d2 < r2 compare rejects
    // (d2 >= 0) — same semantics as clamping, but branchless, so the loop
    // if-converts and vectorizes (a ternary clamp here defeats GCC's
    // if-conversion and de-vectorizes the whole pass).
    const double r = cutoff - taus[i];
    r2[i] = r * std::fabs(r);
  }
  // Pass 2 (scalar): compact the surviving lanes' squared distances. The
  // sqrt stays with the caller, behind its exact current-bound recheck.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (d2[i] < r2[i]) {
      idx[kept] = static_cast<std::int32_t>(i);
      d2_out[kept] = d2[i];
      ++kept;
    }
  }
  return kept;
}

std::int64_t Problem::TotalCapacity() const {
  std::int64_t total = 0;
  for (const auto& q : providers) total += q.capacity;
  return total;
}

std::int64_t Problem::TotalWeight() const {
  if (weights.empty()) return static_cast<std::int64_t>(customers.size());
  std::int64_t total = 0;
  for (auto w : weights) total += w;
  return total;
}

std::int64_t Problem::Gamma() const { return std::min(TotalWeight(), TotalCapacity()); }

Rect Problem::World() const {
  Rect world;
  for (const auto& q : providers) world.Expand(q.pos);
  for (const auto& p : customers) world.Expand(p);
  return world;
}

}  // namespace cca
