#include "core/problem.h"

#include <algorithm>
#include <cmath>

namespace cca {

void PointsSoA::Assign(const std::vector<Point>& points) {
  x.resize(points.size());
  y.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    x[i] = points[i].x;
    y[i] = points[i].y;
  }
}

void DistanceBlock(const Point& q, const double* xs, const double* ys, std::size_t n,
                   double* out) {
  const double qx = q.x;
  const double qy = q.y;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - qx;
    const double dy = ys[i] - qy;
    out[i] = std::sqrt(dx * dx + dy * dy);
  }
}

std::int64_t Problem::TotalCapacity() const {
  std::int64_t total = 0;
  for (const auto& q : providers) total += q.capacity;
  return total;
}

std::int64_t Problem::TotalWeight() const {
  if (weights.empty()) return static_cast<std::int64_t>(customers.size());
  std::int64_t total = 0;
  for (auto w : weights) total += w;
  return total;
}

std::int64_t Problem::Gamma() const { return std::min(TotalWeight(), TotalCapacity()); }

Rect Problem::World() const {
  Rect world;
  for (const auto& q : providers) world.Expand(q.pos);
  for (const auto& p : customers) world.Expand(p);
  return world;
}

}  // namespace cca
