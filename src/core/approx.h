// Approximate CCA: Service-provider Approximation (SA) and Customer
// Approximation (CA), paper Section 4.
//
// Both follow the same three phases — partition (delta-bounded grouping),
// concise matching (an exact IDA run on representatives), refinement
// (local heuristics) — and carry additive error guarantees:
//   SA:  Psi(M) <= Psi(optimal) + 2 * gamma * delta   (Theorem 3)
//   CA:  Psi(M) <= Psi(optimal) +     gamma * delta   (Theorem 4)
#ifndef CCA_CORE_APPROX_H_
#define CCA_CORE_APPROX_H_

#include <cstddef>

#include "common/metrics.h"
#include "core/customer_db.h"
#include "core/exact.h"
#include "core/matching.h"
#include "core/problem.h"
#include "core/refine.h"

namespace cca {

struct ApproxConfig {
  // Maximum group MBR diagonal (paper's delta; defaults follow the
  // best-tradeoff values of Section 5.3: 40 for SA, 10 for CA).
  double delta = 10.0;
  RefineMode refine = RefineMode::kNearestNeighbor;
  // Options for the concise matching IDA run.
  ExactConfig exact;
};

struct ApproxResult {
  Matching matching;
  Metrics metrics;
  std::size_t num_groups = 0;
  double concise_cost = 0.0;  // Psi of the representative-level matching
};

// SA: groups providers, solves representatives-vs-full-P exactly, refines
// within each provider group.
ApproxResult SolveSa(const Problem& problem, CustomerDb* db, const ApproxConfig& config = {});

// CA: groups customers via the R-tree, solves Q-vs-representatives (with
// weighted representative customers) in memory, refines per group.
ApproxResult SolveCa(const Problem& problem, CustomerDb* db, const ApproxConfig& config = {});

// Theorem 3 / 4 error bound for a given gamma and delta.
inline double SaErrorBound(std::int64_t gamma, double delta) {
  return 2.0 * static_cast<double>(gamma) * delta;
}
inline double CaErrorBound(std::int64_t gamma, double delta) {
  return static_cast<double>(gamma) * delta;
}

}  // namespace cca

#endif  // CCA_CORE_APPROX_H_
