// Range Incremental Algorithm (RIA), paper Algorithm 2.
//
// Esub holds exactly the provider->customer edges of length <= T, grown in
// annular batches of width theta. With the fixed-source potential
// convention a computed shortest path is globally valid as soon as its
// (real) cost is within T, since every unexplored edge is longer than T
// and real path costs through it cannot be smaller (Theorem 1; see
// DESIGN.md Section 3.2 for why no tau_max slack is needed).
//
// The annular batches are served by the configured discovery backend. The
// R-tree path issues one AnnularRangeSearch per provider per batch. The
// grid paths (memory-resident customer sets) hold a grid NnSource — per
// provider cursors, or the batched shared frontier — and, per
// batch, drain each provider's stream up to the new T against
// PeekDistance(): successive annuli are nested (each batch's lo equals the
// previous hi), so resuming the incremental NN stream yields exactly the
// (lo, hi] batch without ever re-fetching inner-disk cells, charges no
// page I/O, and keeps the grid semantics and cell accounting in
// nn_source.cc alone.
#include <cassert>
#include <memory>

#include "common/timer.h"
#include "core/engine.h"
#include "core/exact.h"
#include "core/nn_source.h"
#include "rtree/rtree.h"

namespace cca {

ExactResult SolveRia(const Problem& problem, CustomerDb* db, const ExactConfig& config) {
  ExactResult result;
  Timer timer;
  IoScope io(db, &result.metrics);

  IncrementalEngine::Config engine_config;
  engine_config.use_pua = config.use_pua;
  engine_config.unit_edges = problem.weights.empty();
  IncrementalEngine engine(problem, engine_config, &result.metrics);

  const double world_diag = problem.World().Diagonal();
  const auto nq = problem.providers.size();

  std::unique_ptr<NnSource> grid_source;  // grid backends: resumable stream per provider
  const DiscoveryBackend backend = ResolveDiscoveryBackend(config, nq);
  if (backend == DiscoveryBackend::kGrid || backend == DiscoveryBackend::kGridBatched) {
    grid_source = MakeNnSource(db, problem, config, &result.metrics);
  }
  std::vector<RTree::Hit> hits;
  // Inserts every edge q -> p with lo < dist(q, p) <= hi (lo < 0 is the
  // initial full-disk batch) through whichever backend is configured.
  const auto insert_annulus = [&](std::size_t q, double lo, double hi) {
    ++result.metrics.range_searches;
    if (grid_source) {
      // Everything below lo was consumed by the previous batches.
      while (grid_source->PeekDistance(static_cast<int>(q)) <= hi) {
        const auto hit = grid_source->NextNN(static_cast<int>(q));
        engine.InsertEdge(static_cast<int>(q), hit->oid, hit->dist);
      }
      return;
    }
    db->tree()->AnnularRangeSearch(problem.providers[q].pos, lo, hi, &hits);
    for (const auto& h : hits) {
      engine.InsertEdge(static_cast<int>(q), static_cast<int>(h.oid), h.dist);
    }
  };

  double t_range = config.theta;
  bool exhausted = false;

  // Initial batch: all edges of length <= theta.
  for (std::size_t q = 0; q < nq; ++q) insert_annulus(q, -1.0, t_range);

  while (!engine.Done()) {
    const double d = engine.ComputeShortestPath();
    if (d <= t_range + 1e-9 || exhausted) {
      assert(d < std::numeric_limits<double>::infinity());
      engine.AcceptPath();
      continue;
    }
    // Invalid path: widen the annulus (T-theta, T] and retry (Algorithm 2
    // lines 12-15).
    ++result.metrics.invalid_paths;
    const double lo = t_range;
    t_range += config.theta;
    for (std::size_t q = 0; q < nq; ++q) insert_annulus(q, lo, t_range);
    if (t_range >= world_diag) exhausted = true;  // Esub == E from here on
  }

  result.matching = engine.BuildMatching();
  io.Finish();
  result.metrics.cpu_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace cca
