// Range Incremental Algorithm (RIA), paper Algorithm 2.
//
// Esub holds exactly the provider->customer edges of length <= T, grown in
// annular batches of width theta. With the fixed-source potential
// convention a computed shortest path is globally valid as soon as its
// (real) cost is within T, since every unexplored edge is longer than T
// and real path costs through it cannot be smaller (Theorem 1; see
// DESIGN.md Section 3.2 for why no tau_max slack is needed).
#include <cassert>

#include "common/timer.h"
#include "core/engine.h"
#include "core/exact.h"

namespace cca {

ExactResult SolveRia(const Problem& problem, CustomerDb* db, const ExactConfig& config) {
  ExactResult result;
  Timer timer;
  IoScope io(db, &result.metrics);

  IncrementalEngine::Config engine_config;
  engine_config.use_pua = config.use_pua;
  engine_config.unit_edges = problem.weights.empty();
  IncrementalEngine engine(problem, engine_config, &result.metrics);

  const double world_diag = problem.World().Diagonal();
  const auto nq = problem.providers.size();

  double t_range = config.theta;
  bool exhausted = false;
  std::vector<RTree::Hit> hits;

  // Initial batch: all edges of length <= theta.
  for (std::size_t q = 0; q < nq; ++q) {
    db->tree()->RangeSearch(problem.providers[q].pos, t_range, &hits);
    ++result.metrics.range_searches;
    for (const auto& h : hits) {
      engine.InsertEdge(static_cast<int>(q), static_cast<int>(h.oid), h.dist);
    }
  }

  while (!engine.Done()) {
    const double d = engine.ComputeShortestPath();
    if (d <= t_range + 1e-9 || exhausted) {
      assert(d < std::numeric_limits<double>::infinity());
      engine.AcceptPath();
      continue;
    }
    // Invalid path: widen the annulus (T-theta, T] and retry (Algorithm 2
    // lines 12-15).
    ++result.metrics.invalid_paths;
    const double lo = t_range;
    t_range += config.theta;
    for (std::size_t q = 0; q < nq; ++q) {
      db->tree()->AnnularRangeSearch(problem.providers[q].pos, lo, t_range, &hits);
      ++result.metrics.range_searches;
      for (const auto& h : hits) {
        engine.InsertEdge(static_cast<int>(q), static_cast<int>(h.oid), h.dist);
      }
    }
    if (t_range >= world_diag) exhausted = true;  // Esub == E from here on
  }

  result.matching = engine.BuildMatching();
  io.Finish();
  result.metrics.cpu_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace cca
