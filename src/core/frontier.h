// Pending-edge frontier for NIA/IDA.
//
// Mirrors the paper's heap H: for every provider exactly one pending edge
// (to its next undiscovered nearest neighbour) is outstanding at any time.
// The frontier is backend-agnostic: it consumes neutral NnSource::Hit
// records, so the same loop runs over R-tree iterators, the grouped ANN
// traversal, or grid ring cursors (see src/core/README.md).
// Keys are computed on demand as lift(q) + dist so that IDA's
// full-provider distance lifts stay current without heap rebuilds; with
// |Q| in the thousands a linear scan is cheaper than maintaining a heap
// whose keys change after every Dijkstra execution.
#ifndef CCA_CORE_FRONTIER_H_
#define CCA_CORE_FRONTIER_H_

#include <limits>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "core/nn_source.h"
#include "core/problem.h"

namespace cca {

class EdgeFrontier {
 public:
  struct Candidate {
    int cust = -1;
    double dist = 0.0;
    bool valid = false;
  };

  EdgeFrontier(const Problem& problem, NnSource* source, Metrics* metrics)
      : source_(source), metrics_(metrics), candidates_(problem.providers.size()) {
    for (std::size_t q = 0; q < candidates_.size(); ++q) Advance(static_cast<int>(q));
  }

  const Candidate& at(int q) const { return candidates_[static_cast<std::size_t>(q)]; }

  // Fetches the next nearest neighbour of provider q.
  void Advance(int q) {
    Candidate& c = candidates_[static_cast<std::size_t>(q)];
    if (auto hit = source_->NextNN(q)) {
      c.cust = static_cast<int>(hit->oid);
      c.dist = hit->dist;
      c.valid = true;
      ++metrics_->nn_searches;
    } else {
      c.valid = false;
    }
  }

  // Permanently removes provider q's stream from the frontier (used by the
  // greedy baseline once a provider's capacity is exhausted). Batched
  // sources stop multiplexing cells to retired providers.
  void Retire(int q) {
    candidates_[static_cast<std::size_t>(q)].valid = false;
    source_->Retire(q);
  }

  // Minimum key over pending edges, key(q) = lift(q) + dist(q, candidate).
  // Returns {provider, key}; provider == -1 when all streams are
  // exhausted (key == +inf).
  template <typename LiftFn>
  std::pair<int, double> MinKey(LiftFn lift) const {
    int best = -1;
    double best_key = std::numeric_limits<double>::infinity();
    for (std::size_t q = 0; q < candidates_.size(); ++q) {
      const Candidate& c = candidates_[q];
      if (!c.valid) continue;
      const double key = lift(static_cast<int>(q)) + c.dist;
      if (key < best_key) {
        best_key = key;
        best = static_cast<int>(q);
      }
    }
    return {best, best_key};
  }

 private:
  NnSource* source_;
  Metrics* metrics_;
  std::vector<Candidate> candidates_;
};

}  // namespace cca

#endif  // CCA_CORE_FRONTIER_H_
