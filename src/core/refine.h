// Refinement phase of the approximate methods (paper Section 4.3).
//
// The concise matching decides, per group, *how many* customers each
// provider serves; refinement turns that into concrete (provider,
// customer) pairs by solving many small local assignment problems with one
// of two heuristics:
//   * NN-based: round-robin over providers, each repeatedly grabbing its
//     nearest unassigned customer;
//   * Exclusive-NN: globally pick the closest (provider, customer) pair
//     among providers with remaining quota, assign, repeat.
#ifndef CCA_CORE_REFINE_H_
#define CCA_CORE_REFINE_H_

#include <cstdint>
#include <vector>

#include "core/matching.h"
#include "core/problem.h"
#include "rtree/rtree.h"

namespace cca {

enum class RefineMode {
  kNearestNeighbor,           // "N" variants in the paper's charts
  kExclusiveNearestNeighbor,  // "E" variants
  // Solve each local problem as an exact CCA (the alternative the paper
  // mentions and rejects as expensive in Section 4.3; "X" in our charts).
  // Local problems are small, so this buys the best refinement quality at
  // a measurable but often acceptable CPU premium.
  kExact,
};

// One local refinement problem.
struct RefineTask {
  std::vector<int> providers;         // global provider indices
  std::vector<std::int64_t> quotas;   // units assignable per provider
  std::vector<RTree::Hit> customers;  // customers of this group (oid + pos)
};

// Solves `task` with the chosen heuristic and appends the produced pairs
// to `out`. Assigns min(total quota, #customers) customers.
void RefineGroup(const Problem& problem, const RefineTask& task, RefineMode mode, Matching* out);

}  // namespace cca

#endif  // CCA_CORE_REFINE_H_
