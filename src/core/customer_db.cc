#include "core/customer_db.h"

#include "common/metrics.h"

namespace cca {

CustomerDb::CustomerDb(const std::vector<Point>& points) : CustomerDb(points, Options{}) {}

CustomerDb::CustomerDb(const std::vector<Point>& points, const Options& options)
    : points_(points) {
  tree_ = RTree::BulkLoad(points_, options.rtree);
  if (options.buffer_fraction >= 1.0) {
    tree_->buffer().SetCapacity(tree_->page_count() + 1);
  } else {
    tree_->SetBufferFraction(options.buffer_fraction);
    if (tree_->buffer().capacity() < options.min_buffer_pages) {
      tree_->buffer().SetCapacity(options.min_buffer_pages);
    }
  }
  tree_->ResetCounters();
}

void CustomerDb::Prewarm() {
  std::vector<std::uint8_t> scratch(tree_->options().page_size);
  for (PageId id = 0; id < tree_->page_count(); ++id) {
    // Best-effort cache warming: a page that cannot be read now will be
    // read (and retried) on first real access instead.
    tree_->buffer().ReadPage(id, scratch.data()).IgnoreError();
  }
}

}  // namespace cca
