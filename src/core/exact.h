// Exact CCA solvers: RIA, NIA and IDA (paper Section 3).
//
// All three produce the optimal capacity-constrained assignment; they
// differ in how the flow subgraph Esub is grown and how aggressively
// shortest paths can be certified against unexplored edges:
//
//   RIA  grows Esub with batched (annular) range searches of radius T,
//        T advancing by theta; a path is final once its cost <= T.
//   NIA  grows Esub one edge at a time from per-provider incremental NN
//        streams; a path is final once its cost is at most the shortest
//        pending (undiscovered) edge.
//   IDA  refines NIA with full-provider distance lifts (paths through a
//        full provider q cost at least realdist(q) + edge length) and the
//        Theorem-2 fast path that assigns without any Dijkstra runs while
//        no provider is full.
#ifndef CCA_CORE_EXACT_H_
#define CCA_CORE_EXACT_H_

#include <cstddef>

#include "common/metrics.h"
#include "core/customer_db.h"
#include "core/matching.h"
#include "core/problem.h"

namespace cca {

class UniformGrid;
class HierarchicalGrid;

// Candidate-discovery backend for the exact solvers (see src/core/README.md
// for the layer contract). All backends yield cost-identical matchings;
// they differ in how the "next nearest candidate" primitive is served:
//
//   kRTreePlain    one independent best-first NN iterator per provider,
//   kRTreeGrouped  the paper's shared Hilbert-grouped ANN traversal (3.4.2),
//   kGrid          uniform-grid ring cursors over the raw point array
//                  (memory-resident customers: no R-tree, no page I/O),
//   kGridBatched   the grid analogue of kRTreeGrouped: providers are
//                  Hilbert-grouped and each group shares one SharedFrontier
//                  cell sweep (geo/shared_frontier.h) — a cell is fetched
//                  once per group and multiplexed to every member.
enum class DiscoveryBackend {
  kAuto = 0,  // honour `use_ann_grouping` (the legacy switch)
  kRTreePlain,
  kRTreeGrouped,
  kGrid,
  kGridBatched,
};

struct ExactConfig {
  // RIA: range increment theta (paper default 0.8 on the [0,1000]^2 world).
  double theta = 0.8;
  // Reuse Dijkstra computations across edge insertions (paper 3.4.1).
  bool use_pua = true;
  // Serve NN streams through the grouped ANN traversal (paper 3.4.2).
  // Consulted only when discovery_backend == kAuto.
  bool use_ann_grouping = true;
  std::size_t ann_group_size = 8;
  // Providers per SharedFrontier group (kGridBatched); 0 picks the
  // default. Grid streaming cells (~256 points) are fatter than R-tree
  // leaf pages and multiplexing a fetched cell is cheap in-memory work,
  // so the sweet spot sits above the ANN group size: 16 roughly halves
  // the fetch count again versus groups of 8 at |Q|=100, |P|=10k.
  std::size_t batch_group_size = 0;
  // How RIA/NIA/IDA (and the greedy baseline) discover spatial candidates.
  DiscoveryBackend discovery_backend = DiscoveryBackend::kAuto;
  // Grid backend resolution for NN *streaming*: average customers per
  // cell; <= 0 falls back to a coarse default (~256/cell — fat cells
  // amortise cursor fetches the way R-tree leaf pages do). Deliberately
  // named apart from SspaConfig::grid_target_per_cell, whose <= 0 means
  // density auto-tuning toward *fine* relax-pruning cells.
  double grid_stream_target_per_cell = 0.0;
  // IDA only: enable the full-provider distance lift in pending-edge keys.
  // Disabling it reduces IDA's bound to NIA's (ablation switch).
  bool ida_distance_lift = true;
  // Prebuilt grid for the kGrid/kGridBatched backends, owned by the caller
  // (the runtime's SharedIndex builds one per customer set and shares it
  // across concurrent queries). Must cover the same points the solver is
  // given, at the resolution grid_stream_target_per_cell would produce;
  // null means each solve builds (and owns) a private grid. The grid is
  // read-only during solves, so sharing is safe.
  const UniformGrid* shared_stream_grid = nullptr;
  // kGrid only: serve the NN streams from a two-level HierarchicalGrid
  // (geo/hier_grid.h) instead of the flat streaming grid — coarse cells
  // park their occupied children on a mindist heap and a fine cell is
  // materialised only when its bound is due, so dense far-away regions are
  // never opened (src/geo/README.md). The stream stays exact and ordered
  // identically; only the fetch ledger changes. Default OFF so the
  // paper-figure trajectories keep their flat-grid ledgers; kGridBatched
  // ignores the flag (the SharedFrontier multiplexer is flat-cell keyed).
  bool use_hierarchy = false;
  // Prebuilt hierarchical stream grid, same ownership contract as
  // shared_stream_grid.
  const HierarchicalGrid* shared_stream_hier = nullptr;
};

struct ExactResult {
  Matching matching;
  Metrics metrics;
};

// Range Incremental Algorithm (paper Algorithm 2).
ExactResult SolveRia(const Problem& problem, CustomerDb* db, const ExactConfig& config = {});

// Nearest Neighbor Incremental Algorithm (paper Algorithm 3).
ExactResult SolveNia(const Problem& problem, CustomerDb* db, const ExactConfig& config = {});

// Incremental On-demand Algorithm (paper Algorithm 4); the best exact
// method in the paper's evaluation and the engine behind SA/CA concise
// matching.
ExactResult SolveIda(const Problem& problem, CustomerDb* db, const ExactConfig& config = {});

}  // namespace cca

#endif  // CCA_CORE_EXACT_H_
