// Nearest Neighbor Incremental Algorithm (NIA), paper Algorithm 3.
//
// Esub grows one edge at a time, always the globally shortest undiscovered
// provider->customer edge (incremental NN streams merged by length). A
// computed shortest path is accepted once its real cost is at most the
// shortest pending edge: any path through an undiscovered edge costs at
// least that edge's length (Theorem 1 under the fixed-source convention).
#include <cassert>
#include <limits>

#include "common/timer.h"
#include "core/engine.h"
#include "core/exact.h"
#include "core/frontier.h"

namespace cca {

ExactResult SolveNia(const Problem& problem, CustomerDb* db, const ExactConfig& config) {
  ExactResult result;
  Timer timer;
  IoScope io(db, &result.metrics);

  IncrementalEngine::Config engine_config;
  engine_config.use_pua = config.use_pua;
  engine_config.unit_edges = problem.weights.empty();
  IncrementalEngine engine(problem, engine_config, &result.metrics);

  auto source = MakeNnSource(db, problem, config, &result.metrics);
  EdgeFrontier frontier(problem, source.get(), &result.metrics);
  const auto zero_lift = [](int) { return 0.0; };

  while (!engine.Done()) {
    // One iteration: keep de-heaping pending edges into Esub until the
    // sub-graph shortest path is certified valid, then augment it.
    while (true) {
      const auto [q, key] = frontier.MinKey(zero_lift);
      (void)key;
      if (q >= 0) {
        const EdgeFrontier::Candidate cand = frontier.at(q);
        engine.InsertEdge(q, cand.cust, cand.dist);
        frontier.Advance(q);
      }
      const double d = engine.ComputeShortestPath();
      const double bound = frontier.MinKey(zero_lift).second;  // TopKey(H)
      if (d <= bound + 1e-9) {
        assert(d < std::numeric_limits<double>::infinity());
        engine.AcceptPath();
        break;
      }
      ++result.metrics.invalid_paths;
      assert(q >= 0 && "subgraph exhausted but path still invalid");
    }
  }

  result.matching = engine.BuildMatching();
  io.Finish();
  result.metrics.cpu_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace cca
