// Disk-resident customer set: the R-tree plus raw point access.
//
// Mirrors the paper's setting (Section 3): Q fits in memory, P lives in an
// R-tree on disk behind a small LRU buffer. All exact and approximate
// solvers take a CustomerDb; I/O metrics are read off it with snapshots.
#ifndef CCA_CORE_CUSTOMER_DB_H_
#define CCA_CORE_CUSTOMER_DB_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "geo/point.h"
#include "rtree/rtree.h"

namespace cca {

class CustomerDb {
 public:
  struct Options {
    RTree::Options rtree;
    // LRU buffer size as a fraction of the tree (paper: 1%). Values >= 1
    // effectively cache the whole tree (used for in-memory concise runs).
    double buffer_fraction = 0.01;
    // Lower bound on the buffer size in pages. Scaled-down experiments
    // keep the paper's 1% fraction but would otherwise end up with a
    // 1-2 page buffer that cannot even hold the root path.
    std::uint32_t min_buffer_pages = 1;
  };

  // Bulk loads the R-tree and sizes the buffer; oids equal point indices.
  explicit CustomerDb(const std::vector<Point>& points);
  CustomerDb(const std::vector<Point>& points, const Options& options);

  RTree* tree() { return tree_.get(); }
  const std::vector<Point>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }

  // I/O counters (monotone; callers snapshot-diff around a phase).
  std::uint64_t page_faults() const { return tree_->buffer().stats().faults; }
  std::uint64_t node_accesses() const { return tree_->node_accesses(); }

  // Clears the buffer so a subsequent run starts cold.
  void CoolDown() { tree_->buffer().Clear(); }

  // Faults every page into the buffer (only sensible when the buffer holds
  // the whole tree); used for the in-memory concise-matching phase of CA.
  void Prewarm();

 private:
  std::vector<Point> points_;
  std::unique_ptr<RTree> tree_;
};

// Snapshot-diff helper: accumulates the I/O performed during its lifetime
// into a Metrics bundle on Finish().
class IoScope {
 public:
  IoScope(CustomerDb* db, Metrics* metrics)
      : db_(db), metrics_(metrics), faults_(db->page_faults()), nodes_(db->node_accesses()) {}

  void Finish() {
    if (db_ == nullptr) return;
    metrics_->page_faults += db_->page_faults() - faults_;
    const std::uint64_t nodes = db_->node_accesses() - nodes_;
    metrics_->node_accesses += nodes;
    // R-tree nodes count toward the backend-neutral index-access total
    // (grid backends add their cursor cells to the same counter).
    metrics_->index_node_accesses += nodes;
    db_ = nullptr;
  }

  ~IoScope() { Finish(); }

 private:
  CustomerDb* db_;
  Metrics* metrics_;
  std::uint64_t faults_;
  std::uint64_t nodes_;
};

}  // namespace cca

#endif  // CCA_CORE_CUSTOMER_DB_H_
