// Disk-resident customer set: the R-tree plus raw point access.
//
// Mirrors the paper's setting (Section 3): Q fits in memory, P lives in an
// R-tree on disk behind a small LRU buffer. All exact and approximate
// solvers take a CustomerDb; I/O metrics are attributed per query through
// thread-local tallies (IoScope below), so concurrent queries over one
// shared tree each see exactly their own accesses and faults.
#ifndef CCA_CORE_CUSTOMER_DB_H_
#define CCA_CORE_CUSTOMER_DB_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "geo/point.h"
#include "rtree/rtree.h"

namespace cca {

class CustomerDb {
 public:
  struct Options {
    RTree::Options rtree;
    // LRU buffer size as a fraction of the tree (paper: 1%). Values >= 1
    // effectively cache the whole tree (used for in-memory concise runs).
    double buffer_fraction = 0.01;
    // Lower bound on the buffer size in pages. Scaled-down experiments
    // keep the paper's 1% fraction but would otherwise end up with a
    // 1-2 page buffer that cannot even hold the root path.
    std::uint32_t min_buffer_pages = 1;
  };

  // Bulk loads the R-tree and sizes the buffer; oids equal point indices.
  explicit CustomerDb(const std::vector<Point>& points);
  CustomerDb(const std::vector<Point>& points, const Options& options);

  RTree* tree() { return tree_.get(); }
  const std::vector<Point>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }

  // Global I/O counters (monotone, shared across all queries). Per-query
  // attribution goes through IoScope; these remain for whole-run totals.
  std::uint64_t page_faults() const { return tree_->buffer().stats().faults; }
  std::uint64_t node_accesses() const { return tree_->node_accesses(); }

  // Clears the buffer so a subsequent run starts cold.
  void CoolDown() { tree_->buffer().Clear(); }

  // Faults every page into the buffer (only sensible when the buffer holds
  // the whole tree); used for the in-memory concise-matching phase of CA.
  void Prewarm();

 private:
  std::vector<Point> points_;
  std::unique_ptr<RTree> tree_;
};

// Accumulates the R-tree I/O performed by *this thread* during the scope's
// lifetime into a Metrics bundle on Finish(). Built on ScopedIoTally, so
// unlike a snapshot-diff of the tree's global counters it stays exact when
// other threads traverse the same tree concurrently. Scopes nest (outer
// scopes include inner scopes' work) but must be finished in LIFO order on
// the thread that created them.
class IoScope {
 public:
  IoScope(CustomerDb* db, Metrics* metrics)
      : metrics_(metrics), scope_(db != nullptr ? db->tree() : nullptr, &tally_) {}

  void Finish() {
    scope_.Detach();
    if (metrics_ == nullptr) return;
    metrics_->page_faults += tally_.page_faults;
    metrics_->node_accesses += tally_.node_accesses;
    // R-tree nodes count toward the backend-neutral index-access total
    // (grid backends add their cursor cells to the same counter).
    metrics_->index_node_accesses += tally_.node_accesses;
    metrics_ = nullptr;
  }

  ~IoScope() { Finish(); }

  IoScope(const IoScope&) = delete;
  IoScope& operator=(const IoScope&) = delete;

 private:
  Metrics* metrics_;
  RTreeIoTally tally_;
  ScopedIoTally scope_;
};

}  // namespace cca

#endif  // CCA_CORE_CUSTOMER_DB_H_
