#include "core/matching.h"

#include <cmath>
#include <cstdio>

namespace cca {

double Matching::cost() const {
  double total = 0.0;
  for (const auto& pair : pairs) total += pair.distance * pair.units;
  return total;
}

std::int64_t Matching::size() const {
  std::int64_t total = 0;
  for (const auto& pair : pairs) total += pair.units;
  return total;
}

std::vector<std::int64_t> Matching::ProviderLoads(std::size_t num_providers) const {
  std::vector<std::int64_t> loads(num_providers, 0);
  for (const auto& pair : pairs) loads[static_cast<std::size_t>(pair.provider)] += pair.units;
  return loads;
}

std::vector<std::int64_t> Matching::CustomerLoads(std::size_t num_customers) const {
  std::vector<std::int64_t> loads(num_customers, 0);
  for (const auto& pair : pairs) loads[static_cast<std::size_t>(pair.customer)] += pair.units;
  return loads;
}

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool ValidateMatching(const Problem& problem, const Matching& matching, std::string* error) {
  const auto nq = problem.providers.size();
  const auto np = problem.customers.size();
  for (const auto& pair : matching.pairs) {
    if (pair.provider < 0 || static_cast<std::size_t>(pair.provider) >= nq) {
      return Fail(error, "pair references an unknown provider");
    }
    if (pair.customer < 0 || static_cast<std::size_t>(pair.customer) >= np) {
      return Fail(error, "pair references an unknown customer");
    }
    if (pair.units <= 0) return Fail(error, "pair with non-positive units");
    const double actual = Distance(problem.providers[static_cast<std::size_t>(pair.provider)].pos,
                                   problem.customers[static_cast<std::size_t>(pair.customer)]);
    if (std::abs(actual - pair.distance) > 1e-6) {
      return Fail(error, "stored pair distance disagrees with geometry");
    }
  }
  const auto q_loads = matching.ProviderLoads(nq);
  for (std::size_t i = 0; i < nq; ++i) {
    if (q_loads[i] > problem.providers[i].capacity) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "provider %zu exceeds capacity", i);
      return Fail(error, buf);
    }
  }
  const auto p_loads = matching.CustomerLoads(np);
  for (std::size_t j = 0; j < np; ++j) {
    if (p_loads[j] > problem.weight(j)) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "customer %zu assigned more than its weight", j);
      return Fail(error, buf);
    }
  }
  if (matching.size() != problem.Gamma()) {
    return Fail(error, "matching size differs from gamma (not maximum)");
  }
  return true;
}

}  // namespace cca
