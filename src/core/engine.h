// Incremental SSPA engine: the shared machinery of RIA, NIA and IDA.
//
// The engine maintains the growing flow subgraph Esub (paper Section 3),
// runs reduced-cost Dijkstra over it, augments accepted shortest paths, and
// keeps node potentials consistent. The exact algorithms differ only in how
// they *discover* edges (range searches vs. incremental NN) and in the
// Theorem-1 bound they test shortest paths against; both concerns live in
// the per-algorithm drivers (ria.cc / nia.cc / ida.cc).
//
// Potential convention (DESIGN.md Section 3.1): tau(s) = tau(t) = 0 are
// never updated, so the reduced cost of an s~>t path equals its *real*
// cost. Consequences used throughout:
//   * ComputeShortestPath() returns the true incremental cost of the next
//     assignment, which is monotonically non-decreasing across accepted
//     augmentations (classic SSPA lemma);
//   * the Theorem-1 validity test for RIA/NIA simplifies to
//     "path cost <= minimum unexplored edge length", with no tau_max slack;
//   * for IDA, ProviderBound(q) returns a certified lower bound on the
//     real distance from the source to q, so "path cost <= bound(q) +
//     dist(q, next NN of q)" is a sound acceptance test that dominates the
//     paper's tau_max-based test.
//
// The engine also implements:
//   * the Theorem-2 fast path (FastAssign): while no provider is full,
//     assignments are made directly from edge pops without Dijkstra, with
//     potentials maintained lazily in closed form;
//   * PUA (paper Algorithm 5): inserting an edge into a live Dijkstra run
//     repairs distances with a decrease-key cascade and resumes, instead of
//     recomputing from scratch (switchable via Config::use_pua);
//   * weighted customers (sink capacities > 1) with bottleneck multi-unit
//     augmentation, required by the CA concise matching (Section 4.2).
#ifndef CCA_CORE_ENGINE_H_
#define CCA_CORE_ENGINE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/indexed_heap.h"
#include "common/metrics.h"
#include "core/matching.h"
#include "core/problem.h"

namespace cca {

class IncrementalEngine {
 public:
  struct Config {
    // Reuse Dijkstra state across edge insertions within one iteration
    // (paper Section 3.4.1). Off = recompute from scratch each time.
    bool use_pua = true;
    // Provider->customer edges have capacity 1 (the exact CCA setting).
    // False leaves them node-bounded, as needed for weighted customers.
    bool unit_edges = true;
  };

  IncrementalEngine(const Problem& problem, const Config& config, Metrics* metrics);

  // --- subgraph growth ------------------------------------------------------

  // Adds e(q, customer) with length `dist` to Esub and returns its edge id.
  // If a Dijkstra run is live and PUA is enabled, the run is repaired in
  // place; otherwise the next ComputeShortestPath() starts fresh.
  int InsertEdge(int provider, int customer, double dist);

  // --- Theorem-2 fast path --------------------------------------------------

  // True while no provider is full and no Dijkstra has run yet; in this
  // state IDA assigns by popping globally-shortest edges (Theorem 2).
  bool fast_mode() const { return fast_mode_; }

  // Directly assigns through edge `edge_id` (which the caller must have
  // just popped as the globally shortest pending edge, and inserted).
  // Returns the number of units assigned (0 if the customer is already
  // saturated). May end the fast phase if the provider becomes full.
  std::int64_t FastAssign(int edge_id);

  // --- general phase --------------------------------------------------------

  // Shortest s~>t path cost on the current subgraph (+inf if the sink is
  // unreachable). Resumes a live repaired run when possible.
  double ComputeShortestPath();

  // Augments the last computed path (must be finite) and updates
  // potentials; ends the current run.
  void AcceptPath();

  // --- bound queries (Theorem-1 tests) ---------------------------------------

  // Certified lower bound on the real distance from the source to provider
  // q in the *current* residual graph: 0 for non-full providers, else
  // derived from the latest Dijkstra run. Adding dist(q, p) lower-bounds
  // the cost of any path through an unexplored edge out of q.
  double ProviderBound(int provider) const;

  bool IsProviderFull(int provider) const;
  bool AnyProviderFull() const { return full_count_ > 0; }
  // Units still assignable to `customer` (weight - current sink flow).
  std::int64_t CustomerResidual(int customer) const;
  bool IsCustomerSaturated(int customer) const { return CustomerResidual(customer) == 0; }

  std::int64_t assigned() const { return assigned_; }
  std::int64_t gamma() const { return gamma_; }
  bool Done() const { return assigned_ >= gamma_; }

  // Maximum provider potential; reported in metrics and used by tests.
  double tau_max() const { return tau_max_; }

  // --- results ----------------------------------------------------------------

  Matching BuildMatching() const;

  // Test hook: verifies that every residual edge has non-negative reduced
  // cost (the invariant all correctness rests on).
  bool CheckReducedCosts(std::string* error) const;

  // Test hooks exposing the node potentials (used to replay the paper's
  // Figure 3 walk-through step by step).
  double DebugProviderTau(int provider) const { return TauQ(provider); }
  double DebugCustomerTau(int customer) const;
  // Real cost of the most recent accepted augmenting path.
  double last_path_cost() const { return last_d_; }

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  struct EdgeRec {
    std::int32_t provider;
    std::int32_t cust;  // local customer index
    double dist;
    std::int64_t flow;
  };

  struct CustState {
    std::int32_t global_id;
    std::int32_t weight;
    std::int64_t sink_flow = 0;
    double tau = 0.0;
    // Length of the shortest forward-residual incident edge; drives the
    // closed-form lazy potential during the fast phase.
    double min_fwd = kInf;
    std::vector<std::int32_t> edges;
  };

  // Node ids: 0 = sink, 1..nq = providers, nq+1+i = local customer i.
  int SinkNode() const { return 0; }
  int ProviderNode(int q) const { return 1 + q; }
  int CustomerNode(int c) const { return 1 + static_cast<int>(nq_) + c; }
  bool IsProviderNode(int node) const { return node >= 1 && node <= static_cast<int>(nq_); }
  int ProviderOf(int node) const { return node - 1; }
  int CustomerOf(int node) const { return node - 1 - static_cast<int>(nq_); }

  double TauQ(int q) const { return tau_q_offset_ + tau_q_delta_[static_cast<std::size_t>(q)]; }
  std::int64_t EdgeCap(const EdgeRec& e) const;
  double ReducedForward(const EdgeRec& e) const;
  double ReducedBackward(const EdgeRec& e) const;

  int LocalCustomer(int global_id);  // materialises on demand
  void GrowNodeArrays();

  // Switches from the lazy fast phase to eager potentials.
  void EnsureGeneralMode();
  void RecomputeMinFwd(CustState* cust);

  // Dijkstra internals.
  void StartFreshRun();
  void ExpandNode(int node);
  void RelaxInto(int node, double cand, int from_node, int via_edge);
  void RunMainLoop();
  void RepairAfterInsert(int edge_id);

  const Problem& problem_;
  Config config_;
  Metrics* metrics_;

  std::size_t nq_;
  bool unit_;
  std::int64_t gamma_;
  std::int64_t assigned_ = 0;

  // Providers.
  std::vector<std::int64_t> used_;
  std::vector<double> tau_q_delta_;
  double tau_q_offset_ = 0.0;
  int full_count_ = 0;
  double tau_max_ = 0.0;

  // Customers (materialised lazily).
  std::vector<CustState> custs_;
  std::unordered_map<std::int32_t, std::int32_t> cust_index_;

  std::vector<EdgeRec> edges_;
  std::vector<std::vector<std::int32_t>> q_adj_;

  // Fast phase bookkeeping.
  bool fast_mode_ = true;
  double last_d_ = 0.0;  // most recent accepted path cost (monotone)

  // Dijkstra state (epoch-stamped, sized to node count).
  std::vector<double> alpha_;
  std::vector<std::int32_t> prev_node_;
  std::vector<std::int32_t> prev_edge_;
  std::vector<std::uint32_t> pop_epoch_;
  std::vector<std::uint32_t> touch_epoch_;
  std::vector<int> touched_;  // nodes popped this run (for potential updates)
  std::uint32_t epoch_ = 0;
  IndexedHeap hd_;  // main Dijkstra heap
  IndexedHeap hf_;  // PUA repair heap
  double sink_alpha_ = kInf;
  int sink_prev_cust_ = -1;  // customer node feeding the sink
  bool run_live_ = false;
  bool repair_mode_ = false;  // PUA cascade in progress
};

}  // namespace cca

#endif  // CCA_CORE_ENGINE_H_
