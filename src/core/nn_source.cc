#include "core/nn_source.h"

namespace cca {

PlainNnSource::PlainNnSource(RTree* tree, const std::vector<Provider>& providers) {
  iterators_.reserve(providers.size());
  for (const auto& q : providers) iterators_.emplace_back(tree, q.pos);
}

std::optional<RTree::Hit> PlainNnSource::NextNN(int q) {
  return iterators_[static_cast<std::size_t>(q)].Next();
}

GroupedNnSource::GroupedNnSource(RTree* tree, const std::vector<Provider>& providers,
                                 std::size_t max_group_size, const Rect& world) {
  std::vector<Point> positions;
  positions.reserve(providers.size());
  for (const auto& q : providers) positions.push_back(q.pos);
  const auto groups = FormHilbertGroups(positions, max_group_size, world);
  searcher_ = std::make_unique<GroupAnnSearcher>(tree, positions, groups);
}

std::optional<RTree::Hit> GroupedNnSource::NextNN(int q) { return searcher_->NextNN(q); }

std::unique_ptr<NnSource> MakeNnSource(RTree* tree, const std::vector<Provider>& providers,
                                       bool use_ann_grouping, std::size_t max_group_size,
                                       const Rect& world) {
  if (use_ann_grouping && providers.size() > 1) {
    return std::make_unique<GroupedNnSource>(tree, providers, max_group_size, world);
  }
  return std::make_unique<PlainNnSource>(tree, providers);
}

}  // namespace cca
