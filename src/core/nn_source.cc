#include "core/nn_source.h"

#include <vector>

#include "core/customer_db.h"
#include "geo/grid.h"
#include "geo/grid_cursor.h"
#include "geo/hier_grid.h"
#include "geo/shared_frontier.h"
#include "rtree/ann_iterator.h"
#include "rtree/nn_iterator.h"
#include "rtree/rtree.h"

namespace cca {
namespace {

// Coarse default resolution for NN streaming: unlike the SSPA relax (which
// wants fine cells for pruning granularity), an NN cursor keeps every
// fetched point in its candidate heap, so fat cells simply amortise the
// per-fetch cost — one fetch is one contiguous SoA scan, the grid analogue
// of reading an R-tree leaf page.
constexpr double kNnStreamTargetPerCell = 256.0;

// Default SharedFrontier group size (ExactConfig::batch_group_size == 0).
constexpr std::size_t kBatchGroupSize = 16;

std::optional<NnSource::Hit> FromRTreeHit(const std::optional<RTree::Hit>& hit) {
  if (!hit) return std::nullopt;
  return NnSource::Hit{static_cast<std::int32_t>(hit->oid), hit->dist};
}

// One independent best-first NN iterator per provider.
class PlainNnSource : public NnSource {
 public:
  PlainNnSource(RTree* tree, const std::vector<Provider>& providers) {
    iterators_.reserve(providers.size());
    for (const auto& q : providers) iterators_.emplace_back(tree, q.pos);
  }

  std::optional<Hit> NextNN(int q) override {
    return FromRTreeHit(iterators_[static_cast<std::size_t>(q)].Next());
  }

  double PeekDistance(int q) override {
    return iterators_[static_cast<std::size_t>(q)].PeekDistance();
  }

 private:
  std::vector<NnIterator> iterators_;
};

// Hilbert-grouped shared traversal (paper Algorithm 6).
class GroupedNnSource : public NnSource {
 public:
  GroupedNnSource(RTree* tree, const std::vector<Provider>& providers,
                  std::size_t max_group_size, const Rect& world) {
    std::vector<Point> positions;
    positions.reserve(providers.size());
    for (const auto& q : providers) positions.push_back(q.pos);
    const auto groups = FormHilbertGroups(positions, max_group_size, world);
    searcher_ = std::make_unique<GroupAnnSearcher>(tree, positions, groups);
  }

  std::optional<Hit> NextNN(int q) override { return FromRTreeHit(searcher_->NextNN(q)); }

  double PeekDistance(int q) override { return searcher_->PeekDistance(q); }

 private:
  std::unique_ptr<GroupAnnSearcher> searcher_;
};

// Grid ring cursors over the memory-resident customer array. The grid is
// either borrowed (a caller-owned shared immutable grid, so concurrent
// queries skip the per-solve build) or built and owned here.
class GridNnSource : public NnSource {
 public:
  GridNnSource(const std::vector<Point>& customers, const std::vector<Provider>& providers,
               double target_per_cell, const UniformGrid* shared_grid, Metrics* metrics)
      : owned_grid_(shared_grid != nullptr
                        ? nullptr
                        : std::make_unique<UniformGrid>(customers, target_per_cell)),
        grid_(shared_grid != nullptr ? shared_grid : owned_grid_.get()),
        metrics_(metrics) {
    cursors_.reserve(providers.size());
    for (const auto& q : providers) cursors_.emplace_back(*grid_, q.pos);
  }

  // Runs `op` and charges any cells it fetched to the metrics bundle —
  // the single place grid cursor work is accounted. (Defined before its
  // uses: in-class `auto` return deduction needs the body first.)
  template <typename Op>
  auto Charged(GridNnCursor* cursor, Op&& op) {
    const std::uint64_t before = cursor->cells_visited();
    auto result = op();
    if (metrics_ != nullptr) {
      const std::uint64_t cells = cursor->cells_visited() - before;
      metrics_->grid_cursor_cells += cells;
      metrics_->index_node_accesses += cells;
    }
    return result;
  }

  std::optional<Hit> NextNN(int q) override {
    GridNnCursor& cursor = cursors_[static_cast<std::size_t>(q)];
    const auto next = Charged(&cursor, [&] { return cursor.Next(); });
    if (!next) return std::nullopt;
    return Hit{next->first, next->second};
  }

  double PeekDistance(int q) override {
    GridNnCursor& cursor = cursors_[static_cast<std::size_t>(q)];
    return Charged(&cursor, [&] { return cursor.PeekDistance(); });
  }

 private:
  std::unique_ptr<UniformGrid> owned_grid_;  // null when borrowing
  const UniformGrid* grid_;
  Metrics* metrics_;
  std::vector<GridNnCursor> cursors_;
};

// Hierarchical flavour of GridNnSource: HierNnCursor streams (coarse ring
// cursor + fine-cell bound heap) over a two-level grid built at the same
// streaming resolution (fine cells at the stream target, coarse cells 16x
// fatter). Exact and ordered identically to GridNnSource; `cells_visited`
// counts fine materialisations, the ledger unit comparable to flat cell
// fetches.
class HierGridNnSource : public NnSource {
 public:
  HierGridNnSource(const std::vector<Point>& customers, const std::vector<Provider>& providers,
                   double target_per_cell, const HierarchicalGrid* shared_hier, Metrics* metrics)
      : metrics_(metrics) {
    if (shared_hier != nullptr) {
      grid_ = shared_hier;
    } else {
      HierarchicalGrid::Options opts;
      opts.fine_target_per_cell = target_per_cell;
      opts.coarse_target_per_cell = 16.0 * target_per_cell;
      owned_grid_ = std::make_unique<HierarchicalGrid>(customers, opts);
      grid_ = owned_grid_.get();
    }
    cursors_.reserve(providers.size());
    for (const auto& q : providers) cursors_.emplace_back(*grid_, q.pos);
  }

  // Mirrors GridNnSource::Charged (defined before its uses: in-class
  // `auto` deduction needs the body first).
  template <typename Op>
  auto Charged(HierNnCursor* cursor, Op&& op) {
    const std::uint64_t before = cursor->cells_visited();
    auto result = op();
    if (metrics_ != nullptr) {
      const std::uint64_t cells = cursor->cells_visited() - before;
      metrics_->grid_cursor_cells += cells;
      metrics_->index_node_accesses += cells;
    }
    return result;
  }

  std::optional<Hit> NextNN(int q) override {
    HierNnCursor& cursor = cursors_[static_cast<std::size_t>(q)];
    const auto next = Charged(&cursor, [&] { return cursor.Next(); });
    if (!next) return std::nullopt;
    return Hit{next->first, next->second};
  }

  double PeekDistance(int q) override {
    HierNnCursor& cursor = cursors_[static_cast<std::size_t>(q)];
    return Charged(&cursor, [&] { return cursor.PeekDistance(); });
  }

 private:
  std::unique_ptr<HierarchicalGrid> owned_grid_;  // null when borrowing
  const HierarchicalGrid* grid_ = nullptr;
  Metrics* metrics_;
  std::vector<HierNnCursor> cursors_;
};

// Hilbert-grouped shared frontiers over the grid: one SharedFrontier per
// group of adjacent providers (FormHilbertGroups, the same run-length
// grouping the ANN backend uses). Every cell a group fetches is charged
// once and multiplexed to all members, so nearby providers popped at
// similar keys stop re-fetching each other's cells.
class BatchedGridSource : public NnSource {
 public:
  BatchedGridSource(const std::vector<Point>& customers, const std::vector<Provider>& providers,
                    double target_per_cell, std::size_t max_group_size, const Rect& world,
                    const UniformGrid* shared_grid, Metrics* metrics)
      : owned_grid_(shared_grid != nullptr
                        ? nullptr
                        : std::make_unique<UniformGrid>(customers, target_per_cell)),
        grid_(shared_grid != nullptr ? shared_grid : owned_grid_.get()),
        metrics_(metrics) {
    std::vector<Point> positions;
    positions.reserve(providers.size());
    for (const auto& q : providers) positions.push_back(q.pos);
    const auto groups = FormHilbertGroups(positions, max_group_size, world);
    member_of_.resize(providers.size());
    frontiers_.reserve(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      std::vector<Point> members;
      members.reserve(groups[g].size());
      for (const int idx : groups[g]) {
        member_of_[static_cast<std::size_t>(idx)] = {static_cast<int>(g),
                                                     static_cast<int>(members.size())};
        members.push_back(positions[static_cast<std::size_t>(idx)]);
      }
      frontiers_.push_back(std::make_unique<SharedFrontier>(*grid_, members));
    }
  }

  // Runs `op` and charges the cells it fetched (and the deliveries it
  // produced) to the metrics bundle, mirroring GridNnSource::Charged
  // (defined before its uses: in-class `auto` deduction needs the body
  // first).
  template <typename Op>
  auto Charged(SharedFrontier& frontier, Op&& op) {
    const SharedFrontierStats before = frontier.stats();
    auto result = op(frontier);
    if (metrics_ != nullptr) {
      const SharedFrontierStats& after = frontier.stats();
      const std::uint64_t fetches = after.cell_fetches - before.cell_fetches;
      metrics_->grid_cursor_cells += fetches;
      metrics_->index_node_accesses += fetches;
      metrics_->shared_frontier_cell_fetches += fetches;
      metrics_->shared_frontier_fanout += after.fanout - before.fanout;
    }
    return result;
  }

  std::optional<Hit> NextNN(int q) override {
    const auto [g, m] = member_of_[static_cast<std::size_t>(q)];
    const auto next = Charged(*frontiers_[static_cast<std::size_t>(g)],
                              [&](SharedFrontier& f) { return f.NextNN(m); });
    if (!next) return std::nullopt;
    return Hit{next->first, next->second};
  }

  double PeekDistance(int q) override {
    const auto [g, m] = member_of_[static_cast<std::size_t>(q)];
    return Charged(*frontiers_[static_cast<std::size_t>(g)],
                   [&](SharedFrontier& f) { return f.PeekDistance(m); });
  }

  void Retire(int q) override {
    const auto [g, m] = member_of_[static_cast<std::size_t>(q)];
    frontiers_[static_cast<std::size_t>(g)]->Unsubscribe(m);
  }

 private:
  struct MemberRef {
    int group = 0;
    int member = 0;
  };

  std::unique_ptr<UniformGrid> owned_grid_;  // null when borrowing
  const UniformGrid* grid_;
  Metrics* metrics_;
  std::vector<MemberRef> member_of_;
  std::vector<std::unique_ptr<SharedFrontier>> frontiers_;
};

}  // namespace

DiscoveryBackend ResolveDiscoveryBackend(const ExactConfig& config, std::size_t num_providers) {
  if (config.discovery_backend != DiscoveryBackend::kAuto) return config.discovery_backend;
  return (config.use_ann_grouping && num_providers > 1) ? DiscoveryBackend::kRTreeGrouped
                                                        : DiscoveryBackend::kRTreePlain;
}

double ResolveGridTargetPerCell(const ExactConfig& config) {
  return config.grid_stream_target_per_cell > 0.0 ? config.grid_stream_target_per_cell
                                                  : kNnStreamTargetPerCell;
}

std::unique_ptr<NnSource> MakeNnSource(CustomerDb* db, const Problem& problem,
                                       const ExactConfig& config, Metrics* metrics) {
  switch (ResolveDiscoveryBackend(config, problem.providers.size())) {
    case DiscoveryBackend::kGrid:
      if (config.use_hierarchy) {
        return std::make_unique<HierGridNnSource>(db->points(), problem.providers,
                                                  ResolveGridTargetPerCell(config),
                                                  config.shared_stream_hier, metrics);
      }
      return std::make_unique<GridNnSource>(db->points(), problem.providers,
                                            ResolveGridTargetPerCell(config),
                                            config.shared_stream_grid, metrics);
    case DiscoveryBackend::kGridBatched:
      return std::make_unique<BatchedGridSource>(
          db->points(), problem.providers, ResolveGridTargetPerCell(config),
          config.batch_group_size > 0 ? config.batch_group_size : kBatchGroupSize,
          problem.World(), config.shared_stream_grid, metrics);
    case DiscoveryBackend::kRTreeGrouped:
      return std::make_unique<GroupedNnSource>(db->tree(), problem.providers,
                                               config.ann_group_size, problem.World());
    default:
      return std::make_unique<PlainNnSource>(db->tree(), problem.providers);
  }
}

}  // namespace cca
