// Incremental On-demand Algorithm (IDA), paper Algorithm 4.
//
// Two improvements over NIA:
//  1. Theorem-2 fast path: while no provider is full, the shortest pending
//     edge to an unsaturated customer *is* the shortest augmenting path,
//     so assignments happen straight off the frontier without Dijkstra.
//  2. Full-provider distance lift: once a provider q is full, any path
//     through an undiscovered edge of q costs at least
//     realdist(q) + dist(q, p). Pending keys are lifted accordingly, which
//     both delays those edges' insertion and loosens the acceptance test
//     (paper Section 3.3; the engine certifies the lift, DESIGN.md 3.2).
#include <cassert>
#include <limits>

#include "common/timer.h"
#include "core/engine.h"
#include "core/exact.h"
#include "core/frontier.h"

namespace cca {

ExactResult SolveIda(const Problem& problem, CustomerDb* db, const ExactConfig& config) {
  ExactResult result;
  Timer timer;
  IoScope io(db, &result.metrics);

  IncrementalEngine::Config engine_config;
  engine_config.use_pua = config.use_pua;
  engine_config.unit_edges = problem.weights.empty();
  IncrementalEngine engine(problem, engine_config, &result.metrics);

  auto source = MakeNnSource(db, problem, config, &result.metrics);
  EdgeFrontier frontier(problem, source.get(), &result.metrics);
  const auto zero_lift = [](int) { return 0.0; };

  // Phase 1 (Theorem 2): direct assignments while no provider is full.
  // All pending keys equal plain edge lengths here.
  while (!engine.Done() && engine.fast_mode()) {
    const auto [q, key] = frontier.MinKey(zero_lift);
    (void)key;
    if (q < 0) break;
    const EdgeFrontier::Candidate cand = frontier.at(q);
    const int eid = engine.InsertEdge(q, cand.cust, cand.dist);
    frontier.Advance(q);
    if (engine.CustomerResidual(cand.cust) > 0) {
      const std::int64_t units = engine.FastAssign(eid);
      assert(units > 0);
      (void)units;
    }
    // Saturated customer: the edge merely joins Esub (it may carry flow in
    // later residual paths), exactly as Algorithm 4 lines 7-8 prescribe.
  }

  // Phase 2: NIA-style loop with lifted keys.
  const auto lift = [&](int q) {
    return config.ida_distance_lift ? engine.ProviderBound(q) : 0.0;
  };
  while (!engine.Done()) {
    while (true) {
      const auto [q, key] = frontier.MinKey(lift);
      (void)key;
      if (q >= 0) {
        const EdgeFrontier::Candidate cand = frontier.at(q);
        engine.InsertEdge(q, cand.cust, cand.dist);
        frontier.Advance(q);
      }
      const double d = engine.ComputeShortestPath();
      // Keys are re-evaluated against the freshly terminated run (the
      // paper's line 10-12 key refresh happens implicitly here).
      const double bound = frontier.MinKey(lift).second;
      if (d <= bound + 1e-9) {
        assert(d < std::numeric_limits<double>::infinity());
        engine.AcceptPath();
        break;
      }
      ++result.metrics.invalid_paths;
      assert(q >= 0 && "subgraph exhausted but path still invalid");
    }
  }

  result.matching = engine.BuildMatching();
  io.Finish();
  result.metrics.cpu_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace cca
