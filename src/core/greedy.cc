#include "core/greedy.h"

#include <algorithm>
#include <cassert>

#include "common/timer.h"
#include "core/frontier.h"
#include "core/nn_source.h"

namespace cca {

ExactResult SolveGreedySm(const Problem& problem, CustomerDb* db, const ExactConfig& config) {
  assert(problem.weights.empty() && "greedy SM baseline supports unit weights only");
  ExactResult result;
  Timer timer;
  IoScope io(db, &result.metrics);

  auto source = MakeNnSource(db, problem, config, &result.metrics);
  EdgeFrontier frontier(problem, source.get(), &result.metrics);
  const auto zero_lift = [](int) { return 0.0; };

  std::vector<std::int64_t> used(problem.providers.size(), 0);
  std::vector<char> assigned(problem.customers.size(), 0);
  std::int64_t remaining = problem.Gamma();

  while (remaining > 0) {
    const auto [q, key] = frontier.MinKey(zero_lift);
    (void)key;
    assert(q >= 0 && "NN streams exhausted before gamma reached");
    const EdgeFrontier::Candidate cand = frontier.at(q);
    const auto uq = static_cast<std::size_t>(q);
    if (!assigned[static_cast<std::size_t>(cand.cust)]) {
      // Commit the globally closest feasible pair -- the SM join step.
      assigned[static_cast<std::size_t>(cand.cust)] = 1;
      ++used[uq];
      --remaining;
      result.matching.Add(q, cand.cust, 1, cand.dist);
      ++result.metrics.augmentations;
    }
    if (used[uq] >= problem.providers[uq].capacity) {
      // Retire the provider: mark its stream exhausted by never advancing
      // it again; drop its pending candidate.
      frontier.Retire(q);
    } else {
      frontier.Advance(q);
    }
  }

  // Deterministic output order (by provider, then customer).
  std::sort(result.matching.pairs.begin(), result.matching.pairs.end(),
            [](const MatchPair& a, const MatchPair& b) {
              return a.provider != b.provider ? a.provider < b.provider
                                              : a.customer < b.customer;
            });
  io.Finish();
  result.metrics.cpu_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace cca
