// CCA problem instance: capacitated service providers Q and customers P.
#ifndef CCA_CORE_PROBLEM_H_
#define CCA_CORE_PROBLEM_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "geo/rect.h"

namespace cca {

struct Provider {
  Point pos;
  std::int32_t capacity = 1;  // q.k: how many customers q can serve
};

// Structure-of-arrays view of a point set. The hot solver loops (SSPA
// relaxations, grid cell scans) stream coordinates sequentially; splitting
// x and y into separate contiguous arrays lets the blocked distance kernel
// below vectorize instead of striding over Point pairs.
struct PointsSoA {
  std::vector<double> x;
  std::vector<double> y;

  PointsSoA() = default;
  explicit PointsSoA(const std::vector<Point>& points) { Assign(points); }

  void Assign(const std::vector<Point>& points);
  std::size_t size() const { return x.size(); }
  Point at(std::size_t i) const { return Point{x[i], y[i]}; }
};

// Blocked distance kernel: writes dist(q, (xs[i], ys[i])) into out[i] for
// i in [0, n). Plain contiguous loads + one sqrt per lane, so compilers
// auto-vectorize it (the library builds with -fno-math-errno to allow SIMD
// sqrt). Callers stream it over cell slices / kDistanceBlock-sized chunks.
inline constexpr std::size_t kDistanceBlock = 256;
void DistanceBlock(const Point& q, const double* xs, const double* ys, std::size_t n,
                   double* out);

// Fused distance + early-reject kernel (the SSPA relax hot path; contract
// documented in src/core/README.md). Lane i survives iff
//
//   dist(q, (xs[i], ys[i])) < cutoff - taus[i]
//
// evaluated entirely in *squared* space: the SIMD pass compares
// dx^2 + dy^2 against the signed square of cutoff - taus[i], so a
// non-positive per-lane threshold rejects for free (squared distances are
// >= 0 and the compare is strict). Surviving lane indices are compacted
// into idx[0..kept) (ascending), their *squared* distances into
// d2_out[0..kept), and `kept` is returned. No lane ever pays a sqrt here:
// the caller roots a survivor only after its own exact recheck against the
// current (not block-start) bound, so survivors doomed by a bound that
// tightened mid-block stay sqrt-free too. Requires n <= kDistanceBlock
// (callers chunk).
std::size_t DistanceBlockSelect(const Point& q, const double* xs, const double* ys,
                                const double* taus, std::size_t n, double cutoff,
                                std::int32_t* idx, double* d2_out);

// A CCA instance. Customers optionally carry integer weights: the exact
// problem uses unit weights, while the CA approximation (paper Section 4.2)
// solves a concise instance whose "customers" are group representatives
// weighted by group size.
struct Problem {
  std::vector<Provider> providers;  // Q (assumed to fit in memory)
  std::vector<Point> customers;     // P
  std::vector<std::int32_t> weights;  // per-customer; empty means all 1

  std::int32_t weight(std::size_t j) const {
    return weights.empty() ? 1 : weights[j];
  }

  std::int64_t TotalCapacity() const;
  std::int64_t TotalWeight() const;

  // Required matching size: gamma = min(total weight, total capacity)
  // (paper Section 1; equals min(|P|, sum q.k) for unit weights).
  std::int64_t Gamma() const;

  // Bounding box of all providers and customers.
  Rect World() const;

  // SoA snapshot of the customer coordinates (built on demand: Problem is a
  // mutable value type, so callers take the snapshot once per solve).
  PointsSoA CustomerCoords() const { return PointsSoA(customers); }
};

}  // namespace cca

#endif  // CCA_CORE_PROBLEM_H_
