// CCA problem instance: capacitated service providers Q and customers P.
#ifndef CCA_CORE_PROBLEM_H_
#define CCA_CORE_PROBLEM_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "geo/rect.h"

namespace cca {

struct Provider {
  Point pos;
  std::int32_t capacity = 1;  // q.k: how many customers q can serve
};

// A CCA instance. Customers optionally carry integer weights: the exact
// problem uses unit weights, while the CA approximation (paper Section 4.2)
// solves a concise instance whose "customers" are group representatives
// weighted by group size.
struct Problem {
  std::vector<Provider> providers;  // Q (assumed to fit in memory)
  std::vector<Point> customers;     // P
  std::vector<std::int32_t> weights;  // per-customer; empty means all 1

  std::int32_t weight(std::size_t j) const {
    return weights.empty() ? 1 : weights[j];
  }

  std::int64_t TotalCapacity() const;
  std::int64_t TotalWeight() const;

  // Required matching size: gamma = min(total weight, total capacity)
  // (paper Section 1; equals min(|P|, sum q.k) for unit weights).
  std::int64_t Gamma() const;

  // Bounding box of all providers and customers.
  Rect World() const;
};

}  // namespace cca

#endif  // CCA_CORE_PROBLEM_H_
