#include "core/approx.h"

#include <cassert>
#include <unordered_map>

#include "common/timer.h"
#include "core/partition.h"

namespace cca {

ApproxResult SolveSa(const Problem& problem, CustomerDb* db, const ApproxConfig& config) {
  assert(problem.weights.empty() && "SA expects the exact (unit-weight) problem");
  ApproxResult result;
  Timer timer;

  // --- partition phase (in memory; Q is small) ------------------------------
  const Rect world = problem.World();
  const auto groups = PartitionProviders(problem.providers, config.delta, world);
  result.num_groups = groups.size();

  // --- concise matching: representatives vs. the full customer set ----------
  Problem concise;
  concise.providers.reserve(groups.size());
  for (const auto& g : groups) {
    concise.providers.push_back(
        Provider{g.representative, static_cast<std::int32_t>(g.capacity)});
  }
  concise.customers = problem.customers;
  concise.weights = problem.weights;
  ExactResult ida = SolveIda(concise, db, config.exact);
  result.concise_cost = ida.matching.cost();
  result.metrics.Merge(ida.metrics);

  // --- refinement: per provider group, place its matched customers ----------
  std::vector<std::vector<RTree::Hit>> group_customers(groups.size());
  for (const auto& pair : ida.matching.pairs) {
    const auto g = static_cast<std::size_t>(pair.provider);
    const auto cust = static_cast<std::size_t>(pair.customer);
    group_customers[g].push_back(
        RTree::Hit{static_cast<std::uint32_t>(pair.customer), problem.customers[cust], 0.0});
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (group_customers[g].empty()) continue;
    RefineTask task;
    task.providers = groups[g].members;
    task.quotas.reserve(task.providers.size());
    for (int idx : task.providers) {
      task.quotas.push_back(problem.providers[static_cast<std::size_t>(idx)].capacity);
    }
    task.customers = std::move(group_customers[g]);
    RefineGroup(problem, task, config.refine, &result.matching);
  }

  result.metrics.cpu_millis = timer.ElapsedMillis();
  return result;
}

ApproxResult SolveCa(const Problem& problem, CustomerDb* db, const ApproxConfig& config) {
  assert(problem.weights.empty() && "CA expects the exact (unit-weight) problem");
  ApproxResult result;
  Timer timer;

  // --- partition phase: delta-descent over the customer R-tree --------------
  const Rect world = problem.World();
  IoScope partition_io(db, &result.metrics);
  const auto groups = PartitionCustomers(db->tree(), config.delta, world);
  partition_io.Finish();
  result.num_groups = groups.size();

  // --- concise matching: Q vs. weighted representatives, in memory ----------
  Problem concise;
  concise.providers = problem.providers;
  concise.customers.reserve(groups.size());
  concise.weights.reserve(groups.size());
  for (const auto& g : groups) {
    concise.customers.push_back(g.representative);
    concise.weights.push_back(static_cast<std::int32_t>(g.count));
  }
  CustomerDb::Options rep_options;
  rep_options.rtree = db->tree()->options();
  rep_options.buffer_fraction = 2.0;  // fully buffered: this phase is in-memory
  CustomerDb rep_db(concise.customers, rep_options);
  rep_db.Prewarm();
  ExactResult ida = SolveIda(concise, &rep_db, config.exact);
  result.concise_cost = ida.matching.cost();
  result.metrics.Merge(ida.metrics);

  // --- refinement: fetch each group's customers, honour per-provider units --
  std::vector<std::vector<std::pair<int, std::int64_t>>> group_quotas(groups.size());
  for (const auto& pair : ida.matching.pairs) {
    group_quotas[static_cast<std::size_t>(pair.customer)].push_back(
        {pair.provider, pair.units});
  }
  IoScope refine_io(db, &result.metrics);
  std::vector<RTree::Hit> members;
  std::vector<RTree::Hit> part_points;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (group_quotas[g].empty()) continue;
    RefineTask task;
    for (const auto& [provider, units] : group_quotas[g]) {
      task.providers.push_back(provider);
      task.quotas.push_back(units);
    }
    members.clear();
    for (const auto& part : groups[g].parts) {
      CollectPoints(db->tree(), part, &part_points);
      members.insert(members.end(), part_points.begin(), part_points.end());
    }
    task.customers = members;
    RefineGroup(problem, task, config.refine, &result.matching);
  }
  refine_io.Finish();

  result.metrics.cpu_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace cca
