// Synthetic road network used by the workload generator.
//
// The paper generates its datasets on the San Francisco road map with the
// Brinkhoff generator: every point lies on a network edge, 80% of the
// points concentrate in 10 dense clusters. We cannot ship that proprietary
// map, so we synthesise a comparable network: a jittered grid of junctions
// with mostly-rectilinear streets, a few diagonal connectors, and random
// street removals so the network is irregular but connected. See DESIGN.md
// Section 5 for the substitution rationale.
#ifndef CCA_GEN_ROAD_NETWORK_H_
#define CCA_GEN_ROAD_NETWORK_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "geo/rect.h"

namespace cca {

struct RoadNetwork {
  struct Edge {
    int a = 0;
    int b = 0;
    double length = 0.0;
  };

  std::vector<Point> junctions;
  std::vector<Edge> edges;
  Rect world;

  // Synthesises a `cols` x `rows` jittered grid network inside `world`.
  // `removal_prob` drops that fraction of grid streets (kept connected),
  // `diagonal_prob` adds diagonal connectors per cell.
  static RoadNetwork MakeGrid(int cols, int rows, const Rect& world, std::uint64_t seed,
                              double removal_prob = 0.15, double diagonal_prob = 0.2);

  // Point at parameter t in [0, 1] along edge `e`.
  Point PointOnEdge(int e, double t) const;

  double TotalLength() const;

  // Adjacency as edge indices per junction (built on demand by callers).
  std::vector<std::vector<int>> BuildAdjacency() const;

  // True if every junction is reachable from junction 0.
  bool IsConnected() const;
};

}  // namespace cca

#endif  // CCA_GEN_ROAD_NETWORK_H_
