// Workload generation matching the paper's evaluation setup (Section 5.1):
// points on a road network, either clustered (80% of the points in 10
// dense clusters, the rest uniform on the network) or uniform; the world
// is [0, 1000]^2; capacities are fixed or drawn from a range.
#ifndef CCA_GEN_GENERATOR_H_
#define CCA_GEN_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "core/problem.h"
#include "gen/road_network.h"

namespace cca {

enum class PointDistribution {
  kClustered,  // "C": 80% in 10 dense clusters + 20% uniform (paper default)
  kUniform,    // "U": uniform over the network
};

struct DatasetSpec {
  std::size_t count = 0;
  PointDistribution distribution = PointDistribution::kClustered;
  std::uint64_t seed = 1;
  int clusters = 10;
  double cluster_fraction = 0.8;
  // Cluster spread as a fraction of the world diagonal.
  double cluster_sigma = 0.03;
  // Seed for the cluster *centres*. 0 derives them from `seed`. Two specs
  // sharing a non-zero cluster_seed place their clusters on the same
  // hotspots (one "city"), which is what makes clustered-vs-clustered
  // inputs behave like similarly-distributed data (paper Figure 13/18).
  std::uint64_t cluster_seed = 0;
};

// The default evaluation world.
Rect DefaultWorld();

// A default road network on DefaultWorld() (deterministic per seed).
RoadNetwork DefaultNetwork(std::uint64_t seed = 42);

// Points on network edges, per `spec`.
std::vector<Point> GeneratePoints(const RoadNetwork& net, const DatasetSpec& spec);

// Capacity vectors.
std::vector<std::int32_t> FixedCapacities(std::size_t n, std::int32_t k);
std::vector<std::int32_t> MixedCapacities(std::size_t n, std::int32_t lo, std::int32_t hi,
                                          std::uint64_t seed);

// Convenience: builds a complete Problem from provider/customer specs.
Problem MakeProblem(const RoadNetwork& net, const DatasetSpec& provider_spec,
                    const DatasetSpec& customer_spec, const std::vector<std::int32_t>& capacities);

}  // namespace cca

#endif  // CCA_GEN_GENERATOR_H_
