#include "gen/road_network.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"

namespace cca {
namespace {

// Disjoint-set over junction ids, used to keep the network connected while
// removing streets.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }
  int Find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[static_cast<std::size_t>(a)] = b;
    return true;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

RoadNetwork RoadNetwork::MakeGrid(int cols, int rows, const Rect& world, std::uint64_t seed,
                                  double removal_prob, double diagonal_prob) {
  assert(cols >= 2 && rows >= 2);
  RoadNetwork net;
  net.world = world;
  Rng rng(seed);

  const double cell_w = world.width() / (cols - 1);
  const double cell_h = world.height() / (rows - 1);
  const double jitter = 0.3;  // fraction of a cell a junction may wander

  net.junctions.reserve(static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double jx = (c == 0 || c == cols - 1) ? 0.0 : rng.Uniform(-jitter, jitter) * cell_w;
      const double jy = (r == 0 || r == rows - 1) ? 0.0 : rng.Uniform(-jitter, jitter) * cell_h;
      net.junctions.push_back(Point{world.lo.x + c * cell_w + jx, world.lo.y + r * cell_h + jy});
    }
  }
  auto id = [cols](int c, int r) { return r * cols + c; };

  // Candidate streets: grid neighbours plus occasional diagonals.
  struct Cand {
    int a, b;
    bool removable;
  };
  std::vector<Cand> cands;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) cands.push_back(Cand{id(c, r), id(c + 1, r), true});
      if (r + 1 < rows) cands.push_back(Cand{id(c, r), id(c, r + 1), true});
      if (c + 1 < cols && r + 1 < rows && rng.NextDouble() < diagonal_prob) {
        const bool flip = rng.NextDouble() < 0.5;
        cands.push_back(flip ? Cand{id(c, r), id(c + 1, r + 1), false}
                             : Cand{id(c + 1, r), id(c, r + 1), false});
      }
    }
  }

  // Tentatively remove a fraction of the grid streets, then re-add any
  // removal that would disconnect the network.
  std::vector<char> keep(cands.size(), 1);
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].removable && rng.NextDouble() < removal_prob) keep[i] = 0;
  }
  UnionFind uf(net.junctions.size());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (keep[i]) uf.Union(cands[i].a, cands[i].b);
  }
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (!keep[i] && uf.Union(cands[i].a, cands[i].b)) keep[i] = 1;
  }

  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (!keep[i]) continue;
    const double len = Distance(net.junctions[static_cast<std::size_t>(cands[i].a)],
                                net.junctions[static_cast<std::size_t>(cands[i].b)]);
    net.edges.push_back(Edge{cands[i].a, cands[i].b, len});
  }
  return net;
}

Point RoadNetwork::PointOnEdge(int e, double t) const {
  const Edge& edge = edges[static_cast<std::size_t>(e)];
  const Point& a = junctions[static_cast<std::size_t>(edge.a)];
  const Point& b = junctions[static_cast<std::size_t>(edge.b)];
  return Point{a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

double RoadNetwork::TotalLength() const {
  double total = 0.0;
  for (const auto& e : edges) total += e.length;
  return total;
}

std::vector<std::vector<int>> RoadNetwork::BuildAdjacency() const {
  std::vector<std::vector<int>> adj(junctions.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    adj[static_cast<std::size_t>(edges[i].a)].push_back(static_cast<int>(i));
    adj[static_cast<std::size_t>(edges[i].b)].push_back(static_cast<int>(i));
  }
  return adj;
}

bool RoadNetwork::IsConnected() const {
  if (junctions.empty()) return true;
  const auto adj = BuildAdjacency();
  std::vector<char> seen(junctions.size(), 0);
  std::vector<int> stack{0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (int eid : adj[static_cast<std::size_t>(u)]) {
      const Edge& e = edges[static_cast<std::size_t>(eid)];
      const int v = (e.a == u) ? e.b : e.a;
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == junctions.size();
}

}  // namespace cca
