#include "gen/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace cca {
namespace {

// Samples an edge index with probability proportional to edge length using
// a prefix-sum table.
class EdgeSampler {
 public:
  explicit EdgeSampler(const RoadNetwork& net) {
    prefix_.reserve(net.edges.size());
    double total = 0.0;
    for (const auto& e : net.edges) {
      total += e.length;
      prefix_.push_back(total);
    }
  }

  int Sample(Rng* rng) const {
    const double x = rng->NextDouble() * prefix_.back();
    const auto it = std::lower_bound(prefix_.begin(), prefix_.end(), x);
    return static_cast<int>(it - prefix_.begin());
  }

 private:
  std::vector<double> prefix_;
};

}  // namespace

Rect DefaultWorld() { return Rect{{0.0, 0.0}, {1000.0, 1000.0}}; }

RoadNetwork DefaultNetwork(std::uint64_t seed) {
  return RoadNetwork::MakeGrid(36, 36, DefaultWorld(), seed);
}

std::vector<Point> GeneratePoints(const RoadNetwork& net, const DatasetSpec& spec) {
  assert(!net.edges.empty());
  Rng rng(spec.seed);
  EdgeSampler sampler(net);
  std::vector<Point> points;
  points.reserve(spec.count);

  const double sigma = spec.cluster_sigma * net.world.Diagonal();

  // Pick cluster centres on the network (dense city quarters). A separate
  // generator keeps centres independent of the per-point stream so that
  // datasets can share hotspots via cluster_seed.
  std::vector<Point> centres;
  if (spec.distribution == PointDistribution::kClustered) {
    Rng centre_rng(spec.cluster_seed != 0 ? spec.cluster_seed : spec.seed);
    for (int c = 0; c < spec.clusters; ++c) {
      const int e = sampler.Sample(&centre_rng);
      centres.push_back(net.PointOnEdge(e, centre_rng.NextDouble()));
    }
    // Per cluster, collect the edges within 3 sigma of its centre so that
    // cluster points stay on the network near the centre.
  }
  std::vector<std::vector<int>> cluster_edges(centres.size());
  for (std::size_t c = 0; c < centres.size(); ++c) {
    const double radius = 3.0 * sigma;
    for (std::size_t e = 0; e < net.edges.size(); ++e) {
      const Point mid = net.PointOnEdge(static_cast<int>(e), 0.5);
      if (Distance(mid, centres[c]) <= radius) {
        cluster_edges[c].push_back(static_cast<int>(e));
      }
    }
    if (cluster_edges[c].empty()) {
      // Degenerate sigma: fall back to the centre's own edge neighbourhood.
      cluster_edges[c].push_back(sampler.Sample(&rng));
    }
  }

  for (std::size_t i = 0; i < spec.count; ++i) {
    const bool clustered = spec.distribution == PointDistribution::kClustered &&
                           rng.NextDouble() < spec.cluster_fraction;
    if (!clustered) {
      const int e = sampler.Sample(&rng);
      points.push_back(net.PointOnEdge(e, rng.NextDouble()));
      continue;
    }
    const auto c = static_cast<std::size_t>(rng.NextBelow(centres.size()));
    // Gaussian falloff around the centre: rejection-sample a position on a
    // nearby edge biased toward the centre.
    const auto& edges = cluster_edges[c];
    for (int attempt = 0;; ++attempt) {
      const int e = edges[static_cast<std::size_t>(rng.NextBelow(edges.size()))];
      const Point cand = net.PointOnEdge(e, rng.NextDouble());
      const double d = Distance(cand, centres[c]);
      const double accept = std::exp(-(d * d) / (2.0 * sigma * sigma));
      if (rng.NextDouble() < accept || attempt > 32) {
        points.push_back(cand);
        break;
      }
    }
  }
  return points;
}

std::vector<std::int32_t> FixedCapacities(std::size_t n, std::int32_t k) {
  return std::vector<std::int32_t>(n, k);
}

std::vector<std::int32_t> MixedCapacities(std::size_t n, std::int32_t lo, std::int32_t hi,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int32_t> caps(n);
  for (auto& k : caps) k = static_cast<std::int32_t>(rng.UniformInt(lo, hi));
  return caps;
}

Problem MakeProblem(const RoadNetwork& net, const DatasetSpec& provider_spec,
                    const DatasetSpec& customer_spec,
                    const std::vector<std::int32_t>& capacities) {
  assert(capacities.size() == provider_spec.count);
  Problem problem;
  const auto provider_points = GeneratePoints(net, provider_spec);
  problem.providers.reserve(provider_points.size());
  for (std::size_t i = 0; i < provider_points.size(); ++i) {
    problem.providers.push_back(Provider{provider_points[i], capacities[i]});
  }
  problem.customers = GeneratePoints(net, customer_spec);
  return problem;
}

}  // namespace cca
