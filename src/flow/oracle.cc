#include "flow/oracle.h"

#include <cassert>
#include <limits>
#include <vector>

#include "flow/flow_network.h"

namespace cca {
namespace {

// Node numbering inside the explicit flow graph.
struct CcaGraph {
  FlowNetwork net;
  int s;
  int t;
  std::vector<std::vector<int>> qp_edges;  // [q][p] -> edge index
  std::vector<int> sq_edges;               // [q] -> edge index
  std::vector<int> pt_edges;               // [p] -> edge index
};

CcaGraph BuildCcaGraph(const Problem& problem) {
  const int nq = static_cast<int>(problem.providers.size());
  const int np = static_cast<int>(problem.customers.size());
  CcaGraph g{FlowNetwork(nq + np + 2), nq + np, nq + np + 1, {}, {}, {}};
  g.qp_edges.assign(static_cast<std::size_t>(nq), std::vector<int>(static_cast<std::size_t>(np)));
  g.sq_edges.resize(static_cast<std::size_t>(nq));
  g.pt_edges.resize(static_cast<std::size_t>(np));
  const bool unit = problem.weights.empty();
  for (int q = 0; q < nq; ++q) {
    g.sq_edges[static_cast<std::size_t>(q)] =
        g.net.AddEdge(g.s, q, problem.providers[static_cast<std::size_t>(q)].capacity, 0.0);
  }
  for (int p = 0; p < np; ++p) {
    g.pt_edges[static_cast<std::size_t>(p)] =
        g.net.AddEdge(nq + p, g.t, problem.weight(static_cast<std::size_t>(p)), 0.0);
    for (int q = 0; q < nq; ++q) {
      const double d = Distance(problem.providers[static_cast<std::size_t>(q)].pos,
                                problem.customers[static_cast<std::size_t>(p)]);
      // Unit problems cap provider->customer edges at 1 (paper Section
      // 2.1); weighted (concise) problems leave them node-bounded.
      const std::int64_t cap =
          unit ? 1
               : std::min<std::int64_t>(problem.providers[static_cast<std::size_t>(q)].capacity,
                                        problem.weight(static_cast<std::size_t>(p)));
      g.qp_edges[static_cast<std::size_t>(q)][static_cast<std::size_t>(p)] =
          g.net.AddEdge(q, nq + p, cap, d);
    }
  }
  return g;
}

}  // namespace

Matching SolveWithNetworkOracle(const Problem& problem) {
  CcaGraph g = BuildCcaGraph(problem);
  const auto result = g.net.MinCostFlow(g.s, g.t, problem.Gamma());
  assert(result.flow == problem.Gamma());
  (void)result;
  Matching matching;
  const int nq = static_cast<int>(problem.providers.size());
  const int np = static_cast<int>(problem.customers.size());
  for (int q = 0; q < nq; ++q) {
    for (int p = 0; p < np; ++p) {
      const std::int64_t units =
          g.net.FlowOn(g.qp_edges[static_cast<std::size_t>(q)][static_cast<std::size_t>(p)]);
      if (units > 0) {
        matching.Add(q, p, static_cast<std::int32_t>(units),
                     Distance(problem.providers[static_cast<std::size_t>(q)].pos,
                              problem.customers[static_cast<std::size_t>(p)]));
      }
    }
  }
  return matching;
}

bool IsOptimalMatching(const Problem& problem, const Matching& matching) {
  std::string error;
  if (!ValidateMatching(problem, matching, &error)) return false;
  // Install the matching as a flow, then apply Klein's condition.
  CcaGraph g = BuildCcaGraph(problem);
  const int nq = static_cast<int>(problem.providers.size());
  std::vector<std::int64_t> q_load(problem.providers.size(), 0);
  std::vector<std::int64_t> p_load(problem.customers.size(), 0);
  // Re-add flows by solving trivially: push each matched pair along
  // s -> q -> p -> t using targeted 3-edge paths.
  for (const auto& pair : matching.pairs) {
    q_load[static_cast<std::size_t>(pair.provider)] += pair.units;
    p_load[static_cast<std::size_t>(pair.customer)] += pair.units;
  }
  // Manually set residual capacities.
  FlowNetwork net(nq + static_cast<int>(problem.customers.size()) + 2);
  const int s = nq + static_cast<int>(problem.customers.size());
  const int t = s + 1;
  const bool unit = problem.weights.empty();
  for (int q = 0; q < nq; ++q) {
    const std::int64_t cap = problem.providers[static_cast<std::size_t>(q)].capacity;
    const std::int64_t used = q_load[static_cast<std::size_t>(q)];
    if (cap - used > 0) net.AddEdge(s, q, cap - used, 0.0);
    if (used > 0) net.AddEdge(q, s, used, 0.0);
  }
  for (int p = 0; p < static_cast<int>(problem.customers.size()); ++p) {
    const std::int64_t cap = problem.weight(static_cast<std::size_t>(p));
    const std::int64_t used = p_load[static_cast<std::size_t>(p)];
    const int p_node = nq + p;
    if (cap - used > 0) net.AddEdge(p_node, t, cap - used, 0.0);
    if (used > 0) net.AddEdge(t, p_node, used, 0.0);
  }
  // Provider->customer edges with their matched flow reversed.
  std::vector<std::vector<std::int64_t>> pair_units(
      problem.providers.size(), std::vector<std::int64_t>(problem.customers.size(), 0));
  for (const auto& pair : matching.pairs) {
    pair_units[static_cast<std::size_t>(pair.provider)][static_cast<std::size_t>(pair.customer)] +=
        pair.units;
  }
  for (int q = 0; q < nq; ++q) {
    for (int p = 0; p < static_cast<int>(problem.customers.size()); ++p) {
      const double d = Distance(problem.providers[static_cast<std::size_t>(q)].pos,
                                problem.customers[static_cast<std::size_t>(p)]);
      const std::int64_t flow = pair_units[static_cast<std::size_t>(q)][static_cast<std::size_t>(p)];
      const std::int64_t cap =
          unit ? 1
               : std::min<std::int64_t>(problem.providers[static_cast<std::size_t>(q)].capacity,
                                        problem.weight(static_cast<std::size_t>(p)));
      if (cap - flow > 0) net.AddEdge(q, nq + p, cap - flow, d);
      if (flow > 0) net.AddEdge(nq + p, q, flow, -d);
    }
  }
  return !net.HasNegativeCycle();
}

Matching BruteForceOptimal(const Problem& problem) {
  assert(problem.weights.empty() && "brute force supports unit weights only");
  const auto nq = problem.providers.size();
  const auto np = problem.customers.size();
  const std::int64_t gamma = problem.Gamma();

  std::vector<int> assign(np, -1);
  std::vector<int> best_assign;
  std::vector<std::int64_t> used(nq, 0);
  double best_cost = std::numeric_limits<double>::infinity();

  // Depth-first over customers; each is assigned to a provider or skipped.
  // Only assignments reaching size gamma are feasible candidates.
  auto recurse = [&](auto&& self, std::size_t j, std::int64_t assigned, double cost) -> void {
    if (cost >= best_cost) return;  // cost-only prune (distances are >= 0)
    if (j == np) {
      if (assigned == gamma && cost < best_cost) {
        best_cost = cost;
        best_assign.assign(assign.begin(), assign.end());
      }
      return;
    }
    // Even assigning every remaining customer cannot reach gamma: prune.
    if (assigned + static_cast<std::int64_t>(np - j) < gamma) return;
    for (std::size_t q = 0; q < nq; ++q) {
      if (used[q] >= problem.providers[q].capacity) continue;
      used[q] += 1;
      assign[j] = static_cast<int>(q);
      self(self, j + 1, assigned + 1,
           cost + Distance(problem.providers[q].pos, problem.customers[j]));
      used[q] -= 1;
      assign[j] = -1;
    }
    self(self, j + 1, assigned, cost);
  };
  recurse(recurse, 0, 0, 0.0);

  Matching matching;
  for (std::size_t j = 0; j < best_assign.size(); ++j) {
    if (best_assign[j] >= 0) {
      matching.Add(best_assign[j], static_cast<std::int32_t>(j), 1,
                   Distance(problem.providers[static_cast<std::size_t>(best_assign[j])].pos,
                            problem.customers[j]));
    }
  }
  return matching;
}

}  // namespace cca
