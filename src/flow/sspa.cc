#include "flow/sspa.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "common/indexed_heap.h"
#include "common/timer.h"
#include "common/trace.h"
#include "geo/grid.h"
#include "geo/grid_cursor.h"
#include "geo/hier_grid.h"
#include "geo/shared_frontier.h"

namespace cca {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Virtual-provider capacity: the demand the real providers cannot absorb
// (0 on feasible instances or when overflow routing is off).
std::int64_t ComputeOverflow(const Problem& problem, const SspaConfig& config) {
  if (!config.allow_overflow) return 0;
  std::int64_t capacity = 0;
  for (const Provider& q : problem.providers) capacity += q.capacity;
  std::int64_t weight = 0;
  for (std::size_t p = 0; p < problem.customers.size(); ++p) weight += problem.weight(p);
  return std::max<std::int64_t>(0, weight - capacity);
}

// The documented default penalty: 2x the bounding-box diagonal of all
// points + 1, strictly above any real edge cost. The matching itself is
// penalty-independent (the virtual capacity equals the overflow exactly,
// so real capacity always saturates — see SspaConfig::allow_overflow);
// staying above every distance keeps Dijkstra's path ordering treating the
// virtual provider as the strict last resort.
double ComputeOverflowPenalty(const Problem& problem, const SspaConfig& config) {
  if (config.overflow_penalty > 0.0) return config.overflow_penalty;
  double lo_x = kInf, lo_y = kInf, hi_x = -kInf, hi_y = -kInf;
  const auto grow = [&](const Point& pt) {
    lo_x = std::min(lo_x, pt.x);
    lo_y = std::min(lo_y, pt.y);
    hi_x = std::max(hi_x, pt.x);
    hi_y = std::max(hi_y, pt.y);
  };
  for (const Provider& q : problem.providers) grow(q.pos);
  for (const Point& p : problem.customers) grow(p);
  if (lo_x > hi_x) return 1.0;  // no points at all
  const double diag = Distance(Point{lo_x, lo_y}, Point{hi_x, hi_y});
  return 2.0 * diag + 1.0;
}

// SSPA solver. Node ids: providers [0, nq), customers [nq, nq+np), sink
// t = nq+np. The source is implicit: Dijkstra seeds every provider with
// remaining capacity at alpha = tau(q) (reduced cost of s->q).
//
// Overflow mode (SspaConfig::allow_overflow, infeasible instances only):
// nq includes one extra *virtual* provider slot at index real_nq with
// capacity = overflow and a flat-cost edge (penalty_) to every customer.
// All generic machinery — seeding, Augment's path walk, flow records,
// potentials — works on the extended index range through the
// ProviderCapacity/EdgeCost accessors; only the relax step (RelaxVirtual:
// no geometry, uniform cost) and the exports (virtual pairs become the
// unassigned ledger, the exported tau_q strips the virtual slot) are
// special-cased.
//
// Flow records: with unit customers a customer holds at most one inbound
// unit (conservation against the capacity-1 sink edge), so the assignment
// lives in a flat `serving_` array and the residual-edge test in the relax
// hot loop is a single compare. Weighted customers keep per-customer flow
// lists sorted by provider id (binary-searched, only touched off the hot
// path).
class SspaSolver {
 public:
  SspaSolver(const Problem& problem, const SspaConfig& config)
      : problem_(problem),
        config_(config),
        real_nq_(problem.providers.size()),
        overflow_(ComputeOverflow(problem, config)),
        penalty_(overflow_ > 0 ? ComputeOverflowPenalty(problem, config) : 0.0),
        nq_(real_nq_ + (overflow_ > 0 ? 1 : 0)),
        np_(problem.customers.size()),
        unit_customers_(problem.weights.empty()),
        tau_q_(nq_, 0.0),
        tau_p_(np_, 0.0),
        used_q_(nq_, 0),
        sink_flow_(np_, 0),
        serving_(unit_customers_ ? np_ : 0, -1),
        flows_(unit_customers_ ? 0 : np_),
        alpha_(nq_ + np_ + 1, kInf),
        prev_(nq_ + np_ + 1, -1),
        heap_(nq_ + np_ + 1) {
    // Warm start: adopt the caller's duals before any floor table is built
    // so the tables can be seeded consistently (the Dijkstra global-floor
    // assert checks min_tau_p_ against tau_p_ on every run). Negative
    // entries are clamped — the solver's invariants assume tau >= 0 — and
    // feasibility (including adoption of any initial_matching flow) is
    // restored by RepairDuals before the first Dijkstra run.
    if (config_.initial_potentials != nullptr) {
      const SspaPotentials& init = *config_.initial_potentials;
      assert(init.tau_q.size() == real_nq_ && init.tau_p.size() == np_);
      for (std::size_t q = 0; q < real_nq_; ++q) tau_q_[q] = std::max(0.0, init.tau_q[q]);
      for (std::size_t p = 0; p < np_; ++p) tau_p_[p] = std::max(0.0, init.tau_p[p]);
      warm_ = true;
    }
    // The virtual provider's dual always seeds at the penalty: feasible for
    // every edge (reduced cost penalty + tau_p - penalty = tau_p >= 0, warm
    // or cold), and it keeps the virtual node at the bottom of the heap so
    // real capacity is exhausted before the overflow path is ever explored.
    if (overflow_ > 0) tau_q_[real_nq_] = penalty_;
    // The hierarchical grid subsumes the flat one whenever the cell floors
    // it aggregates exist: with use_cell_floors + use_hierarchy no flat
    // grid is built at all, and both relax strategies route through the
    // coarse-over-fine paths. A caller-owned shared grid of either flavour
    // replaces the private build; everything mutable (tau floors, cursors,
    // sweeps) stays per-solve.
    if (config_.use_cell_floors && config_.use_hierarchy && np_ > 0) {
      if (config_.shared_hier_grid != nullptr) {
        hier_ = config_.shared_hier_grid;
      } else {
        HierarchicalGrid::Options opts;
        const double fine = config_.grid_target_per_cell > 0.0
                                ? config_.grid_target_per_cell
                                : UniformGrid::kDefaultTargetPerCell;
        opts.fine_target_per_cell = fine;
        opts.coarse_target_per_cell = 16.0 * fine;
        opts.split_threshold = config_.hier_split_threshold;
        owned_hier_ = std::make_unique<HierarchicalGrid>(problem.customers, opts);
        hier_ = owned_hier_.get();
      }
      hier_floors_ = warm_ ? std::make_unique<HierTauTable>(*hier_, tau_p_)
                           : std::make_unique<HierTauTable>(*hier_);
      if (config_.use_grid) {
        if (config_.use_shared_frontier && np_ >= config_.shared_frontier_min_customers) {
          hier_sweep_ = std::make_unique<HierCellSweep>(*hier_);
        } else {
          hier_private_ = std::make_unique<PrivateHierSweep>(*hier_);
        }
      }
      return;
    }
    // Flat-grid paths (hierarchy off, or floors off so there is nothing to
    // aggregate): the grid serves two masters, ring-ordered discovery
    // (use_grid) and the per-cell tau floors (use_cell_floors — which the
    // dense fallback also uses to partition its scan). Legacy dense (both
    // off) stays index-free.
    if ((config_.use_grid || config_.use_cell_floors) && np_ > 0) {
      if (config_.shared_grid != nullptr) {
        grid_ = config_.shared_grid;
      } else {
        owned_grid_ =
            std::make_unique<UniformGrid>(problem.customers, config_.grid_target_per_cell);
        grid_ = owned_grid_.get();
      }
      if (config_.use_cell_floors) {
        tau_floors_ = warm_ ? std::make_unique<CellTauTable>(*grid_, tau_p_)
                            : std::make_unique<CellTauTable>(*grid_);
      }
    }
    if (config_.use_grid && np_ > 0) {
      if (config_.use_shared_frontier && np_ >= config_.shared_frontier_min_customers) {
        shared_sweep_ = std::make_unique<SharedCellSweep>(*grid_);
      } else {
        relax_cursor_ = std::make_unique<GridRingCursor>(*grid_, Point{});
      }
    }
  }

  SspaResult Run() {
    CCA_TRACE_SPAN_VAR(span, "sspa.solve");
    Timer timer;
    SspaResult result;
    result.conceptual_edges =
        static_cast<std::uint64_t>(real_nq_) * static_cast<std::uint64_t>(np_);
    // Build-shape diagnostic: how many coarse cells the (owned or shared)
    // hierarchy subdivided, charged once per solve that consults it.
    if (hier_ != nullptr) result.metrics.hier_splits += hier_->splits();
    if (warm_) RepairDuals(&result.metrics);
    // Overflow mode raises the target to the total weight: the virtual
    // provider absorbs exactly the demand the real capacity cannot.
    std::int64_t remaining = problem_.Gamma() + overflow_;
    // Flow adopted from a warm start (initial_matching) already sits on
    // tight arcs; only the deficit is re-augmented. Zero on cold solves.
    for (std::size_t p = 0; p < np_; ++p) remaining -= sink_flow_[p];
    assert(remaining >= 0);
    while (remaining > 0) {
      // Cooperative deadline, checked at Dijkstra-run granularity: one run
      // + augment + potential update is the smallest step that leaves the
      // duals feasible and the partial flow capacity-respecting, so
      // breaking here always hands back a consistent (if partial) state.
      if (config_.deadline_ms > 0.0 && timer.ElapsedMillis() > config_.deadline_ms) {
        result.deadline_exceeded = true;
        break;
      }
      const double d = Dijkstra(&result.metrics);
      assert(d < kInf && "flow graph must admit gamma units");
      const std::int64_t pushed = Augment(remaining);
      UpdatePotentials(d);
      remaining -= pushed;
      ++result.metrics.augmentations;
    }
    ExtractMatching(&result.matching);
    // The unassigned ledger: per-customer demand no real provider serves —
    // overflow units routed to the virtual provider and/or units a
    // deadline breach left un-augmented. Exact complement of the matching.
    std::vector<std::int64_t> served(np_, 0);
    for (const MatchPair& pair : result.matching.pairs) {
      served[static_cast<std::size_t>(pair.customer)] += pair.units;
    }
    for (std::size_t p = 0; p < np_; ++p) {
      const std::int64_t gap = problem_.weight(p) - served[p];
      if (gap > 0) {
        result.unassigned.push_back(UnassignedUnit{static_cast<std::int32_t>(p), gap});
        result.unassigned_units += gap;
      }
    }
    // Export the final duals: they certify this matching's optimality and
    // are the warm seed for a follow-up solve on a perturbed instance.
    // The virtual slot is internal and stripped — callers feed these back
    // as initial_potentials sized to the *real* provider array.
    result.potentials.tau_q.assign(tau_q_.begin(), tau_q_.begin() + static_cast<std::ptrdiff_t>(real_nq_));
    result.potentials.tau_p = tau_p_;
    result.metrics.cpu_millis = timer.ElapsedMillis();
    span.Arg("augmentations", result.metrics.augmentations);
    span.Arg("pops", result.metrics.dijkstra_pops);
    span.Arg("adopted", result.metrics.warm_units_adopted);
    return result;
  }

 private:
  int Sink() const { return static_cast<int>(nq_ + np_); }

  // Source-edge capacity of provider slot q; the extra virtual slot (only
  // present when overflow mode is active) holds exactly the overflow, so
  // every feasible flow still saturates the real providers.
  std::int64_t ProviderCapacity(std::size_t q) const {
    return q < real_nq_ ? problem_.providers[q].capacity : overflow_;
  }

  // Cost of edge q -> p: Euclidean for real providers, the flat penalty
  // for the virtual overflow slot.
  double EdgeCost(std::size_t q, std::size_t p) const {
    return q < real_nq_ ? Distance(problem_.providers[q].pos, problem_.customers[p])
                        : penalty_;
  }

  // Restores the warm-start invariants before the first Dijkstra run (the
  // full soundness argument lives in src/runtime/README.md):
  //
  //   1. With initial_matching set and gamma == total weight (ample
  //      capacity — every customer saturates by the end, the regime a
  //      dispatch engine lives in), previous pairs that survive churn are
  //      adopted as initial flow and the duals are repaired around them
  //      (AdoptFlow below). The solve then continues as if those
  //      augmentations had already happened, and only the deficit is
  //      re-augmented. In the capacity-limited regime (gamma < total
  //      weight) the sink potential couples every unsaturated customer's
  //      dual, and keeping adopted flow consistent with it would need
  //      cascading evictions; adoption is skipped there — duals-only warm
  //      start, exact but not faster.
  //   2. Duals-only warm starts (no matching, or capacity-limited) carry
  //      zero flow, so feasibility is two one-sided constraints: forward
  //      edges q->p need tau_q <= dist + tau_p — repaired by clamping
  //      tau_q down to min_p(dist + tau_p), a tau-augmented
  //      nearest-neighbour query served by the same cell-floor pruning
  //      the relax loops use — and sink edges p->t (cost 0) need
  //      tau_t >= tau_p for every customer, all of which are unsaturated,
  //      so tau_t = max_p tau_p. (Cold solves keep tau_t = 0, where the
  //      invariant "tau_p == 0 while unsaturated" makes it vacuous.)
  //
  // With feasibility restored, every residual reduced cost Dijkstra can
  // relax is >= 0 and the remaining successive shortest paths are exact
  // for any seed duals and any candidate matching (AdoptFlow additionally
  // sheds the adopted pairs that churn turned into negative residual
  // cycles — pass e below) — the label clamps in the relax loops
  // degenerate to no-ops (up to FP noise), and all ring/cell bounds stay
  // certified lower bounds. Seed quality only decides how much flow
  // survives adoption, never the final cost.
  void RepairDuals(Metrics* metrics) {
    CCA_TRACE_SPAN_VAR(span, "sspa.repair_duals");
    std::int64_t total_weight = 0;
    for (std::size_t p = 0; p < np_; ++p) total_weight += problem_.weight(p);
    // Overflow mode restores the ample regime on infeasible instances: the
    // effective gamma (real capacity + virtual overflow) is the total
    // weight, so flow adoption stays sound across the feasibility boundary.
    const bool ample = problem_.Gamma() + overflow_ >= total_weight;
    if (ample && config_.initial_matching != nullptr) {
      AdoptFlow(metrics);
      return;
    }
    for (std::size_t q = 0; q < real_nq_; ++q) {
      const double best = TauAugmentedNn(q, tau_q_[q], metrics);
      if (best < tau_q_[q]) {
        tau_q_[q] = best;
        ++metrics->dual_repairs;
      }
    }
    tau_t_ = 0.0;
    for (std::size_t p = 0; p < np_; ++p) tau_t_ = std::max(tau_t_, tau_p_[p]);
  }

  // Flow-carrying warm start (ample regime): adopt surviving pairs, then
  // repair the duals around them and shed the pairs churn has invalidated
  // — five single passes, no fixpoint iteration:
  //
  //   a. Every churn-valid pair (in-range endpoints, capacity and weight
  //      respected) takes its flow provisionally. Anything else is
  //      dropped; dropped units just rejoin the augmentation deficit.
  //   b. TIGHTEN: each adopted arc raises its customer's dual to
  //      tau_p = tau_q - dist, turning the end-of-solve slack r <= 0 into
  //      the Hungarian matched-arc invariant r == 0 (so its reverse edge
  //      relaxes at exactly 0, not the clamped -r). Raising tau_p can
  //      never break another arc's forward feasibility — r only grows —
  //      so tightening needs no compensation anywhere, and it absorbs
  //      the r < 0 drift the previous solve accumulated instead of
  //      exporting it to the next one. Tightening may only RAISE values,
  //      so the floor tables stay within their monotone Raise contract.
  //   c. Forward edges q->p with a residual need tau_q <= dist + tau_p.
  //      Engine-produced seeds satisfy this already (the previous solve
  //      ended feasible, tightening only raised tau_p, and arrival seeds
  //      are minimal-feasible by construction), so for them the clamp
  //      pass below certifies every provider without firing; it exists
  //      to make arbitrary caller-supplied duals safe. Tightened served
  //      arcs sit at dist + tau_p == tau_q, so they cap the min at
  //      exactly tau_q and no served-customer exclusion is needed.
  //   d. RELEASE: any adopted arc left with r > eps — a clamp fired
  //      below it, or a weighted customer's arcs disagreed — hands its
  //      flow back. A released arc has r > 0, i.e. it is already
  //      forward-feasible, and releasing changes no duals, so one scan
  //      suffices: no cascade is possible.
  //   e. CONTESTED: release every adopted arc whose customer has some
  //      OTHER provider strictly closer than the one serving it. Duals
  //      certify paths, not flow: successive shortest paths only ever
  //      augment the deficit, so any improving residual CYCLE already
  //      present in the adopted flow survives to the final matching.
  //      Churn creates exactly such cycles — a departure frees a slot at
  //      a previously-full provider (or a provider arrives) that now
  //      undercuts a neighbour's customer: s -> q_freed -> p -> q_serving
  //      -> s has true cost dist(q_freed, p) - dist(q_serving, p) < 0.
  //      Every capacity-neutral residual cycle (any mix of source hops
  //      and provider exchanges) telescopes into per-customer brackets
  //      dist(q_other, p) - dist(q_serving, p), so its cost is bounded
  //      below by the sum over its customers of
  //          gap(p) = min_{q != serving} dist(q, p) - dist(serving, p),
  //      and releasing every customer with gap < 0 leaves no negative
  //      cycle at all. Releasing only removes reverse edges (it cannot
  //      create a new negative bracket), so one scan suffices. The
  //      released set is exactly the customers their server holds
  //      against geometry — the capacity-displaced ones — which churn
  //      keeps small, and the O(|adopted| * |Q|) scan is noise next to
  //      one Dijkstra run.
  //
  // Sink edges need no repair: tau_t stays 0 and every unsaturated
  // customer's sink edge relaxes at exactly +0, which makes each Dijkstra
  // run target the nearest deficit — the successive-shortest-path scheme
  // for the transportation formulation, where deficits live at the
  // customers and "serve this arrival instead of that one" is a change of
  // deficit vector, not a comparable flow. What that scheme does require
  // is the absence of the capacity-neutral negative cycles pass e just
  // removed. With passes a-e done the duals are feasible on every edge
  // Dijkstra relaxes, the adopted arcs are tight (r == 0), and each
  // remaining augmentation re-optimally absorbs one deficit unit
  // (re-routing adopted flow through reverse edges where profitable), so
  // the final matching is cost-identical to a cold solve — asserted by
  // AssignmentEngine::VerifyAgainstCold in Debug builds and enforced by
  // bench_engine_dispatch's warm/cold cross-check.
  void AdoptFlow(Metrics* metrics) {
    CCA_TRACE_SPAN_VAR(span, "sspa.adopt_flow");
    struct Adopted {
      std::int32_t q, p;
      std::int64_t units;
    };
    std::vector<Adopted> adopted;
    adopted.reserve(config_.initial_matching->pairs.size());
    for (const MatchPair& pair : config_.initial_matching->pairs) {
      if (pair.provider < 0 || pair.customer < 0 || pair.units <= 0) continue;
      const auto q = static_cast<std::size_t>(pair.provider);
      const auto p = static_cast<std::size_t>(pair.customer);
      const auto units = static_cast<std::int64_t>(pair.units);
      // Only real providers are adoptable (callers never see the virtual
      // index, but a stale matching is rejected defensively).
      if (q >= real_nq_ || p >= np_) continue;
      if (unit_customers_ && (units != 1 || serving_[p] >= 0)) continue;
      if (used_q_[q] + units > problem_.providers[q].capacity) continue;
      if (sink_flow_[p] + units > problem_.weight(p)) continue;
      AddFlow(q, p, units);
      used_q_[q] += units;
      sink_flow_[p] += units;
      adopted.push_back({static_cast<std::int32_t>(q), static_cast<std::int32_t>(p), units});
      metrics->warm_units_adopted += static_cast<std::uint64_t>(units);
    }
    for (const Adopted& a : adopted) {
      const auto q = static_cast<std::size_t>(a.q);
      const auto p = static_cast<std::size_t>(a.p);
      const double tight = tau_q_[q] - Distance(problem_.providers[q].pos, problem_.customers[p]);
      if (tight > tau_p_[p]) {
        tau_p_[p] = tight;
        if (hier_floors_) {
          hier_floors_->Raise(p, tight);
        } else if (tau_floors_) {
          tau_floors_->Raise(p, tight);
        }
      }
    }
    for (std::size_t q = 0; q < real_nq_; ++q) {
      const double best = TauAugmentedNn(q, tau_q_[q], metrics);
      if (best < tau_q_[q]) {
        tau_q_[q] = best;
        ++metrics->dual_repairs;
      }
    }
    for (Adopted& a : adopted) {
      const auto q = static_cast<std::size_t>(a.q);
      const auto p = static_cast<std::size_t>(a.p);
      const double dist = Distance(problem_.providers[q].pos, problem_.customers[p]);
      const double r = dist - tau_q_[q] + tau_p_[p];
      // The epsilon absorbs the float noise potential updates accumulate.
      const double eps = 1e-7 * std::max(1.0, dist + tau_p_[p]);
      if (r <= eps) continue;
      AddFlow(q, p, -a.units);
      used_q_[q] -= a.units;
      sink_flow_[p] -= a.units;
      metrics->warm_units_adopted -= static_cast<std::uint64_t>(a.units);
      a.units = 0;
    }
    for (const Adopted& a : adopted) {
      if (a.units == 0) continue;
      const auto q = static_cast<std::size_t>(a.q);
      const auto p = static_cast<std::size_t>(a.p);
      const Point p_pos = problem_.customers[p];
      const double held = Distance(problem_.providers[q].pos, p_pos);
      bool contested = false;
      // The virtual provider never contests: its flat penalty exceeds any
      // real distance by construction.
      for (std::size_t other = 0; other < real_nq_; ++other) {
        if (other == q) continue;
        if (Distance(problem_.providers[other].pos, p_pos) < held) {
          contested = true;
          break;
        }
      }
      if (!contested) continue;
      AddFlow(q, p, -a.units);
      used_q_[q] -= a.units;
      sink_flow_[p] -= a.units;
      metrics->warm_units_adopted -= static_cast<std::uint64_t>(a.units);
    }
    tau_t_ = 0.0;
  }

  // min over customers p of dist(q, p) + tau_p[p], except that the caller
  // only needs values below `cutoff` (q's current tau_q): anything >=
  // cutoff certifies the dual as-is, so cells bounded by mindist + cell
  // floor >= best are skipped wholesale. Customers q itself serves need no
  // exclusion: their arcs were tightened to dist + tau_p == tau_q, so they
  // cap the min at exactly the cutoff without ever clamping it. Exhaustive
  // walk, no ring ordering — repairs run once per solve, not per pop.
  double TauAugmentedNn(std::size_t q, double cutoff, Metrics* metrics) {
    const Point q_pos = problem_.providers[q].pos;
    double best = cutoff;
    if (hier_floors_) {
      const HierarchicalGrid& grid = *hier_;
      for (const std::int32_t cc : grid.nonempty_coarse()) {
        const auto c = static_cast<std::size_t>(cc);
        if (MinDist(q_pos, grid.CoarseRect(c)) + hier_floors_->CoarseFloor(c) >= best) continue;
        const std::size_t fine_end = grid.fine_end(c);
        for (std::size_t f = grid.fine_begin(c); f < fine_end; ++f) {
          if (grid.fine_cell_begin(f) == grid.fine_cell_end(f)) continue;
          if (MinDist(q_pos, grid.FineRect(f)) + hier_floors_->FineFloor(f) >= best) continue;
          best = SliceMinTau(q_pos, grid.FineCell(f), hier_floors_->values(), best, metrics);
        }
      }
      return best;
    }
    if (tau_floors_) {
      for (const std::int32_t cc : grid_->nonempty_cells()) {
        const auto c = static_cast<std::size_t>(cc);
        if (MinDist(q_pos, grid_->CellRect(c)) + tau_floors_->CellFloor(c) >= best) continue;
        best = SliceMinTau(q_pos, grid_->Cell(c), tau_floors_->values(), best, metrics);
      }
      return best;
    }
    // Index-free fallback (legacy dense / no-floor configs): scan all of P.
    for (std::size_t p = 0; p < np_; ++p) {
      metrics->distances_computed += 1;
      best = std::min(best, Distance(q_pos, problem_.customers[p]) + tau_p_[p]);
    }
    return best;
  }

  double SliceMinTau(const Point& q_pos, const UniformGrid::CellSlice& slice,
                     const double* tau_values, double best, Metrics* metrics) {
    const double* taus = tau_values + slice.first_slot;
    metrics->distances_computed += slice.count;
    for (std::size_t i = 0; i < slice.count; ++i) {
      best = std::min(best, Distance(q_pos, Point{slice.xs[i], slice.ys[i]}) + taus[i]);
    }
    return best;
  }

  // One Dijkstra run over the residual graph with reduced costs; returns
  // the shortest-path cost to the sink. Fills `touched_` with de-heaped
  // nodes (all have alpha <= D).
  double Dijkstra(Metrics* metrics) {
    CCA_TRACE_SPAN_VAR(span, "sspa.dijkstra");
    const std::uint64_t pops0 = metrics->dijkstra_pops;
    const std::uint64_t relaxes0 = metrics->dijkstra_relaxes;
    ++metrics->dijkstra_runs;
    heap_.Clear();
    touched_.clear();
    run_ub_ = kInf;
    std::fill(alpha_.begin(), alpha_.end(), kInf);
    std::fill(prev_.begin(), prev_.end(), -1);
    if (grid_ || hier_) {
      // Floor of tau(p) over every customer: together with a ring's
      // geometric mindist it lower-bounds the reduced cost of all edges
      // into the ring. The cell-floor table keeps it current across
      // augmentations (only touched cells were updated, and the cached
      // global min rescans cell floors only when displaced); the legacy
      // path rescans all of tau_p instead.
      if (hier_floors_) {
        min_tau_p_ = hier_floors_->GlobalFloor();
        assert(np_ == 0 || min_tau_p_ == *std::min_element(tau_p_.begin(), tau_p_.end()));
      } else if (tau_floors_) {
        min_tau_p_ = tau_floors_->GlobalFloor();
        assert(np_ == 0 || min_tau_p_ == *std::min_element(tau_p_.begin(), tau_p_.end()));
      } else {
        min_tau_p_ = 0.0;
        if (np_ > 0) min_tau_p_ = *std::min_element(tau_p_.begin(), tau_p_.end());
      }
    }
    for (std::size_t q = 0; q < nq_; ++q) {
      if (used_q_[q] < ProviderCapacity(q)) {
        alpha_[q] = tau_q_[q];
        prev_[q] = -1;  // reached from the source
        heap_.PushOrDecrease(static_cast<int>(q), alpha_[q]);
      }
    }
    while (!heap_.empty()) {
      const auto [u, key] = heap_.PopMin();
      ++metrics->dijkstra_pops;
      if (u == Sink()) {
        span.Arg("pops", metrics->dijkstra_pops - pops0);
        span.Arg("relaxes", metrics->dijkstra_relaxes - relaxes0);
        return key;
      }
      touched_.push_back(u);
      if (static_cast<std::size_t>(u) < nq_) {
        if (overflow_ > 0 && static_cast<std::size_t>(u) == real_nq_) {
          RelaxVirtual(metrics);
        } else if (config_.use_grid && hier_) {
          RelaxProviderHier(static_cast<std::size_t>(u), metrics);
        } else if (config_.use_grid && grid_) {
          RelaxProviderGrid(static_cast<std::size_t>(u), metrics);
        } else {
          RelaxProviderDense(static_cast<std::size_t>(u), metrics);
        }
      } else {
        RelaxCustomer(static_cast<std::size_t>(u) - nq_, metrics);
      }
    }
    span.Arg("pops", metrics->dijkstra_pops - pops0);
    span.Arg("relaxes", metrics->dijkstra_relaxes - relaxes0);
    return kInf;
  }

  void Relax(int node, double cand, int from) {
    if (cand < alpha_[static_cast<std::size_t>(node)]) {
      alpha_[static_cast<std::size_t>(node)] = cand;
      prev_[static_cast<std::size_t>(node)] = from;
      heap_.PushOrDecrease(node, cand);
    }
  }

  // Forward-relaxes the edges q -> {customers in the slice}. `ids` indexes
  // the global customer arrays; `xs`/`ys` are the matching coordinate
  // slices (cell-clustered in grid mode, the plain SoA in dense mode).
  // With `ub_prune` set (the index-free dense scan), candidates whose
  // label could not beat the certified upper bound min(alpha(t), run_ub)
  // are skipped before touching the heap — the per-candidate analogue of
  // the grid's cell bound (the README invariant covers both).
  void RelaxSlice(std::size_t q, const Point& q_pos, const std::int32_t* ids, const double* xs,
                  const double* ys, std::size_t count, bool ub_prune, Metrics* metrics) {
    double dist[kDistanceBlock];
    const double base = alpha_[q] - tau_q_[q];
    for (std::size_t begin = 0; begin < count; begin += kDistanceBlock) {
      const std::size_t block = std::min(kDistanceBlock, count - begin);
      DistanceBlock(q_pos, xs + begin, ys + begin, block, dist);
      metrics->distances_computed += block;
      for (std::size_t i = 0; i < block; ++i) {
        const auto p = static_cast<std::size_t>(ids[begin + i]);
        // A saturated unit edge only has its reverse direction left.
        if (unit_customers_ && serving_[p] == static_cast<std::int32_t>(q)) continue;
        const double w = dist[i] + base + tau_p_[p];
        const double cand = std::max(w, alpha_[q]);
        if (ub_prune &&
            cand >= std::min(alpha_[static_cast<std::size_t>(Sink())], run_ub_)) {
          ++metrics->relaxes_pruned;
          continue;
        }
        ++metrics->dijkstra_relaxes;
        // p with sink residual completes an s~>q->p->t path of cost
        // cand + rc(p->t): that upper-bounds this run's shortest-path
        // cost, which arms the ring early exit even before the sink holds
        // a tentative label. rc(p->t) is 0 whenever tau_t is 0 (cold and
        // flow-adopting warm starts alike); duals-only warm starts carry
        // tau_t = max tau_p, so there it is tau_t - tau_p >= 0.
        if (sink_flow_[p] < problem_.weight(p)) {
          const double through = cand + std::max(tau_t_ - tau_p_[p], 0.0);
          if (through < run_ub_) run_ub_ = through;
        }
        Relax(static_cast<int>(nq_ + p), cand, static_cast<int>(q));
      }
    }
  }

  // Fused-kernel relax over one cell-clustered slice: DistanceBlockSelect
  // rejects every candidate whose label lower bound
  //     dist + base + tau(p)  (base = alpha(q) - tau(q))
  // cannot beat the certified upper bound min(alpha(t), run_ub) — evaluated
  // in squared space against the slot-aligned tau slice, so rejected lanes
  // never pay a sqrt — and compacts the survivors, which are the only lanes
  // the heap-relax loop below ever touches. The cutoff is re-read per block
  // because run_ub only tightens as survivors complete s~>q->p->t paths.
  // `tau_values` is the slot-ordered tau array of whichever floor table
  // clustered the slice (flat CellTauTable or hierarchical HierTauTable —
  // their slot layouts differ, so the caller picks).
  void RelaxSliceSelect(std::size_t q, const Point& q_pos, const UniformGrid::CellSlice& slice,
                        double base, const double* tau_values, Metrics* metrics) {
    std::int32_t keep[kDistanceBlock];
    double d2[kDistanceBlock];
    const double* taus = tau_values + slice.first_slot;
    for (std::size_t begin = 0; begin < slice.count; begin += kDistanceBlock) {
      const std::size_t block = std::min(kDistanceBlock, slice.count - begin);
      const double cutoff =
          std::min(alpha_[static_cast<std::size_t>(Sink())], run_ub_) - base;
      const std::size_t kept = DistanceBlockSelect(q_pos, slice.xs + begin, slice.ys + begin,
                                                   taus + begin, block, cutoff, keep, d2);
      metrics->relaxes_pruned += block - kept;
      for (std::size_t i = 0; i < kept; ++i) {
        const auto p =
            static_cast<std::size_t>(slice.ids[begin + static_cast<std::size_t>(keep[i])]);
        // A saturated unit edge only has its reverse direction left.
        if (unit_customers_ && serving_[p] == static_cast<std::int32_t>(q)) continue;
        // Exact recheck against the *current* bound before rooting: an
        // earlier survivor may have tightened run_ub below this lane's
        // label (the common case — the first relax of a near cell often
        // closes a cheaper complete path), so the block-start kernel
        // verdict is necessary but no longer sufficient. Still in squared
        // space: only lanes that will actually be relaxed pay the sqrt.
        const double ub = std::min(alpha_[static_cast<std::size_t>(Sink())], run_ub_);
        const double r = ub - base - tau_p_[p];
        if (alpha_[q] >= ub || r <= 0.0 || d2[i] >= r * r) {
          ++metrics->relaxes_pruned;
          continue;
        }
        const double cand = std::max(std::sqrt(d2[i]) + base + tau_p_[p], alpha_[q]);
        ++metrics->distances_computed;
        ++metrics->dijkstra_relaxes;
        // p with sink residual completes an s~>q->p->t path of cost
        // cand + rc(p->t), arming every downstream bound (rc(p->t) is
        // tau_t - tau_p >= 0, with tau_t = 0 outside duals-only warm
        // starts — see RelaxSlice).
        if (sink_flow_[p] < problem_.weight(p)) {
          const double through = cand + std::max(tau_t_ - tau_p_[p], 0.0);
          if (through < run_ub_) run_ub_ = through;
        }
        Relax(static_cast<int>(nq_ + p), cand, static_cast<int>(q));
      }
    }
  }

  void RelaxProviderDense(std::size_t q, Metrics* metrics) {
    if (hier_floors_) {
      RelaxDenseHier(q, metrics);
      return;
    }
    if (tau_floors_) {
      RelaxDenseCells(q, metrics);
      return;
    }
    EnsureDenseArrays();
    RelaxSlice(q, problem_.providers[q].pos, identity_.data(), coords_.x.data(), coords_.y.data(),
               np_, /*ub_prune=*/true, metrics);
  }

  // The cell-partitioned dense fallback: same index-free spirit (no ring
  // ordering, no early exit — every occupied cell is examined on every
  // pop), but the examination unit is a cell, not a customer. Cells whose
  // best possible reduced cost (mindist + per-cell tau floor) cannot beat
  // the certified upper bound are skipped wholesale, and surviving cells
  // run through the fused kernel — so the scan's quadratic term is paid in
  // O(1) per-cell bound checks, not per-candidate distances.
  void RelaxDenseCells(std::size_t q, Metrics* metrics) {
    const Point q_pos = problem_.providers[q].pos;
    const double base = alpha_[q] - tau_q_[q];
    for (const std::int32_t cell : grid_->nonempty_cells()) {
      const auto c = static_cast<std::size_t>(cell);
      // Every occupied cell is examined on every pop; that exhaustive walk
      // is the dense fallback's defining cost and gets its own counter.
      // `cells_pruned` stays reserved for the ring path, where a pruned
      // cell is an actual early-exit win rather than the common case —
      // folding these walks in there used to inflate it ~10000x.
      ++metrics->dense_cells_checked;
      const double sink_ub = std::min(alpha_[static_cast<std::size_t>(Sink())], run_ub_);
      const double bound =
          MinDist(q_pos, grid_->CellRect(c)) + base + tau_floors_->CellFloor(c);
      if (std::max(bound, alpha_[q]) >= sink_ub) {
        metrics->relaxes_pruned += grid_->cell_end(c) - grid_->cell_begin(c);
        continue;
      }
      RelaxSliceSelect(q, q_pos, grid_->Cell(c), base, tau_floors_->values(), metrics);
    }
  }

  // Output-sensitive dense fallback over the hierarchy: the exhaustive
  // walk's unit is now a *coarse* cell, and a coarse cell whose aggregated
  // bound (mindist + coarse tau floor) cannot beat the certified upper
  // bound retires all of its children in that one check — the walk only
  // descends to fine granularity where the aggregate survives, collapsing
  // the flat fallback's O(#cells) term to O(#coarse + opened children).
  // Both levels charge dense_cells_checked (the per-pop examination unit),
  // so the flat-vs-hier collapse is visible on one counter axis.
  void RelaxDenseHier(std::size_t q, Metrics* metrics) {
    const Point q_pos = problem_.providers[q].pos;
    const double base = alpha_[q] - tau_q_[q];
    const HierarchicalGrid& grid = *hier_;
    for (const std::int32_t cc : grid.nonempty_coarse()) {
      const auto c = static_cast<std::size_t>(cc);
      ++metrics->dense_cells_checked;
      const double sink_ub = std::min(alpha_[static_cast<std::size_t>(Sink())], run_ub_);
      const double bound =
          MinDist(q_pos, grid.CoarseRect(c)) + base + hier_floors_->CoarseFloor(c);
      if (std::max(bound, alpha_[q]) >= sink_ub) {
        metrics->relaxes_pruned += grid.coarse_count(c);
        ++metrics->coarse_tails_pruned;
        continue;
      }
      ++metrics->coarse_cells_descended;
      const std::size_t fine_end = grid.fine_end(c);
      for (std::size_t f = grid.fine_begin(c); f < fine_end; ++f) {
        const std::size_t count = grid.fine_cell_end(f) - grid.fine_cell_begin(f);
        if (count == 0) continue;
        ++metrics->dense_cells_checked;
        // Re-read per fine cell: relaxing a child can tighten run_ub_.
        const double fine_ub = std::min(alpha_[static_cast<std::size_t>(Sink())], run_ub_);
        const double fine_bound =
            MinDist(q_pos, grid.FineRect(f)) + base + hier_floors_->FineFloor(f);
        if (std::max(fine_bound, alpha_[q]) >= fine_ub) {
          metrics->relaxes_pruned += count;
          continue;
        }
        RelaxSliceSelect(q, q_pos, grid.FineCell(f), base, hier_floors_->values(), metrics);
      }
    }
  }

  // Grid-pruned relax: pull candidate cells off a GridRingCursor (the
  // shared discovery primitive, geo/grid_cursor.h) in rings of increasing
  // minimum distance from q, and stop as soon as the lower bound on the
  // label any remaining customer could receive
  //     alpha(q) + max(TailMinDist - tau(q) + min_p tau(p), 0)
  // reaches the tentative sink label: such labels can neither beat the
  // shortest path of this run nor move the potentials afterwards (the
  // invariant is spelled out in src/flow/README.md).
  void RelaxProviderGrid(std::size_t q, Metrics* metrics) {
    const Point q_pos = problem_.providers[q].pos;
    if (shared_sweep_ != nullptr) {
      // Shared sweep: identical scan order, but cells another provider
      // already materialised are served resident — only first fetches
      // charge the index-read ledger.
      shared_sweep_->Reset(q_pos);
      const SharedFrontierStats before = shared_sweep_->stats();
      RelaxOverCursor(q, q_pos, *shared_sweep_, metrics);
      const SharedFrontierStats& after = shared_sweep_->stats();
      const std::uint64_t fetches = after.cell_fetches - before.cell_fetches;
      metrics->grid_cursor_cells += fetches;
      metrics->index_node_accesses += fetches;
      metrics->shared_frontier_cell_fetches += fetches;
      metrics->shared_frontier_fanout += after.fanout - before.fanout;
      return;
    }
    GridRingCursor& cursor = *relax_cursor_;
    cursor.Reset(q_pos);
    RelaxOverCursor(q, q_pos, cursor, metrics);
    // The cursor's own counter is the source of truth for cell charging
    // (same convention as GridNnSource); it was reset at scan start.
    metrics->grid_cursor_cells += cursor.cells_visited();
    metrics->index_node_accesses += cursor.cells_visited();
  }

  // The relax scan itself, generic over the cursor flavour (private
  // GridRingCursor or SharedCellSweep — both expose TailMinDist /
  // NextCell / points_remaining). Charging stays with the caller.
  template <typename Cursor>
  void RelaxOverCursor(std::size_t q, const Point& q_pos, Cursor& cursor, Metrics* metrics) {
    const double base = alpha_[q] - tau_q_[q];
    const double slack = base + min_tau_p_;
    int last_ring = -1;
    while (true) {
      // `sink_ub` only shrinks while cells are scanned (run_ub_ picks up
      // completed s~>t paths), so re-read it per cell.
      const double sink_ub = std::min(alpha_[static_cast<std::size_t>(Sink())], run_ub_);
      if (std::max(cursor.TailMinDist() + slack, alpha_[q]) >= sink_ub) {
        metrics->relaxes_pruned += cursor.points_remaining();
        break;
      }
      const auto cell = cursor.NextCell();
      if (!cell) break;
      if (cell->ring != last_ring) {
        last_ring = cell->ring;
        ++metrics->grid_rings_scanned;
      }
      // Per-cell refinement of the same bound (nothing between the sink_ub
      // read and this check can tighten run_ub_, so sink_ub is current).
      // With floors on, the cell's own tau floor replaces the global one —
      // cells whose residents' potentials all grew are skipped even when
      // the ring bound (held down by the global floor) cannot exit yet.
      const double floor = tau_floors_ ? tau_floors_->CellFloor(cell->cell) : min_tau_p_;
      if (std::max(cell->min_dist + base + floor, alpha_[q]) >= sink_ub) {
        metrics->relaxes_pruned += cell->slice.count;
        ++metrics->cells_pruned;
        continue;
      }
      if (tau_floors_) {
        RelaxSliceSelect(q, q_pos, cell->slice, base, tau_floors_->values(), metrics);
      } else {
        RelaxSlice(q, q_pos, cell->slice.ids, cell->slice.xs, cell->slice.ys, cell->slice.count,
                   /*ub_prune=*/false, metrics);
      }
    }
  }

  // Hierarchical ring relax: same outer contract as RelaxProviderGrid, but
  // the cursor serves *coarse* cells and the charging unit is the fine
  // cells actually opened — coarse-tail rejections never touch the fetch
  // ledger (the whole point: rejected regions cost one compare, not s^2).
  void RelaxProviderHier(std::size_t q, Metrics* metrics) {
    const Point q_pos = problem_.providers[q].pos;
    if (hier_sweep_ != nullptr) {
      hier_sweep_->Reset(q_pos);
      const SharedFrontierStats before = hier_sweep_->stats();
      RelaxOverHier(q, q_pos, *hier_sweep_, metrics);
      const SharedFrontierStats& after = hier_sweep_->stats();
      const std::uint64_t fetches = after.cell_fetches - before.cell_fetches;
      metrics->grid_cursor_cells += fetches;
      metrics->index_node_accesses += fetches;
      metrics->shared_frontier_cell_fetches += fetches;
      metrics->shared_frontier_fanout += after.fanout - before.fanout;
      return;
    }
    PrivateHierSweep& sweep = *hier_private_;
    sweep.Reset(q_pos);
    RelaxOverHier(q, q_pos, sweep, metrics);
    metrics->grid_cursor_cells += sweep.fetches;
    metrics->index_node_accesses += sweep.fetches;
  }

  // The hierarchical relax scan, generic over the sweep flavour (private
  // PrivateHierSweep or shared HierCellSweep — both expose TailMinDist /
  // NextCoarse / points_remaining / ChargeFine). Three nested bounds, each
  // a certified reduced-cost lower bound so the matchings stay identical
  // to every other strategy (src/geo/README.md): the coarse ring tail
  // (global floor), the coarse cell (aggregated coarse floor, the O(1)
  // tail exit), and the fine cell (its own floor), with the fused kernel
  // below that.
  template <typename Sweep>
  void RelaxOverHier(std::size_t q, const Point& q_pos, Sweep& sweep, Metrics* metrics) {
    const HierarchicalGrid& grid = *hier_;
    const double base = alpha_[q] - tau_q_[q];
    const double slack = base + min_tau_p_;
    int last_ring = -1;
    struct FineRef {
      double min_dist;
      std::int32_t fine;
    };
    FineRef fines[HierarchicalGrid::Options::kMaxSplit * HierarchicalGrid::Options::kMaxSplit];
    while (true) {
      // `sink_ub` only shrinks while cells are scanned (run_ub_ picks up
      // completed s~>t paths), so re-read it per coarse cell.
      const double sink_ub = std::min(alpha_[static_cast<std::size_t>(Sink())], run_ub_);
      if (std::max(sweep.TailMinDist() + slack, alpha_[q]) >= sink_ub) {
        metrics->relaxes_pruned += sweep.points_remaining();
        break;
      }
      const auto coarse = sweep.NextCoarse();
      if (!coarse) break;
      if (coarse->ring != last_ring) {
        last_ring = coarse->ring;
        ++metrics->grid_rings_scanned;
      }
      // The O(1) coarse-tail exit: the aggregated floor bounds every child,
      // so a failed coarse cell retires all of its residents in one compare
      // (nothing between the sink_ub read and here tightens run_ub_).
      const double coarse_bound =
          coarse->min_dist + base + hier_floors_->CoarseFloor(coarse->cell);
      if (std::max(coarse_bound, alpha_[q]) >= sink_ub) {
        metrics->relaxes_pruned += coarse->count;
        ++metrics->coarse_tails_pruned;
        continue;
      }
      ++metrics->coarse_cells_descended;
      // Descend: occupied children, nearest-first so run_ub_ tightens off
      // the close ones before the far ones are bounded (same reason ring
      // cells are served mindist-sorted). Ties by ascending fine id keep
      // the scan order deterministic.
      std::size_t n = 0;
      for (std::size_t f = coarse->fine_begin; f < coarse->fine_end; ++f) {
        if (grid.fine_cell_end(f) == grid.fine_cell_begin(f)) continue;
        fines[n++] = FineRef{MinDist(q_pos, grid.FineRect(f)), static_cast<std::int32_t>(f)};
      }
      if (n > 1) {
        std::sort(fines, fines + n, [](const FineRef& a, const FineRef& b) {
          return a.min_dist != b.min_dist ? a.min_dist < b.min_dist : a.fine < b.fine;
        });
      }
      for (std::size_t i = 0; i < n; ++i) {
        const auto f = static_cast<std::size_t>(fines[i].fine);
        const std::size_t count = grid.fine_cell_end(f) - grid.fine_cell_begin(f);
        // Re-read per fine cell: relaxing a sibling can tighten run_ub_.
        const double fine_ub = std::min(alpha_[static_cast<std::size_t>(Sink())], run_ub_);
        const double fine_bound = fines[i].min_dist + base + hier_floors_->FineFloor(f);
        if (std::max(fine_bound, alpha_[q]) >= fine_ub) {
          metrics->relaxes_pruned += count;
          ++metrics->cells_pruned;
          continue;
        }
        sweep.ChargeFine(f);
        RelaxSliceSelect(q, q_pos, grid.FineCell(f), base, hier_floors_->values(), metrics);
      }
    }
  }

  // Relax step for the virtual overflow slot: one flat-penalty edge to
  // every customer, scanned densely. The penalty dominates every real
  // distance by construction, so this node sits at the bottom of the heap
  // and pops only on runs where no cheaper real residual path reaches the
  // sink — the dense scan is not a hot path, and the run_ub prune still
  // skips customers that cannot beat the current certified upper bound.
  void RelaxVirtual(Metrics* metrics) {
    const std::size_t q = real_nq_;
    const double base = alpha_[q] - tau_q_[q] + penalty_;
    for (std::size_t p = 0; p < np_; ++p) {
      // A saturated unit edge only has its reverse direction left.
      if (unit_customers_ && serving_[p] == static_cast<std::int32_t>(q)) continue;
      const double cand = std::max(base + tau_p_[p], alpha_[q]);
      if (cand >= std::min(alpha_[static_cast<std::size_t>(Sink())], run_ub_)) {
        ++metrics->relaxes_pruned;
        continue;
      }
      ++metrics->dijkstra_relaxes;
      if (sink_flow_[p] < problem_.weight(p)) {
        const double through = cand + std::max(tau_t_ - tau_p_[p], 0.0);
        if (through < run_ub_) run_ub_ = through;
      }
      Relax(static_cast<int>(nq_ + p), cand, static_cast<int>(q));
    }
  }

  void RelaxCustomer(std::size_t p, Metrics* metrics) {
    // Sink edge (cost 0, reduced tau_t - tau_p). With tau_t = 0 — cold
    // and flow-adopting warm starts — the clamp relaxes every unsaturated
    // customer at +0, making each run target the nearest deficit (the
    // transportation-SSP reading in AdoptFlow's comment). Duals-only warm
    // starts set tau_t = max tau_p, so there the reduced cost is a true
    // tau_t - tau_p >= 0.
    if (sink_flow_[p] < problem_.weight(p)) {
      ++metrics->dijkstra_relaxes;
      Relax(Sink(), alpha_[nq_ + p] + std::max(tau_t_ - tau_p_[p], 0.0),
            static_cast<int>(nq_ + p));
    }
    // Reverse edges toward providers currently serving p.
    ForEachFlow(p, [&](std::int32_t provider, std::int64_t /*units*/) {
      ++metrics->dijkstra_relaxes;
      const auto q = static_cast<std::size_t>(provider);
      const double w = -EdgeCost(q, p) - tau_p_[p] + tau_q_[q];
      Relax(provider, alpha_[nq_ + p] + std::max(w, 0.0), static_cast<int>(nq_ + p));
    });
  }

  // Traces prev_ pointers from the sink, pushes the bottleneck flow.
  std::int64_t Augment(std::int64_t limit) {
    // First pass: find the bottleneck.
    std::int64_t push = limit;
    int v = Sink();
    while (true) {
      const int u = prev_[static_cast<std::size_t>(v)];
      if (v == Sink()) {
        const auto p = static_cast<std::size_t>(u) - nq_;
        push = std::min<std::int64_t>(push, problem_.weight(p) - sink_flow_[p]);
      } else if (static_cast<std::size_t>(v) < nq_ && u >= 0) {
        // Reverse edge p->q: limited by the units currently flowing.
        const auto p = static_cast<std::size_t>(u) - nq_;
        push = std::min<std::int64_t>(push, FlowUnits(static_cast<std::size_t>(v), p));
      } else if (static_cast<std::size_t>(v) >= nq_) {
        if (unit_customers_) push = std::min<std::int64_t>(push, 1);
      }
      if (u < 0) {
        // v is the first provider, fed by the source edge.
        const auto q = static_cast<std::size_t>(v);
        push = std::min<std::int64_t>(push, ProviderCapacity(q) - used_q_[q]);
        break;
      }
      v = u;
    }
    // Second pass: apply.
    v = Sink();
    while (true) {
      const int u = prev_[static_cast<std::size_t>(v)];
      if (v == Sink()) {
        sink_flow_[static_cast<std::size_t>(u) - nq_] += push;
      } else if (static_cast<std::size_t>(v) < nq_ && u >= 0) {
        AddFlow(static_cast<std::size_t>(v), static_cast<std::size_t>(u) - nq_, -push);
      } else if (static_cast<std::size_t>(v) >= nq_ && u >= 0 &&
                 static_cast<std::size_t>(u) < nq_) {
        AddFlow(static_cast<std::size_t>(u), static_cast<std::size_t>(v) - nq_, push);
      }
      if (u < 0) {
        used_q_[static_cast<std::size_t>(v)] += push;
        break;
      }
      v = u;
    }
    return push;
  }

  void UpdatePotentials(double d) {
    for (int u : touched_) {
      const double delta = d - alpha_[static_cast<std::size_t>(u)];
      if (delta <= 0.0) continue;
      if (static_cast<std::size_t>(u) < nq_) {
        tau_q_[static_cast<std::size_t>(u)] += delta;
      } else if (static_cast<std::size_t>(u) < nq_ + np_) {
        const std::size_t p = static_cast<std::size_t>(u) - nq_;
        tau_p_[p] += delta;
        // Customer potentials only grow, so the incremental floor update
        // stays within the floor tables' monotone contract. Only the
        // touched cells (and, for the hierarchy, the coarse cells they
        // cascade into) do any work — this replaced the per-run O(|P|)
        // min rescan.
        if (hier_floors_) {
          hier_floors_->Raise(p, tau_p_[p]);
        } else if (tau_floors_) {
          tau_floors_->Raise(p, tau_p_[p]);
        }
      }
    }
  }

  // --- flow records ---------------------------------------------------------

  template <typename Fn>
  void ForEachFlow(std::size_t p, Fn&& fn) const {
    if (unit_customers_) {
      if (serving_[p] >= 0) fn(serving_[p], std::int64_t{1});
      return;
    }
    for (const auto& f : flows_[p]) fn(f.provider, f.units);
  }

  std::int64_t FlowUnits(std::size_t q, std::size_t p) const {
    if (unit_customers_) {
      return serving_[p] == static_cast<std::int32_t>(q) ? 1 : 0;
    }
    const auto& list = flows_[p];
    const auto it = std::lower_bound(
        list.begin(), list.end(), static_cast<std::int32_t>(q),
        [](const FlowRec& f, std::int32_t provider) { return f.provider < provider; });
    return (it != list.end() && it->provider == static_cast<std::int32_t>(q)) ? it->units : 0;
  }

  void AddFlow(std::size_t q, std::size_t p, std::int64_t delta) {
    if (unit_customers_) {
      if (delta > 0) {
        assert(delta == 1 && serving_[p] < 0);
        serving_[p] = static_cast<std::int32_t>(q);
      } else {
        assert(delta == -1 && serving_[p] == static_cast<std::int32_t>(q));
        serving_[p] = -1;
      }
      return;
    }
    auto& list = flows_[p];
    const auto it = std::lower_bound(
        list.begin(), list.end(), static_cast<std::int32_t>(q),
        [](const FlowRec& f, std::int32_t provider) { return f.provider < provider; });
    if (it != list.end() && it->provider == static_cast<std::int32_t>(q)) {
      it->units += delta;
      assert(it->units >= 0);
      if (it->units == 0) list.erase(it);
      return;
    }
    assert(delta > 0);
    list.insert(it, FlowRec{static_cast<std::int32_t>(q), delta});
  }

  void ExtractMatching(Matching* matching) const {
    for (std::size_t p = 0; p < np_; ++p) {
      ForEachFlow(p, [&](std::int32_t provider, std::int64_t units) {
        // Units on the virtual overflow slot are demand no real provider
        // can serve; they surface in SspaResult::unassigned, never in the
        // matching (whose cost stays penalty-free).
        if (overflow_ > 0 && static_cast<std::size_t>(provider) == real_nq_) return;
        matching->Add(provider, static_cast<std::int32_t>(p),
                      static_cast<std::int32_t>(units),
                      Distance(problem_.providers[static_cast<std::size_t>(provider)].pos,
                               problem_.customers[p]));
      });
    }
  }

  // The dense scan's SoA snapshot and identity id slice, built on first
  // use only (grid mode never needs them).
  void EnsureDenseArrays() {
    if (identity_.size() == np_) return;
    coords_.Assign(problem_.customers);
    identity_.resize(np_);
    for (std::size_t i = 0; i < np_; ++i) identity_[i] = static_cast<std::int32_t>(i);
  }

  struct FlowRec {
    std::int32_t provider;
    std::int64_t units;
  };

  // Private-cursor flavour of the hierarchical sweep: same surface as
  // HierCellSweep, but with no cross-pop residency every opened fine cell
  // is a fetch (the exact analogue of GridRingCursor's per-scan charging).
  struct PrivateHierSweep {
    explicit PrivateHierSweep(const HierarchicalGrid& grid) : cursor(grid, Point{}) {}
    void Reset(const Point& query) {
      cursor.Reset(query);
      fetches = 0;
    }
    double TailMinDist() const { return cursor.TailMinDist(); }
    std::size_t points_remaining() const { return cursor.points_remaining(); }
    std::optional<HierRingCursor::CoarseView> NextCoarse() { return cursor.NextCoarse(); }
    void ChargeFine(std::size_t /*fine*/) { ++fetches; }
    HierRingCursor cursor;
    std::uint64_t fetches = 0;
  };

  const Problem& problem_;
  SspaConfig config_;
  // Declaration order matters: the ctor init list derives overflow_ and
  // penalty_ from the problem, then nq_ = real_nq_ + (overflow_ > 0).
  std::size_t real_nq_;        // providers the caller knows about
  std::int64_t overflow_ = 0;  // virtual slot capacity; 0 = no virtual slot
  double penalty_ = 0.0;       // flat virtual edge cost (> any real distance)
  std::size_t nq_;             // real_nq_ plus the virtual slot if active
  std::size_t np_;
  bool unit_customers_;
  PointsSoA coords_;  // legacy dense mode only, built lazily
  std::unique_ptr<UniformGrid> owned_grid_;  // null when borrowing config_.shared_grid
  const UniformGrid* grid_ = nullptr;
  std::unique_ptr<CellTauTable> tau_floors_;        // use_cell_floors mode
  std::unique_ptr<GridRingCursor> relax_cursor_;    // reset per provider pop
  std::unique_ptr<SharedCellSweep> shared_sweep_;  // use_shared_frontier mode
  std::unique_ptr<HierarchicalGrid> owned_hier_;  // null when borrowing shared_hier_grid
  const HierarchicalGrid* hier_ = nullptr;        // set iff the hierarchy is active
  std::unique_ptr<HierTauTable> hier_floors_;
  std::unique_ptr<PrivateHierSweep> hier_private_;  // hier ring scans, private flavour
  std::unique_ptr<HierCellSweep> hier_sweep_;       // ... shared-frontier flavour
  bool warm_ = false;     // initial_potentials adopted (RepairDuals will run)
  double tau_t_ = 0.0;    // sink potential; 0 except duals-only warm starts (max seed tau_p)
  double min_tau_p_ = 0.0;
  double run_ub_ = kInf;  // best known complete-path cost this Dijkstra run
  std::vector<double> tau_q_;
  std::vector<double> tau_p_;
  std::vector<std::int64_t> used_q_;
  std::vector<std::int64_t> sink_flow_;
  std::vector<std::int32_t> serving_;        // unit customers: provider or -1
  std::vector<std::vector<FlowRec>> flows_;  // weighted: sorted by provider
  std::vector<std::int32_t> identity_;       // dense relax id slice, built lazily
  std::vector<double> alpha_;
  std::vector<int> prev_;
  IndexedHeap heap_;
  std::vector<int> touched_;
};

}  // namespace

SspaResult SolveSspa(const Problem& problem, const SspaConfig& config) {
  return SspaSolver(problem, config).Run();
}

SspaResult SolveSspa(const Problem& problem) { return SolveSspa(problem, SspaConfig{}); }

}  // namespace cca
