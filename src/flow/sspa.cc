#include "flow/sspa.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "common/indexed_heap.h"
#include "common/timer.h"

namespace cca {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Dense SSPA state. Node ids: providers [0, nq), customers [nq, nq+np),
// sink t = nq+np. The source is implicit: Dijkstra seeds every provider
// with remaining capacity at alpha = tau(q) (reduced cost of s->q).
class DenseSspa {
 public:
  explicit DenseSspa(const Problem& problem)
      : problem_(problem),
        nq_(problem.providers.size()),
        np_(problem.customers.size()),
        unit_customers_(problem.weights.empty()),
        tau_q_(nq_, 0.0),
        tau_p_(np_, 0.0),
        used_q_(nq_, 0),
        sink_flow_(np_, 0),
        flows_(np_),
        alpha_(nq_ + np_ + 1, kInf),
        prev_(nq_ + np_ + 1, -1),
        heap_(nq_ + np_ + 1) {}

  SspaResult Run() {
    Timer timer;
    SspaResult result;
    result.conceptual_edges = static_cast<std::uint64_t>(nq_) * static_cast<std::uint64_t>(np_);
    std::int64_t remaining = problem_.Gamma();
    while (remaining > 0) {
      const double d = Dijkstra(&result.metrics);
      assert(d < kInf && "flow graph must admit gamma units");
      const std::int64_t pushed = Augment(remaining);
      UpdatePotentials(d);
      remaining -= pushed;
      ++result.metrics.augmentations;
    }
    ExtractMatching(&result.matching);
    result.metrics.cpu_millis = timer.ElapsedMillis();
    return result;
  }

 private:
  int Sink() const { return static_cast<int>(nq_ + np_); }

  bool HasFlow(std::size_t q, std::size_t p) const {
    for (const auto& f : flows_[p]) {
      if (static_cast<std::size_t>(f.provider) == q) return true;
    }
    return false;
  }

  // One Dijkstra run over the residual graph with reduced costs; returns
  // the shortest-path cost to the sink. Fills `touched_` with de-heaped
  // nodes (all have alpha <= D).
  double Dijkstra(Metrics* metrics) {
    ++metrics->dijkstra_runs;
    heap_.Clear();
    touched_.clear();
    std::fill(alpha_.begin(), alpha_.end(), kInf);
    std::fill(prev_.begin(), prev_.end(), -1);
    for (std::size_t q = 0; q < nq_; ++q) {
      if (used_q_[q] < problem_.providers[q].capacity) {
        alpha_[q] = tau_q_[q];
        prev_[q] = -1;  // reached from the source
        heap_.PushOrDecrease(static_cast<int>(q), alpha_[q]);
      }
    }
    while (!heap_.empty()) {
      const auto [u, key] = heap_.PopMin();
      ++metrics->dijkstra_pops;
      if (u == Sink()) return key;
      touched_.push_back(u);
      if (static_cast<std::size_t>(u) < nq_) {
        RelaxProvider(static_cast<std::size_t>(u), metrics);
      } else {
        RelaxCustomer(static_cast<std::size_t>(u) - nq_, metrics);
      }
    }
    return kInf;
  }

  void Relax(int node, double cand, int from) {
    if (cand < alpha_[static_cast<std::size_t>(node)]) {
      alpha_[static_cast<std::size_t>(node)] = cand;
      prev_[static_cast<std::size_t>(node)] = from;
      heap_.PushOrDecrease(node, cand);
    }
  }

  void RelaxProvider(std::size_t q, Metrics* metrics) {
    const Point q_pos = problem_.providers[q].pos;
    for (std::size_t p = 0; p < np_; ++p) {
      // A saturated unit edge only has its reverse direction left.
      if (unit_customers_ && HasFlow(q, p)) continue;
      ++metrics->dijkstra_relaxes;
      const double w = Distance(q_pos, problem_.customers[p]) - tau_q_[q] + tau_p_[p];
      Relax(static_cast<int>(nq_ + p), alpha_[q] + std::max(w, 0.0), static_cast<int>(q));
    }
  }

  void RelaxCustomer(std::size_t p, Metrics* metrics) {
    // Sink edge (cost 0, reduced -tau_p which is 0 while unsaturated).
    if (sink_flow_[p] < problem_.weight(p)) {
      ++metrics->dijkstra_relaxes;
      Relax(Sink(), alpha_[nq_ + p] + std::max(-tau_p_[p], 0.0), static_cast<int>(nq_ + p));
    }
    // Reverse edges toward providers currently serving p.
    const Point p_pos = problem_.customers[p];
    for (const auto& f : flows_[p]) {
      ++metrics->dijkstra_relaxes;
      const auto q = static_cast<std::size_t>(f.provider);
      const double w = -Distance(problem_.providers[q].pos, p_pos) - tau_p_[p] + tau_q_[q];
      Relax(f.provider, alpha_[nq_ + p] + std::max(w, 0.0), static_cast<int>(nq_ + p));
    }
  }

  // Traces prev_ pointers from the sink, pushes the bottleneck flow.
  std::int64_t Augment(std::int64_t limit) {
    // First pass: find the bottleneck.
    std::int64_t push = limit;
    int v = Sink();
    while (true) {
      const int u = prev_[static_cast<std::size_t>(v)];
      if (v == Sink()) {
        const auto p = static_cast<std::size_t>(u) - nq_;
        push = std::min<std::int64_t>(push, problem_.weight(p) - sink_flow_[p]);
      } else if (static_cast<std::size_t>(v) < nq_ && u >= 0) {
        // Reverse edge p->q: limited by the units currently flowing.
        const auto p = static_cast<std::size_t>(u) - nq_;
        push = std::min<std::int64_t>(push, FlowUnits(static_cast<std::size_t>(v), p));
      } else if (static_cast<std::size_t>(v) >= nq_) {
        if (unit_customers_) push = std::min<std::int64_t>(push, 1);
      }
      if (u < 0) {
        // v is the first provider, fed by the source edge.
        const auto q = static_cast<std::size_t>(v);
        push = std::min<std::int64_t>(push, problem_.providers[q].capacity - used_q_[q]);
        break;
      }
      v = u;
    }
    // Second pass: apply.
    v = Sink();
    while (true) {
      const int u = prev_[static_cast<std::size_t>(v)];
      if (v == Sink()) {
        sink_flow_[static_cast<std::size_t>(u) - nq_] += push;
      } else if (static_cast<std::size_t>(v) < nq_ && u >= 0) {
        AddFlow(static_cast<std::size_t>(v), static_cast<std::size_t>(u) - nq_, -push);
      } else if (static_cast<std::size_t>(v) >= nq_ && u >= 0 &&
                 static_cast<std::size_t>(u) < nq_) {
        AddFlow(static_cast<std::size_t>(u), static_cast<std::size_t>(v) - nq_, push);
      }
      if (u < 0) {
        used_q_[static_cast<std::size_t>(v)] += push;
        break;
      }
      v = u;
    }
    return push;
  }

  void UpdatePotentials(double d) {
    for (int u : touched_) {
      const double delta = d - alpha_[static_cast<std::size_t>(u)];
      if (delta <= 0.0) continue;
      if (static_cast<std::size_t>(u) < nq_) {
        tau_q_[static_cast<std::size_t>(u)] += delta;
      } else if (static_cast<std::size_t>(u) < nq_ + np_) {
        tau_p_[static_cast<std::size_t>(u) - nq_] += delta;
      }
    }
  }

  std::int64_t FlowUnits(std::size_t q, std::size_t p) const {
    for (const auto& f : flows_[p]) {
      if (static_cast<std::size_t>(f.provider) == q) return f.units;
    }
    return 0;
  }

  void AddFlow(std::size_t q, std::size_t p, std::int64_t delta) {
    auto& list = flows_[p];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (static_cast<std::size_t>(list[i].provider) == q) {
        list[i].units += delta;
        assert(list[i].units >= 0);
        if (list[i].units == 0) {
          list[i] = list.back();
          list.pop_back();
        }
        return;
      }
    }
    assert(delta > 0);
    list.push_back(FlowRec{static_cast<int>(q), delta});
  }

  void ExtractMatching(Matching* matching) const {
    for (std::size_t p = 0; p < np_; ++p) {
      for (const auto& f : flows_[p]) {
        matching->Add(f.provider, static_cast<std::int32_t>(p),
                      static_cast<std::int32_t>(f.units),
                      Distance(problem_.providers[static_cast<std::size_t>(f.provider)].pos,
                               problem_.customers[p]));
      }
    }
  }

  struct FlowRec {
    int provider;
    std::int64_t units;
  };

  const Problem& problem_;
  std::size_t nq_;
  std::size_t np_;
  bool unit_customers_;
  std::vector<double> tau_q_;
  std::vector<double> tau_p_;
  std::vector<std::int64_t> used_q_;
  std::vector<std::int64_t> sink_flow_;
  std::vector<std::vector<FlowRec>> flows_;  // customer -> providers serving it
  std::vector<double> alpha_;
  std::vector<int> prev_;
  IndexedHeap heap_;
  std::vector<int> touched_;
};

}  // namespace

SspaResult SolveSspa(const Problem& problem) { return DenseSspa(problem).Run(); }

}  // namespace cca
