// Generic min-cost-flow network on explicit edge lists.
//
// This is the textbook formulation of Section 2.1: integer capacities, real
// costs, residual twin edges. It is deliberately simple (Bellman-Ford based
// successive shortest paths) and serves as an *independent oracle* for the
// specialised solvers: tests build the complete CCA flow graph here and
// compare optimal costs, and the Klein optimality certificate runs negative
// cycle detection on this structure.
#ifndef CCA_FLOW_FLOW_NETWORK_H_
#define CCA_FLOW_FLOW_NETWORK_H_

#include <cstdint>
#include <vector>

namespace cca {

class FlowNetwork {
 public:
  struct Edge {
    int to = -1;
    int twin = -1;          // index of the reverse edge
    std::int64_t cap = 0;   // remaining capacity
    double cost = 0.0;      // real (not reduced) cost
  };

  // Creates a network with `num_nodes` nodes and no edges.
  explicit FlowNetwork(int num_nodes);

  int num_nodes() const { return static_cast<int>(adj_.size()); }

  // Adds a directed edge u->v (and its zero-capacity twin). Returns the
  // edge index, usable with `edge()` to read residual state after a solve.
  int AddEdge(int u, int v, std::int64_t cap, double cost);

  const Edge& edge(int index) const { return edges_[static_cast<std::size_t>(index)]; }

  // Flow pushed through edge `index` so far (capacity moved to the twin).
  std::int64_t FlowOn(int index) const;

  // Sends up to `target` units from s to t along successive cheapest paths
  // (Bellman-Ford, so negative residual costs are fine). Returns the pair
  // {units actually sent, total cost}.
  struct SolveResult {
    std::int64_t flow = 0;
    double cost = 0.0;
  };
  SolveResult MinCostFlow(int s, int t, std::int64_t target);

  // Detects a residual negative-cost cycle (Klein's optimality condition:
  // a feasible flow is minimum-cost iff none exists). `eps` guards against
  // floating point noise.
  bool HasNegativeCycle(double eps = 1e-7);

 private:
  // Bellman-Ford from s over residual edges; fills dist/parent-edge.
  bool ShortestPath(int s, int t, std::vector<double>* dist, std::vector<int>* parent_edge);

  std::vector<Edge> edges_;
  std::vector<std::int64_t> initial_cap_;
  std::vector<std::vector<int>> adj_;  // node -> edge indices
};

}  // namespace cca

#endif  // CCA_FLOW_FLOW_NETWORK_H_
