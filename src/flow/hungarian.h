// Hungarian algorithm baseline (paper Section 2.1 related work [8, 11]).
//
// The classic Kuhn-Munkres method solves one-to-one assignment over an
// explicit cost matrix. CCA reduces to it by expanding every provider q
// into q.k unit-capacity slots, which is exactly why the paper dismisses
// it for large inputs: the (expanded) matrix has sum(k) * |P| entries. We
// implement the O(rows^2 * cols) shortest-augmenting-path formulation as an
// additional *independent* optimal baseline for tests and the baseline
// benchmark; distances are computed on the fly, but the quadratic row
// scans still embody the matrix-style cost the paper criticises.
#ifndef CCA_FLOW_HUNGARIAN_H_
#define CCA_FLOW_HUNGARIAN_H_

#include <cstdint>

#include "common/metrics.h"
#include "core/matching.h"
#include "core/problem.h"

namespace cca {

struct HungarianResult {
  Matching matching;
  Metrics metrics;
  // Size of the conceptual cost matrix (rows * cols after expansion).
  std::uint64_t matrix_cells = 0;
};

// Optimal CCA via capacity expansion + rectangular Hungarian. Requires
// unit customer weights. Intended for small/medium instances.
HungarianResult SolveHungarian(const Problem& problem);

}  // namespace cca

#endif  // CCA_FLOW_HUNGARIAN_H_
