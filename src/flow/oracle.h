// Independent correctness oracles for CCA solvers.
//
// Three levels of assurance, used throughout the test suite:
//  1. BruteForceOptimal: exhaustive search, tiny instances only.
//  2. SolveWithNetworkOracle: generic Bellman-Ford min-cost flow over the
//     explicit Section-2.1 flow graph (FlowNetwork).
//  3. IsOptimalMatching: Klein's optimality certificate — a feasible
//     maximum-size matching is optimal iff the residual graph it induces
//     has no negative-cost cycle. This validates *any* solver's output
//     without needing a second solver run.
#ifndef CCA_FLOW_ORACLE_H_
#define CCA_FLOW_ORACLE_H_

#include "core/matching.h"
#include "core/problem.h"

namespace cca {

// Exhaustively enumerates assignments (providers^customers); requires unit
// customer weights and a tiny instance (customers^providers manageable).
Matching BruteForceOptimal(const Problem& problem);

// Optimal matching via the generic FlowNetwork solver (handles weighted
// customers). Quadratic edge count: small/medium instances only.
Matching SolveWithNetworkOracle(const Problem& problem);

// True iff `matching` is a valid maximum-size assignment of minimal cost.
bool IsOptimalMatching(const Problem& problem, const Matching& matching);

}  // namespace cca

#endif  // CCA_FLOW_ORACLE_H_
