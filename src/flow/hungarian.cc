#include "flow/hungarian.h"

#include <cassert>
#include <limits>
#include <vector>

#include "common/timer.h"

namespace cca {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Rectangular Hungarian (shortest augmenting path with dual potentials,
// the classic e-maxx formulation): assigns every row to a distinct column,
// rows <= cols, minimising total cost. `cost(i, j)` is evaluated lazily.
template <typename CostFn>
std::vector<int> RectangularHungarian(std::size_t rows, std::size_t cols, CostFn cost,
                                      Metrics* metrics) {
  assert(rows <= cols);
  // 1-based arrays; p[j] = row matched to column j (0 = none).
  std::vector<double> u(rows + 1, 0.0), v(cols + 1, 0.0);
  std::vector<int> p(cols + 1, 0), way(cols + 1, 0);
  for (std::size_t i = 1; i <= rows; ++i) {
    p[0] = static_cast<int>(i);
    int j0 = 0;
    std::vector<double> minv(cols + 1, kInf);
    std::vector<char> used(cols + 1, 0);
    do {
      used[static_cast<std::size_t>(j0)] = 1;
      const int i0 = p[static_cast<std::size_t>(j0)];
      double delta = kInf;
      int j1 = -1;
      for (std::size_t j = 1; j <= cols; ++j) {
        if (used[j]) continue;
        ++metrics->dijkstra_relaxes;  // matrix-cell visits
        const double cur = cost(static_cast<std::size_t>(i0 - 1), j - 1) -
                           u[static_cast<std::size_t>(i0)] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = static_cast<int>(j);
        }
      }
      for (std::size_t j = 0; j <= cols; ++j) {
        if (used[j]) {
          u[static_cast<std::size_t>(p[j])] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<std::size_t>(j0)] != 0);
    // Augment along the alternating path.
    do {
      const int j1 = way[static_cast<std::size_t>(j0)];
      p[static_cast<std::size_t>(j0)] = p[static_cast<std::size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
    ++metrics->augmentations;
  }
  std::vector<int> row_to_col(rows, -1);
  for (std::size_t j = 1; j <= cols; ++j) {
    if (p[j] > 0) row_to_col[static_cast<std::size_t>(p[j] - 1)] = static_cast<int>(j - 1);
  }
  return row_to_col;
}

}  // namespace

HungarianResult SolveHungarian(const Problem& problem) {
  assert(problem.weights.empty() && "Hungarian baseline supports unit weights only");
  HungarianResult result;
  Timer timer;

  // Expand providers into unit slots.
  std::vector<int> slot_provider;
  for (std::size_t q = 0; q < problem.providers.size(); ++q) {
    for (int s = 0; s < problem.providers[q].capacity; ++s) {
      slot_provider.push_back(static_cast<int>(q));
    }
  }
  const std::size_t slots = slot_provider.size();
  const std::size_t customers = problem.customers.size();
  result.matrix_cells = static_cast<std::uint64_t>(slots) * customers;
  if (slots == 0 || customers == 0) return result;

  const auto dist = [&](std::size_t slot, std::size_t cust) {
    return Distance(problem.providers[static_cast<std::size_t>(slot_provider[slot])].pos,
                    problem.customers[cust]);
  };

  if (slots <= customers) {
    // Every slot gets a customer.
    const auto match = RectangularHungarian(
        slots, customers, [&](std::size_t i, std::size_t j) { return dist(i, j); },
        &result.metrics);
    for (std::size_t s = 0; s < slots; ++s) {
      if (match[s] >= 0) {
        result.matching.Add(slot_provider[s], match[s], 1,
                            dist(s, static_cast<std::size_t>(match[s])));
      }
    }
  } else {
    // Every customer gets a slot (transpose orientation).
    const auto match = RectangularHungarian(
        customers, slots, [&](std::size_t i, std::size_t j) { return dist(j, i); },
        &result.metrics);
    for (std::size_t c = 0; c < customers; ++c) {
      if (match[c] >= 0) {
        const auto s = static_cast<std::size_t>(match[c]);
        result.matching.Add(slot_provider[s], static_cast<std::int32_t>(c), 1, dist(s, c));
      }
    }
  }
  result.metrics.cpu_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace cca
