// SSPA: the Successive Shortest Path Algorithm on the complete bipartite
// CCA flow graph (paper Algorithm 1, Section 2.2).
//
// This is the main-memory baseline the incremental algorithms are compared
// against (paper Figure 8). The implementation keeps node potentials with
// the fixed-source convention (DESIGN.md Section 3.1) and relaxes the
// conceptual |Q| x |P| edge set on the fly instead of materialising it; the
// `conceptual_edges` metric reports the full graph size that a literal
// implementation would allocate.
#ifndef CCA_FLOW_SSPA_H_
#define CCA_FLOW_SSPA_H_

#include <cstdint>

#include "common/metrics.h"
#include "core/matching.h"
#include "core/problem.h"

namespace cca {

struct SspaResult {
  Matching matching;
  Metrics metrics;
  std::uint64_t conceptual_edges = 0;  // |Q| * |P|
};

// Computes the optimal CCA matching with plain SSPA. Supports weighted
// customers (used by approximate concise matching tests).
SspaResult SolveSspa(const Problem& problem);

}  // namespace cca

#endif  // CCA_FLOW_SSPA_H_
