// SSPA: the Successive Shortest Path Algorithm on the complete bipartite
// CCA flow graph (paper Algorithm 1, Section 2.2).
//
// This is the main-memory baseline the incremental algorithms are compared
// against (paper Figure 8). The implementation keeps node potentials with
// the fixed-source convention (DESIGN.md Section 3.1) and relaxes the
// conceptual |Q| x |P| edge set on the fly instead of materialising it; the
// `conceptual_edges` metric reports the full graph size that a literal
// implementation would allocate.
//
// Two relax strategies share one solver:
//   * grid (default): provider pops pull candidate customers from a uniform
//     grid in expanding rings and stop as soon as the ring lower bound on
//     reduced cost can no longer improve the tentative sink label — the
//     matchings stay cost-identical to the dense scan while the relax count
//     drops by orders of magnitude (see src/flow/README.md for the
//     invariant);
//   * dense: the every-customer-per-pop scan, kept as the A/B escape hatch
//     (`--dense` in cca_cli / bench_micro_flow).
// Orthogonally, per-cell tau floors (use_cell_floors, default on) tighten
// the per-cell bound to the cell's own potential floor and route scanned
// cells through the fused DistanceBlockSelect kernel, so candidates that
// cannot beat the certified upper bound are rejected before any sqrt or
// heap work — and the dense scan is partitioned through the same cells,
// ending its quadratic distance term (src/flow/README.md).
#ifndef CCA_FLOW_SSPA_H_
#define CCA_FLOW_SSPA_H_

#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "core/matching.h"
#include "core/problem.h"

namespace cca {

class UniformGrid;
class HierarchicalGrid;

// Node potentials (duals) of one SSPA solve, indexed like the problem's
// provider/customer arrays. Exported by every solve and accepted back as a
// warm start for the next one: successive shortest paths from zero flow
// are exact for *any* duals satisfying the feasibility condition
//
//   tau >= 0  and  dist(q, p) - tau_q[q] + tau_p[p] >= 0 for every pair,
//
// because the zero flow is trivially min-cost for its value under any
// feasible duals. End-of-solve duals violate the pair condition on matched
// edges (only their reverse direction was constrained), so a warm-started
// solve opens with a feasibility-repair pass clamping each tau_q down to
// min_p(dist + tau_p) where needed — see src/runtime/README.md for the
// full soundness argument.
struct SspaPotentials {
  std::vector<double> tau_q;
  std::vector<double> tau_p;
};

struct SspaConfig {
  // Pull relax candidates from the uniform grid with ring lower-bound early
  // exit. Off = dense scan of every customer on every provider pop (which
  // still applies the per-candidate run_ub prune — index-free, but no
  // longer relaxing candidates that cannot beat the certified upper bound).
  bool use_grid = true;
  // Grid resolution: average number of customers per cell; <= 0 auto-tunes
  // the resolution from the instance's density (UniformGrid rebuilds with
  // finer cells when the point set is skewed).
  double grid_target_per_cell = 4.0;
  // Serve the relax scans from one SharedCellSweep subscribed to by every
  // provider instead of a private per-solver ring cursor: providers popped
  // at similar keys re-scan overlapping cells, and the sweep keeps swept
  // cells resident so only first materialisations charge an index read
  // (geo/shared_frontier.h). Relax order and matchings are identical to
  // the private-cursor path; only the cell-fetch ledger changes.
  bool use_shared_frontier = false;
  // Per-cell tau_p floors (geo/grid.h CellTauTable), maintained
  // incrementally as augmentations move the potentials. They (a) replace
  // the O(|P|) min-scan that used to open every Dijkstra run, (b) tighten
  // the per-cell reduced-cost bound so whole cells are skipped where the
  // global floor could not justify it, and (c) feed the fused
  // DistanceBlockSelect kernel, which rejects candidates against a squared
  // per-lane threshold before any sqrt or heap work. With floors on, the
  // dense fallback also partitions its scan through the same grid cells
  // instead of streaming all of |P| per pop. Matchings, pop counts and
  // augmentation counts are identical either way (the bound is a certified
  // lower bound; see src/flow/README.md); off keeps the legacy global-floor
  // paths as the A/B escape hatch.
  bool use_cell_floors = true;
  // The shared sweep's per-solve setup (resident-set allocation, per-pop
  // stats deltas) is pure overhead on instances small enough that every
  // scan is already cheap; below this many customers `use_shared_frontier`
  // silently falls back to the private per-solver cursor (identical relax
  // trajectory, zero shared-frontier metrics). Set to 0 to force the sweep.
  std::size_t shared_frontier_min_customers = 256;
  // Prebuilt grid for the relax scans, owned by the caller (the runtime's
  // SharedIndex shares one across concurrent queries). Must cover the same
  // customers at the resolution grid_target_per_cell would produce; null
  // means each solve builds a private grid. Only the grid geometry is
  // shared — per-query mutable state (tau floors, cursors, sweeps) stays
  // private to the solve either way.
  const UniformGrid* shared_grid = nullptr;
  // Two-level hierarchical grid (geo/hier_grid.h) instead of the flat one.
  // Requires use_cell_floors (the hierarchy is the floor table's coarse
  // aggregation; without floors there is nothing to aggregate, so the flag
  // silently degrades to the flat paths). When active it upgrades every
  // relax strategy: the ring scan rejects whole coarse cells against
  //     mindist(coarse) + coarse tau floor >= min(alpha(t), run_ub)
  // in O(1) (Metrics::coarse_tails_pruned) and descends into fine children
  // only when the aggregate survives (coarse_cells_descended); the dense
  // fallback becomes output-sensitive the same way (its O(#cells) walk
  // shrinks to O(#coarse + opened children)); and the resolution adapts
  // per region — overfull coarse cells split finer (hier_splits), where
  // the flat auto-tuner had to pick one global resolution. Matchings, pop
  // counts and augmentation counts are identical on/off: the coarse floor
  // under-estimates its children's floors, so every coarse rejection is a
  // union of per-cell rejections the flat path already proves sound
  // (src/geo/README.md). Off = flat grid, the A/B soundness gate.
  bool use_hierarchy = true;
  // Coarse-cell occupancy above which the builder splits the cell into
  // finer children; 0 auto-derives 4x the fine target per cell.
  std::size_t hier_split_threshold = 0;
  // Prebuilt hierarchical grid, same ownership contract as shared_grid.
  const HierarchicalGrid* shared_hier_grid = nullptr;
  // Infeasible-instance graceful degradation. When total demand exceeds
  // total capacity, gamma = total capacity and a plain solve returns the
  // min-cost *partial* matching of that size with no record of who was
  // left out — and, worse for the serving engine, the capacity-limited
  // regime disables flow adoption, so every churn step pays a full
  // re-solve. With allow_overflow the solver adds one internal *virtual*
  // provider whose capacity is exactly the overflow (total weight - total
  // capacity) and whose edge to every customer costs a flat
  // overflow_penalty: the effective gamma becomes the total weight, the
  // ample-capacity regime (and warm flow adoption) applies on both sides
  // of the feasibility boundary, and the units routed to the virtual
  // provider come back in SspaResult::unassigned instead of silently
  // vanishing. Because the virtual capacity equals the overflow exactly,
  // every feasible flow saturates the real providers, so the real
  // sub-matching is the min-cost maximum matching regardless of the
  // penalty's magnitude (the penalty contributes the constant
  // overflow * penalty, which is excluded from the reported cost along
  // with the virtual pairs). Feasible instances are bit-identical with
  // the flag on or off — the virtual provider only materialises when
  // overflow > 0. Default off so committed batch-bench trajectories are
  // untouched; AssignmentEngine turns it on.
  bool allow_overflow = false;
  // Cost of the virtual provider's edge to every customer. <= 0 derives
  // the documented default: 2x the instance's bounding-box diagonal + 1,
  // strictly above any real distance so the virtual provider never
  // undercuts real capacity in any Dijkstra run's path ordering.
  double overflow_penalty = 0.0;
  // Cooperative deadline for the whole solve, in wall milliseconds;
  // <= 0 disables. Checked once per augmentation (Dijkstra-run
  // granularity — one run is the smallest unit that leaves the duals and
  // partial flow consistent). On breach the solver stops cleanly:
  // SspaResult::deadline_exceeded is set, the matching holds the
  // (capacity-respecting, possibly partial) flow augmented so far, and
  // the unassigned ledger accounts for every unit not served by a real
  // provider. Callers own the degradation policy (AssignmentEngine falls
  // back to its last-known-good matching, src/runtime/README.md).
  double deadline_ms = 0.0;
  // Warm start (src/runtime/engine.h AssignmentEngine): duals to seed the
  // solve with, typically a previous solve's SspaResult::potentials after
  // the point sets were perturbed. Sizes must match the problem's provider
  // and customer counts; negative entries are clamped to zero. The solver
  // runs a feasibility-repair pass before the first Dijkstra (repaired
  // providers are counted in Metrics::dual_repairs), so any dual vector of
  // the right shape is safe — quality only affects speed, never the
  // matching cost. Null = cold start from zero duals.
  const SspaPotentials* initial_potentials = nullptr;
  // Flow-carrying warm start: the previous solve's matching, re-expressed
  // in *this* problem's indices (pairs whose endpoints were removed must be
  // dropped by the caller; out-of-range or over-capacity pairs are ignored
  // defensively). Surviving pairs are adopted as initial flow
  // (Metrics::warm_units_adopted) and the duals are repaired around them in
  // five single-pass steps (AdoptFlow in sspa.cc): adopt; tighten each
  // adopted customer's tau_p until its serving arc is tight; clamp each
  // tau_q forward-feasible; release any adopted pair a clamp left with
  // positive reduced cost; and release every *contested* pair — one whose
  // customer has a strictly closer non-serving provider — because churn
  // (freed capacity at a full provider, or a provider arrival) can turn
  // exactly those into negative residual cycles that successive shortest
  // paths would never cancel. Only the remaining gamma deficit is then
  // re-augmented, which is what makes a small-perturbation re-solve cheap
  // (duals alone cannot: successive shortest paths from zero flow redo all
  // gamma augmentations whatever the seeds). Adoption applies in the
  // ample-capacity regime (gamma == total weight); capacity-limited solves
  // fall back to duals-only warm start, exact but not faster —
  // src/runtime/README.md has the full argument. Ignored unless
  // initial_potentials is set.
  const Matching* initial_matching = nullptr;
};

// One customer's unserved demand in SspaResult::unassigned.
struct UnassignedUnit {
  std::int32_t customer = -1;
  std::int64_t units = 0;
};

struct SspaResult {
  Matching matching;
  Metrics metrics;
  // Final duals, feasible for this solve's flow; feed them back through
  // SspaConfig::initial_potentials to warm-start a follow-up solve.
  SspaPotentials potentials;
  std::uint64_t conceptual_edges = 0;  // |Q| * |P|
  // Units not served by any real provider, sorted by customer index: the
  // matching's exact per-customer complement. Populated whenever demand
  // goes unserved — overflow routed to the virtual provider (allow_overflow
  // on an infeasible instance), a plain capacity-limited partial solve, or
  // demand cut off by a deadline breach. Empty exactly when the matching
  // serves every customer in full.
  std::vector<UnassignedUnit> unassigned;
  std::int64_t unassigned_units = 0;
  // The cooperative deadline (SspaConfig::deadline_ms) fired before all
  // augmentations completed; matching/unassigned describe the partial
  // flow at the breach.
  bool deadline_exceeded = false;
};

// Computes the optimal CCA matching with SSPA. Supports weighted customers
// (used by approximate concise matching tests).
SspaResult SolveSspa(const Problem& problem, const SspaConfig& config);
SspaResult SolveSspa(const Problem& problem);

}  // namespace cca

#endif  // CCA_FLOW_SSPA_H_
