#include "flow/flow_network.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace cca {

FlowNetwork::FlowNetwork(int num_nodes) : adj_(static_cast<std::size_t>(num_nodes)) {}

int FlowNetwork::AddEdge(int u, int v, std::int64_t cap, double cost) {
  assert(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  const int id = static_cast<int>(edges_.size());
  edges_.push_back(Edge{v, id + 1, cap, cost});
  edges_.push_back(Edge{u, id, 0, -cost});
  initial_cap_.push_back(cap);
  initial_cap_.push_back(0);
  adj_[static_cast<std::size_t>(u)].push_back(id);
  adj_[static_cast<std::size_t>(v)].push_back(id + 1);
  return id;
}

std::int64_t FlowNetwork::FlowOn(int index) const {
  return initial_cap_[static_cast<std::size_t>(index)] -
         edges_[static_cast<std::size_t>(index)].cap;
}

bool FlowNetwork::ShortestPath(int s, int t, std::vector<double>* dist,
                               std::vector<int>* parent_edge) {
  const double inf = std::numeric_limits<double>::infinity();
  dist->assign(static_cast<std::size_t>(num_nodes()), inf);
  parent_edge->assign(static_cast<std::size_t>(num_nodes()), -1);
  (*dist)[static_cast<std::size_t>(s)] = 0.0;
  // Bellman-Ford with a simple queue (SPFA); graphs here are small.
  std::vector<int> queue{s};
  std::vector<char> in_queue(static_cast<std::size_t>(num_nodes()), 0);
  in_queue[static_cast<std::size_t>(s)] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int u = queue[head];
    in_queue[static_cast<std::size_t>(u)] = 0;
    for (int eid : adj_[static_cast<std::size_t>(u)]) {
      const Edge& e = edges_[static_cast<std::size_t>(eid)];
      if (e.cap <= 0) continue;
      const double cand = (*dist)[static_cast<std::size_t>(u)] + e.cost;
      if (cand < (*dist)[static_cast<std::size_t>(e.to)] - 1e-12) {
        (*dist)[static_cast<std::size_t>(e.to)] = cand;
        (*parent_edge)[static_cast<std::size_t>(e.to)] = eid;
        if (!in_queue[static_cast<std::size_t>(e.to)]) {
          in_queue[static_cast<std::size_t>(e.to)] = 1;
          queue.push_back(e.to);
        }
      }
    }
  }
  return (*dist)[static_cast<std::size_t>(t)] < inf;
}

FlowNetwork::SolveResult FlowNetwork::MinCostFlow(int s, int t, std::int64_t target) {
  SolveResult result;
  std::vector<double> dist;
  std::vector<int> parent;
  while (result.flow < target) {
    if (!ShortestPath(s, t, &dist, &parent)) break;
    // Bottleneck along the path.
    std::int64_t push = target - result.flow;
    for (int v = t; v != s;) {
      const int eid = parent[static_cast<std::size_t>(v)];
      push = std::min(push, edges_[static_cast<std::size_t>(eid)].cap);
      v = edges_[static_cast<std::size_t>(edges_[static_cast<std::size_t>(eid)].twin)].to;
    }
    for (int v = t; v != s;) {
      const int eid = parent[static_cast<std::size_t>(v)];
      edges_[static_cast<std::size_t>(eid)].cap -= push;
      edges_[static_cast<std::size_t>(edges_[static_cast<std::size_t>(eid)].twin)].cap += push;
      result.cost += edges_[static_cast<std::size_t>(eid)].cost * static_cast<double>(push);
      v = edges_[static_cast<std::size_t>(edges_[static_cast<std::size_t>(eid)].twin)].to;
    }
    result.flow += push;
  }
  return result;
}

bool FlowNetwork::HasNegativeCycle(double eps) {
  // Bellman-Ford from a virtual super-source connected to every node.
  const auto n = static_cast<std::size_t>(num_nodes());
  std::vector<double> dist(n, 0.0);
  for (int round = 0; round < num_nodes(); ++round) {
    bool changed = false;
    for (std::size_t u = 0; u < n; ++u) {
      for (int eid : adj_[u]) {
        const Edge& e = edges_[static_cast<std::size_t>(eid)];
        if (e.cap <= 0) continue;
        if (dist[u] + e.cost < dist[static_cast<std::size_t>(e.to)] - eps) {
          dist[static_cast<std::size_t>(e.to)] = dist[u] + e.cost;
          changed = true;
        }
      }
    }
    if (!changed) return false;
  }
  return true;
}

}  // namespace cca
