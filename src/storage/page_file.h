// Paged storage simulating the disk that holds the customer R-tree.
//
// The paper stores P in an R-tree with 1 KB pages and charges 10 ms per
// page fault (Section 5.1). `PageFile` is the raw page store; all caching
// and fault accounting happens in `BufferPool`. The store is memory-backed:
// the experiments model I/O analytically (like the paper does), so a real
// file descriptor would only add noise.
//
// Failure model (see src/runtime/README.md "Failure model"):
//   * Read/Write return Status. Out-of-range page ids are ALWAYS-ON
//     kOutOfRange errors -- they used to be debug-only asserts, i.e.
//     silent out-of-bounds UB in Release.
//   * Every page carries a sidecar CRC32 (storage/checksum.h), recomputed
//     on Write and verified on Read; a mismatch (torn page) returns
//     kDataLoss with the backing store intact, so a retry recovers.
//   * An attached FaultInjector (storage/fault_injector.h) can make a read
//     fail transiently (kUnavailable) or return a corrupted copy that the
//     CRC check catches. Both fault flavors touch only the returned copy,
//     never the stored bytes.
//
// Locking: PageFile has none of its own. It is only touched under the
// owning BufferPool's mutex (reads on a miss, write-through updates);
// Allocate stays a build-time, single-threaded operation.
#ifndef CCA_STORAGE_PAGE_FILE_H_
#define CCA_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/status.h"

namespace cca {

class FaultInjector;

using PageId = std::uint32_t;

inline constexpr PageId kInvalidPage = 0xffffffffu;

// Default page size used throughout the evaluation (paper Section 5.1).
inline constexpr std::uint32_t kDefaultPageSize = 1024;

// A flat array of fixed-size pages with physical read/write counters.
class PageFile {
 public:
  explicit PageFile(std::uint32_t page_size = kDefaultPageSize) : page_size_(page_size) {}

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  std::uint32_t page_size() const { return page_size_; }
  std::uint32_t page_count() const { return static_cast<std::uint32_t>(pages_.size()); }

  // Appends a zeroed page and returns its id.
  PageId Allocate();

  // Copies a full page into `out` (must hold page_size() bytes).
  // kOutOfRange: id is not an allocated page (out untouched).
  // kUnavailable: injected transient read failure (out untouched).
  // kDataLoss: the copy failed CRC32 verification (torn page); the
  //   backing store is intact, retry recovers.
  Status Read(PageId id, std::uint8_t* out);

  // Overwrites a full page from `data` (page_size() bytes) and refreshes
  // its sidecar CRC32. kOutOfRange when id is not an allocated page.
  Status Write(PageId id, const std::uint8_t* data);

  // Attaches (or detaches, with nullptr) a fault injector consulted on
  // every Read. Setup-time operation; the injector is polled under the
  // owning BufferPool's mutex.
  void set_fault_injector(FaultInjector* injector) { fault_injector_ = injector; }

  // Physical access counters (every call, regardless of caching above;
  // failed/corrupted read attempts count -- they are attempted I/O).
  std::uint64_t physical_reads() const { return physical_reads_; }
  std::uint64_t physical_writes() const { return physical_writes_; }
  void ResetStats() { physical_reads_ = physical_writes_ = 0; }

 private:
  std::uint32_t page_size_;
  std::vector<std::vector<std::uint8_t>> pages_;
  std::vector<std::uint32_t> checksums_;  // sidecar CRC32 per page
  FaultInjector* fault_injector_ = nullptr;
  std::uint64_t physical_reads_ = 0;
  std::uint64_t physical_writes_ = 0;
};

}  // namespace cca

#endif  // CCA_STORAGE_PAGE_FILE_H_
