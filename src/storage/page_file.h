// Paged storage simulating the disk that holds the customer R-tree.
//
// The paper stores P in an R-tree with 1 KB pages and charges 10 ms per
// page fault (Section 5.1). `PageFile` is the raw page store; all caching
// and fault accounting happens in `BufferPool`. The store is memory-backed:
// the experiments model I/O analytically (like the paper does), so a real
// file descriptor would only add noise.
#ifndef CCA_STORAGE_PAGE_FILE_H_
#define CCA_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace cca {

using PageId = std::uint32_t;

inline constexpr PageId kInvalidPage = 0xffffffffu;

// Default page size used throughout the evaluation (paper Section 5.1).
inline constexpr std::uint32_t kDefaultPageSize = 1024;

// A flat array of fixed-size pages with physical read/write counters.
class PageFile {
 public:
  explicit PageFile(std::uint32_t page_size = kDefaultPageSize) : page_size_(page_size) {}

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  std::uint32_t page_size() const { return page_size_; }
  std::uint32_t page_count() const { return static_cast<std::uint32_t>(pages_.size()); }

  // Appends a zeroed page and returns its id.
  PageId Allocate();

  // Copies a full page into `out` (must hold page_size() bytes).
  void Read(PageId id, std::uint8_t* out);

  // Overwrites a full page from `data` (page_size() bytes).
  void Write(PageId id, const std::uint8_t* data);

  // Physical access counters (every call, regardless of caching above).
  std::uint64_t physical_reads() const { return physical_reads_; }
  std::uint64_t physical_writes() const { return physical_writes_; }
  void ResetStats() { physical_reads_ = physical_writes_ = 0; }

 private:
  std::uint32_t page_size_;
  std::vector<std::vector<std::uint8_t>> pages_;
  std::uint64_t physical_reads_ = 0;
  std::uint64_t physical_writes_ = 0;
};

}  // namespace cca

#endif  // CCA_STORAGE_PAGE_FILE_H_
