// Deterministic seeded fault injection for the storage layer.
//
// The chaos suite (tests/test_fault_chaos.cc) needs storage failures that
// are (a) reproducible from a single seed, (b) frequent enough to exercise
// every recovery path, and (c) *guaranteed recoverable*, so a faulted run
// can be asserted bit-identical to a fault-free twin. `FaultInjector`
// delivers all three:
//
//   * One xoshiro draw per PageFile::Read decides the verdict; the whole
//     fault schedule is a pure function of the seed and the read sequence.
//   * Two fault flavors, both injected on the READ path only, so the
//     backing page array always stays intact and a retry always recovers:
//       - kReadFailure: the read returns kUnavailable without touching the
//         output buffer (a transient I/O error).
//       - kCorruption: the read returns a torn copy -- a deterministic
//         byte-flip in the output buffer. The per-page CRC32 sidecar
//         (storage/checksum.h) catches it and the read returns kDataLoss.
//   * `max_consecutive_faults` hard-caps runs of bad verdicts below the
//     BufferPool retry budget (kMaxReadRetries), making recovery a
//     guarantee rather than a probability.
//
// The ledger counts every injected fault so tests can reconcile it exactly
// against BufferPool::Stats (read_failures + checksum_failures).
//
// Thread safety: none of its own. PageFile only consults the injector
// while BufferPool holds its mutex (the documented storage locking
// contract, see buffer_pool.h), which also keeps the verdict sequence --
// and therefore the whole chaos run -- deterministic under one thread.
#ifndef CCA_STORAGE_FAULT_INJECTOR_H_
#define CCA_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>

#include "common/rng.h"

namespace cca {

struct FaultInjectorConfig {
  // Probability that a physical page read fails transiently (kUnavailable).
  double read_failure_rate = 0.0;
  // Probability that a physical page read returns a torn (corrupted) copy.
  double corruption_rate = 0.0;
  // Hard cap on consecutive faulty verdicts. Must stay strictly below
  // BufferPool::kMaxReadRetries or recovery is no longer guaranteed.
  int max_consecutive_faults = 3;
  std::uint64_t seed = 1;
};

class FaultInjector {
 public:
  enum class Verdict { kNone, kReadFailure, kCorruption };

  struct Ledger {
    std::uint64_t reads_seen = 0;         // verdicts issued
    std::uint64_t read_failures = 0;      // kReadFailure verdicts
    std::uint64_t corruptions = 0;        // kCorruption verdicts
  };

  explicit FaultInjector(const FaultInjectorConfig& config);

  // Issues the verdict for the next physical read and advances the
  // deterministic schedule.
  Verdict NextReadVerdict();

  // Deterministic corruption site for a kCorruption verdict: byte offset
  // (caller clamps modulo page size) and a non-zero XOR mask, drawn from
  // the same seeded stream.
  std::uint32_t NextCorruptionOffset();
  std::uint8_t NextCorruptionMask();

  const Ledger& ledger() const { return ledger_; }

 private:
  FaultInjectorConfig config_;
  Rng rng_;
  int consecutive_faults_ = 0;
  Ledger ledger_;
};

}  // namespace cca

#endif  // CCA_STORAGE_FAULT_INJECTOR_H_
