#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

#include "common/trace.h"

namespace cca {

BufferPool::BufferPool(PageFile* file, std::uint32_t capacity_pages)
    : file_(file), capacity_(capacity_pages) {}

BufferPool::Frame* BufferPool::Touch(PageId id) {
  auto it = map_.find(id);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &*it->second;
}

BufferPool::Frame* BufferPool::Install(PageId id) {
  if (capacity_ == 0) return nullptr;
  while (lru_.size() >= capacity_) {
    map_.erase(lru_.back().id);
    lru_.pop_back();
  }
  lru_.push_front(Frame{id, std::vector<std::uint8_t>(file_->page_size())});
  map_[id] = lru_.begin();
  return &lru_.front();
}

bool BufferPool::ReadPage(PageId id, std::uint8_t* out) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.logical_reads;
  if (Frame* f = Touch(id)) {
    ++stats_.hits;
    std::memcpy(out, f->data.data(), file_->page_size());
    return false;
  }
  ++stats_.faults;
  CCA_TRACE_SPAN_VAR(fault_span, "storage.page_fault");
  fault_span.Arg("page", static_cast<std::uint64_t>(id));
  if (Frame* f = Install(id)) {
    file_->Read(id, f->data.data());
    std::memcpy(out, f->data.data(), file_->page_size());
  } else {
    file_->Read(id, out);
  }
  return true;
}

void BufferPool::WritePage(PageId id, const std::uint8_t* data) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.writes;
  file_->Write(id, data);
  if (Frame* f = Touch(id)) {
    std::memcpy(f->data.data(), data, file_->page_size());
  }
}

void BufferPool::SetCapacity(std::uint32_t capacity_pages) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity_pages;
  while (lru_.size() > capacity_) {
    map_.erase(lru_.back().id);
    lru_.pop_back();
  }
}

std::uint32_t BufferPool::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BufferPool::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats{};
}

}  // namespace cca
