#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

namespace cca {

BufferPool::BufferPool(PageFile* file, std::uint32_t capacity_pages)
    : file_(file), capacity_(capacity_pages) {}

BufferPool::Frame* BufferPool::Touch(PageId id) {
  auto it = map_.find(id);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &*it->second;
}

BufferPool::Frame* BufferPool::Install(PageId id) {
  if (capacity_ == 0) return nullptr;
  while (lru_.size() >= capacity_) {
    map_.erase(lru_.back().id);
    lru_.pop_back();
  }
  lru_.push_front(Frame{id, std::vector<std::uint8_t>(file_->page_size())});
  map_[id] = lru_.begin();
  return &lru_.front();
}

void BufferPool::ReadPage(PageId id, std::uint8_t* out) {
  ++stats_.logical_reads;
  if (Frame* f = Touch(id)) {
    ++stats_.hits;
    std::memcpy(out, f->data.data(), file_->page_size());
    return;
  }
  ++stats_.faults;
  if (Frame* f = Install(id)) {
    file_->Read(id, f->data.data());
    std::memcpy(out, f->data.data(), file_->page_size());
  } else {
    file_->Read(id, out);
  }
}

void BufferPool::WritePage(PageId id, const std::uint8_t* data) {
  ++stats_.writes;
  file_->Write(id, data);
  if (Frame* f = Touch(id)) {
    std::memcpy(f->data.data(), data, file_->page_size());
  }
}

void BufferPool::SetCapacity(std::uint32_t capacity_pages) {
  capacity_ = capacity_pages;
  while (lru_.size() > capacity_) {
    map_.erase(lru_.back().id);
    lru_.pop_back();
  }
}

void BufferPool::Clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace cca
