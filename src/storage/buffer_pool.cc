#include "storage/buffer_pool.h"

#include <cassert>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/trace.h"

namespace cca {

BufferPool::BufferPool(PageFile* file, std::uint32_t capacity_pages)
    : file_(file), capacity_(capacity_pages) {}

BufferPool::Frame* BufferPool::Touch(PageId id) {
  auto it = map_.find(id);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &*it->second;
}

BufferPool::Frame* BufferPool::Install(PageId id) {
  if (capacity_ == 0) return nullptr;
  while (lru_.size() >= capacity_) {
    map_.erase(lru_.back().id);
    lru_.pop_back();
  }
  lru_.push_front(Frame{id, std::vector<std::uint8_t>(file_->page_size())});
  map_[id] = lru_.begin();
  return &lru_.front();
}

Status BufferPool::ReadWithRetry(PageId id, std::uint8_t* out) {
  Status status;
  for (int attempt = 0; attempt < kMaxReadRetries; ++attempt) {
    if (attempt > 0) {
      ++stats_.read_retries;
      // Exponential backoff, capped. The sleep is microseconds-scale: real
      // enough to be a backoff, cheap enough for the chaos suite to hammer.
      std::this_thread::sleep_for(std::chrono::microseconds(1u << (attempt < 6 ? attempt : 6)));
    }
    status = file_->Read(id, out);
    if (status.ok()) return status;
    switch (status.code()) {
      case StatusCode::kUnavailable:
        ++stats_.read_failures;
        break;  // transient: retry
      case StatusCode::kDataLoss:
        ++stats_.checksum_failures;
        break;  // torn copy, store intact: retry
      default:
        return status;  // kOutOfRange etc. cannot heal
    }
  }
  return status;
}

Status BufferPool::ReadPage(PageId id, std::uint8_t* out, bool* faulted) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.logical_reads;
  if (Frame* f = Touch(id)) {
    ++stats_.hits;
    std::memcpy(out, f->data.data(), file_->page_size());
    if (faulted != nullptr) *faulted = false;
    return OkStatus();
  }
  ++stats_.faults;
  if (faulted != nullptr) *faulted = true;
  CCA_TRACE_SPAN_VAR(fault_span, "storage.page_fault");
  fault_span.Arg("page", static_cast<std::uint64_t>(id));
  if (Frame* f = Install(id)) {
    const Status status = ReadWithRetry(id, f->data.data());
    if (!status.ok()) {
      // Do not cache a frame whose bytes were never valid.
      map_.erase(f->id);
      lru_.pop_front();
      return status;
    }
    std::memcpy(out, f->data.data(), file_->page_size());
    return status;
  }
  return ReadWithRetry(id, out);
}

Status BufferPool::WritePage(PageId id, const std::uint8_t* data) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.writes;
  CCA_RETURN_IF_ERROR(file_->Write(id, data));
  if (Frame* f = Touch(id)) {
    std::memcpy(f->data.data(), data, file_->page_size());
  }
  return OkStatus();
}

void BufferPool::SetCapacity(std::uint32_t capacity_pages) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity_pages;
  while (lru_.size() > capacity_) {
    map_.erase(lru_.back().id);
    lru_.pop_back();
  }
}

std::uint32_t BufferPool::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BufferPool::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats{};
}

}  // namespace cca
