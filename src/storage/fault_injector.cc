#include "storage/fault_injector.h"

namespace cca {

FaultInjector::FaultInjector(const FaultInjectorConfig& config)
    : config_(config), rng_(config.seed) {}

FaultInjector::Verdict FaultInjector::NextReadVerdict() {
  ++ledger_.reads_seen;
  // The cap comes first so a capped read consumes no randomness beyond the
  // verdict draw it never makes -- keeping the schedule a pure function of
  // the read index even across cap boundaries.
  if (consecutive_faults_ >= config_.max_consecutive_faults) {
    consecutive_faults_ = 0;
    return Verdict::kNone;
  }
  const double draw = rng_.NextDouble();
  if (draw < config_.read_failure_rate) {
    ++consecutive_faults_;
    ++ledger_.read_failures;
    return Verdict::kReadFailure;
  }
  if (draw < config_.read_failure_rate + config_.corruption_rate) {
    ++consecutive_faults_;
    ++ledger_.corruptions;
    return Verdict::kCorruption;
  }
  consecutive_faults_ = 0;
  return Verdict::kNone;
}

std::uint32_t FaultInjector::NextCorruptionOffset() {
  return static_cast<std::uint32_t>(rng_.Next() & 0xFFFFFFFFu);
}

std::uint8_t FaultInjector::NextCorruptionMask() {
  // A zero mask would be a no-op "corruption" the CRC could not see and the
  // ledger could never reconcile; force at least one flipped bit.
  const auto mask = static_cast<std::uint8_t>(rng_.Next() & 0xFFu);
  return mask == 0 ? std::uint8_t{0x01} : mask;
}

}  // namespace cca
