// Per-page CRC32 (the torn-page detector).
//
// Checksum format: each PageFile page carries one CRC-32 (IEEE 802.3,
// reflected polynomial 0xEDB88320, init and final XOR 0xFFFFFFFF -- the
// same function as zlib's crc32) computed over the page's full
// `page_size()` bytes. The checksum is *sidecar* state: it lives next to
// the page array, not inside the 1 KB payload, so page layout, serialized
// R-tree nodes, and every existing byte-level test stay untouched.
//
//   * `PageFile::Write` recomputes the CRC of the stored bytes.
//   * `PageFile::Read` recomputes the CRC of the bytes it is about to
//     return and compares against the sidecar; a mismatch means the copy
//     the caller would have seen was torn/corrupted in flight and the read
//     fails with kDataLoss. The backing store is still intact, so a retry
//     (BufferPool's bounded retry-with-backoff) recovers.
//
// Table-driven software implementation; ~1 cycle/byte, which is noise next
// to the simulated 10 ms page-fault charge the evaluation models.
#ifndef CCA_STORAGE_CHECKSUM_H_
#define CCA_STORAGE_CHECKSUM_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace cca {

namespace internal_checksum {
inline const std::array<std::uint32_t, 256>& Crc32Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace internal_checksum

inline std::uint32_t Crc32(const std::uint8_t* data, std::size_t n) {
  const auto& table = internal_checksum::Crc32Table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace cca

#endif  // CCA_STORAGE_CHECKSUM_H_
