// LRU buffer pool over a PageFile.
//
// The evaluation uses an LRU buffer sized at 1% of the R-tree (paper
// Section 5.1); a logical page access that misses the buffer is a *page
// fault* and is charged 10 ms of simulated I/O time. The pool is
// write-through: node writes go straight to the PageFile and update the
// cached copy, so reads after writes always observe fresh data.
//
// Failure model: the pool is the retry boundary. A physical read that
// fails transiently (kUnavailable) or comes back torn (kDataLoss, caught
// by the per-page CRC32 in PageFile) is retried up to kMaxReadRetries
// times with exponential backoff; both fault flavors leave the backing
// store intact, so a retry within budget always recovers and the caller
// sees an OK read with unchanged bytes. Only after the budget is exhausted
// does the last error surface to the caller. kOutOfRange is never retried
// (it cannot heal). Recovery work is visible in Stats::read_retries /
// read_failures / checksum_failures so the chaos suite can reconcile every
// injected fault.
//
// Thread safety: every public method is serialized on an internal mutex,
// so concurrent readers (the runtime's per-query R-tree cursors) share one
// pool — and one LRU state — safely. The PageFile underneath is only ever
// touched while that mutex is held (reads on a miss, write-through
// updates), so it needs no locking of its own; page *allocation* remains a
// build-time, single-threaded operation (see src/core/README.md for the
// full concurrency contract). Structural mutations (SetCapacity, Clear)
// are setup-time operations: they are mutex-safe too, but calling them
// while queries are in flight changes which reads fault, so the runtime
// never does.
#ifndef CCA_STORAGE_BUFFER_POOL_H_
#define CCA_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/page_file.h"

namespace cca {

class BufferPool {
 public:
  // Retry budget for one logical read. FaultInjectorConfig::
  // max_consecutive_faults must stay strictly below this or recovery is no
  // longer guaranteed (fault_injector.h).
  static constexpr int kMaxReadRetries = 8;

  struct Stats {
    std::uint64_t logical_reads = 0;  // every ReadPage call
    std::uint64_t hits = 0;           // served from the buffer
    std::uint64_t faults = 0;         // required a physical read
    std::uint64_t writes = 0;         // WritePage calls (write-through)
    // Recovery accounting (0 unless faults are injected or a real backend
    // misbehaves): physical read attempts beyond the first per logical
    // read, transient failures observed, CRC32 mismatches observed.
    std::uint64_t read_retries = 0;
    std::uint64_t read_failures = 0;
    std::uint64_t checksum_failures = 0;

    double hit_ratio() const {
      return logical_reads == 0 ? 0.0
                                : static_cast<double>(hits) / static_cast<double>(logical_reads);
    }
  };

  // `capacity_pages` == 0 disables caching entirely (every read faults).
  BufferPool(PageFile* file, std::uint32_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Reads a page through the cache into `out` (page_size bytes). When
  // `faulted` is non-null it is set to true iff the read missed the buffer
  // and hit the PageFile — the per-call fault verdict callers need to
  // attribute I/O to the query that caused it (RTree::ReadNode feeds it
  // into the thread-local ScopedIoTally chain; the aggregate stats() count
  // stays monotone either way). Transient failures and torn pages are
  // retried internally (see the failure-model comment above); the returned
  // Status is non-OK only for kOutOfRange or an exhausted retry budget.
  Status ReadPage(PageId id, std::uint8_t* out, bool* faulted = nullptr);

  // Write-through page update. kOutOfRange when id was never allocated.
  Status WritePage(PageId id, const std::uint8_t* data);

  // Resizes the pool, evicting LRU pages if shrinking.
  void SetCapacity(std::uint32_t capacity_pages);
  std::uint32_t capacity() const;

  // Drops all cached pages (stats are kept).
  void Clear();

  // Snapshot of the counters (by value: under concurrency a reference
  // would tear mid-read).
  Stats stats() const;
  void ResetStats();

  PageFile* file() { return file_; }

 private:
  struct Frame {
    PageId id;
    std::vector<std::uint8_t> data;
  };

  // Moves the frame for `id` to the MRU position; returns nullptr on miss.
  // Callers hold mu_.
  Frame* Touch(PageId id);
  // Inserts a frame for `id`, evicting the LRU frame when full. Callers
  // hold mu_.
  Frame* Install(PageId id);
  // One physical read with the bounded retry-with-backoff loop. Callers
  // hold mu_.
  Status ReadWithRetry(PageId id, std::uint8_t* out);

  PageFile* file_;
  std::uint32_t capacity_;
  std::list<Frame> lru_;  // front = most recently used
  std::unordered_map<PageId, std::list<Frame>::iterator> map_;
  Stats stats_;
  mutable std::mutex mu_;
};

}  // namespace cca

#endif  // CCA_STORAGE_BUFFER_POOL_H_
