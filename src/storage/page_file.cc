#include "storage/page_file.h"

#include <cassert>

namespace cca {

PageId PageFile::Allocate() {
  pages_.emplace_back(page_size_, std::uint8_t{0});
  return static_cast<PageId>(pages_.size() - 1);
}

void PageFile::Read(PageId id, std::uint8_t* out) {
  assert(id < pages_.size());
  ++physical_reads_;
  std::memcpy(out, pages_[id].data(), page_size_);
}

void PageFile::Write(PageId id, const std::uint8_t* data) {
  assert(id < pages_.size());
  ++physical_writes_;
  std::memcpy(pages_[id].data(), data, page_size_);
}

}  // namespace cca
