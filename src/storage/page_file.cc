#include "storage/page_file.h"

#include <string>

#include "storage/checksum.h"
#include "storage/fault_injector.h"

namespace cca {

namespace {
Status PageOutOfRange(const char* op, PageId id, std::uint32_t count) {
  return OutOfRangeError(std::string(op) + ": page id " + std::to_string(id) +
                         " >= page count " + std::to_string(count));
}
}  // namespace

PageId PageFile::Allocate() {
  pages_.emplace_back(page_size_, std::uint8_t{0});
  checksums_.push_back(Crc32(pages_.back().data(), page_size_));
  return static_cast<PageId>(pages_.size() - 1);
}

Status PageFile::Read(PageId id, std::uint8_t* out) {
  if (id >= pages_.size()) return PageOutOfRange("PageFile::Read", id, page_count());
  ++physical_reads_;
  FaultInjector::Verdict verdict = FaultInjector::Verdict::kNone;
  if (fault_injector_ != nullptr) verdict = fault_injector_->NextReadVerdict();
  if (verdict == FaultInjector::Verdict::kReadFailure) {
    return UnavailableError("PageFile::Read: injected transient read failure on page " +
                            std::to_string(id));
  }
  std::memcpy(out, pages_[id].data(), page_size_);
  if (verdict == FaultInjector::Verdict::kCorruption) {
    const std::uint32_t offset = fault_injector_->NextCorruptionOffset() % page_size_;
    out[offset] = static_cast<std::uint8_t>(out[offset] ^ fault_injector_->NextCorruptionMask());
  }
  if (Crc32(out, page_size_) != checksums_[id]) {
    return DataLossError("PageFile::Read: CRC32 mismatch (torn page) on page " +
                         std::to_string(id));
  }
  return OkStatus();
}

Status PageFile::Write(PageId id, const std::uint8_t* data) {
  if (id >= pages_.size()) return PageOutOfRange("PageFile::Write", id, page_count());
  ++physical_writes_;
  std::memcpy(pages_[id].data(), data, page_size_);
  checksums_[id] = Crc32(data, page_size_);
  return OkStatus();
}

}  // namespace cca
