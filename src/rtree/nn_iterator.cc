#include "rtree/nn_iterator.h"

#include <limits>

namespace cca {

NnIterator::NnIterator(RTree* tree, const Point& query) : tree_(tree), query_(query) {
  if (tree_->root() != kInvalidPage) {
    heap_.push(Item{0.0, false, tree_->root(), 0, Point{}});
  }
}

void NnIterator::Refine() {
  while (!heap_.empty() && !heap_.top().is_point) {
    const Item item = heap_.top();
    heap_.pop();
    const RTreeNode node = tree_->ReadNode(item.page);
    if (node.is_leaf) {
      for (const auto& e : node.leaf_entries) {
        heap_.push(Item{Distance(query_, e.pos), true, kInvalidPage, e.oid, e.pos});
      }
    } else {
      for (const auto& e : node.entries) {
        heap_.push(Item{MinDist(query_, e.mbr), false, e.child, 0, Point{}});
      }
    }
  }
}

std::optional<RTree::Hit> NnIterator::Next() {
  Refine();
  if (heap_.empty()) return std::nullopt;
  const Item item = heap_.top();
  heap_.pop();
  return RTree::Hit{item.oid, item.pos, item.dist};
}

double NnIterator::PeekDistance() {
  Refine();
  return heap_.empty() ? std::numeric_limits<double>::infinity() : heap_.top().dist;
}

}  // namespace cca
