// Sort-Tile-Recursive (STR) bulk loading.
//
// The evaluation datasets (up to 200K customers) are loaded once and then
// queried; STR produces a well-packed tree with tight MBRs at a chosen fill
// factor, which matches the static-index assumption of the paper.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "rtree/rtree.h"

namespace cca {
namespace {

// Splits `items` into runs of `run_size`, writes one built node per run via
// `emit`. Used for both the leaf level and the internal levels.
template <typename Item, typename Emit>
void PackRuns(std::vector<Item>* items, std::size_t run_size, Emit emit) {
  for (std::size_t begin = 0; begin < items->size(); begin += run_size) {
    const std::size_t end = std::min(items->size(), begin + run_size);
    emit(items->data() + begin, end - begin);
  }
}

// STR tiling: sort by x, cut into vertical slices, sort each slice by y.
template <typename Item, typename GetPoint>
void StrSort(std::vector<Item>* items, std::size_t capacity, GetPoint point_of) {
  const std::size_t n = items->size();
  if (n == 0) return;
  const auto node_count =
      static_cast<std::size_t>(std::ceil(static_cast<double>(n) / static_cast<double>(capacity)));
  const auto slices =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(node_count))));
  const std::size_t slice_size = slices == 0 ? n : capacity * static_cast<std::size_t>(std::ceil(
                                                       static_cast<double>(node_count) /
                                                       static_cast<double>(slices)));
  std::sort(items->begin(), items->end(), [&](const Item& a, const Item& b) {
    const Point pa = point_of(a);
    const Point pb = point_of(b);
    return pa.x < pb.x || (pa.x == pb.x && pa.y < pb.y);
  });
  for (std::size_t begin = 0; begin < n; begin += slice_size) {
    const std::size_t end = std::min(n, begin + slice_size);
    std::sort(items->begin() + static_cast<std::ptrdiff_t>(begin),
              items->begin() + static_cast<std::ptrdiff_t>(end),
              [&](const Item& a, const Item& b) {
                const Point pa = point_of(a);
                const Point pb = point_of(b);
                return pa.y < pb.y || (pa.y == pb.y && pa.x < pb.x);
              });
  }
}

}  // namespace

std::unique_ptr<RTree> RTree::BulkLoad(const std::vector<Point>& points) {
  return BulkLoad(points, Options{});
}

std::unique_ptr<RTree> RTree::BulkLoad(const std::vector<Point>& points,
                                       const Options& options) {
  auto tree = std::make_unique<RTree>(options);
  if (points.empty()) return tree;

  const auto leaf_cap = static_cast<std::size_t>(std::max(
      2.0, std::floor(options.bulk_fill *
                      static_cast<double>(RTreeNode::LeafCapacity(options.page_size)))));
  const auto internal_cap = static_cast<std::size_t>(std::max(
      2.0, std::floor(options.bulk_fill *
                      static_cast<double>(RTreeNode::InternalCapacity(options.page_size)))));

  std::vector<LeafEntry> leaf_items;
  leaf_items.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    leaf_items.push_back(LeafEntry{points[i], static_cast<std::uint32_t>(i)});
  }
  StrSort(&leaf_items, leaf_cap, [](const LeafEntry& e) { return e.pos; });

  // Build the leaf level.
  std::vector<InternalEntry> level;
  PackRuns(&leaf_items, leaf_cap, [&](const LeafEntry* begin, std::size_t n) {
    RTreeNode node;
    node.is_leaf = true;
    node.leaf_entries.assign(begin, begin + n);
    const PageId page = tree->file_.Allocate();
    tree->WriteNode(page, node);
    level.push_back(
        InternalEntry{node.ComputeMbr(), page, static_cast<std::uint32_t>(node.TotalCount())});
  });
  tree->height_ = 1;

  // Build upper levels until a single root remains.
  while (level.size() > 1) {
    StrSort(&level, internal_cap, [](const InternalEntry& e) { return e.mbr.Center(); });
    std::vector<InternalEntry> next;
    PackRuns(&level, internal_cap, [&](const InternalEntry* begin, std::size_t n) {
      RTreeNode node;
      node.is_leaf = false;
      node.entries.assign(begin, begin + n);
      const PageId page = tree->file_.Allocate();
      tree->WriteNode(page, node);
      next.push_back(
          InternalEntry{node.ComputeMbr(), page, static_cast<std::uint32_t>(node.TotalCount())});
    });
    level = std::move(next);
    ++tree->height_;
  }

  tree->root_ = level.front().child;
  tree->size_ = points.size();
  tree->ResetCounters();
  return tree;
}

}  // namespace cca
