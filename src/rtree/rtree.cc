#include "rtree/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <queue>

namespace cca {
namespace {

// Per-thread page-size I/O buffer: ReadNode must not share scratch space
// across threads (concurrent queries traverse one tree), and a per-call
// heap allocation on the node-access hot path would be pure overhead.
std::vector<std::uint8_t>& TlsScratch(std::uint32_t page_size) {
  thread_local std::vector<std::uint8_t> scratch;
  if (scratch.size() < page_size) scratch.resize(page_size);
  return scratch;
}

// Top of the calling thread's ScopedIoTally stack.
thread_local ScopedIoTally* tls_tally_top = nullptr;

}  // namespace

ScopedIoTally::ScopedIoTally(const RTree* tree, RTreeIoTally* tally)
    : tree_(tree), tally_(tally), parent_(tls_tally_top) {
  if (tree_ != nullptr) tls_tally_top = this;
}

ScopedIoTally::~ScopedIoTally() { Detach(); }

void ScopedIoTally::Detach() {
  if (tree_ == nullptr) return;
  assert(tls_tally_top == this && "ScopedIoTally must detach in LIFO order");
  tls_tally_top = parent_;
  tree_ = nullptr;
}

RTree::RTree() : RTree(Options{}) {}

RTree::RTree(const Options& options)
    : options_(options), file_(options.page_size), buffer_(&file_, options.buffer_pages) {}

RTree::~RTree() = default;

RTreeNode RTree::ReadNode(PageId id) {
  node_accesses_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::uint8_t>& scratch = TlsScratch(options_.page_size);
  bool faulted = false;
  const Status status = buffer_.ReadPage(id, scratch.data(), &faulted);
  if (!status.ok()) {
    // Deep traversal has no recovery path of its own: the pool already
    // exhausted its bounded retry budget (or the id itself is invalid,
    // which is a tree-construction bug), so fail fast rather than
    // deserialize garbage. Injected faults never reach here by
    // construction (max_consecutive_faults < kMaxReadRetries).
    std::fprintf(stderr, "RTree::ReadNode: unrecoverable page read: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  // Attribute the access (and its fault verdict) to every tally this
  // thread has registered for this tree — nested scopes all see it.
  for (ScopedIoTally* s = tls_tally_top; s != nullptr; s = s->parent_) {
    if (s->tree_ == this) {
      ++s->tally_->node_accesses;
      if (faulted) ++s->tally_->page_faults;
    }
  }
  return RTreeNode::Deserialize(scratch.data(), options_.page_size);
}

void RTree::WriteNode(PageId id, const RTreeNode& node) {
  std::vector<std::uint8_t>& scratch = TlsScratch(options_.page_size);
  node.Serialize(scratch.data(), options_.page_size);
  const Status status = buffer_.WritePage(id, scratch.data());
  if (!status.ok()) {
    // Writes happen only at build time against ids this tree allocated;
    // a failure here is a construction bug, not a runtime condition.
    std::fprintf(stderr, "RTree::WriteNode: %s\n", status.ToString().c_str());
    std::abort();
  }
}

void RTree::SetBufferFraction(double fraction) {
  const auto pages = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(fraction * static_cast<double>(file_.page_count()))));
  buffer_.SetCapacity(pages);
  buffer_.Clear();
}

void RTree::ResetCounters() {
  node_accesses_.store(0, std::memory_order_relaxed);
  buffer_.ResetStats();
  file_.ResetStats();
}

Rect RTree::bounding_box() {
  if (root_ == kInvalidPage) return Rect{};
  return ReadNode(root_).ComputeMbr();
}

// --- insertion ---------------------------------------------------------------

PageId RTree::ChooseLeaf(const Point& p, std::vector<PathStep>* path) {
  PageId page = root_;
  while (true) {
    RTreeNode node = ReadNode(page);
    if (node.is_leaf) return page;
    int best = 0;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < node.entries.size(); ++i) {
      const Rect& r = node.entries[i].mbr;
      const double enlargement = Rect::Enlargement(r, Rect::FromPoint(p));
      const double area = r.Area();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = static_cast<int>(i);
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    path->push_back(PathStep{page, best});
    page = node.entries[best].child;
  }
}

template <typename Entry, typename RectOf>
void RTree::QuadraticSplit(std::vector<Entry>* entries, std::vector<Entry>* left,
                           std::vector<Entry>* right, RectOf rect_of, std::size_t min_fill) {
  // Pick the pair of entries wasting the most area as seeds (Guttman).
  std::size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < entries->size(); ++i) {
    for (std::size_t j = i + 1; j < entries->size(); ++j) {
      const Rect ra = rect_of((*entries)[i]);
      const Rect rb = rect_of((*entries)[j]);
      const double waste = Rect::Union(ra, rb).Area() - ra.Area() - rb.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  left->clear();
  right->clear();
  left->push_back((*entries)[seed_a]);
  right->push_back((*entries)[seed_b]);
  Rect mbr_left = rect_of((*entries)[seed_a]);
  Rect mbr_right = rect_of((*entries)[seed_b]);

  std::vector<Entry> rest;
  for (std::size_t i = 0; i < entries->size(); ++i) {
    if (i != seed_a && i != seed_b) rest.push_back((*entries)[i]);
  }
  std::size_t remaining = rest.size();
  for (const Entry& e : rest) {
    --remaining;
    // Force-feed a side that otherwise cannot reach the minimum fill.
    if (left->size() + remaining + 1 <= min_fill) {
      left->push_back(e);
      mbr_left.Expand(rect_of(e));
      continue;
    }
    if (right->size() + remaining + 1 <= min_fill) {
      right->push_back(e);
      mbr_right.Expand(rect_of(e));
      continue;
    }
    const double grow_left = Rect::Enlargement(mbr_left, rect_of(e));
    const double grow_right = Rect::Enlargement(mbr_right, rect_of(e));
    const bool to_left = grow_left < grow_right ||
                         (grow_left == grow_right && mbr_left.Area() <= mbr_right.Area());
    if (to_left) {
      left->push_back(e);
      mbr_left.Expand(rect_of(e));
    } else {
      right->push_back(e);
      mbr_right.Expand(rect_of(e));
    }
  }
}

template <typename Entry, typename RectOf>
void RTree::RStarAxisSplit(std::vector<Entry>* entries, std::vector<Entry>* left,
                           std::vector<Entry>* right, RectOf rect_of, std::size_t min_fill) {
  const std::size_t n = entries->size();
  const std::size_t m = std::max<std::size_t>(1, min_fill);
  // Evaluate both axes; sort keys are (lo, hi) on the axis.
  double best_margin_sum = std::numeric_limits<double>::infinity();
  int best_axis = 0;
  std::vector<Entry> sorted_by[2] = {*entries, *entries};
  for (int axis = 0; axis < 2; ++axis) {
    auto& sorted = sorted_by[axis];
    std::sort(sorted.begin(), sorted.end(), [&](const Entry& a, const Entry& b) {
      const Rect ra = rect_of(a);
      const Rect rb = rect_of(b);
      const double alo = axis == 0 ? ra.lo.x : ra.lo.y;
      const double blo = axis == 0 ? rb.lo.x : rb.lo.y;
      if (alo != blo) return alo < blo;
      const double ahi = axis == 0 ? ra.hi.x : ra.hi.y;
      const double bhi = axis == 0 ? rb.hi.x : rb.hi.y;
      return ahi < bhi;
    });
    // Prefix/suffix MBRs make margin sums O(n).
    std::vector<Rect> prefix(n), suffix(n);
    Rect acc;
    for (std::size_t i = 0; i < n; ++i) {
      acc.Expand(rect_of(sorted[i]));
      prefix[i] = acc;
    }
    acc = Rect{};
    for (std::size_t i = n; i > 0; --i) {
      acc.Expand(rect_of(sorted[i - 1]));
      suffix[i - 1] = acc;
    }
    double margin_sum = 0.0;
    for (std::size_t k = m; k + m <= n; ++k) {
      margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
    }
    if (margin_sum < best_margin_sum) {
      best_margin_sum = margin_sum;
      best_axis = axis;
    }
  }
  // On the winning axis: minimise overlap, tie-break on total area.
  auto& sorted = sorted_by[best_axis];
  std::vector<Rect> prefix(n), suffix(n);
  Rect acc;
  for (std::size_t i = 0; i < n; ++i) {
    acc.Expand(rect_of(sorted[i]));
    prefix[i] = acc;
  }
  acc = Rect{};
  for (std::size_t i = n; i > 0; --i) {
    acc.Expand(rect_of(sorted[i - 1]));
    suffix[i - 1] = acc;
  }
  std::size_t best_k = m;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (std::size_t k = m; k + m <= n; ++k) {
    const Rect& a = prefix[k - 1];
    const Rect& b = suffix[k];
    const double ox = std::max(0.0, std::min(a.hi.x, b.hi.x) - std::max(a.lo.x, b.lo.x));
    const double oy = std::max(0.0, std::min(a.hi.y, b.hi.y) - std::max(a.lo.y, b.lo.y));
    const double overlap = ox * oy;
    const double area = a.Area() + b.Area();
    if (overlap < best_overlap || (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_k = k;
    }
  }
  left->assign(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(best_k));
  right->assign(sorted.begin() + static_cast<std::ptrdiff_t>(best_k), sorted.end());
}

template <typename Entry, typename RectOf>
void RTree::SplitEntries(std::vector<Entry>* entries, std::vector<Entry>* left,
                         std::vector<Entry>* right, RectOf rect_of, std::size_t min_fill) {
  if (options_.split_policy == SplitPolicy::kRStarAxis) {
    RStarAxisSplit(entries, left, right, rect_of, min_fill);
  } else {
    QuadraticSplit(entries, left, right, rect_of, min_fill);
  }
}

RTreeNode RTree::SplitLeaf(RTreeNode* node) {
  const auto cap = RTreeNode::LeafCapacity(options_.page_size);
  const auto min_fill = static_cast<std::size_t>(
      std::max(1.0, std::floor(options_.min_fill * static_cast<double>(cap))));
  RTreeNode sibling;
  sibling.is_leaf = true;
  std::vector<LeafEntry> left, right;
  SplitEntries(
      &node->leaf_entries, &left, &right,
      [](const LeafEntry& e) { return Rect::FromPoint(e.pos); }, min_fill);
  node->leaf_entries = std::move(left);
  sibling.leaf_entries = std::move(right);
  return sibling;
}

RTreeNode RTree::SplitInternal(RTreeNode* node) {
  const auto cap = RTreeNode::InternalCapacity(options_.page_size);
  const auto min_fill = static_cast<std::size_t>(
      std::max(1.0, std::floor(options_.min_fill * static_cast<double>(cap))));
  RTreeNode sibling;
  sibling.is_leaf = false;
  std::vector<InternalEntry> left, right;
  SplitEntries(
      &node->entries, &left, &right, [](const InternalEntry& e) { return e.mbr; }, min_fill);
  node->entries = std::move(left);
  sibling.entries = std::move(right);
  return sibling;
}

void RTree::Insert(const Point& p, std::uint32_t oid) {
  if (root_ == kInvalidPage) {
    RTreeNode leaf;
    leaf.is_leaf = true;
    leaf.leaf_entries.push_back(LeafEntry{p, oid});
    root_ = file_.Allocate();
    WriteNode(root_, leaf);
    height_ = 1;
    size_ = 1;
    return;
  }

  std::vector<PathStep> path;
  const PageId leaf_page = ChooseLeaf(p, &path);
  RTreeNode leaf = ReadNode(leaf_page);
  leaf.leaf_entries.push_back(LeafEntry{p, oid});
  ++size_;

  // `carry` holds a freshly created sibling that still needs a parent slot.
  bool has_carry = false;
  Rect carry_mbr;
  PageId carry_page = kInvalidPage;
  std::uint64_t carry_count = 0;

  if (leaf.leaf_entries.size() > RTreeNode::LeafCapacity(options_.page_size)) {
    RTreeNode sibling = SplitLeaf(&leaf);
    carry_page = file_.Allocate();
    carry_mbr = sibling.ComputeMbr();
    carry_count = sibling.TotalCount();
    WriteNode(carry_page, sibling);
    has_carry = true;
  }
  WriteNode(leaf_page, leaf);
  Rect child_mbr = leaf.ComputeMbr();
  std::uint64_t child_count = leaf.TotalCount();

  // Walk back up the path refreshing MBRs/counts and pushing splits upward.
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    RTreeNode parent = ReadNode(it->page);
    parent.entries[it->entry_index].mbr = child_mbr;
    parent.entries[it->entry_index].count = static_cast<std::uint32_t>(child_count);
    if (has_carry) {
      parent.entries.push_back(
          InternalEntry{carry_mbr, carry_page, static_cast<std::uint32_t>(carry_count)});
      has_carry = false;
    }
    if (parent.entries.size() > RTreeNode::InternalCapacity(options_.page_size)) {
      RTreeNode sibling = SplitInternal(&parent);
      carry_page = file_.Allocate();
      carry_mbr = sibling.ComputeMbr();
      carry_count = sibling.TotalCount();
      WriteNode(carry_page, sibling);
      has_carry = true;
    }
    WriteNode(it->page, parent);
    child_mbr = parent.ComputeMbr();
    child_count = parent.TotalCount();
  }

  if (has_carry) {
    // Root split: grow the tree by one level.
    RTreeNode new_root;
    new_root.is_leaf = false;
    RTreeNode old_root = ReadNode(root_);
    new_root.entries.push_back(InternalEntry{old_root.ComputeMbr(), root_,
                                             static_cast<std::uint32_t>(old_root.TotalCount())});
    new_root.entries.push_back(
        InternalEntry{carry_mbr, carry_page, static_cast<std::uint32_t>(carry_count)});
    root_ = file_.Allocate();
    WriteNode(root_, new_root);
    ++height_;
  }
}

// --- queries -----------------------------------------------------------------

void RTree::RangeSearch(const Point& center, double radius, std::vector<Hit>* out) {
  AnnularRangeSearch(center, -1.0, radius, out);
}

void RTree::AnnularRangeSearch(const Point& center, double lo, double hi,
                               std::vector<Hit>* out) {
  out->clear();
  if (root_ == kInvalidPage || hi < 0) return;
  std::vector<PageId> stack{root_};
  while (!stack.empty()) {
    const PageId page = stack.back();
    stack.pop_back();
    const RTreeNode node = ReadNode(page);
    if (node.is_leaf) {
      for (const auto& e : node.leaf_entries) {
        const double d = Distance(center, e.pos);
        if (d <= hi && d > lo) out->push_back(Hit{e.oid, e.pos, d});
      }
    } else {
      for (const auto& e : node.entries) {
        // Prune subtrees entirely outside (lo, hi]: too far (mindist > hi)
        // or fully inside the inner disk (maxdist <= lo).
        if (MinDist(center, e.mbr) > hi) continue;
        if (lo >= 0 && MaxDist(center, e.mbr) <= lo) continue;
        stack.push_back(e.child);
      }
    }
  }
}

void RTree::KnnSearch(const Point& center, std::size_t k, std::vector<Hit>* out) {
  out->clear();
  if (root_ == kInvalidPage || k == 0) return;

  // Best-first search over a single priority queue of nodes and points.
  struct QueueItem {
    double dist;
    bool is_point;
    PageId page;
    std::uint32_t oid;
    Point pos;
  };
  auto cmp = [](const QueueItem& a, const QueueItem& b) { return a.dist > b.dist; };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> heap(cmp);
  heap.push(QueueItem{0.0, false, root_, 0, Point{}});
  while (!heap.empty() && out->size() < k) {
    const QueueItem item = heap.top();
    heap.pop();
    if (item.is_point) {
      out->push_back(Hit{item.oid, item.pos, item.dist});
      continue;
    }
    const RTreeNode node = ReadNode(item.page);
    if (node.is_leaf) {
      for (const auto& e : node.leaf_entries) {
        heap.push(QueueItem{Distance(center, e.pos), true, kInvalidPage, e.oid, e.pos});
      }
    } else {
      for (const auto& e : node.entries) {
        heap.push(QueueItem{MinDist(center, e.mbr), false, e.child, 0, Point{}});
      }
    }
  }
}

// --- validation ----------------------------------------------------------------

void RTree::RecursiveCheck(PageId page, int depth, const Rect& parent_mbr,
                           std::uint64_t parent_count, bool has_parent, int leaf_depth, bool* ok,
                           std::string* error) {
  if (!*ok) return;
  const RTreeNode node = ReadNode(page);
  const Rect mbr = node.ComputeMbr();
  if (has_parent) {
    if (!(parent_mbr == mbr)) {
      *ok = false;
      *error = "parent MBR is not tight around child node";
      return;
    }
    if (parent_count != node.TotalCount()) {
      *ok = false;
      *error = "aggregate count mismatch";
      return;
    }
  }
  if (node.is_leaf) {
    if (depth != leaf_depth) {
      *ok = false;
      *error = "leaves at different depths";
      return;
    }
    if (node.leaf_entries.size() > RTreeNode::LeafCapacity(options_.page_size)) {
      *ok = false;
      *error = "leaf over capacity";
    }
    return;
  }
  if (node.entries.size() > RTreeNode::InternalCapacity(options_.page_size)) {
    *ok = false;
    *error = "internal node over capacity";
    return;
  }
  if (node.entries.empty()) {
    *ok = false;
    *error = "empty internal node";
    return;
  }
  for (const auto& e : node.entries) {
    RecursiveCheck(e.child, depth + 1, e.mbr, e.count, true, leaf_depth, ok, error);
  }
}

bool RTree::CheckInvariants(std::string* error) {
  if (root_ == kInvalidPage) return true;
  bool ok = true;
  std::string local;
  RecursiveCheck(root_, 1, Rect{}, 0, false, height_, &ok, &local);
  if (!ok && error != nullptr) *error = local;
  // The advertised size must match the aggregate count.
  if (ok) {
    const RTreeNode root_node = ReadNode(root_);
    if (root_node.TotalCount() != size_) {
      ok = false;
      if (error != nullptr) *error = "size() does not match aggregate root count";
    }
  }
  return ok;
}

}  // namespace cca
