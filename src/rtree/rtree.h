// Disk-based aggregate R-tree over 2-D points.
//
// This is the spatial access method assumed by the paper for the customer
// set P (Section 2.3): a Guttman-style R-tree stored in fixed-size pages
// behind an LRU buffer. Supported operations:
//   * dynamic insertion (quadratic split),
//   * STR bulk loading (see bulk_load.h),
//   * circular range search and annular range search (RIA),
//   * best-first k-NN search [Hjaltason & Samet],
//   * incremental NN iteration (nn_iterator.h) and grouped incremental
//     all-NN search (ann_iterator.h, paper Section 3.4.2),
//   * delta-bounded partition descent for CA (partition_scan.h).
//
// Every node access is counted; physical I/O is modelled by the buffer
// pool (10 ms per fault, paper Section 5.1).
#ifndef CCA_RTREE_RTREE_H_
#define CCA_RTREE_RTREE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "geo/point.h"
#include "geo/rect.h"
#include "rtree/node.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace cca {

class RTree;

// Per-query I/O attribution for concurrent R-tree reads. The legacy
// accounting (IoScope snapshot-diffing the tree's global counters) breaks
// the moment two queries traverse one tree at once: each diff would charge
// the other query's work too. A tally is instead registered on the
// *current thread* for one specific tree; every ReadNode on that thread
// and tree then bumps it (plus its fault verdict), so a query that runs
// entirely on one worker thread — the runtime's execution model — gets
// exactly its own node accesses and page faults, no matter how many other
// threads hammer the same tree. Tallies nest LIFO per thread (outer scopes
// see inner scopes' work, the IoScope contract).
struct RTreeIoTally {
  std::uint64_t node_accesses = 0;
  std::uint64_t page_faults = 0;
};

class ScopedIoTally {
 public:
  // Registers `tally` for reads of `tree` on the calling thread; a null
  // tree makes the scope a no-op. Must be detached/destroyed on the same
  // thread, in LIFO order.
  ScopedIoTally(const RTree* tree, RTreeIoTally* tally);
  ~ScopedIoTally();

  ScopedIoTally(const ScopedIoTally&) = delete;
  ScopedIoTally& operator=(const ScopedIoTally&) = delete;

  // Stops counting early (idempotent).
  void Detach();

 private:
  friend class RTree;
  const RTree* tree_;
  RTreeIoTally* tally_;
  ScopedIoTally* parent_;  // previous top of this thread's tally stack
};

class RTree {
 public:
  // Node split strategy for dynamic insertion.
  enum class SplitPolicy {
    kQuadratic,   // Guttman's quadratic split (the default)
    kRStarAxis,   // R*-style: margin-minimal axis, overlap-minimal cut
  };

  struct Options {
    std::uint32_t page_size = kDefaultPageSize;
    // Buffer pool capacity in pages. The experiment harness later resizes
    // this to 1% of the tree via SetBufferFraction().
    std::uint32_t buffer_pages = 128;
    // Target fill factor for STR bulk loading.
    double bulk_fill = 0.85;
    // Minimum fill ratio enforced by node splits (Guttman's m).
    double min_fill = 0.4;
    // Split strategy. kRStarAxis implements the R*-tree split of Beckmann
    // et al. (paper Section 2.3 reference [2]) without forced reinsertion.
    SplitPolicy split_policy = SplitPolicy::kQuadratic;
  };

  struct Hit {
    std::uint32_t oid;
    Point pos;
    double dist;  // distance to the query point (0 for pure containment scans)
  };

  RTree();
  explicit RTree(const Options& options);
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  // --- construction --------------------------------------------------------

  // Inserts one point with object id `oid` (Guttman ChooseLeaf + quadratic
  // split). Aggregate counts along the path are maintained.
  void Insert(const Point& p, std::uint32_t oid);

  // Builds a tree from `points` via Sort-Tile-Recursive bulk loading;
  // oid of points[i] is i. Defined in bulk_load.cc.
  static std::unique_ptr<RTree> BulkLoad(const std::vector<Point>& points,
                                         const Options& options);
  static std::unique_ptr<RTree> BulkLoad(const std::vector<Point>& points);

  // --- queries -------------------------------------------------------------

  // All points with dist(center, p) <= radius.
  void RangeSearch(const Point& center, double radius, std::vector<Hit>* out);

  // All points with lo < dist(center, p) <= hi; the annular search RIA uses
  // to extend T by theta (paper Algorithm 2 line 14). lo < 0 degenerates to
  // a plain range search.
  void AnnularRangeSearch(const Point& center, double lo, double hi, std::vector<Hit>* out);

  // The k nearest neighbours of `center` in ascending distance order.
  void KnnSearch(const Point& center, std::size_t k, std::vector<Hit>* out);

  // --- structure -----------------------------------------------------------

  std::size_t size() const { return size_; }
  int height() const { return height_; }
  PageId root() const { return root_; }
  std::uint32_t page_count() const { return file_.page_count(); }
  Rect bounding_box();

  const Options& options() const { return options_; }

  // Reads and deserialises a node (counted as one logical node access).
  // Safe to call from multiple threads concurrently: the buffer pool
  // serializes page reads, the access counter is atomic, the scratch
  // buffer is thread-local, and the fault verdict is attributed to the
  // calling thread's registered tallies (ScopedIoTally above). Tree
  // *mutation* (Insert, bulk load) remains single-threaded.
  RTreeNode ReadNode(PageId id);

  // Serialises `node` into page `id`.
  void WriteNode(PageId id, const RTreeNode& node);
  PageId AllocateNode() { return file_.Allocate(); }

  // Sets the buffer pool to max(1, fraction * page_count) pages and clears
  // it, emulating a cold start with the paper's 1% buffer.
  void SetBufferFraction(double fraction);

  BufferPool& buffer() { return buffer_; }
  std::uint64_t node_accesses() const {
    return node_accesses_.load(std::memory_order_relaxed);
  }
  void ResetCounters();

  // Validates structural invariants (MBR containment, aggregate counts,
  // uniform leaf depth, capacity bounds). Returns false and fills `error`
  // on the first violation. Used by tests.
  bool CheckInvariants(std::string* error);

 private:
  friend class BulkLoader;

  struct PathStep {
    PageId page;
    int entry_index;  // index within the parent of the child we descended to
  };

  // Descends from the root picking minimal-enlargement children.
  PageId ChooseLeaf(const Point& p, std::vector<PathStep>* path);

  // Quadratic split of an overflowing node; returns the new sibling.
  RTreeNode SplitLeaf(RTreeNode* node);
  RTreeNode SplitInternal(RTreeNode* node);

  // Quadratic seed selection / entry distribution shared by both splits.
  template <typename Entry, typename RectOf>
  void QuadraticSplit(std::vector<Entry>* entries, std::vector<Entry>* left,
                      std::vector<Entry>* right, RectOf rect_of, std::size_t min_fill);

  // R*-style split: pick the axis with the smallest margin sum over all
  // admissible distributions, then the distribution with the smallest
  // overlap between the two halves (ties: smaller total area).
  template <typename Entry, typename RectOf>
  void RStarAxisSplit(std::vector<Entry>* entries, std::vector<Entry>* left,
                      std::vector<Entry>* right, RectOf rect_of, std::size_t min_fill);

  template <typename Entry, typename RectOf>
  void SplitEntries(std::vector<Entry>* entries, std::vector<Entry>* left,
                    std::vector<Entry>* right, RectOf rect_of, std::size_t min_fill);

  void RecursiveCheck(PageId page, int depth, const Rect& parent_mbr, std::uint64_t parent_count,
                      bool has_parent, int leaf_depth, bool* ok, std::string* error);

  Options options_;
  PageFile file_;
  BufferPool buffer_;
  PageId root_ = kInvalidPage;
  int height_ = 0;  // number of levels; 0 = empty, 1 = root is a leaf
  std::size_t size_ = 0;
  std::atomic<std::uint64_t> node_accesses_{0};
};

}  // namespace cca

#endif  // CCA_RTREE_RTREE_H_
