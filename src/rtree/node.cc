#include "rtree/node.h"

#include <cassert>
#include <cstring>

namespace cca {
namespace {

// Page header: [u8 is_leaf][u8 reserved][u16 count][u32 reserved]
constexpr std::uint32_t kHeaderBytes = 8;
constexpr std::uint32_t kLeafEntryBytes = 24;      // 2*8 + 4 + 4 pad
constexpr std::uint32_t kInternalEntryBytes = 40;  // 4*8 + 4 + 4

template <typename T>
void Put(std::uint8_t*& cursor, const T& value) {
  std::memcpy(cursor, &value, sizeof(T));
  cursor += sizeof(T);
}

template <typename T>
T Get(const std::uint8_t*& cursor) {
  T value;
  std::memcpy(&value, cursor, sizeof(T));
  cursor += sizeof(T);
  return value;
}

}  // namespace

Rect RTreeNode::ComputeMbr() const {
  Rect mbr;
  if (is_leaf) {
    for (const auto& e : leaf_entries) mbr.Expand(e.pos);
  } else {
    for (const auto& e : entries) mbr.Expand(e.mbr);
  }
  return mbr;
}

std::uint64_t RTreeNode::TotalCount() const {
  if (is_leaf) return leaf_entries.size();
  std::uint64_t total = 0;
  for (const auto& e : entries) total += e.count;
  return total;
}

std::uint32_t RTreeNode::LeafCapacity(std::uint32_t page_size) {
  assert(page_size > kHeaderBytes + kLeafEntryBytes);
  return (page_size - kHeaderBytes) / kLeafEntryBytes;
}

std::uint32_t RTreeNode::InternalCapacity(std::uint32_t page_size) {
  assert(page_size > kHeaderBytes + kInternalEntryBytes);
  return (page_size - kHeaderBytes) / kInternalEntryBytes;
}

void RTreeNode::Serialize(std::uint8_t* buf, std::uint32_t page_size) const {
  std::memset(buf, 0, page_size);
  std::uint8_t* cursor = buf;
  Put<std::uint8_t>(cursor, is_leaf ? 1 : 0);
  Put<std::uint8_t>(cursor, 0);
  Put<std::uint16_t>(cursor, static_cast<std::uint16_t>(size()));
  Put<std::uint32_t>(cursor, 0);
  if (is_leaf) {
    assert(leaf_entries.size() <= LeafCapacity(page_size));
    for (const auto& e : leaf_entries) {
      Put<double>(cursor, e.pos.x);
      Put<double>(cursor, e.pos.y);
      Put<std::uint32_t>(cursor, e.oid);
      Put<std::uint32_t>(cursor, 0);
    }
  } else {
    assert(entries.size() <= InternalCapacity(page_size));
    for (const auto& e : entries) {
      Put<double>(cursor, e.mbr.lo.x);
      Put<double>(cursor, e.mbr.lo.y);
      Put<double>(cursor, e.mbr.hi.x);
      Put<double>(cursor, e.mbr.hi.y);
      Put<std::uint32_t>(cursor, e.child);
      Put<std::uint32_t>(cursor, e.count);
    }
  }
}

RTreeNode RTreeNode::Deserialize(const std::uint8_t* buf, std::uint32_t page_size) {
  (void)page_size;
  RTreeNode node;
  const std::uint8_t* cursor = buf;
  node.is_leaf = Get<std::uint8_t>(cursor) != 0;
  Get<std::uint8_t>(cursor);
  const std::uint16_t count = Get<std::uint16_t>(cursor);
  Get<std::uint32_t>(cursor);
  if (node.is_leaf) {
    node.leaf_entries.reserve(count);
    for (std::uint16_t i = 0; i < count; ++i) {
      LeafEntry e;
      e.pos.x = Get<double>(cursor);
      e.pos.y = Get<double>(cursor);
      e.oid = Get<std::uint32_t>(cursor);
      Get<std::uint32_t>(cursor);
      node.leaf_entries.push_back(e);
    }
  } else {
    node.entries.reserve(count);
    for (std::uint16_t i = 0; i < count; ++i) {
      InternalEntry e;
      e.mbr.lo.x = Get<double>(cursor);
      e.mbr.lo.y = Get<double>(cursor);
      e.mbr.hi.x = Get<double>(cursor);
      e.mbr.hi.y = Get<double>(cursor);
      e.child = Get<std::uint32_t>(cursor);
      e.count = Get<std::uint32_t>(cursor);
      node.entries.push_back(e);
    }
  }
  return node;
}

}  // namespace cca
