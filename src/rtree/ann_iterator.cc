#include "rtree/ann_iterator.h"

#include <algorithm>
#include <limits>

#include "geo/hilbert.h"

namespace cca {

std::vector<std::vector<int>> FormHilbertGroups(const std::vector<Point>& points,
                                                std::size_t max_group_size, const Rect& world) {
  std::vector<int> order(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) order[i] = static_cast<int>(i);
  std::vector<std::uint64_t> hv(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) hv[i] = HilbertValue(points[i], world);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return hv[static_cast<std::size_t>(a)] < hv[static_cast<std::size_t>(b)];
  });
  std::vector<std::vector<int>> groups;
  for (std::size_t begin = 0; begin < order.size(); begin += max_group_size) {
    const std::size_t end = std::min(order.size(), begin + max_group_size);
    groups.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(begin),
                        order.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return groups;
}

GroupAnnSearcher::GroupAnnSearcher(RTree* tree, const std::vector<Point>& providers,
                                   const std::vector<std::vector<int>>& groups)
    : tree_(tree), providers_(providers) {
  group_of_.assign(providers.size(), -1);
  candidates_.resize(providers.size());
  groups_.resize(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    Group& group = groups_[g];
    group.members = groups[g];
    for (int idx : group.members) {
      group.mbr.Expand(providers_[static_cast<std::size_t>(idx)]);
      group_of_[static_cast<std::size_t>(idx)] = static_cast<int>(g);
    }
    if (tree_->root() != kInvalidPage) {
      group.frontier.push(FrontierItem{0.0, tree_->root()});
    }
  }
}

void GroupAnnSearcher::AdvanceUntilServable(int g, int idx) {
  Group& group = groups_[static_cast<std::size_t>(g)];
  auto& res = candidates_[static_cast<std::size_t>(idx)];
  while (!group.frontier.empty() &&
         (res.empty() || res.top().dist > group.frontier.top().key)) {
    const FrontierItem item = group.frontier.top();
    group.frontier.pop();
    const RTreeNode node = tree_->ReadNode(item.page);
    if (node.is_leaf) {
      // Every point feeds the candidate heap of every group member.
      for (const auto& e : node.leaf_entries) {
        for (int member : group.members) {
          candidates_[static_cast<std::size_t>(member)].push(
              Candidate{Distance(providers_[static_cast<std::size_t>(member)], e.pos), e.oid,
                        e.pos});
        }
      }
    } else {
      for (const auto& e : node.entries) {
        group.frontier.push(FrontierItem{MinDist(group.mbr, e.mbr), e.child});
      }
    }
  }
}

std::optional<RTree::Hit> GroupAnnSearcher::NextNN(int idx) {
  const int g = group_of_[static_cast<std::size_t>(idx)];
  AdvanceUntilServable(g, idx);
  auto& res = candidates_[static_cast<std::size_t>(idx)];
  if (res.empty()) return std::nullopt;
  const Candidate c = res.top();
  res.pop();
  return RTree::Hit{c.oid, c.pos, c.dist};
}

double GroupAnnSearcher::PeekDistance(int idx) {
  const int g = group_of_[static_cast<std::size_t>(idx)];
  AdvanceUntilServable(g, idx);
  const auto& res = candidates_[static_cast<std::size_t>(idx)];
  return res.empty() ? std::numeric_limits<double>::infinity() : res.top().dist;
}

}  // namespace cca
