#include "rtree/partition_scan.h"

#include <cassert>

namespace cca {
namespace {

// Recursively halves `rect` on its longest dimension until the diagonal
// fits delta, then emits one BaseEntry per non-empty fragment.
void SplitFragment(const Rect& rect, const std::vector<RTree::Hit>& points, double delta,
                   std::vector<BaseEntry>* out) {
  if (points.empty()) return;
  // Tighten to the actual points first; a sparse fragment may already fit.
  Rect tight;
  for (const auto& h : points) tight.Expand(h.pos);
  if (tight.Diagonal() <= delta) {
    BaseEntry entry;
    entry.rect = tight;
    entry.count = static_cast<std::uint32_t>(points.size());
    entry.points = points;
    out->push_back(std::move(entry));
    return;
  }
  const bool split_x = rect.width() >= rect.height();
  const double mid = split_x ? (rect.lo.x + rect.hi.x) * 0.5 : (rect.lo.y + rect.hi.y) * 0.5;
  Rect left = rect;
  Rect right = rect;
  if (split_x) {
    left.hi.x = mid;
    right.lo.x = mid;
  } else {
    left.hi.y = mid;
    right.lo.y = mid;
  }
  std::vector<RTree::Hit> left_pts, right_pts;
  for (const auto& h : points) {
    const bool in_left = split_x ? h.pos.x < mid : h.pos.y < mid;
    (in_left ? left_pts : right_pts).push_back(h);
  }
  SplitFragment(left, left_pts, delta, out);
  SplitFragment(right, right_pts, delta, out);
}

void Descend(RTree* tree, PageId page, const Rect& mbr, std::uint32_t count, double delta,
             std::vector<BaseEntry>* out) {
  if (mbr.Diagonal() <= delta) {
    BaseEntry entry;
    entry.rect = mbr;
    entry.count = count;
    entry.subtree = page;
    out->push_back(std::move(entry));
    return;
  }
  const RTreeNode node = tree->ReadNode(page);
  if (node.is_leaf) {
    std::vector<RTree::Hit> points;
    points.reserve(node.leaf_entries.size());
    for (const auto& e : node.leaf_entries) points.push_back(RTree::Hit{e.oid, e.pos, 0.0});
    SplitFragment(mbr, points, delta, out);
    return;
  }
  for (const auto& e : node.entries) {
    Descend(tree, e.child, e.mbr, e.count, delta, out);
  }
}

void CollectSubtree(RTree* tree, PageId page, std::vector<RTree::Hit>* out) {
  const RTreeNode node = tree->ReadNode(page);
  if (node.is_leaf) {
    for (const auto& e : node.leaf_entries) out->push_back(RTree::Hit{e.oid, e.pos, 0.0});
    return;
  }
  for (const auto& e : node.entries) CollectSubtree(tree, e.child, out);
}

}  // namespace

std::vector<BaseEntry> DeltaPartition(RTree* tree, double delta) {
  std::vector<BaseEntry> out;
  if (tree->root() == kInvalidPage) return out;
  const Rect root_mbr = tree->bounding_box();
  Descend(tree, tree->root(), root_mbr, static_cast<std::uint32_t>(tree->size()), delta, &out);
  return out;
}

void CollectPoints(RTree* tree, const BaseEntry& entry, std::vector<RTree::Hit>* out) {
  out->clear();
  if (entry.subtree == kInvalidPage) {
    *out = entry.points;
    return;
  }
  CollectSubtree(tree, entry.subtree, out);
}

}  // namespace cca
