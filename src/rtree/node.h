// R-tree node layout and (de)serialisation.
//
// Nodes are serialised into fixed-size pages (default 1 KB, the paper's
// setting). Two entry kinds exist:
//   * leaf entries:     point (2 doubles) + object id            (24 bytes)
//   * internal entries: MBR (4 doubles) + child page + aggregate (40 bytes)
// The aggregate field stores the number of points in the child's subtree
// ("aggregate R-tree"), which the CA partitioning (paper Section 4.2) needs
// to weight customer representatives without descending below delta-sized
// entries. See DESIGN.md Section 5 for the substitution note.
#ifndef CCA_RTREE_NODE_H_
#define CCA_RTREE_NODE_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "geo/rect.h"
#include "storage/page_file.h"

namespace cca {

struct LeafEntry {
  Point pos;
  std::uint32_t oid = 0;  // customer index in P
};

struct InternalEntry {
  Rect mbr;
  PageId child = kInvalidPage;
  std::uint32_t count = 0;  // number of points under `child`
};

// In-memory representation of one R-tree node. Nodes are read from /
// written to pages via Serialize/Deserialize; query code works on this
// deserialised form.
struct RTreeNode {
  bool is_leaf = true;
  std::vector<LeafEntry> leaf_entries;
  std::vector<InternalEntry> entries;

  std::size_t size() const { return is_leaf ? leaf_entries.size() : entries.size(); }

  // Tight MBR over all entries.
  Rect ComputeMbr() const;

  // Total number of points under this node (leaf count or sum of
  // aggregates).
  std::uint64_t TotalCount() const;

  // Maximum entries that fit a page of `page_size` bytes.
  static std::uint32_t LeafCapacity(std::uint32_t page_size);
  static std::uint32_t InternalCapacity(std::uint32_t page_size);

  // Writes this node into `buf` (page_size bytes, zero-padded). The node
  // must respect the capacity for its kind.
  void Serialize(std::uint8_t* buf, std::uint32_t page_size) const;

  // Parses a node out of a page image.
  static RTreeNode Deserialize(const std::uint8_t* buf, std::uint32_t page_size);
};

}  // namespace cca

#endif  // CCA_RTREE_NODE_H_
