// Incremental nearest-neighbour iterator (distance browsing).
//
// Implements the best-first algorithm of Hjaltason & Samet over the
// R-tree: a min-heap holds both R-tree entries (keyed by mindist to the
// query) and points (keyed by exact distance); popping a point yields the
// next NN. NIA and IDA use one iterator per service provider to discover
// flow-graph edges one at a time (paper Sections 3.2, 3.3), wrapped behind
// the backend-neutral NnSource interface (core/nn_source.h): Next() must
// yield non-decreasing distances per query, which is the contract the
// discovery layer certifies against (src/core/README.md).
#ifndef CCA_RTREE_NN_ITERATOR_H_
#define CCA_RTREE_NN_ITERATOR_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "geo/point.h"
#include "rtree/rtree.h"

namespace cca {

class NnIterator {
 public:
  NnIterator(RTree* tree, const Point& query);

  // Returns the next nearest point, or nullopt when P is exhausted.
  std::optional<RTree::Hit> Next();

  // Distance of the next point to be returned without consuming it
  // (infinity when exhausted). May read R-tree nodes to find out.
  double PeekDistance();

 private:
  struct Item {
    double dist;
    bool is_point;
    PageId page;
    std::uint32_t oid;
    Point pos;
  };
  struct Cmp {
    bool operator()(const Item& a, const Item& b) const { return a.dist > b.dist; }
  };

  // Expands entry-items until the heap top is a point (or the heap drains).
  void Refine();

  RTree* tree_;
  Point query_;
  std::priority_queue<Item, std::vector<Item>, Cmp> heap_;
};

}  // namespace cca

#endif  // CCA_RTREE_NN_ITERATOR_H_
