// Delta-bounded R-tree partition descent for Customer Approximation (CA),
// paper Section 4.2.
//
// Starting from the root, entries whose MBR diagonal is <= delta become
// customer groups directly (without descending into them). Larger entries
// are descended into. If a *leaf* still exceeds delta, its MBR is
// conceptually split in half along the longest dimension, recursively,
// until every fragment's diagonal fits; fragment contents come from the
// leaf's actual points (the leaf page is read, and that I/O is counted).
#ifndef CCA_RTREE_PARTITION_SCAN_H_
#define CCA_RTREE_PARTITION_SCAN_H_

#include <cstdint>
#include <vector>

#include "geo/rect.h"
#include "rtree/rtree.h"

namespace cca {

// One delta-bounded group of customers produced by the descent.
struct BaseEntry {
  Rect rect;               // MBR of the group (diagonal <= delta)
  std::uint32_t count = 0; // number of customer points inside
  // Subtree root when the group is an R-tree entry; kInvalidPage when the
  // group is a conceptual leaf fragment, in which case `points` is filled.
  PageId subtree = kInvalidPage;
  std::vector<RTree::Hit> points;
};

// Performs the descent and returns groups covering the whole dataset, each
// with diagonal <= delta and count >= 1.
std::vector<BaseEntry> DeltaPartition(RTree* tree, double delta);

// Materialises the customer points of `entry` (reads its subtree when the
// group is an R-tree entry; returns the stored fragment points otherwise).
void CollectPoints(RTree* tree, const BaseEntry& entry, std::vector<RTree::Hit>* out);

}  // namespace cca

#endif  // CCA_RTREE_PARTITION_SCAN_H_
