// Grouped incremental all-nearest-neighbour (ANN) search, paper Section
// 3.4.2.
//
// NIA/IDA issue many interleaved incremental NN streams, one per service
// provider. Running an independent best-first search per provider re-reads
// the same R-tree pages over and over. The paper's optimisation groups
// nearby providers (by Hilbert order), maintains a *single* best-first
// traversal per group ordered by mindist(MBR(group), entry), and feeds every
// de-heaped point into per-provider candidate heaps. A provider's next NN is
// served from its candidate heap as soon as the candidate's distance is no
// larger than the group frontier key (Algorithm 6). Like NnIterator, this is
// consumed through the backend-neutral NnSource interface (core/nn_source.h)
// and must honour its per-provider non-decreasing-distance contract; the
// frontier key plays the same certifying role as GridRingCursor's
// TailMinDist (src/core/README.md).
#ifndef CCA_RTREE_ANN_ITERATOR_H_
#define CCA_RTREE_ANN_ITERATOR_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "geo/point.h"
#include "geo/rect.h"
#include "rtree/rtree.h"

namespace cca {

// Partitions `points` (service providers) into groups of at most
// `max_group_size` consecutive points in Hilbert order over `world`.
// Returns group membership: result[g] lists provider indices of group g.
std::vector<std::vector<int>> FormHilbertGroups(const std::vector<Point>& points,
                                                std::size_t max_group_size, const Rect& world);

class GroupAnnSearcher {
 public:
  // `groups[g]` lists indices into `providers` belonging to group g.
  GroupAnnSearcher(RTree* tree, const std::vector<Point>& providers,
                   const std::vector<std::vector<int>>& groups);

  // Next nearest customer of provider `idx` (ascending distance), or
  // nullopt when the dataset is exhausted for that provider.
  std::optional<RTree::Hit> NextNN(int idx);

  // Distance the next NextNN(idx) would return (infinity if exhausted).
  // Advances the shared group traversal as needed but never consumes
  // candidates.
  double PeekDistance(int idx);

 private:
  struct FrontierItem {
    double key;  // mindist(group MBR, entry MBR)
    PageId page;
  };
  struct FrontierCmp {
    bool operator()(const FrontierItem& a, const FrontierItem& b) const { return a.key > b.key; }
  };
  struct Candidate {
    double dist;
    std::uint32_t oid;
    Point pos;
  };
  struct CandidateCmp {
    bool operator()(const Candidate& a, const Candidate& b) const { return a.dist > b.dist; }
  };
  struct Group {
    Rect mbr;
    std::vector<int> members;
    std::priority_queue<FrontierItem, std::vector<FrontierItem>, FrontierCmp> frontier;
  };

  // Pops frontier entries of `g` until member `idx`'s candidate top is
  // final (<= frontier key) or the frontier drains.
  void AdvanceUntilServable(int g, int idx);

  RTree* tree_;
  std::vector<Point> providers_;
  std::vector<Group> groups_;
  std::vector<int> group_of_;  // provider index -> group id
  std::vector<std::priority_queue<Candidate, std::vector<Candidate>, CandidateCmp>> candidates_;
};

}  // namespace cca

#endif  // CCA_RTREE_ANN_ITERATOR_H_
