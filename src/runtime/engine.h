// AssignmentEngine: a long-lived incremental serving engine over one
// mutable CCA instance (the ROADMAP's dispatch-style workload).
//
// The batch solvers treat every problem as static: build indexes, solve,
// throw everything away. A dispatch service (ride-hailing, delivery,
// clinic triage) instead sees customers and providers arrive and leave and
// must re-solve continuously. The engine keeps the problem state mutable
// behind stable caller-visible ids and makes each `Resolve` cheap in two
// ways:
//
//   * Warm-started duals *and flow*. Every solve exports its node
//     potentials (SspaResult::potentials) and the next solve is seeded
//     with them (SspaConfig::initial_potentials) together with the
//     previous matching remapped through the churn
//     (SspaConfig::initial_matching): pairs that survived and stayed tight
//     are adopted as initial flow, so only the perturbed units are
//     re-augmented. Between solves the engine keeps the dual vectors
//     aligned with the point sets: removals drop the
//     entry, an inserted customer is seeded at the smallest value feasible
//     against every provider dual (max_q(tau_q - dist), clamped at 0), an
//     inserted provider at the largest (a tau-augmented nearest-neighbour
//     query, min_p(dist + tau_p), served by the retained cell-floor
//     table). The solver's own repair pass remains the safety net, so
//     seed quality affects only speed — never the matching
//     (src/runtime/README.md has the soundness argument).
//   * Index invalidation by population version. The customer grid (flat or
//     hierarchical, per the configured solve strategy) is rebuilt only on
//     a Resolve that follows a customer insert/remove and is shared with
//     the solver via SspaConfig::shared_grid / shared_hier_grid; provider
//     churn never invalidates it. The engine-side nearest-neighbour
//     bookkeeping (grid + CellTauTable) follows the same policy, with
//     customer removals masked incrementally via CellTauTable::Remove and
//     post-snapshot inserts served from a linear side list until the next
//     rebuild folds them in.
//
// Correctness anchor: a warm-started Resolve is cost-identical to a cold
// solve of the same snapshot. Debug builds assert it on every Resolve
// (Options::verify_cold forces the cross-check in release builds too); the
// randomized churn suite (tests/test_engine_churn.cc) and
// bench_engine_dispatch enforce it in CI.
//
// The engine is deliberately single-threaded: one mutable owner. For
// concurrent read-only query serving over an immutable snapshot, see
// QueryRunner (src/runtime/query_runner.h).
#ifndef CCA_RUNTIME_ENGINE_H_
#define CCA_RUNTIME_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/status.h"
#include "core/matching.h"
#include "core/problem.h"
#include "flow/sspa.h"
#include "geo/grid.h"
#include "geo/hier_grid.h"

namespace cca {

class AssignmentEngine {
 public:
  // Stable handle for an inserted customer/provider; never reused.
  using Id = std::int64_t;

  struct Options {
    // Base solve configuration. The engine owns the shared index and warm
    // duals, so shared_grid / shared_hier_grid / initial_potentials are
    // overwritten per Resolve; every other knob passes through.
    SspaConfig sspa;
    // Seed each solve with the previous solve's duals. Off = every
    // Resolve is a cold solve (the A/B switch the churn suite and
    // bench_engine_dispatch compare against).
    bool warm_start = true;
    // Re-solve cold after every warm Resolve and abort on a cost mismatch
    // even in release builds (Debug builds always run this cross-check).
    bool verify_cold = false;
    // Wall-clock budget for one Resolve, in milliseconds; <= 0 disables.
    // The budget covers the whole serving path (index rebuild + warm-start
    // assembly + solve): whatever remains after the pre-solve work is
    // handed to the solver as its cooperative deadline. On a breach the
    // engine never crashes or stalls — it degrades to the last-known-good
    // matching remapped through the churn plus a greedy nearest-residual
    // patch for unserved demand, reports it with ResolveOutcome::degraded
    // set (plus the exact unassigned ledger), and leaves the retained
    // duals and adoption flow untouched so the next Resolve warm-starts
    // from the last *optimal* solution, not the degraded stop-gap.
    double resolve_deadline_ms = 0.0;
  };

  AssignmentEngine() : AssignmentEngine(Options{}) {}
  explicit AssignmentEngine(const Options& options);

  // Population edits. Weight/capacity follow Problem's semantics (weight 1
  // = unit customer; the weights array stays empty until a non-unit weight
  // appears, keeping the solver on its unit fast path). Invalid input —
  // non-finite coordinates, weight < 1, capacity < 1 — is rejected with
  // kInvalidArgument and leaves the engine untouched (the Status contract
  // in src/core/README.md; these were Debug-only asserts before). Removals
  // return false for unknown ids.
  StatusOr<Id> InsertCustomer(const Point& pos, std::int32_t weight = 1);
  StatusOr<Id> InsertProvider(const Point& pos, std::int32_t capacity);
  bool RemoveCustomer(Id id);
  bool RemoveProvider(Id id);

  struct ResolveOutcome {
    double cost = 0.0;
    bool warm = false;  // previous duals seeded this solve
    // The resolve deadline fired: `matching` is the last-known-good
    // matching remapped through the churn plus a greedy patch — valid and
    // capacity-respecting, but not certified optimal. Never set when
    // resolve_deadline_ms is disabled.
    bool degraded = false;
    // Pairs index the engine's dense arrays as of this Resolve; map back
    // to stable handles via customer_id() / provider_id().
    Matching matching;
    // Demand no provider serves, by customer index (same space as the
    // matching): overflow on an infeasible snapshot (total demand > total
    // capacity) and/or demand a degraded resolve could not patch. Empty
    // exactly when every customer is served in full.
    std::vector<UnassignedUnit> unassigned;
    std::int64_t unassigned_units = 0;
    Metrics metrics;
  };
  // Solves the current snapshot (warm-started when a previous solution
  // exists and Options::warm_start is on) and retains duals + indexes for
  // the next round.
  ResolveOutcome Resolve();

  // Cumulative runtime stats since construction: the serving engine's
  // observability surface. Everything is maintained inline (O(1) per edit,
  // one Metrics::Merge + one Histogram::Record per Resolve), so snapshots
  // are cheap enough to export per dispatch step. Latencies cover the
  // engine's own work (index rebuild + warm-start assembly + solve), not
  // the VerifyAgainstCold cross-check, which is a correctness harness the
  // serving path never pays for.
  struct Stats {
    std::uint64_t resolves = 0;
    std::uint64_t warm_resolves = 0;  // seeded with previous duals + flow
    std::uint64_t customers_inserted = 0;
    std::uint64_t customers_removed = 0;
    std::uint64_t providers_inserted = 0;
    std::uint64_t providers_removed = 0;
    // Units assigned by the most recent Resolve and, for the warm-start
    // ratio, the cumulative totals across all resolves.
    std::uint64_t units_matched = 0;
    std::uint64_t warm_units_adopted = 0;
    // Failure-model ledger (src/runtime/README.md "Failure model"):
    // resolves whose deadline fired, resolves that served a degraded
    // matching (currently identical — every breach degrades), and the
    // cumulative units reported unassigned across all resolves (nonzero
    // only on infeasible snapshots or degraded resolves).
    std::uint64_t deadline_breaches = 0;
    std::uint64_t degraded_resolves = 0;
    std::uint64_t unassigned_units = 0;
    // Solver counters merged across every Resolve (same ledger the batch
    // benches gate on, so regressions surface on the serving path too).
    Metrics totals;
    // Per-Resolve latency in milliseconds (Histogram::Percentile for
    // p50/p99 without retaining samples).
    Histogram resolve_latency_ms;

    // Fraction of all matched units re-adopted from the previous solution
    // instead of re-augmented: the warm-start effectiveness signal
    // (1.0 - ratio is the churn the solver actually paid for).
    double warm_adoption_ratio() const {
      return units_matched > 0
                 ? static_cast<double>(warm_units_adopted) / static_cast<double>(units_matched)
                 : 0.0;
    }
    // One JSON object: counters, adoption ratio, latency percentiles.
    std::string ToJson() const;
  };
  // Snapshot of the cumulative stats (copy: the engine keeps mutating).
  Stats stats() const { return stats_; }

  const Problem& problem() const { return problem_; }
  std::size_t num_customers() const { return problem_.customers.size(); }
  std::size_t num_providers() const { return problem_.providers.size(); }
  Id customer_id(std::size_t index) const { return customer_ids_[index]; }
  Id provider_id(std::size_t index) const { return provider_ids_[index]; }
  bool has_solution() const { return have_solution_; }
  // Duals retained from the last Resolve, aligned with problem()'s arrays
  // (entries for points inserted since are their feasibility seeds).
  const SspaPotentials& potentials() const { return duals_; }

 private:
  double WarmCustomerDual(const Point& pos) const;
  double WarmProviderDual(const Point& pos) const;
  void RebuildIndexesIfStale();
  void VerifyAgainstCold(const SspaConfig& warm_config, double warm_cost);
  void BuildDegradedOutcome(ResolveOutcome* out) const;

  Options options_;
  Problem problem_;
  std::vector<Id> customer_ids_;
  std::vector<Id> provider_ids_;
  std::unordered_map<Id, std::size_t> customer_index_;
  std::unordered_map<Id, std::size_t> provider_index_;
  Id next_id_ = 0;

  // Duals aligned with problem_'s arrays at all times (zero-seeded before
  // the first solve).
  SspaPotentials duals_;
  // Previous solve's flow keyed by stable ids, remapped to current indices
  // at the next warm Resolve (pairs with departed endpoints drop out).
  struct FlowRec {
    Id provider;
    Id customer;
    std::int32_t units;
  };
  std::vector<FlowRec> last_flow_;
  bool have_solution_ = false;

  // Shared solve index over the customers, rebuilt only when the customer
  // population changed since it was built (flat or hierarchical, matching
  // the configured solve strategy).
  std::unique_ptr<UniformGrid> solve_grid_;
  std::unique_ptr<HierarchicalGrid> solve_hier_;
  // Engine-side tau-augmented NN bookkeeping: a flat grid over the
  // customers as of the last Resolve plus the cell floors of their duals.
  // `nn_slot_[i]` is customer i's point id in that snapshot (-1 = inserted
  // after it; served from the linear side scan until the next rebuild).
  std::unique_ptr<UniformGrid> nn_grid_;
  std::unique_ptr<CellTauTable> nn_floors_;
  std::vector<std::int32_t> nn_slot_;
  std::size_t nn_pending_ = 0;  // customers with nn_slot_ == -1 (side scan)
  bool customers_dirty_ = true;

  Stats stats_;
};

}  // namespace cca

#endif  // CCA_RUNTIME_ENGINE_H_
