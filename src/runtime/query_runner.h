// Concurrent query engine: a fixed-size thread pool executing batches of
// independent assignment queries over one shared immutable index.
//
// The paper benchmarks one assignment at a time; a serving system runs a
// *stream* of them (new provider fleets, what-if capacity configurations,
// rolling re-assignments) against one slowly-changing customer set. The
// expensive read-only state — the R-tree with its LRU buffer and the two
// uniform grids (coarse streaming cells for NN discovery, fine cells for
// the SSPA relax) — is built once into a SharedIndex and shared by every
// in-flight query; all mutable solver state (potentials, heaps, cursors,
// tau floors, metrics) is private to the executing query. No query ever
// writes shared state, so no locks are taken on the query path: the only
// synchronisation is the buffer pool's internal mutex (physical page reads)
// and the batch lifecycle itself.
//
// Execution model: each query runs start-to-finish on exactly one worker
// thread. That is what makes per-query I/O attribution exact (IoScope's
// thread-local tallies, src/rtree/rtree.h) and per-query Metrics bundles
// race-free — they are merged only after the batch joins. Results land at
// the query's batch index, so outcomes are deterministic and independent
// of thread count and scheduling; only page-fault counts on R-tree
// backends vary with concurrency (the shared LRU sees a different
// interleaving — see src/core/README.md).
#ifndef CCA_RUNTIME_QUERY_RUNNER_H_
#define CCA_RUNTIME_QUERY_RUNNER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "core/customer_db.h"
#include "core/exact.h"
#include "core/matching.h"
#include "core/problem.h"
#include "flow/sspa.h"
#include "geo/grid.h"
#include "geo/hier_grid.h"

namespace cca {

// Read-only index bundle over one customer set, safe to share across
// threads once constructed (construction itself is single-threaded).
class SharedIndex {
 public:
  struct Options {
    // Streaming-grid resolution (NN discovery; kGrid/kGridBatched).
    // Non-positive resolves to the exact solvers' coarse default, matching
    // what a private per-solve build would produce.
    double stream_target_per_cell = 0.0;
    // Relax-grid resolution (SSPA). Matches SspaConfig's default.
    double relax_target_per_cell = UniformGrid::kDefaultTargetPerCell;
    // Build the R-tree CustomerDb (needed by the kRTree* backends and the
    // greedy baseline; grid-only workloads can skip the bulk load).
    bool build_customer_db = true;
    // Split threshold for the shared hierarchical grids (0 = the builder's
    // auto default); must match a query's hier_split_threshold for the
    // shared hierarchy to be injected.
    std::size_t hier_split_threshold = 0;
    CustomerDb::Options db;
  };

  // The single-argument overload uses default Options (a default argument
  // cannot: nested-class member initializers are not usable until the
  // enclosing class is complete).
  explicit SharedIndex(std::vector<Point> customers);
  SharedIndex(std::vector<Point> customers, const Options& options);

  const std::vector<Point>& customers() const { return customers_; }
  // Null when Options::build_customer_db was false.
  CustomerDb* db() const { return db_.get(); }
  const UniformGrid* stream_grid() const { return stream_grid_.get(); }
  const UniformGrid* relax_grid() const { return relax_grid_.get(); }
  // Hierarchical siblings of the two flat grids (geo/hier_grid.h), built at
  // the same fine resolutions with the standard 16x-coarser top level:
  // injected into SSPA solves running with use_hierarchy and into exact
  // kGrid solves that opt into the hierarchical stream.
  const HierarchicalGrid* stream_hier() const { return stream_hier_.get(); }
  const HierarchicalGrid* relax_hier() const { return relax_hier_.get(); }
  // Resolved resolutions the grids were built at (used by QueryRunner to
  // decide whether a query's config can borrow them).
  double stream_target_per_cell() const { return stream_target_per_cell_; }
  double relax_target_per_cell() const { return relax_target_per_cell_; }
  std::size_t hier_split_threshold() const { return hier_split_threshold_; }

 private:
  std::vector<Point> customers_;
  std::unique_ptr<CustomerDb> db_;
  std::unique_ptr<UniformGrid> stream_grid_;
  std::unique_ptr<UniformGrid> relax_grid_;
  std::unique_ptr<HierarchicalGrid> stream_hier_;
  std::unique_ptr<HierarchicalGrid> relax_hier_;
  double stream_target_per_cell_ = 0.0;
  double relax_target_per_cell_ = 0.0;
  std::size_t hier_split_threshold_ = 0;
};

// Which solver a QuerySpec runs.
enum class QuerySolver {
  kSspa = 0,  // flow baseline (SolveSspa; ignores the R-tree entirely)
  kRia,
  kNia,
  kIda,
  kGreedy,  // greedy SM baseline
};

// One independent assignment query. `problem.customers` must be the shared
// index's customer set (same points, same order) — providers, weights and
// configs are free per query. The runner injects the shared grids into the
// configs when the requested resolution matches the index's; a config that
// asks for a different resolution (or pre-set shared grids) is honoured
// as-is and falls back to a private build.
struct QuerySpec {
  QuerySolver solver = QuerySolver::kIda;
  Problem problem;
  ExactConfig exact;  // RIA / NIA / IDA / greedy
  SspaConfig sspa;    // SSPA
};

struct QueryOutcome {
  Matching matching;
  Metrics metrics;
  double latency_millis = 0.0;  // wall-clock of this query's solve
};

// Fixed-size persistent thread pool. Threads are spawned once in the
// constructor and parked between batches; Run() hands the pool a batch,
// blocks until every query finished, and returns outcomes in batch order.
// Run() is not itself thread-safe (one batch in flight at a time).
class QueryRunner {
 public:
  // `num_threads` == 0 or 1 still runs through one worker thread, keeping
  // the execution environment identical across thread counts (that is what
  // the determinism tests compare against).
  QueryRunner(const SharedIndex* index, std::size_t num_threads);
  ~QueryRunner();

  QueryRunner(const QueryRunner&) = delete;
  QueryRunner& operator=(const QueryRunner&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  std::vector<QueryOutcome> Run(const std::vector<QuerySpec>& batch);

  // Merges per-query Metrics bundles into one (Metrics::Merge under the
  // hood; timing fields sum, so cpu_millis is aggregate work, not
  // wall-clock).
  static Metrics Aggregate(const std::vector<QueryOutcome>& outcomes);

 private:
  void WorkerLoop();
  QueryOutcome RunOne(const QuerySpec& spec) const;

  const SharedIndex* index_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a new batch is ready
  std::condition_variable done_cv_;  // Run(): all workers drained the batch
  std::uint64_t generation_ = 0;     // bumped per batch (guarded by mu_)
  std::size_t workers_done_ = 0;     // workers finished with this batch
  bool shutdown_ = false;
  const std::vector<QuerySpec>* batch_ = nullptr;  // valid for one generation
  std::vector<QueryOutcome>* results_ = nullptr;
  std::atomic<std::size_t> next_{0};  // next unclaimed batch index
};

}  // namespace cca

#endif  // CCA_RUNTIME_QUERY_RUNNER_H_
