#include "runtime/query_runner.h"

#include <cassert>

#include "common/timer.h"
#include "common/trace.h"
#include "core/greedy.h"
#include "core/nn_source.h"

namespace cca {

SharedIndex::SharedIndex(std::vector<Point> customers)
    : SharedIndex(std::move(customers), Options()) {}

SharedIndex::SharedIndex(std::vector<Point> customers, const Options& options)
    : customers_(std::move(customers)) {
  if (options.build_customer_db) {
    db_ = std::make_unique<CustomerDb>(customers_, options.db);
  }
  if (!customers_.empty()) {
    // Resolve the streaming target exactly the way MakeNnSource would for a
    // config that leaves grid_stream_target_per_cell unset, so a default
    // config's private build and the shared grid are interchangeable.
    ExactConfig probe;
    probe.grid_stream_target_per_cell = options.stream_target_per_cell;
    stream_target_per_cell_ = ResolveGridTargetPerCell(probe);
    stream_grid_ = std::make_unique<UniformGrid>(customers_, stream_target_per_cell_);
    relax_target_per_cell_ = options.relax_target_per_cell;
    relax_grid_ = std::make_unique<UniformGrid>(customers_, relax_target_per_cell_);
    // Hierarchical siblings at the same fine resolutions, with the standard
    // 16x-coarser aggregation level (the ratio SspaSolver's private build
    // uses, so a borrowed and an owned hierarchy are interchangeable).
    hier_split_threshold_ = options.hier_split_threshold;
    HierarchicalGrid::Options stream_opts;
    stream_opts.fine_target_per_cell = stream_target_per_cell_;
    stream_opts.coarse_target_per_cell = 16.0 * stream_target_per_cell_;
    stream_opts.split_threshold = hier_split_threshold_;
    stream_hier_ = std::make_unique<HierarchicalGrid>(customers_, stream_opts);
    const double relax_fine = relax_target_per_cell_ > 0.0
                                  ? relax_target_per_cell_
                                  : UniformGrid::kDefaultTargetPerCell;
    HierarchicalGrid::Options relax_opts;
    relax_opts.fine_target_per_cell = relax_fine;
    relax_opts.coarse_target_per_cell = 16.0 * relax_fine;
    relax_opts.split_threshold = hier_split_threshold_;
    relax_hier_ = std::make_unique<HierarchicalGrid>(customers_, relax_opts);
  }
}

QueryRunner::QueryRunner(const SharedIndex* index, std::size_t num_threads) : index_(index) {
  const std::size_t n = num_threads == 0 ? 1 : num_threads;
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryRunner::~QueryRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::vector<QueryOutcome> QueryRunner::Run(const std::vector<QuerySpec>& batch) {
  std::vector<QueryOutcome> results(batch.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = &batch;
    results_ = &results;
    next_.store(0, std::memory_order_relaxed);
    workers_done_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return workers_done_ == threads_.size(); });
    batch_ = nullptr;
    results_ = nullptr;
  }
  return results;
}

void QueryRunner::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  while (true) {
    const std::vector<QuerySpec>* batch = nullptr;
    std::vector<QueryOutcome>* results = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) return;
      seen_generation = generation_;
      batch = batch_;
      results = results_;
    }
    // Claim queries off the shared cursor until the batch is drained. Each
    // query runs wholly on this thread (per-query metrics and thread-local
    // I/O tallies depend on that).
    while (true) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch->size()) break;
      (*results)[i] = RunOne((*batch)[i]);
    }
    // Drain this worker's trace buffer at the batch join: pooled workers
    // live until QueryRunner teardown, so without this a short tracing
    // session would never see their spans (thread-exit flush comes too
    // late). No-op when tracing is compiled out or stopped.
    trace::FlushThisThread();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++workers_done_;
      if (workers_done_ == threads_.size()) done_cv_.notify_all();
    }
  }
}

QueryOutcome QueryRunner::RunOne(const QuerySpec& spec) const {
  // Borrowing is gated on matching size + resolution: a spec whose problem
  // carries a different customer set (documented as unsupported) or whose
  // config wants another resolution silently keeps its private build, so a
  // mismatched injection can never change results.
  const bool same_customers = spec.problem.customers.size() == index_->customers().size();

  QueryOutcome outcome;
  CCA_TRACE_SPAN_VAR(span, "runner.query");
  span.Arg("solver", static_cast<std::uint64_t>(spec.solver));
  Timer timer;
  switch (spec.solver) {
    case QuerySolver::kSspa: {
      SspaConfig config = spec.sspa;
      if (config.shared_grid == nullptr && same_customers &&
          config.grid_target_per_cell == index_->relax_target_per_cell()) {
        config.shared_grid = index_->relax_grid();
      }
      // The hierarchical relax grid borrows under the same contract, plus a
      // matching split threshold (the hierarchy's one extra shape knob).
      if (config.use_hierarchy && config.use_cell_floors &&
          config.shared_hier_grid == nullptr && same_customers &&
          config.grid_target_per_cell == index_->relax_target_per_cell() &&
          config.hier_split_threshold == index_->hier_split_threshold()) {
        config.shared_hier_grid = index_->relax_hier();
      }
      SspaResult r = SolveSspa(spec.problem, config);
      outcome.matching = std::move(r.matching);
      outcome.metrics = r.metrics;
      break;
    }
    default: {
      ExactConfig config = spec.exact;
      if (config.shared_stream_grid == nullptr && same_customers &&
          ResolveGridTargetPerCell(config) == index_->stream_target_per_cell()) {
        config.shared_stream_grid = index_->stream_grid();
      }
      if (config.use_hierarchy && config.shared_stream_hier == nullptr && same_customers &&
          ResolveGridTargetPerCell(config) == index_->stream_target_per_cell()) {
        config.shared_stream_hier = index_->stream_hier();
      }
      CustomerDb* db = index_->db();
      assert(db != nullptr && "exact/greedy queries need the SharedIndex CustomerDb");
      ExactResult r;
      switch (spec.solver) {
        case QuerySolver::kRia:
          r = SolveRia(spec.problem, db, config);
          break;
        case QuerySolver::kNia:
          r = SolveNia(spec.problem, db, config);
          break;
        case QuerySolver::kGreedy:
          r = SolveGreedySm(spec.problem, db, config);
          break;
        default:
          r = SolveIda(spec.problem, db, config);
          break;
      }
      outcome.matching = std::move(r.matching);
      outcome.metrics = r.metrics;
      break;
    }
  }
  outcome.latency_millis = timer.ElapsedMillis();
  return outcome;
}

Metrics QueryRunner::Aggregate(const std::vector<QueryOutcome>& outcomes) {
  Metrics total;
  for (const QueryOutcome& o : outcomes) total.Merge(o.metrics);
  return total;
}

}  // namespace cca
