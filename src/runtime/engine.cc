#include "runtime/engine.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "common/timer.h"
#include "common/trace.h"

namespace cca {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Swap-removes index `idx` from a dense vector, preserving alignment with
// the sibling arrays (the caller fixes up the id -> index map).
template <typename T>
void SwapRemove(std::vector<T>* v, std::size_t idx) {
  (*v)[idx] = std::move(v->back());
  v->pop_back();
}
}  // namespace

AssignmentEngine::AssignmentEngine(const Options& options) : options_(options) {}

StatusOr<AssignmentEngine::Id> AssignmentEngine::InsertCustomer(const Point& pos,
                                                                std::int32_t weight) {
  // Boundary validation (the Status contract): a NaN coordinate would
  // poison every distance comparison downstream — Dijkstra's heap order,
  // the grid's cell assignment — and a non-positive weight breaks the
  // flow network's gamma accounting. Reject here, mutate nothing.
  if (!std::isfinite(pos.x) || !std::isfinite(pos.y)) {
    return InvalidArgumentError("customer position must be finite");
  }
  if (weight < 1) {
    return InvalidArgumentError("customer weight must be >= 1");
  }
  // The weights array stays empty while every customer is unit-weight so
  // the solver keeps its flat serving_ fast path; the first non-unit
  // weight materialises it.
  if (weight != 1 && problem_.weights.empty() && !problem_.customers.empty()) {
    problem_.weights.assign(problem_.customers.size(), 1);
  }
  if (weight != 1 || !problem_.weights.empty()) {
    if (problem_.weights.size() < problem_.customers.size()) {
      problem_.weights.assign(problem_.customers.size(), 1);
    }
    problem_.weights.push_back(weight);
  }
  // Smallest dual feasible against every provider: tau_p >= tau_q - dist
  // for all q keeps the existing provider duals untouched. Before the
  // first solve every dual is zero anyway.
  problem_.customers.push_back(pos);
  duals_.tau_p.push_back(have_solution_ ? WarmCustomerDual(pos) : 0.0);
  nn_slot_.push_back(-1);
  ++nn_pending_;
  const Id id = next_id_++;
  customer_ids_.push_back(id);
  customer_index_.emplace(id, problem_.customers.size() - 1);
  customers_dirty_ = true;
  ++stats_.customers_inserted;
  return id;
}

StatusOr<AssignmentEngine::Id> AssignmentEngine::InsertProvider(const Point& pos,
                                                                std::int32_t capacity) {
  if (!std::isfinite(pos.x) || !std::isfinite(pos.y)) {
    return InvalidArgumentError("provider position must be finite");
  }
  if (capacity < 1) {
    return InvalidArgumentError("provider capacity must be >= 1");
  }
  // Largest dual feasible against every customer: tau_q <= dist + tau_p
  // for all p. The in-solver repair pass would catch any overestimate, but
  // seeding exactly keeps the repair a no-op for everyone else.
  const double seed = have_solution_ ? WarmProviderDual(pos) : 0.0;
  problem_.providers.push_back(Provider{pos, capacity});
  duals_.tau_q.push_back(seed);
  const Id id = next_id_++;
  provider_ids_.push_back(id);
  provider_index_.emplace(id, problem_.providers.size() - 1);
  ++stats_.providers_inserted;
  return id;
}

bool AssignmentEngine::RemoveCustomer(Id id) {
  const auto it = customer_index_.find(id);
  if (it == customer_index_.end()) return false;
  const std::size_t idx = it->second;
  // Mask the departed customer out of the retained NN floors so provider
  // seeds computed before the next rebuild cannot lean on it
  // (CellTauTable::Remove refloors its cell exactly).
  if (nn_slot_[idx] >= 0) {
    if (nn_floors_) nn_floors_->Remove(static_cast<std::size_t>(nn_slot_[idx]));
  } else {
    --nn_pending_;
  }
  customer_index_.erase(it);
  SwapRemove(&problem_.customers, idx);
  if (!problem_.weights.empty()) SwapRemove(&problem_.weights, idx);
  SwapRemove(&duals_.tau_p, idx);
  SwapRemove(&nn_slot_, idx);
  SwapRemove(&customer_ids_, idx);
  if (idx < customer_ids_.size()) customer_index_[customer_ids_[idx]] = idx;
  customers_dirty_ = true;
  ++stats_.customers_removed;
  return true;
}

bool AssignmentEngine::RemoveProvider(Id id) {
  const auto it = provider_index_.find(id);
  if (it == provider_index_.end()) return false;
  const std::size_t idx = it->second;
  provider_index_.erase(it);
  SwapRemove(&problem_.providers, idx);
  SwapRemove(&duals_.tau_q, idx);
  SwapRemove(&provider_ids_, idx);
  if (idx < provider_ids_.size()) provider_index_[provider_ids_[idx]] = idx;
  // Provider churn never touches the customer indexes: dropping a dual
  // only removes constraints, so the remaining duals stay feasible.
  ++stats_.providers_removed;
  return true;
}

double AssignmentEngine::WarmCustomerDual(const Point& pos) const {
  double seed = 0.0;
  for (std::size_t q = 0; q < problem_.providers.size(); ++q) {
    seed = std::max(seed, duals_.tau_q[q] - Distance(problem_.providers[q].pos, pos));
  }
  return seed;
}

double AssignmentEngine::WarmProviderDual(const Point& pos) const {
  double best = kInf;
  if (nn_grid_ && nn_floors_) {
    // Tau-augmented NN over the last snapshot: cells whose geometric lower
    // bound plus dual floor cannot beat the best candidate are skipped
    // wholesale; removed residents read +infinity and never win.
    for (const std::int32_t cc : nn_grid_->nonempty_cells()) {
      const auto c = static_cast<std::size_t>(cc);
      if (MinDist(pos, nn_grid_->CellRect(c)) + nn_floors_->CellFloor(c) >= best) continue;
      const UniformGrid::CellSlice slice = nn_grid_->Cell(c);
      const double* taus = nn_floors_->values() + slice.first_slot;
      for (std::size_t i = 0; i < slice.count; ++i) {
        best = std::min(best, Distance(pos, Point{slice.xs[i], slice.ys[i]}) + taus[i]);
      }
    }
  }
  if (nn_pending_ > 0) {
    // Customers inserted after the snapshot live outside the grid until
    // the next rebuild; their seeds are already feasible duals.
    for (std::size_t p = 0; p < nn_slot_.size(); ++p) {
      if (nn_slot_[p] >= 0) continue;
      best = std::min(best, Distance(pos, problem_.customers[p]) + duals_.tau_p[p]);
    }
  }
  return best == kInf ? 0.0 : std::max(best, 0.0);
}

void AssignmentEngine::RebuildIndexesIfStale() {
  if (!customers_dirty_ && nn_grid_) return;
  // Population changed (or first solve): the shared solve index and the
  // engine-side NN snapshot are rebuilt over the current customers. The
  // grids use problem indices as point ids, so a rebuild — not tombstone
  // surgery — keeps every id dense; the version flag makes it O(1) to
  // detect that nothing changed and skip all of this.
  const SspaConfig& cfg = options_.sspa;
  solve_grid_.reset();
  solve_hier_.reset();
  if (cfg.use_cell_floors && cfg.use_hierarchy) {
    HierarchicalGrid::Options opts;
    const double fine = cfg.grid_target_per_cell > 0.0 ? cfg.grid_target_per_cell
                                                       : UniformGrid::kDefaultTargetPerCell;
    opts.fine_target_per_cell = fine;
    opts.coarse_target_per_cell = 16.0 * fine;
    opts.split_threshold = cfg.hier_split_threshold;
    solve_hier_ = std::make_unique<HierarchicalGrid>(problem_.customers, opts);
  } else if (cfg.use_grid || cfg.use_cell_floors) {
    solve_grid_ = std::make_unique<UniformGrid>(problem_.customers, cfg.grid_target_per_cell);
  }
  nn_grid_ = std::make_unique<UniformGrid>(problem_.customers);
  nn_floors_.reset();  // reseeded from fresh duals after the solve
  for (std::size_t i = 0; i < nn_slot_.size(); ++i) {
    nn_slot_[i] = static_cast<std::int32_t>(i);
  }
  nn_pending_ = 0;
  customers_dirty_ = false;
}

AssignmentEngine::ResolveOutcome AssignmentEngine::Resolve() {
  CCA_TRACE_SPAN_VAR(span, "engine.resolve");
  Timer timer;
  RebuildIndexesIfStale();
  SspaConfig cfg = options_.sspa;
  cfg.shared_grid = solve_grid_.get();
  cfg.shared_hier_grid = solve_hier_.get();
  // The serving engine always degrades gracefully on infeasible snapshots:
  // demand the capacity cannot absorb routes to the solver's virtual
  // overflow provider and comes back as the unassigned ledger instead of
  // aborting (no-op while the snapshot stays feasible — the virtual slot
  // only materialises when total demand exceeds total capacity).
  cfg.allow_overflow = true;
  const bool warm = options_.warm_start && have_solution_;
  cfg.initial_potentials = warm ? &duals_ : nullptr;
  // Previous flow remapped through the churn: pairs whose endpoints left
  // drop out; the solver re-checks tightness and capacity on the rest.
  Matching adopt;
  if (warm) {
    adopt.pairs.reserve(last_flow_.size());
    for (const FlowRec& rec : last_flow_) {
      const auto qi = provider_index_.find(rec.provider);
      if (qi == provider_index_.end()) continue;
      const auto pi = customer_index_.find(rec.customer);
      if (pi == customer_index_.end()) continue;
      adopt.Add(static_cast<std::int32_t>(qi->second), static_cast<std::int32_t>(pi->second),
                rec.units, 0.0);
    }
    cfg.initial_matching = &adopt;
  }
  // Deadline: the solver gets whatever is left of the Resolve budget after
  // the rebuild + warm-start assembly above. A budget already spent before
  // the solve starts skips it entirely — same degradation, zero stall.
  bool breached_before_solve = false;
  if (options_.resolve_deadline_ms > 0.0) {
    const double left = options_.resolve_deadline_ms - timer.ElapsedMillis();
    if (left <= 0.0) {
      breached_before_solve = true;
    } else {
      cfg.deadline_ms = left;
    }
  }
  SspaResult res;
  if (!breached_before_solve) res = SolveSspa(problem_, cfg);
  const bool degraded = breached_before_solve || res.deadline_exceeded;
  ResolveOutcome out;
  out.warm = warm;
  out.metrics = res.metrics;
  if (degraded) {
    // The partial solve is discarded: its flow is capacity-respecting but
    // not a certified optimum, and feeding it back into the warm-start
    // state would break the warm == cold anchor. Serve the last-known-good
    // matching (remapped through the churn) plus a greedy patch instead.
    BuildDegradedOutcome(&out);
    ++stats_.deadline_breaches;
    ++stats_.degraded_resolves;
  } else {
    out.cost = res.matching.cost();
    out.matching = std::move(res.matching);
    out.unassigned = std::move(res.unassigned);
    out.unassigned_units = res.unassigned_units;
  }
  // Latency is clocked here — after the serving work (rebuild + warm-start
  // assembly + solve), before the optional cold cross-check below, which a
  // production engine never runs.
  const double latency_ms = timer.ElapsedMillis();
  span.Arg("warm", warm ? 1 : 0);
  span.Arg("pops", out.metrics.dijkstra_pops);
  span.Arg("adopted", out.metrics.warm_units_adopted);
  ++stats_.resolves;
  if (warm) ++stats_.warm_resolves;
  stats_.warm_units_adopted += out.metrics.warm_units_adopted;
  stats_.totals.Merge(out.metrics);
  stats_.resolve_latency_ms.Record(latency_ms);
  stats_.unassigned_units += static_cast<std::uint64_t>(out.unassigned_units);
  for (const MatchPair& pair : out.matching.pairs) {
    stats_.units_matched += static_cast<std::uint64_t>(pair.units);
  }
  if (degraded) {
    // Retained state is deliberately untouched: duals_ and last_flow_
    // still describe the last *optimal* solve, so the next Resolve
    // warm-starts from certified ground, not from the greedy stop-gap
    // (whose flow is feasible but not min-cost for its value — adopting
    // it would violate the successive-shortest-path precondition). Only
    // the NN floors are refreshed, because RebuildIndexesIfStale may have
    // just rebuilt the grid they must stay aligned with.
    out.degraded = true;
    if (nn_grid_) nn_floors_ = std::make_unique<CellTauTable>(*nn_grid_, duals_.tau_p);
    return out;
  }
  if (warm) VerifyAgainstCold(cfg, out.cost);
  duals_ = std::move(res.potentials);
  last_flow_.clear();
  last_flow_.reserve(out.matching.pairs.size());
  for (const MatchPair& pair : out.matching.pairs) {
    last_flow_.push_back(FlowRec{provider_ids_[static_cast<std::size_t>(pair.provider)],
                                 customer_ids_[static_cast<std::size_t>(pair.customer)],
                                 pair.units});
  }
  have_solution_ = true;
  // Refresh the NN floors to this solve's duals (the grid itself only
  // rebuilds on population change).
  nn_floors_ = std::make_unique<CellTauTable>(*nn_grid_, duals_.tau_p);
  return out;
}

// Assembles the deadline-degraded outcome: the last-known-good matching
// remapped through the churn (departed endpoints drop, surviving pairs are
// clamped to current capacity and demand), then a greedy nearest-residual
// patch for whatever demand is left. The scan is O(|unserved| * |Q|) —
// acceptable on a path taken only when the optimal solve already blew its
// budget, and always strictly bounded (no augmentation loops). Whatever
// the patch cannot place lands in the unassigned ledger.
void AssignmentEngine::BuildDegradedOutcome(ResolveOutcome* out) const {
  std::vector<std::int64_t> cap(problem_.providers.size());
  for (std::size_t q = 0; q < cap.size(); ++q) cap[q] = problem_.providers[q].capacity;
  std::vector<std::int64_t> need(problem_.customers.size());
  for (std::size_t p = 0; p < need.size(); ++p) need[p] = problem_.weight(p);
  for (const FlowRec& rec : last_flow_) {
    const auto qi = provider_index_.find(rec.provider);
    if (qi == provider_index_.end()) continue;
    const auto pi = customer_index_.find(rec.customer);
    if (pi == customer_index_.end()) continue;
    const std::size_t q = qi->second;
    const std::size_t p = pi->second;
    const std::int64_t units =
        std::min<std::int64_t>(rec.units, std::min(cap[q], need[p]));
    if (units <= 0) continue;
    out->matching.Add(static_cast<std::int32_t>(q), static_cast<std::int32_t>(p),
                      static_cast<std::int32_t>(units),
                      Distance(problem_.providers[q].pos, problem_.customers[p]));
    cap[q] -= units;
    need[p] -= units;
  }
  for (std::size_t p = 0; p < need.size(); ++p) {
    while (need[p] > 0) {
      std::size_t best_q = cap.size();
      double best_dist = kInf;
      for (std::size_t q = 0; q < cap.size(); ++q) {
        if (cap[q] <= 0) continue;
        const double d = Distance(problem_.providers[q].pos, problem_.customers[p]);
        if (d < best_dist) {
          best_dist = d;
          best_q = q;
        }
      }
      if (best_q == cap.size()) break;  // capacity exhausted
      const std::int64_t units = std::min(need[p], cap[best_q]);
      out->matching.Add(static_cast<std::int32_t>(best_q), static_cast<std::int32_t>(p),
                        static_cast<std::int32_t>(units), best_dist);
      cap[best_q] -= units;
      need[p] -= units;
    }
    if (need[p] > 0) {
      out->unassigned.push_back(
          UnassignedUnit{static_cast<std::int32_t>(p), need[p]});
      out->unassigned_units += need[p];
    }
  }
  out->cost = out->matching.cost();
}

std::string AssignmentEngine::Stats::ToJson() const {
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "{\"resolves\": %llu, \"warm_resolves\": %llu, "
      "\"customers_inserted\": %llu, \"customers_removed\": %llu, "
      "\"providers_inserted\": %llu, \"providers_removed\": %llu, "
      "\"units_matched\": %llu, \"warm_units_adopted\": %llu, "
      "\"warm_adoption_ratio\": %.6f, "
      "\"deadline_breaches\": %llu, \"degraded_resolves\": %llu, "
      "\"unassigned_units\": %llu, "
      "\"dijkstra_pops\": %llu, \"dijkstra_relaxes\": %llu, "
      "\"augmentations\": %llu, \"faults\": %llu, "
      "\"resolve_ms\": {\"count\": %llu, \"mean\": %.6f, \"p50\": %.6f, "
      "\"p99\": %.6f, \"max\": %.6f}}",
      static_cast<unsigned long long>(resolves),
      static_cast<unsigned long long>(warm_resolves),
      static_cast<unsigned long long>(customers_inserted),
      static_cast<unsigned long long>(customers_removed),
      static_cast<unsigned long long>(providers_inserted),
      static_cast<unsigned long long>(providers_removed),
      static_cast<unsigned long long>(units_matched),
      static_cast<unsigned long long>(warm_units_adopted), warm_adoption_ratio(),
      static_cast<unsigned long long>(deadline_breaches),
      static_cast<unsigned long long>(degraded_resolves),
      static_cast<unsigned long long>(unassigned_units),
      static_cast<unsigned long long>(totals.dijkstra_pops),
      static_cast<unsigned long long>(totals.dijkstra_relaxes),
      static_cast<unsigned long long>(totals.augmentations),
      static_cast<unsigned long long>(totals.page_faults),
      static_cast<unsigned long long>(resolve_latency_ms.Count()), resolve_latency_ms.Mean(),
      resolve_latency_ms.Percentile(0.50), resolve_latency_ms.Percentile(0.99),
      resolve_latency_ms.Max());
  return std::string(buf);
}

void AssignmentEngine::VerifyAgainstCold(const SspaConfig& warm_config, double warm_cost) {
#ifdef NDEBUG
  if (!options_.verify_cold) return;
#endif
  SspaConfig cold = warm_config;
  cold.initial_potentials = nullptr;
  cold.initial_matching = nullptr;
  const SspaResult res = SolveSspa(problem_, cold);
  const double cold_cost = res.matching.cost();
  // Both solves are exact optima of the same instance; anything beyond
  // summation-order float noise is a warm-start soundness bug.
  const double tol = 1e-9 * std::max(1.0, std::abs(cold_cost));
  if (std::abs(warm_cost - cold_cost) > tol) {
    std::fprintf(stderr,
                 "AssignmentEngine: warm resolve cost %.17g != cold solve cost %.17g "
                 "(|Q|=%zu |P|=%zu)\n",
                 warm_cost, cold_cost, problem_.providers.size(), problem_.customers.size());
    std::abort();
  }
}

}  // namespace cca
