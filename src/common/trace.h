// Compile-out-able thread-local span tracer emitting Chrome trace JSON.
//
// Answers the question flat end-of-run Metrics counters cannot: *where*
// inside one solve (or one serving step) the time went. Hot paths are
// annotated with RAII spans —
//
//   CCA_TRACE_SPAN("sspa.dijkstra");                 // anonymous
//   CCA_TRACE_SPAN_VAR(span, "engine.resolve");      // named, for args
//   span.Arg("pops", pops);                          // uint64 span args
//
// — which nest lexically (a span closed inside another span's scope is its
// child in the timeline). Load the emitted JSON in chrome://tracing or
// https://ui.perfetto.dev.
//
// Cost contract (src/common/README.md):
//   * Compiled out (the default — CCA_TRACING_ENABLED unset/0):
//     CCA_TRACE_SPAN expands to ((void)0), Span is an empty no-op type,
//     and every trace:: entry point is an inline no-op. No atomics, no
//     branches, no storage. CI asserts the tracing-off benches stay
//     bit-identical to the committed counter baselines.
//   * Compiled in but stopped: one relaxed atomic load per span.
//   * Started: spans append to a per-thread buffer with no synchronisation
//     (the owning thread is the only writer); the buffer drains into the
//     process-wide mutex-protected sink when full, at explicit drain
//     points (QueryRunner drains each worker at batch joins), and at
//     thread exit. Cross-thread access happens only through the sink's
//     mutex, so the layer is TSan-clean by construction (certified by the
//     TSan CI job, which builds with tracing on).
//
// Timestamps come from std::chrono::steady_clock (monotonic, comparable
// across threads of one process) relative to the Start() epoch.
#ifndef CCA_COMMON_TRACE_H_
#define CCA_COMMON_TRACE_H_

#ifndef CCA_TRACING_ENABLED
#define CCA_TRACING_ENABLED 0
#endif

#include <cstdint>
#include <string>
#include <vector>

namespace cca {
namespace trace {

// True when the tracer is compiled in (-DCCA_ENABLE_TRACING=ON). Lets
// drivers hard-error on --trace-out instead of silently writing nothing.
inline constexpr bool kCompiledIn = CCA_TRACING_ENABLED != 0;

// One uint64 key/value attached to a span (pops, relaxes, page ids...).
struct SpanArg {
  const char* key;
  std::uint64_t value;
};

inline constexpr std::size_t kMaxSpanArgs = 4;

// One completed span. `name`/arg keys must be string literals (or anything
// outliving the trace session): the tracer stores pointers, never copies.
struct Event {
  const char* name;
  std::uint64_t start_ns;  // relative to the Start() epoch
  std::uint64_t dur_ns;
  std::uint32_t tid;    // small sequential per-thread id, first-use order
  std::uint32_t depth;  // nesting depth at open (0 = top level), for tests
  std::uint32_t num_args;
  SpanArg args[kMaxSpanArgs];
};

#if CCA_TRACING_ENABLED

// Runtime switch: even a tracing-enabled binary records nothing until
// Start(). Relaxed atomic — spans straddling Start/Stop may be dropped,
// never torn.
bool Enabled();
void Start();
// Stops recording and drains the calling thread's buffer. Other threads
// drain at their own drain points (batch joins, thread exit).
void Stop();

// Drains the calling thread's local buffer into the global sink. Called
// automatically when the buffer fills and from the thread-local
// destructor; call explicitly at batch joins so short-lived sessions see
// every worker's spans without waiting for thread exit.
void FlushThisThread();

// Moves all sink events out (flushing the calling thread first). Test
// surface; WriteJson uses it internally.
std::vector<Event> Drain();

// Drains and writes everything recorded so far as Chrome trace JSON
// ({"traceEvents": [...]}, "X" complete events, ts/dur in microseconds).
// Returns false when the file cannot be opened.
bool WriteJson(const std::string& path);

// Number of events dropped because a thread recorded faster than the sink
// could absorb (never happens with the default 64Ki-event buffers; kept as
// a honesty counter for the JSON metadata).
std::uint64_t DroppedEvents();

class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attaches a key/value to the span (silently drops past kMaxSpanArgs).
  // Safe to call on an inactive span (tracing stopped): no-op.
  void Arg(const char* key, std::uint64_t value) {
    if (!active_ || num_args_ >= kMaxSpanArgs) return;
    args_[num_args_++] = SpanArg{key, value};
  }

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  std::uint32_t num_args_ = 0;
  bool active_ = false;
  SpanArg args_[kMaxSpanArgs];
};

#else  // !CCA_TRACING_ENABLED — every entry point is an inline no-op.

inline constexpr bool Enabled() { return false; }
inline void Start() {}
inline void Stop() {}
inline void FlushThisThread() {}
inline std::vector<Event> Drain() { return {}; }
inline bool WriteJson(const std::string&) { return false; }
inline std::uint64_t DroppedEvents() { return 0; }

// Empty RAII shell so CCA_TRACE_SPAN_VAR call sites (span.Arg(...)) compile
// unchanged; the optimizer erases it entirely.
class Span {
 public:
  explicit Span(const char*) {}
  void Arg(const char*, std::uint64_t) {}
};

#endif  // CCA_TRACING_ENABLED

}  // namespace trace
}  // namespace cca

#if CCA_TRACING_ENABLED
#define CCA_TRACE_CONCAT2(a, b) a##b
#define CCA_TRACE_CONCAT(a, b) CCA_TRACE_CONCAT2(a, b)
// Anonymous span covering the rest of the enclosing scope.
#define CCA_TRACE_SPAN(name) \
  ::cca::trace::Span CCA_TRACE_CONCAT(cca_trace_span_, __LINE__)(name)
// Named span, for attaching args before scope exit.
#define CCA_TRACE_SPAN_VAR(var, name) ::cca::trace::Span var(name)
#else
#define CCA_TRACE_SPAN(name) ((void)0)
#define CCA_TRACE_SPAN_VAR(var, name) ::cca::trace::Span var(name)
#endif

#endif  // CCA_COMMON_TRACE_H_
