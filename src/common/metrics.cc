#include "common/metrics.h"

#include <cstdio>

namespace cca {

// Layout guard for the table-completeness check: Metrics must be exactly
// kMetricsCounterCount uint64 counters followed by cpu_millis, with no
// padding. Since kMetricsCounterCount is derived from
// CCA_METRICS_COUNTER_FIELDS, a counter present in the struct but missing
// from the table (or listed but never declared) fails here; Merge and
// ToString below are generated from the same table, so they can never
// drift from it — the memcpy-view tests in tests/test_metrics.cc prove
// both cover every slot.
static_assert(sizeof(Metrics) == kMetricsCounterCount * sizeof(std::uint64_t) + sizeof(double),
              "Metrics layout changed: update CCA_METRICS_COUNTER_FIELDS to match");

void Metrics::Merge(const Metrics& other) {
#define CCA_METRICS_MERGE_ONE(field, label) field += other.field;
  CCA_METRICS_COUNTER_FIELDS(CCA_METRICS_MERGE_ONE)
#undef CCA_METRICS_MERGE_ONE
  cpu_millis += other.cpu_millis;
}

std::string Metrics::ToString() const {
  std::string out;
  out.reserve(256);
  char buf[96];
  // Zero counters are skipped so the one-line summary stays readable: a
  // grid-only run never mentions R-tree counters and vice versa.
#define CCA_METRICS_PRINT_ONE(field, label)                                     \
  if (field != 0) {                                                             \
    std::snprintf(buf, sizeof(buf), "%s=%llu ", label,                          \
                  static_cast<unsigned long long>(field));                      \
    out += buf;                                                                 \
  }
  CCA_METRICS_COUNTER_FIELDS(CCA_METRICS_PRINT_ONE)
#undef CCA_METRICS_PRINT_ONE
  std::snprintf(buf, sizeof(buf), "cpu=%.1fms io=%.1fms", cpu_millis, io_millis());
  out += buf;
  return out;
}

}  // namespace cca
