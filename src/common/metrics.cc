#include "common/metrics.h"

#include <cstdio>

namespace cca {

// Layout guard for the Merge-completeness check: Metrics must be exactly
// kMetricsCounterCount uint64 counters followed by cpu_millis, with no
// padding. A new counter that is not accounted for in kMetricsCounterCount
// fails here; one that is counted but forgotten in Merge fails the
// memcpy-view test in tests/test_metrics.cc.
static_assert(sizeof(Metrics) == kMetricsCounterCount * sizeof(std::uint64_t) + sizeof(double),
              "Metrics layout changed: update kMetricsCounterCount and Merge together");

void Metrics::Merge(const Metrics& other) {
  edges_inserted += other.edges_inserted;
  dijkstra_runs += other.dijkstra_runs;
  dijkstra_resumes += other.dijkstra_resumes;
  dijkstra_pops += other.dijkstra_pops;
  dijkstra_relaxes += other.dijkstra_relaxes;
  augmentations += other.augmentations;
  invalid_paths += other.invalid_paths;
  fast_path_assigns += other.fast_path_assigns;
  grid_rings_scanned += other.grid_rings_scanned;
  relaxes_pruned += other.relaxes_pruned;
  distances_computed += other.distances_computed;
  cells_pruned += other.cells_pruned;
  dense_cells_checked += other.dense_cells_checked;
  coarse_tails_pruned += other.coarse_tails_pruned;
  coarse_cells_descended += other.coarse_cells_descended;
  hier_splits += other.hier_splits;
  dual_repairs += other.dual_repairs;
  warm_units_adopted += other.warm_units_adopted;
  nn_searches += other.nn_searches;
  range_searches += other.range_searches;
  node_accesses += other.node_accesses;
  grid_cursor_cells += other.grid_cursor_cells;
  shared_frontier_cell_fetches += other.shared_frontier_cell_fetches;
  shared_frontier_fanout += other.shared_frontier_fanout;
  index_node_accesses += other.index_node_accesses;
  page_faults += other.page_faults;
  cpu_millis += other.cpu_millis;
}

std::string Metrics::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "|Esub|=%llu dijkstra=%llu(+%llu resumed) aug=%llu invalid=%llu "
                "faults=%llu cpu=%.1fms io=%.1fms",
                static_cast<unsigned long long>(edges_inserted),
                static_cast<unsigned long long>(dijkstra_runs),
                static_cast<unsigned long long>(dijkstra_resumes),
                static_cast<unsigned long long>(augmentations),
                static_cast<unsigned long long>(invalid_paths),
                static_cast<unsigned long long>(page_faults), cpu_millis, io_millis());
  return std::string(buf);
}

}  // namespace cca
