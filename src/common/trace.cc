#include "common/trace.h"

#if CCA_TRACING_ENABLED

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

namespace cca {
namespace trace {
namespace {

using Clock = std::chrono::steady_clock;
static_assert(Clock::is_steady, "trace timestamps must be monotonic");

// Per-thread buffer capacity before an automatic drain into the sink. At
// ~72 bytes/event this is ~4.5 MiB/thread worst case — large enough that a
// whole solve's Dijkstra spans usually drain once, at a batch join.
constexpr std::size_t kThreadBufferCapacity = 64 * 1024;

std::atomic<bool> g_enabled{false};
std::atomic<std::uint32_t> g_next_tid{0};
std::atomic<std::uint64_t> g_dropped{0};
// Epoch all timestamps are relative to; rewritten by Start() under the
// sink mutex, read by recording threads via the relaxed ns offset below.
std::atomic<std::uint64_t> g_epoch_ns{0};

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now().time_since_epoch())
          .count());
}

// Process-wide sink. Only ever touched under mu; threads batch their
// appends (one lock per kThreadBufferCapacity events, plus drain points).
struct Sink {
  std::mutex mu;
  std::vector<Event> events;
};

Sink& GetSink() {
  static Sink* sink = new Sink();  // leaked: threads may flush at exit
  return *sink;
}

// The thread-local side: an append-only buffer the owning thread writes
// without synchronisation, plus the nesting depth counter spans use.
struct ThreadBuffer {
  std::vector<Event> events;
  std::uint32_t tid;
  std::uint32_t depth = 0;

  ThreadBuffer() : tid(g_next_tid.fetch_add(1, std::memory_order_relaxed)) {
    events.reserve(kThreadBufferCapacity);
  }
  ~ThreadBuffer() { Flush(); }

  void Flush() {
    if (events.empty()) return;
    Sink& sink = GetSink();
    std::lock_guard<std::mutex> lock(sink.mu);
    sink.events.insert(sink.events.end(), events.begin(), events.end());
    events.clear();
  }

  void Push(const Event& e) {
    if (events.size() >= kThreadBufferCapacity) Flush();
    events.push_back(e);
  }
};

ThreadBuffer& GetThreadBuffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

void AppendJsonEvent(std::FILE* f, const Event& e, bool first) {
  std::fprintf(f,
               "%s  {\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
               "\"ts\": %.3f, \"dur\": %.3f",
               first ? "" : ",\n", e.name, e.tid, static_cast<double>(e.start_ns) / 1000.0,
               static_cast<double>(e.dur_ns) / 1000.0);
  if (e.num_args > 0) {
    std::fprintf(f, ", \"args\": {");
    for (std::uint32_t a = 0; a < e.num_args; ++a) {
      std::fprintf(f, "%s\"%s\": %llu", a > 0 ? ", " : "", e.args[a].key,
                   static_cast<unsigned long long>(e.args[a].value));
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "}");
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Start() {
  g_epoch_ns.store(NowNs(), std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_relaxed);
}

void Stop() {
  g_enabled.store(false, std::memory_order_relaxed);
  FlushThisThread();
}

void FlushThisThread() { GetThreadBuffer().Flush(); }

std::vector<Event> Drain() {
  FlushThisThread();
  Sink& sink = GetSink();
  std::lock_guard<std::mutex> lock(sink.mu);
  return std::exchange(sink.events, {});
}

std::uint64_t DroppedEvents() { return g_dropped.load(std::memory_order_relaxed); }

bool WriteJson(const std::string& path) {
  const std::vector<Event> events = Drain();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\"traceEvents\": [\n");
  for (std::size_t i = 0; i < events.size(); ++i) {
    AppendJsonEvent(f, events[i], i == 0);
  }
  std::fprintf(f, "\n], \"displayTimeUnit\": \"ms\", \"droppedEvents\": %llu}\n",
               static_cast<unsigned long long>(DroppedEvents()));
  std::fclose(f);
  return true;
}

Span::Span(const char* name) : name_(name) {
  if (!Enabled()) return;
  active_ = true;
  depth_ = GetThreadBuffer().depth++;
  start_ns_ = NowNs();
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t end_ns = NowNs();
  ThreadBuffer& buffer = GetThreadBuffer();
  --buffer.depth;
  Event e;
  e.name = name_;
  const std::uint64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
  e.start_ns = start_ns_ >= epoch ? start_ns_ - epoch : 0;
  e.dur_ns = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  e.tid = buffer.tid;
  e.depth = depth_;
  e.num_args = num_args_;
  for (std::uint32_t a = 0; a < num_args_; ++a) e.args[a] = args_[a];
  buffer.Push(e);
}

}  // namespace trace
}  // namespace cca

#endif  // CCA_TRACING_ENABLED
