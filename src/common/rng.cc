#include "common/rng.h"

#include <cmath>

namespace cca {
namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: seeds the xoshiro state from a single 64-bit value.
inline std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::Seed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  // Box-Muller; guard against log(0).
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace cca
