// Lightweight Status / StatusOr error model for the public boundaries.
//
// The library historically validated inputs with debug-only asserts, which
// compile away in Release and leave silent UB (out-of-range page reads) or
// undefined solver behavior (NaN coordinates poison every distance
// comparison). `Status` makes those contracts always-on and recoverable:
//
//   * Boundary functions that can reject their input return `Status`
//     (or `StatusOr<T>` when they also produce a value).
//   * `Status` is cheap: the OK path carries no allocation (empty message,
//     one enum byte); error construction allocates only the message.
//   * There are no exceptions anywhere in the library; `StatusOr::value()`
//     on an error aborts with the message — use `ok()` / `status()` when
//     the error is expected.
//
// Error taxonomy (mirrors the canonical codes; see src/runtime/README.md
// "Failure model" for which layers emit which):
//
//   kInvalidArgument    caller passed garbage (NaN/inf point, capacity <= 0)
//   kOutOfRange         index past a container boundary (PageId >= page_count)
//   kFailedPrecondition call sequencing violated a documented contract
//   kUnavailable        transient I/O failure -- retryable (fault injection,
//                       and the slot a real storage backend would use)
//   kDataLoss           corruption detected (per-page CRC32 mismatch);
//                       retryable when the backing store is intact
//   kDeadlineExceeded   cooperative deadline breached (Resolve SLO)
#ifndef CCA_COMMON_STATUS_H_
#define CCA_COMMON_STATUS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace cca {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kUnavailable,
  kDataLoss,
  kDeadlineExceeded,
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  // Explicit "I checked / I don't care" marker for best-effort call sites
  // (e.g. cache prewarming); keeps them grep-able.
  void IgnoreError() const {}

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status UnavailableError(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status DataLossError(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}
inline Status DeadlineExceededError(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}

namespace internal_status {
[[noreturn]] inline void DieOnBadAccess(const Status& status) {
  std::fprintf(stderr, "StatusOr::value() on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}
}  // namespace internal_status

// A value or an error, never both. The error path is for *expected*
// rejections (bad input, deadline); accessing `value()` on an error is a
// caller bug and aborts loudly rather than returning garbage.
template <typename T>
class StatusOr {
 public:
  // Implicit from a value (the common return path).
  StatusOr(T value) : status_(), value_(std::move(value)), has_value_(true) {}
  // Implicit from a non-OK status. Constructing from OK without a value
  // would create a "success with no payload" -- downgraded to an error so
  // it can never be dereferenced.
  StatusOr(Status status) : status_(std::move(status)), has_value_(false) {
    if (status_.ok()) {
      status_ = Status(StatusCode::kFailedPrecondition,
                       "StatusOr constructed from OK status without a value");
    }
  }

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  const T& value() const& {
    if (!has_value_) internal_status::DieOnBadAccess(status_);
    return value_;
  }
  T& value() & {
    if (!has_value_) internal_status::DieOnBadAccess(status_);
    return value_;
  }
  T&& value() && {
    if (!has_value_) internal_status::DieOnBadAccess(status_);
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
  bool has_value_;
};

// Early-return helper for Status-returning functions.
#define CCA_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::cca::Status cca_status_macro_tmp = (expr);   \
    if (!cca_status_macro_tmp.ok()) return cca_status_macro_tmp; \
  } while (0)

}  // namespace cca

#endif  // CCA_COMMON_STATUS_H_
