// Fixed-bucket log-scale latency histogram.
//
// The serving benches (bench_engine_qps, bench_engine_dispatch) and the
// AssignmentEngine stats surface need percentiles over latency streams
// without retaining every sample: a long-lived engine resolves millions of
// times, and the old sorted-vector percentile both grows without bound and
// costs a sort per report. `Histogram` keeps a fixed array of counters on
// a log-scale bucket grid, so Record is O(1), memory is constant, and two
// histograms merge by adding counters (the same contract as
// Metrics::Merge — per-thread bundles merged after a batch joins).
//
// Bucket scheme: each power-of-two octave is divided into kSubBuckets
// linear sub-buckets, i.e. bucket edges at m * 2^e for m in
// {1, 1+1/kSub, ...}. With kSubBuckets = 8 the relative width of every
// bucket is at most 1/8 = 12.5%, so any percentile is reproduced within
// one bucket (<= 12.5% relative) of the exact sorted-vector answer —
// pinned by tests/test_trace.cc against the reference computation. Values
// below 2^kMinExponent land in bucket 0, values at or above 2^kMaxExponent
// in the last bucket; exact min/max/sum are tracked on the side so range
// extremes and means stay exact.
//
// Not thread-safe: use one histogram per thread and Merge at joins.
#ifndef CCA_COMMON_HISTOGRAM_H_
#define CCA_COMMON_HISTOGRAM_H_

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace cca {

class Histogram {
 public:
  // 8 linear sub-buckets per octave: <= 12.5% relative bucket width.
  static constexpr int kSubBuckets = 8;
  // Covered value range (in whatever unit the caller records; the benches
  // record milliseconds): [2^-20, 2^30) ~ [1 ns, 12 days) in ms.
  static constexpr int kMinExponent = -20;
  static constexpr int kMaxExponent = 30;
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>(kMaxExponent - kMinExponent) * kSubBuckets + 2;

  void Record(double value) {
    ++counts_[BucketIndex(value)];
    ++count_;
    sum_ += value;
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  std::uint64_t Count() const { return count_; }
  double Sum() const { return sum_; }
  double Mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  double Min() const { return count_ > 0 ? min_ : 0.0; }
  double Max() const { return count_ > 0 ? max_ : 0.0; }

  // Value at rank floor(p * (count - 1)) — the same rank the sorted-vector
  // reference `sorted[size_t(p * (n - 1))]` reports — reproduced at bucket
  // granularity: the returned value is the upper edge of the rank's bucket,
  // clamped into the exact [Min, Max] envelope. p in [0, 1].
  double Percentile(double p) const {
    if (count_ == 0) return 0.0;
    if (p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    const auto rank =
        static_cast<std::uint64_t>(p * static_cast<double>(count_ - 1));
    // Rank 0 is the minimum and rank count-1 the maximum, both tracked
    // exactly on the side — report them exactly (p=1.0 would clamp to max
    // through the walk anyway; p=0.0 deserves the same exactness).
    if (rank == 0) return min_;
    if (rank >= count_ - 1) return max_;
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      cumulative += counts_[b];
      if (cumulative > rank) {
        const double v = BucketUpperEdge(b);
        return v < min_ ? min_ : (v > max_ ? max_ : v);
      }
    }
    return max_;  // unreachable: cumulative reaches count_ > rank
  }

  // Adds another histogram's samples to this one (same bucket grid by
  // construction — the scheme is compile-time fixed).
  void Merge(const Histogram& other) {
    for (std::size_t b = 0; b < kNumBuckets; ++b) counts_[b] += other.counts_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ > 0) {
      if (other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
  }

  void Reset() { *this = Histogram{}; }

  // Exposed for the bucket-scheme tests.
  static std::size_t BucketIndex(double value) {
    if (!(value > 0.0) || std::isinf(value)) {
      return value > 0.0 ? kNumBuckets - 1 : 0;
    }
    int exp = 0;
    // frexp: value = m * 2^exp with m in [0.5, 1) — i.e. octave exp - 1.
    const double m = std::frexp(value, &exp);
    const int octave = exp - 1;
    if (octave < kMinExponent) return 0;
    if (octave >= kMaxExponent) return kNumBuckets - 1;
    // m in [0.5, 1): linear position within the octave.
    auto sub = static_cast<int>((m - 0.5) * 2.0 * kSubBuckets);
    if (sub >= kSubBuckets) sub = kSubBuckets - 1;  // m == 1 - ulp edge case
    return 1 + static_cast<std::size_t>(octave - kMinExponent) * kSubBuckets +
           static_cast<std::size_t>(sub);
  }

  static double BucketUpperEdge(std::size_t bucket) {
    if (bucket == 0) return std::ldexp(1.0, kMinExponent);
    if (bucket >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
    const std::size_t i = bucket - 1;
    const auto octave = static_cast<int>(i / kSubBuckets);
    const auto sub = static_cast<double>(i % kSubBuckets);
    return std::ldexp(1.0 + (sub + 1.0) / kSubBuckets, kMinExponent + octave);
  }

 private:
  std::array<std::uint64_t, kNumBuckets> counts_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace cca

#endif  // CCA_COMMON_HISTOGRAM_H_
