// Deterministic pseudo-random number generation.
//
// Every stochastic component in the repository (workload generation, test
// sweeps, benchmark instances) draws from `Rng` with an explicit seed so
// that runs are bit-reproducible across machines.
#ifndef CCA_COMMON_RNG_H_
#define CCA_COMMON_RNG_H_

#include <cstdint>

namespace cca {

// A small, fast, seedable generator (xoshiro256**). We avoid std::mt19937
// only because libstdc++/libc++ distributions of std::uniform_* are not
// guaranteed to be identical across standard libraries; the raw engine plus
// our own scaling keeps datasets portable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { Seed(seed); }

  void Seed(std::uint64_t seed);

  // Next raw 64-bit value.
  std::uint64_t Next();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t NextBelow(std::uint64_t n) { return Next() % n; }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(NextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Standard normal via Box-Muller (no cached second value; simple and
  // deterministic).
  double NextGaussian();

 private:
  std::uint64_t s_[4];
};

}  // namespace cca

#endif  // CCA_COMMON_RNG_H_
