// Monotonic stopwatch used for the CPU-time metric and latency histograms.
#ifndef CCA_COMMON_TIMER_H_
#define CCA_COMMON_TIMER_H_

#include <chrono>

namespace cca {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Elapsed milliseconds since construction or the last Restart().
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

 private:
  // steady_clock, never system_clock: wall clock is not monotonic (NTP
  // slews and DST jumps would make latencies negative or wildly wrong),
  // and every consumer of Timer — cpu_millis, the serving benches'
  // latency histograms, the trace spans — assumes elapsed time only grows.
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady, "Timer requires a monotonic clock");
  Clock::time_point start_;
};

}  // namespace cca

#endif  // CCA_COMMON_TIMER_H_
