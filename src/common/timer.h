// Monotonic wall-clock stopwatch used for the CPU-time metric.
#ifndef CCA_COMMON_TIMER_H_
#define CCA_COMMON_TIMER_H_

#include <chrono>

namespace cca {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Elapsed milliseconds since construction or the last Restart().
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cca

#endif  // CCA_COMMON_TIMER_H_
