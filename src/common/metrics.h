// Execution metrics collected by every CCA solver and substrate component.
//
// The paper (Section 5.1) reports three quantities per experiment: the size
// of the explored subgraph |Esub|, CPU time, and I/O time charged
// analytically at 10 ms per page fault. `Metrics` aggregates those plus a
// number of internal counters that the tests and ablation benchmarks use.
#ifndef CCA_COMMON_METRICS_H_
#define CCA_COMMON_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace cca {

// Cost charged per physical page read, following the paper's methodology
// (Section 5.1, citing Silberschatz et al.).
inline constexpr double kIoMillisPerFault = 10.0;

// The single source of truth for Metrics' uint64 counters: every counter,
// in declaration order, with the label ToString prints it under. Merge,
// ToString and kMetricsCounterCount are all generated from this table
// (metrics.cc), so adding a counter means adding a struct field AND a row
// here — forget either and the layout static_assert in metrics.cc fires;
// the memcpy-view test in tests/test_metrics.cc then proves both Merge and
// ToString cover every slot.
#define CCA_METRICS_COUNTER_FIELDS(X)                       \
  X(edges_inserted, "Esub")                                 \
  X(dijkstra_runs, "dijkstra_runs")                         \
  X(dijkstra_resumes, "dijkstra_resumes")                   \
  X(dijkstra_pops, "dijkstra_pops")                         \
  X(dijkstra_relaxes, "dijkstra_relaxes")                   \
  X(augmentations, "augmentations")                         \
  X(invalid_paths, "invalid_paths")                         \
  X(fast_path_assigns, "fast_path_assigns")                 \
  X(grid_rings_scanned, "grid_rings_scanned")               \
  X(relaxes_pruned, "relaxes_pruned")                       \
  X(distances_computed, "distances_computed")               \
  X(cells_pruned, "cells_pruned")                           \
  X(dense_cells_checked, "dense_cells_checked")             \
  X(coarse_tails_pruned, "coarse_tails_pruned")             \
  X(coarse_cells_descended, "coarse_cells_descended")       \
  X(hier_splits, "hier_splits")                             \
  X(dual_repairs, "dual_repairs")                           \
  X(warm_units_adopted, "warm_units_adopted")               \
  X(nn_searches, "nn_searches")                             \
  X(range_searches, "range_searches")                       \
  X(node_accesses, "node_accesses")                         \
  X(grid_cursor_cells, "grid_cursor_cells")                 \
  X(shared_frontier_cell_fetches, "shared_frontier_fetches") \
  X(shared_frontier_fanout, "shared_frontier_fanout")       \
  X(index_node_accesses, "index_node_accesses")             \
  X(page_faults, "faults")

// Counter bundle for one solver execution.
//
// All counters start at zero; solvers reset the bundle they are handed at
// the beginning of a run. The struct is deliberately plain data so tests
// can compare snapshots.
struct Metrics {
  // --- flow-graph side -----------------------------------------------------
  std::uint64_t edges_inserted = 0;    // |Esub|: edges added to the subgraph
  std::uint64_t dijkstra_runs = 0;     // full Dijkstra executions
  std::uint64_t dijkstra_resumes = 0;  // PUA-assisted resumed executions
  std::uint64_t dijkstra_pops = 0;     // nodes de-heaped across all runs
  std::uint64_t dijkstra_relaxes = 0;  // edge relaxations across all runs
  std::uint64_t augmentations = 0;     // accepted (valid) shortest paths
  std::uint64_t invalid_paths = 0;     // Theorem-1 rejections
  std::uint64_t fast_path_assigns = 0; // Theorem-2 direct assignments
  std::uint64_t grid_rings_scanned = 0;  // grid rings visited by pruned SSPA
  std::uint64_t relaxes_pruned = 0;    // relaxations skipped by ring/cell/upper bounds
  // Exact (sqrt) distances materialised by the SSPA relax kernels: every
  // lane of a DistanceBlock call plus the surviving lanes of a
  // DistanceBlockSelect call (rejected lanes stop at the squared compare
  // and are counted in relaxes_pruned instead). This is the quadratic term
  // the cell-level pruning exists to kill; CI gates it via bench_diff.py.
  std::uint64_t distances_computed = 0;
  // Whole cells skipped by the per-cell reduced-cost bound
  // (mindist + per-cell tau floor) during *ring-ordered* relax scans, the
  // cell-granular counterpart of relaxes_pruned.
  std::uint64_t cells_pruned = 0;
  // Cells examined by the cell-partitioned dense fallback (every occupied
  // cell, every provider pop — RelaxDenseCells in src/flow/sspa.cc).
  // Deliberately separate from cells_pruned: the dense sweep's O(#cells)
  // bound checks per pop run to hundreds of millions at bench scale and
  // would swamp the grid-mode pruning signal if charged to one counter.
  // With the hierarchical grid the same counter covers the output-sensitive
  // sweep: one unit per coarse cell examined plus one per fine child
  // actually descended into, so the >=10x collapse is visible on one axis.
  std::uint64_t dense_cells_checked = 0;
  // Hierarchical grid (geo/hier_grid.h): coarse cells whose aggregated
  // bound (mindist + coarse tau floor) failed the reduced-cost test, so
  // their entire fine-cell tail exited in O(1)...
  std::uint64_t coarse_tails_pruned = 0;
  // ...and coarse cells whose bound survived, paying a descend into their
  // fine children. descended / (descended + tails_pruned) is the fraction
  // of the coarse lattice the scan actually opens.
  std::uint64_t coarse_cells_descended = 0;
  // Coarse cells the hierarchical build split into finer children (one
  // count per solve-owned or shared grid consulted; a pure build-shape
  // diagnostic for the per-region adaptation).
  std::uint64_t hier_splits = 0;
  // Warm-started solves only (flow/sspa.h SspaConfig::initial_potentials):
  // provider duals the feasibility-repair pass had to clamp down before the
  // first Dijkstra run. Zero on cold solves; on a warm solve it counts how
  // much of the previous dual solution drifted infeasible (matched edges
  // plus whatever churn perturbed).
  std::uint64_t dual_repairs = 0;
  // Flow-carrying warm starts (SspaConfig::initial_matching): units of the
  // previous matching re-adopted because their arc stayed residually
  // feasible under the seed duals (ample-capacity regime only — see
  // RepairDuals in src/flow/sspa.cc). adopted close to gamma is the
  // small-perturbation fast path: only gamma - adopted units are
  // re-augmented.
  std::uint64_t warm_units_adopted = 0;

  // --- spatial side --------------------------------------------------------
  std::uint64_t nn_searches = 0;     // incremental NN advances served
  std::uint64_t range_searches = 0;  // (annular) range searches issued
  std::uint64_t node_accesses = 0;   // logical R-tree node touches
  std::uint64_t grid_cursor_cells = 0;  // grid cells fetched by ring cursors
  // Shared-frontier batched discovery (geo/shared_frontier.h): first cell
  // materialisations, and total cell -> subscriber deliveries. Their ratio
  // fanout / cell_fetches is the achieved multiplexing factor; fetches are
  // also charged into grid_cursor_cells so batched and per-cursor runs
  // compare on one ledger.
  std::uint64_t shared_frontier_cell_fetches = 0;
  std::uint64_t shared_frontier_fanout = 0;
  // Backend-neutral index work: R-tree node touches plus grid cells
  // fetched, so rtree- and grid-backed runs compare apples-to-apples.
  std::uint64_t index_node_accesses = 0;
  std::uint64_t page_faults = 0;     // physical page reads (buffer misses)

  // --- outcome ---------------------------------------------------------—--
  double cpu_millis = 0.0;  // measured wall time of the compute phase

  // Analytic I/O time in milliseconds (page_faults * 10 ms).
  double io_millis() const { return static_cast<double>(page_faults) * kIoMillisPerFault; }
  // Total simulated response time.
  double total_millis() const { return cpu_millis + io_millis(); }

  void Reset() { *this = Metrics{}; }

  // Merges counters from another bundle. Two callers rely on it: drivers
  // that run phases with separate bundles (approximate partition + concise
  // + refine), and the concurrent QueryRunner (src/runtime/), which hands
  // every query its own bundle and merges after the batch joins — counters
  // stay exact under concurrency because no bundle is ever shared between
  // threads.
  void Merge(const Metrics& other);
  Metrics& operator+=(const Metrics& other) {
    Merge(other);
    return *this;
  }
  // Legacy spelling of Merge.
  void Accumulate(const Metrics& other) { Merge(other); }

  // Human-readable one-line summary, used by examples and benches:
  // `label=value` for every non-zero counter in the field table, then
  // cpu/io. Generated from CCA_METRICS_COUNTER_FIELDS, so it can never
  // silently omit a counter the way the old hand-written list could.
  std::string ToString() const;
};

// Number of uint64 counters in Metrics, in declaration order (everything
// before cpu_millis), derived from the field table. The static_assert in
// metrics.cc pins the struct layout to it, so a counter added to the
// struct but not the table (or vice versa) fails to compile; Merge and
// ToString are generated from the same table, and the memcpy-view tests in
// tests/test_metrics.cc cover both.
#define CCA_METRICS_COUNT_ONE(field, label) +1
inline constexpr std::size_t kMetricsCounterCount =
    0 CCA_METRICS_COUNTER_FIELDS(CCA_METRICS_COUNT_ONE);
#undef CCA_METRICS_COUNT_ONE

}  // namespace cca

#endif  // CCA_COMMON_METRICS_H_
