// Binary min-heap with decrease-key, addressed by dense integer node ids.
//
// Both the SSPA baseline and the incremental engine run Dijkstra with
// decrease-key; the PUA optimisation (paper Section 3.4.1) additionally
// needs to decrease keys of entries that are still inside the previous
// run's heap, which rules out lazy-deletion heaps.
#ifndef CCA_COMMON_INDEXED_HEAP_H_
#define CCA_COMMON_INDEXED_HEAP_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace cca {

class IndexedHeap {
 public:
  IndexedHeap() = default;
  explicit IndexedHeap(std::size_t n) { Resize(n); }

  // Grows the id space to at least `n` ids (existing content preserved).
  void Resize(std::size_t n) {
    if (pos_.size() < n) {
      pos_.resize(n, -1);
      key_.resize(n, 0.0);
    }
  }

  void Clear() {
    for (int id : heap_) pos_[static_cast<std::size_t>(id)] = -1;
    heap_.clear();
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  bool Contains(int id) const {
    return static_cast<std::size_t>(id) < pos_.size() && pos_[static_cast<std::size_t>(id)] >= 0;
  }

  double KeyOf(int id) const { return key_[static_cast<std::size_t>(id)]; }

  // Inserts `id` or lowers its key; raising an existing key is ignored
  // (Dijkstra relaxations only ever decrease).
  void PushOrDecrease(int id, double key) {
    Resize(static_cast<std::size_t>(id) + 1);
    const auto uid = static_cast<std::size_t>(id);
    if (pos_[uid] < 0) {
      key_[uid] = key;
      pos_[uid] = static_cast<int>(heap_.size());
      heap_.push_back(id);
      SiftUp(static_cast<std::size_t>(pos_[uid]));
    } else if (key < key_[uid]) {
      key_[uid] = key;
      SiftUp(static_cast<std::size_t>(pos_[uid]));
    }
  }

  // Minimum element without removal. Heap must be non-empty.
  std::pair<int, double> Min() const {
    assert(!heap_.empty());
    return {heap_[0], key_[static_cast<std::size_t>(heap_[0])]};
  }

  std::pair<int, double> PopMin() {
    assert(!heap_.empty());
    const int id = heap_[0];
    const double key = key_[static_cast<std::size_t>(id)];
    Remove(id);
    return {id, key};
  }

  // Removes an arbitrary element.
  void Remove(int id) {
    const auto uid = static_cast<std::size_t>(id);
    assert(pos_[uid] >= 0);
    const auto hole = static_cast<std::size_t>(pos_[uid]);
    pos_[uid] = -1;
    const int last = heap_.back();
    heap_.pop_back();
    if (hole < heap_.size()) {
      heap_[hole] = last;
      pos_[static_cast<std::size_t>(last)] = static_cast<int>(hole);
      SiftDown(hole);
      SiftUp(static_cast<std::size_t>(pos_[static_cast<std::size_t>(last)]));
    }
  }

 private:
  void SiftUp(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (Key(parent) <= Key(i)) break;
      Swap(i, parent);
      i = parent;
    }
  }

  void SiftDown(std::size_t i) {
    while (true) {
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      std::size_t smallest = i;
      if (l < heap_.size() && Key(l) < Key(smallest)) smallest = l;
      if (r < heap_.size() && Key(r) < Key(smallest)) smallest = r;
      if (smallest == i) break;
      Swap(i, smallest);
      i = smallest;
    }
  }

  double Key(std::size_t slot) const { return key_[static_cast<std::size_t>(heap_[slot])]; }

  void Swap(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[static_cast<std::size_t>(heap_[a])] = static_cast<int>(a);
    pos_[static_cast<std::size_t>(heap_[b])] = static_cast<int>(b);
  }

  std::vector<int> heap_;
  std::vector<int> pos_;
  std::vector<double> key_;
};

}  // namespace cca

#endif  // CCA_COMMON_INDEXED_HEAP_H_
