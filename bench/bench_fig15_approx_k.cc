// Figure 15: approximation quality and time vs. capacity k (paper:
// delta_SA=40, delta_CA=10, |Q|=1K, |P|=100K).
//
// Expected shape: quality ratios improve (approach 1) as k grows; CA is
// more robust than SA; approximate times track IDA's but several times
// smaller.
#include "bench_util.h"

int main() {
  using namespace cca;
  using namespace cca::bench;

  const std::size_t nq = Scaled(1000);
  const std::size_t np = Scaled(100000);
  Banner("Figure 15", "approximation quality & time vs capacity k",
         "quality improves with k; CA more robust than SA");
  std::printf("|Q|=%zu |P|=%zu delta: SA=40 CA=10\n\n", nq, np);
  ApproxHeader();

  Workload w = BuildWorkload(nq, np, 80, 15001);
  for (const int k : {20, 40, 80, 160, 320}) {
    SetCapacities(&w, FixedCapacities(nq, k));
    const ExactResult ida =
        ColdRun(w.db.get(), [&] { return SolveIda(w.problem, w.db.get(), DefaultExactConfig(np)); });
    const double optimal = ida.matching.cost();
    const std::string setting = "k=" + std::to_string(k);

    for (const auto& [label, refine] :
         {std::pair{"SAN", RefineMode::kNearestNeighbor},
          std::pair{"SAE", RefineMode::kExclusiveNearestNeighbor}}) {
      ApproxConfig config;
      config.delta = 40.0;
      config.refine = refine;
      ApproxRow(setting, label,
                ColdRun(w.db.get(), [&] { return SolveSa(w.problem, w.db.get(), config); }),
                optimal);
    }
    for (const auto& [label, refine] :
         {std::pair{"CAN", RefineMode::kNearestNeighbor},
          std::pair{"CAE", RefineMode::kExclusiveNearestNeighbor}}) {
      ApproxConfig config;
      config.delta = 10.0;
      config.refine = refine;
      ApproxRow(setting, label,
                ColdRun(w.db.get(), [&] { return SolveCa(w.problem, w.db.get(), config); }),
                optimal);
    }
    std::printf("%-10s %-6s %10.4f %10.2f %10.2f %10.2f\n", setting.c_str(), "IDA", 1.0,
                ida.metrics.cpu_millis / 1000.0, ida.metrics.io_millis() / 1000.0,
                ida.metrics.total_millis() / 1000.0);
  }
  return 0;
}
