// Dispatch-churn benchmark for the incremental AssignmentEngine
// (src/runtime/engine.h): the warm-start A/B on a sustained
// arrival/departure stream.
//
// Each shape drives a Poisson-ish event stream — customer arrivals and
// departures every step, occasional provider churn — through two engines
// fed the identical stream: one warm-started (duals + adopted flow from
// the previous Resolve), one resolving cold every step. Every step's warm
// cost is checked against the cold cost (exit non-zero on any mismatch:
// the engine's correctness anchor), and the run reports sustained
// re-solve QPS plus p50/p99 re-solve latency per mode.
//
// Shapes keep gamma == total weight (ample capacity), the regime a
// dispatch service lives in and the one where flow adoption applies: on a
// small-perturbation step the warm engine re-augments only the churned
// units, so its dijkstra_pops must sit far below the cold engine's —
// that column is the gated headline (tools/bench_diff.py: cost, pops,
// relaxes and augmentations gate against BENCH_dispatch.json; timing is
// reported but never gated).
//
//   bench_engine_dispatch [--out BENCH_dispatch.json] [--max-np N]
//                         [--stats-out FILE]  (per-step warm EngineStats JSON)
//                         [--trace-out FILE]  (tracing-enabled builds only)
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/timer.h"
#include "common/trace.h"
#include "gen/generator.h"
#include "runtime/engine.h"

namespace {

struct Shape {
  const char* dist;  // "u" uniform / "c" clustered pools
  std::size_t nq, np, steps;
  std::int32_t k;
};

struct ModeStats {
  double cost = 0.0;  // summed over all resolves
  double wall_ms = 0.0;
  cca::Histogram latency_ms;  // fixed-memory percentile source
  cca::Metrics totals;
  // Failure-model counters (engine-cumulative, snapshotted after the run).
  // All three must stay 0 in committed baselines: the bench sets no
  // deadline and its instances are feasible, so any nonzero value is a
  // regression bench_diff flags (the baseline gates growth from 0).
  std::uint64_t deadline_breaches = 0;
  std::uint64_t degraded_resolves = 0;
  std::uint64_t unassigned_units = 0;
};

struct Row {
  Shape shape;
  const char* mode;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double mean_ms = 0.0;
  ModeStats stats;
};

// Knuth Poisson sampling; the event-count distribution of a dispatch
// stream's inter-resolve window.
std::size_t Poisson(cca::Rng& rng, double lambda) {
  const double limit = std::exp(-lambda);
  double product = rng.NextDouble();
  std::size_t n = 0;
  while (product > limit) {
    ++n;
    product *= rng.NextDouble();
  }
  return n;
}

// One timed Resolve; accumulates into `stats` and returns the cost.
double TimedResolve(cca::AssignmentEngine& engine, ModeStats& stats) {
  cca::Timer timer;
  const cca::AssignmentEngine::ResolveOutcome out = engine.Resolve();
  const double ms = timer.ElapsedMillis();
  stats.wall_ms += ms;
  stats.latency_ms.Record(ms);
  stats.cost += out.cost;
  stats.totals.Merge(out.metrics);
  return out.cost;
}

void PrintRow(const Row& r) {
  const cca::Metrics& m = r.stats.totals;
  std::printf("%4s %6zu %8zu %4d %6zu %5s %8.1f %8.3f %8.3f %14.1f %12llu %9llu %9llu\n",
              r.shape.dist, r.shape.nq, r.shape.np, r.shape.k, r.shape.steps, r.mode, r.qps,
              r.p50_ms, r.p99_ms, r.stats.cost, static_cast<unsigned long long>(m.dijkstra_pops),
              static_cast<unsigned long long>(m.augmentations),
              static_cast<unsigned long long>(m.warm_units_adopted));
  std::fflush(stdout);
}

void WriteJson(const std::vector<Row>& rows, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const cca::Metrics& m = r.stats.totals;
    std::fprintf(f,
                 "  {\"workload\": \"dispatch\", \"dist\": \"%s\", \"n_q\": %zu, \"n_p\": %zu, "
                 "\"k\": %d, \"mode\": \"%s\", "
                 "\"qps\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"p999_ms\": %.3f, "
                 "\"mean_ms\": %.3f, \"wall_ms\": %.1f, "
                 "\"cost\": %.3f, \"pops\": %llu, \"relaxes\": %llu, "
                 "\"augmentations\": %llu, \"dual_repairs\": %llu, "
                 "\"warm_units_adopted\": %llu, "
                 "\"deadline_breaches\": %llu, \"degraded_resolves\": %llu, "
                 "\"unassigned_units\": %llu}%s\n",
                 r.shape.dist, r.shape.nq, r.shape.np, r.shape.k, r.mode, r.qps, r.p50_ms,
                 r.p99_ms, r.p999_ms, r.mean_ms, r.stats.wall_ms, r.stats.cost,
                 static_cast<unsigned long long>(m.dijkstra_pops),
                 static_cast<unsigned long long>(m.dijkstra_relaxes),
                 static_cast<unsigned long long>(m.augmentations),
                 static_cast<unsigned long long>(m.dual_repairs),
                 static_cast<unsigned long long>(m.warm_units_adopted),
                 static_cast<unsigned long long>(r.stats.deadline_breaches),
                 static_cast<unsigned long long>(r.stats.degraded_resolves),
                 static_cast<unsigned long long>(r.stats.unassigned_units),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %zu rows to %s\n", rows.size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_dispatch.json";
  std::string stats_path;
  std::string trace_path;
  std::size_t max_np = 100000;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--out") {
      out_path = next();
    } else if (flag == "--stats-out") {
      stats_path = next();
    } else if (flag == "--trace-out") {
      trace_path = next();
      if (!cca::trace::kCompiledIn) {
        // Flags a run would silently ignore are hard errors (repo rule).
        std::fprintf(stderr,
                     "--trace-out requires a tracing-enabled build "
                     "(-DCCA_ENABLE_TRACING=ON)\n");
        return 2;
      }
    } else if (flag == "--max-np") {
      max_np = static_cast<std::size_t>(std::atoll(next()));
    } else {
      std::fprintf(stderr,
                   "usage: bench_engine_dispatch [--out FILE] [--max-np N] "
                   "[--stats-out FILE] [--trace-out FILE]\n");
      return 2;
    }
  }
  if (!trace_path.empty()) cca::trace::Start();
  // Per-step EngineStats snapshots of every warm engine (one JSON object
  // per Resolve), demonstrating the snapshot surface is cheap enough to
  // export at serving cadence.
  std::vector<std::string> stats_snapshots;

  // k * nq comfortably exceeds np at every step: the ample-capacity
  // (Jonker-Volgenant) regime where flow adoption applies. Arrivals and
  // departures are rate-balanced so the population hovers around np.
  const Shape shapes[] = {
      {"u", 30, 1500, 60, 80},
      {"c", 30, 1500, 60, 80},
      {"u", 100, 8000, 50, 120},
  };

  cca::RoadNetwork net = cca::DefaultNetwork(7);
  std::printf("%4s %6s %8s %4s %6s %5s %8s %8s %8s %14s %12s %9s %9s\n", "dist", "nq", "np", "k",
              "steps", "mode", "qps", "p50_ms", "p99_ms", "cost", "pops", "aug", "adopted");

  std::vector<Row> rows;
  for (const Shape& s : shapes) {
    if (s.np > max_np) continue;
    // Pools of positions to draw arrivals from (the stream outlives the
    // initial population).
    cca::DatasetSpec p_spec;
    p_spec.count = s.np * 3;
    p_spec.seed = 11;
    p_spec.distribution = s.dist[0] == 'c' ? cca::PointDistribution::kClustered
                                           : cca::PointDistribution::kUniform;
    const std::vector<cca::Point> customer_pool = cca::GeneratePoints(net, p_spec);
    cca::DatasetSpec q_spec;
    q_spec.count = s.nq * 2;
    q_spec.seed = 13;
    q_spec.distribution = p_spec.distribution;
    const std::vector<cca::Point> provider_pool = cca::GeneratePoints(net, q_spec);

    // Both engines consume the identical stream; only warm_start differs.
    cca::AssignmentEngine::Options warm_opts;
    warm_opts.warm_start = true;
    cca::AssignmentEngine::Options cold_opts;
    cold_opts.warm_start = false;
    cca::AssignmentEngine warm_engine(warm_opts);
    cca::AssignmentEngine cold_engine(cold_opts);

    std::vector<std::pair<cca::AssignmentEngine::Id, cca::AssignmentEngine::Id>> customers;
    std::size_t next_customer = 0, next_provider = 0;
    auto arrive_customer = [&] {
      const cca::Point& pos = customer_pool[next_customer++ % customer_pool.size()];
      customers.emplace_back(warm_engine.InsertCustomer(pos).value(),
                             cold_engine.InsertCustomer(pos).value());
    };
    auto arrive_provider = [&] {
      const cca::Point& pos = provider_pool[next_provider++ % provider_pool.size()];
      warm_engine.InsertProvider(pos, s.k);
      cold_engine.InsertProvider(pos, s.k);
    };
    for (std::size_t q = 0; q < s.nq; ++q) arrive_provider();
    for (std::size_t p = 0; p < s.np; ++p) arrive_customer();

    ModeStats warm_stats, cold_stats;
    // Step 0 solves the initial snapshot (cold for both engines: nothing
    // to warm from), then every step perturbs ~lambda customers each way
    // and re-solves.
    TimedResolve(warm_engine, warm_stats);
    TimedResolve(cold_engine, cold_stats);
    if (!stats_path.empty()) stats_snapshots.push_back(warm_engine.stats().ToJson());

    cca::Rng rng(s.np * 31 + s.nq);
    const double lambda = std::max(1.0, static_cast<double>(s.np) / 200.0);
    for (std::size_t step = 0; step < s.steps; ++step) {
      const std::size_t arrivals = Poisson(rng, lambda);
      const std::size_t departures = std::min<std::size_t>(Poisson(rng, lambda),
                                                           customers.size() > s.nq
                                                               ? customers.size() - s.nq
                                                               : 0);
      for (std::size_t a = 0; a < arrivals; ++a) arrive_customer();
      for (std::size_t d = 0; d < departures; ++d) {
        const std::size_t i = static_cast<std::size_t>(rng.NextBelow(customers.size()));
        warm_engine.RemoveCustomer(customers[i].first);
        cold_engine.RemoveCustomer(customers[i].second);
        customers[i] = customers.back();
        customers.pop_back();
      }
      if (rng.NextDouble() < 0.05) arrive_provider();  // occasional fleet growth

      const double warm_cost = TimedResolve(warm_engine, warm_stats);
      const double cold_cost = TimedResolve(cold_engine, cold_stats);
      if (!stats_path.empty()) stats_snapshots.push_back(warm_engine.stats().ToJson());
      const double tol = 1e-9 * std::max(1.0, std::abs(cold_cost));
      if (std::abs(warm_cost - cold_cost) > tol) {
        std::fprintf(stderr,
                     "WARM-START SOUNDNESS VIOLATION dist=%s step=%zu: warm cost %.17g != "
                     "cold cost %.17g\n",
                     s.dist, step, warm_cost, cold_cost);
        return 1;
      }
    }

    for (auto* st : {&warm_stats, &cold_stats}) {
      Row row;
      row.shape = s;
      row.mode = st == &warm_stats ? "warm" : "cold";
      row.stats = *st;
      const cca::AssignmentEngine::Stats& es =
          (st == &warm_stats ? warm_engine : cold_engine).stats();
      row.stats.deadline_breaches = es.deadline_breaches;
      row.stats.degraded_resolves = es.degraded_resolves;
      row.stats.unassigned_units = es.unassigned_units;
      row.p50_ms = row.stats.latency_ms.Percentile(0.50);
      row.p99_ms = row.stats.latency_ms.Percentile(0.99);
      row.p999_ms = row.stats.latency_ms.Percentile(0.999);
      row.mean_ms = row.stats.latency_ms.Mean();
      row.qps = row.stats.wall_ms > 0.0
                    ? 1000.0 * static_cast<double>(row.stats.latency_ms.Count()) /
                          row.stats.wall_ms
                    : 0.0;
      rows.push_back(row);
      PrintRow(rows.back());
    }
    const auto warm_pops = rows[rows.size() - 2].stats.totals.dijkstra_pops;
    const auto cold_pops = rows[rows.size() - 1].stats.totals.dijkstra_pops;
    std::printf("  -> warm/cold pops ratio %.4f\n",
                cold_pops > 0 ? static_cast<double>(warm_pops) / static_cast<double>(cold_pops)
                              : 0.0);
  }
  WriteJson(rows, out_path);
  if (!stats_path.empty()) {
    std::FILE* f = std::fopen(stats_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s for writing\n", stats_path.c_str());
      return 1;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < stats_snapshots.size(); ++i) {
      std::fprintf(f, "  %s%s\n", stats_snapshots[i].c_str(),
                   i + 1 < stats_snapshots.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote %zu engine-stats snapshots to %s\n", stats_snapshots.size(),
                stats_path.c_str());
  }
  if (!trace_path.empty()) {
    cca::trace::Stop();
    if (!cca::trace::WriteJson(trace_path)) {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("wrote trace to %s\n", trace_path.c_str());
  }
  return 0;
}
