// Figure 8: CPU time vs. capacity k on a small in-memory problem, SSPA
// against RIA/NIA/IDA (paper: |Q|=250, |P|=25K, memory-resident R-tree).
//
// Expected shape: the incremental algorithms beat SSPA by 1-3 orders of
// magnitude across all k.
#include "bench_util.h"
#include "flow/sspa.h"

int main() {
  using namespace cca;
  using namespace cca::bench;

  const std::size_t nq = Scaled(250);
  const std::size_t np = Scaled(25000);
  Banner("Figure 8", "CPU time vs k; SSPA vs RIA/NIA/IDA on a small in-memory problem",
         "RIA/NIA/IDA are 1-3 orders of magnitude faster than SSPA");
  std::printf("|Q|=%zu |P|=%zu (paper: 250 / 25K)\n\n", nq, np);
  std::printf("%-8s %10s %10s %10s %10s %12s\n", "k", "SSPA_s", "RIA_s", "NIA_s", "IDA_s",
              "cost");

  // In-memory setting: buffer the whole tree (no I/O column in Fig. 8).
  Workload w = BuildWorkload(nq, np, 80, 8001);
  w.db->tree()->buffer().SetCapacity(w.db->tree()->page_count() + 1);
  w.db->Prewarm();
  const ExactConfig config = DefaultExactConfig(np);

  for (const int k : {20, 40, 80, 160, 320}) {
    SetCapacities(&w, FixedCapacities(nq, k));
    const SspaResult sspa = SolveSspa(w.problem);
    const ExactResult ria = SolveRia(w.problem, w.db.get(), config);
    const ExactResult nia = SolveNia(w.problem, w.db.get(), config);
    const ExactResult ida = SolveIda(w.problem, w.db.get(), config);

    std::printf("%-8d %10.2f %10.2f %10.2f %10.2f %12.0f\n", k,
                sspa.metrics.cpu_millis / 1000.0, ria.metrics.cpu_millis / 1000.0,
                nia.metrics.cpu_millis / 1000.0, ida.metrics.cpu_millis / 1000.0,
                ida.matching.cost());
    std::fflush(stdout);
  }
  return 0;
}
