// Figure 17: approximation quality and time vs. customer cardinality |P|
// (paper: 25K..200K, k=80, |Q|=1K; delta_SA=40, delta_CA=10).
//
// Expected shape: SA's accuracy degrades with |P| (denser customers around
// provider groups = more suboptimal potential); CA is only mildly
// affected.
#include "bench_util.h"

int main() {
  using namespace cca;
  using namespace cca::bench;

  const std::size_t nq = Scaled(1000);
  const int k = 80;
  Banner("Figure 17", "approximation quality & time vs |P|",
         "SA degrades with |P|; CA only slightly");
  std::printf("|Q|=%zu k=%d delta: SA=40 CA=10\n\n", nq, k);
  ApproxHeader();

  for (const std::size_t paper_np : {25000u, 50000u, 100000u, 150000u, 200000u}) {
    const std::size_t np = Scaled(paper_np);
    Workload w = BuildWorkload(nq, np, k, 17000 + paper_np / 1000);
    const ExactResult ida =
        ColdRun(w.db.get(), [&] { return SolveIda(w.problem, w.db.get(), DefaultExactConfig(np)); });
    const double optimal = ida.matching.cost();
    const std::string setting = "|P|=" + std::to_string(np);

    for (const auto& [label, refine] :
         {std::pair{"SAN", RefineMode::kNearestNeighbor},
          std::pair{"SAE", RefineMode::kExclusiveNearestNeighbor}}) {
      ApproxConfig config;
      config.delta = 40.0;
      config.refine = refine;
      ApproxRow(setting, label,
                ColdRun(w.db.get(), [&] { return SolveSa(w.problem, w.db.get(), config); }),
                optimal);
    }
    for (const auto& [label, refine] :
         {std::pair{"CAN", RefineMode::kNearestNeighbor},
          std::pair{"CAE", RefineMode::kExclusiveNearestNeighbor}}) {
      ApproxConfig config;
      config.delta = 10.0;
      config.refine = refine;
      ApproxRow(setting, label,
                ColdRun(w.db.get(), [&] { return SolveCa(w.problem, w.db.get(), config); }),
                optimal);
    }
  }
  return 0;
}
