// Figure 16: approximation quality and time vs. provider cardinality |Q|
// (paper: 0.25K..5K, k=80, |P|=100K; delta_SA=40, delta_CA=10).
//
// Expected shape: CA stays more accurate than SA; CA's quality slowly
// degrades with |Q| (more providers near a customer group = more chances
// of suboptimal pairs); SA is non-monotone in |Q| (group density effect).
#include "bench_util.h"

int main() {
  using namespace cca;
  using namespace cca::bench;

  const std::size_t np = Scaled(100000);
  const int k = 80;
  Banner("Figure 16", "approximation quality & time vs |Q|",
         "CA more accurate; CA quality degrades mildly with |Q|");
  std::printf("|P|=%zu k=%d delta: SA=40 CA=10\n\n", np, k);
  ApproxHeader();

  for (const std::size_t paper_nq : {250u, 500u, 1000u, 2500u, 5000u}) {
    const std::size_t nq = Scaled(paper_nq);
    Workload w = BuildWorkload(nq, np, k, 16000 + paper_nq);
    const ExactResult ida =
        ColdRun(w.db.get(), [&] { return SolveIda(w.problem, w.db.get(), DefaultExactConfig(np)); });
    const double optimal = ida.matching.cost();
    const std::string setting = "|Q|=" + std::to_string(nq);

    for (const auto& [label, refine] :
         {std::pair{"SAN", RefineMode::kNearestNeighbor},
          std::pair{"SAE", RefineMode::kExclusiveNearestNeighbor}}) {
      ApproxConfig config;
      config.delta = 40.0;
      config.refine = refine;
      ApproxRow(setting, label,
                ColdRun(w.db.get(), [&] { return SolveSa(w.problem, w.db.get(), config); }),
                optimal);
    }
    for (const auto& [label, refine] :
         {std::pair{"CAN", RefineMode::kNearestNeighbor},
          std::pair{"CAE", RefineMode::kExclusiveNearestNeighbor}}) {
      ApproxConfig config;
      config.delta = 10.0;
      config.refine = refine;
      ApproxRow(setting, label,
                ColdRun(w.db.get(), [&] { return SolveCa(w.problem, w.db.get(), config); }),
                optimal);
    }
  }
  return 0;
}
