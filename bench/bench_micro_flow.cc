// Micro-benchmarks for the flow kernel and solvers (google-benchmark).
#include <benchmark/benchmark.h>

#include "core/exact.h"
#include "flow/sspa.h"
#include "gen/generator.h"

namespace {

cca::Problem MakeProblem(std::size_t nq, std::size_t np, std::int32_t k) {
  static cca::RoadNetwork net = cca::DefaultNetwork(99);
  cca::DatasetSpec q_spec;
  q_spec.count = nq;
  q_spec.seed = 5;
  cca::DatasetSpec p_spec;
  p_spec.count = np;
  p_spec.seed = 6;
  return cca::MakeProblem(net, q_spec, p_spec, cca::FixedCapacities(nq, k));
}

void BM_Sspa(benchmark::State& state) {
  const auto problem =
      MakeProblem(static_cast<std::size_t>(state.range(0)),
                  static_cast<std::size_t>(state.range(1)), 10);
  for (auto _ : state) {
    const auto result = cca::SolveSspa(problem);
    benchmark::DoNotOptimize(result.matching.cost());
  }
}
BENCHMARK(BM_Sspa)->Args({10, 200})->Args({20, 500})->Args({50, 1000});

void BM_Ida(benchmark::State& state) {
  const auto problem =
      MakeProblem(static_cast<std::size_t>(state.range(0)),
                  static_cast<std::size_t>(state.range(1)), 10);
  cca::CustomerDb::Options options;
  options.buffer_fraction = 2.0;
  cca::CustomerDb db(problem.customers, options);
  for (auto _ : state) {
    const auto result = cca::SolveIda(problem, &db, cca::ExactConfig{});
    benchmark::DoNotOptimize(result.matching.cost());
  }
}
BENCHMARK(BM_Ida)->Args({10, 200})->Args({20, 500})->Args({50, 1000})->Args({100, 5000});

void BM_Nia(benchmark::State& state) {
  const auto problem =
      MakeProblem(static_cast<std::size_t>(state.range(0)),
                  static_cast<std::size_t>(state.range(1)), 10);
  cca::CustomerDb::Options options;
  options.buffer_fraction = 2.0;
  cca::CustomerDb db(problem.customers, options);
  for (auto _ : state) {
    const auto result = cca::SolveNia(problem, &db, cca::ExactConfig{});
    benchmark::DoNotOptimize(result.matching.cost());
  }
}
BENCHMARK(BM_Nia)->Args({10, 200})->Args({20, 500})->Args({50, 1000});

}  // namespace

BENCHMARK_MAIN();
