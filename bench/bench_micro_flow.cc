// Micro-benchmark for the SSPA flow kernel: dense relax scan vs. the
// grid-pruned relax vs. the shared-frontier relax (one SharedCellSweep
// subscribed to by every provider: identical relax trajectory, but only
// first cell materialisations charge the index-read ledger), across
// problem sizes.
//
// Prints a human-readable table and writes a machine-readable
// `BENCH_sspa.json` (array of runs: n_q, n_p, k, mode, dist, relaxes,
// pruned, distances_computed, cells_pruned, pops, rings, cells, coarse
// tail/descent counters, millis, cost) so successive PRs can track the
// perf trajectory — CI gates the distances_computed column (and the
// hierarchical-grid counters) via tools/bench_diff.py so the relax scan's
// quadratic distance term cannot silently regress. Usage:
//
//   bench_micro_flow [--out BENCH_sspa.json] [--max-np N] [--dense-max-np N]
//                    [--threads N] [--repeat R] [--best-of B]
//
// --dense-max-np caps the sizes the dense baseline is run at (the dense
// scan is quadratic; the default still covers the 10k-customer point the
// acceptance bar is measured at). --repeat replicates every solve R times
// and --threads drives the replicas through the concurrent QueryRunner
// (src/runtime) over one shared grid; reported counters stay per-solve
// (replicas are bit-identical), and a throughput line is printed per run.
// The defaults (1/1) keep the legacy direct-solve path. --best-of B
// (default 3) re-runs every direct solve B times and reports the minimum
// wall clock — counters are deterministic, the clock is not, and the
// hierarchy-vs-flat comparisons below are wall-clock claims.
//
// Workloads: the uniform sweep covers the historical size trajectory; on
// top of it the 10k-customer shape is re-run under clustered and skewed
// customer distributions with an explicit hierarchy-off row ("grid-flat")
// so BENCH_sspa.json records the adaptive hierarchy's skew win next to
// the flat-grid cost it must bit-match.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "flow/sspa.h"
#include "gen/generator.h"
#include "runtime/query_runner.h"

namespace {

// Skewed customers: 90% of the mass packed into a small hot rectangle at
// the origin, the rest uniform over the [0,1000]^2 world. This is the
// adversarial case for a flat uniform grid (one cell region holds nearly
// everything) and the case the hierarchy's per-region split targets.
// Mirrors tests/test_util.h SkewedPoints; benches cannot include tests/.
std::vector<cca::Point> SkewedPoints(std::size_t n, std::uint64_t seed) {
  cca::Rng rng(seed);
  std::vector<cca::Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < 0.9) {
      pts.push_back(cca::Point{rng.Uniform(0.0, 80.0), rng.Uniform(0.0, 50.0)});
    } else {
      pts.push_back(cca::Point{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)});
    }
  }
  return pts;
}

// Builds the benchmark instance for one (shape, distribution) pair.
// `dist` is "uniform" or "clustered" (both via the road-network generator,
// seeds 5/6 as always) or "skewed" (uniform providers over skewed
// customers — providers everywhere, demand packed into the hot box).
cca::Problem MakeBenchProblem(std::size_t nq, std::size_t np, std::int32_t k, const char* dist) {
  static cca::RoadNetwork net = cca::DefaultNetwork(99);
  cca::DatasetSpec q_spec;
  q_spec.count = nq;
  q_spec.seed = 5;
  q_spec.distribution = cca::PointDistribution::kUniform;
  cca::DatasetSpec p_spec;
  p_spec.count = np;
  p_spec.seed = 6;
  p_spec.distribution = cca::PointDistribution::kUniform;
  if (std::strcmp(dist, "clustered") == 0) {
    q_spec.distribution = cca::PointDistribution::kClustered;
    p_spec.distribution = cca::PointDistribution::kClustered;
  }
  cca::Problem problem = cca::MakeProblem(net, q_spec, p_spec, cca::FixedCapacities(nq, k));
  if (std::strcmp(dist, "skewed") == 0) {
    problem.customers = SkewedPoints(np, /*seed=*/6);
  }
  return problem;
}

struct Run {
  std::size_t nq;
  std::size_t np;
  std::int32_t k;
  const char* mode;
  const char* dist;
  cca::SspaResult result;
};

void PrintRow(const Run& r) {
  std::printf("%6zu %8zu %4d %-9s %-9s %14llu %14llu %12llu %12llu %10llu %10llu %10llu %10llu "
              "%8llu %8llu %10.1f %12.1f\n",
              r.nq, r.np, r.k, r.mode, r.dist,
              static_cast<unsigned long long>(r.result.metrics.dijkstra_relaxes),
              static_cast<unsigned long long>(r.result.metrics.relaxes_pruned),
              static_cast<unsigned long long>(r.result.metrics.distances_computed),
              static_cast<unsigned long long>(r.result.metrics.dijkstra_pops),
              static_cast<unsigned long long>(r.result.metrics.grid_rings_scanned),
              static_cast<unsigned long long>(r.result.metrics.grid_cursor_cells),
              static_cast<unsigned long long>(r.result.metrics.cells_pruned),
              static_cast<unsigned long long>(r.result.metrics.dense_cells_checked),
              static_cast<unsigned long long>(r.result.metrics.coarse_tails_pruned),
              static_cast<unsigned long long>(r.result.metrics.coarse_cells_descended),
              r.result.metrics.cpu_millis, r.result.matching.cost());
  std::fflush(stdout);
}

// Runs `config` directly (threads == 1, repeat == 1: the legacy exact
// path, re-timed best-of-`best_of`) or as `repeat` replicas through a
// QueryRunner over `index`. The returned result is the first replica's
// (all replicas are bit-identical — the runner's determinism contract);
// throughput is printed per run.
cca::SspaResult RunSspa(const cca::Problem& problem, const cca::SspaConfig& config,
                        const cca::SharedIndex& index, std::size_t threads, std::size_t repeat,
                        std::size_t best_of) {
  if (threads <= 1 && repeat <= 1) {
    // Best-of-N: keep the first solve's counters (deterministic re-runs of
    // the same code, so every repetition agrees — enforced below) and the
    // minimum wall clock across repetitions (the only noisy column).
    cca::SspaResult result = cca::SolveSspa(problem, config);
    for (std::size_t rep = 1; rep < best_of; ++rep) {
      cca::SspaResult again = cca::SolveSspa(problem, config);
      if (std::abs(again.matching.cost() - result.matching.cost()) >
              1e-9 * std::max(1.0, result.matching.cost()) ||
          again.metrics.dijkstra_pops != result.metrics.dijkstra_pops ||
          again.metrics.augmentations != result.metrics.augmentations) {
        std::fprintf(stderr, "NONDETERMINISTIC SOLVE across best-of repetitions\n");
        std::exit(1);
      }
      result.metrics.cpu_millis = std::min(result.metrics.cpu_millis, again.metrics.cpu_millis);
    }
    return result;
  }
  std::vector<cca::QuerySpec> batch(repeat);
  for (auto& spec : batch) {
    spec.solver = cca::QuerySolver::kSspa;
    spec.problem = problem;
    spec.sspa = config;
  }
  cca::QueryRunner runner(&index, threads);
  cca::Timer timer;
  std::vector<cca::QueryOutcome> outcomes = runner.Run(batch);
  const double wall = timer.ElapsedMillis();
  std::printf("  [%zu replicas x %zu threads: %.1f ms wall, %.1f solves/s]\n", repeat, threads,
              wall, wall > 0.0 ? 1000.0 * static_cast<double>(repeat) / wall : 0.0);
  cca::SspaResult result;
  result.matching = std::move(outcomes.front().matching);
  result.metrics = outcomes.front().metrics;
  result.conceptual_edges =
      static_cast<std::uint64_t>(problem.providers.size()) * problem.customers.size();
  return result;
}

void WriteJson(const std::vector<Run>& runs, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    const auto& m = r.result.metrics;
    std::fprintf(f,
                 "  {\"n_q\": %zu, \"n_p\": %zu, \"k\": %d, \"mode\": \"%s\", \"dist\": \"%s\", "
                 "\"relaxes\": %llu, \"relaxes_pruned\": %llu, "
                 "\"distances_computed\": %llu, \"cells_pruned\": %llu, "
                 "\"dense_cells_checked\": %llu, \"coarse_tails_pruned\": %llu, "
                 "\"coarse_cells_descended\": %llu, \"hier_splits\": %llu, \"pops\": %llu, "
                 "\"grid_rings_scanned\": %llu, \"grid_cursor_cells\": %llu, "
                 "\"shared_frontier_cell_fetches\": %llu, \"shared_frontier_fanout\": %llu, "
                 "\"augmentations\": %llu, "
                 "\"millis\": %.3f, \"cost\": %.3f}%s\n",
                 r.nq, r.np, r.k, r.mode, r.dist,
                 static_cast<unsigned long long>(m.dijkstra_relaxes),
                 static_cast<unsigned long long>(m.relaxes_pruned),
                 static_cast<unsigned long long>(m.distances_computed),
                 static_cast<unsigned long long>(m.cells_pruned),
                 static_cast<unsigned long long>(m.dense_cells_checked),
                 static_cast<unsigned long long>(m.coarse_tails_pruned),
                 static_cast<unsigned long long>(m.coarse_cells_descended),
                 static_cast<unsigned long long>(m.hier_splits),
                 static_cast<unsigned long long>(m.dijkstra_pops),
                 static_cast<unsigned long long>(m.grid_rings_scanned),
                 static_cast<unsigned long long>(m.grid_cursor_cells),
                 static_cast<unsigned long long>(m.shared_frontier_cell_fetches),
                 static_cast<unsigned long long>(m.shared_frontier_fanout),
                 static_cast<unsigned long long>(m.augmentations), m.cpu_millis,
                 r.result.matching.cost(), i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %zu runs to %s\n", runs.size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_sspa.json";
  std::size_t max_np = 20000;
  std::size_t dense_max_np = 10000;
  std::size_t threads = 1;
  std::size_t repeat = 1;
  std::size_t best_of = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--out") {
      out_path = next();
    } else if (flag == "--max-np") {
      max_np = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--dense-max-np") {
      dense_max_np = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--threads") {
      threads = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--repeat") {
      repeat = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--best-of") {
      best_of = static_cast<std::size_t>(std::atoll(next()));
    } else {
      std::fprintf(stderr,
                   "usage: bench_micro_flow [--out FILE] [--max-np N] [--dense-max-np N] "
                   "[--threads N] [--repeat R] [--best-of B]\n");
      return 2;
    }
  }
  if (repeat < 1) repeat = 1;
  if (best_of < 1) best_of = 1;
  if (threads > 1 && repeat == 1) repeat = threads;  // give the pool work to share

  struct Shape {
    std::size_t nq, np;
    std::int32_t k;
  };
  const Shape shapes[] = {
      {10, 200, 10},  {20, 500, 10},   {50, 1000, 10},
      {50, 5000, 40}, {100, 10000, 40}, {100, 20000, 80},
  };

  std::printf("%6s %8s %4s %-9s %-9s %14s %14s %12s %12s %10s %10s %10s %10s %8s %8s %10s %12s\n",
              "nq", "np", "k", "mode", "dist", "relaxes", "pruned", "distances", "pops", "rings",
              "cells", "cellspr", "densechk", "ctailpr", "cdesc", "millis", "cost");
  std::vector<Run> runs;
  for (const Shape& s : shapes) {
    if (s.np > max_np) continue;
    const cca::Problem problem = MakeBenchProblem(s.nq, s.np, s.k, "uniform");
    // Shared read-only relax grid for the runner path (SSPA never touches
    // the R-tree, so skip the bulk load).
    cca::SharedIndex::Options index_options;
    index_options.build_customer_db = false;
    const cca::SharedIndex index(problem.customers, index_options);
    cca::SspaConfig grid_config;
    grid_config.use_grid = true;
    runs.push_back(Run{s.nq, s.np, s.k, "grid", "uniform",
                       RunSspa(problem, grid_config, index, threads, repeat, best_of)});
    const std::size_t grid_run = runs.size() - 1;
    PrintRow(runs.back());
    {
      // Shared-frontier relax: same trajectory, amortised cell ledger
      // (providers popped at similar keys stop re-charging shared cells).
      cca::SspaConfig shared_config;
      shared_config.use_grid = true;
      shared_config.use_shared_frontier = true;
      runs.push_back(Run{s.nq, s.np, s.k, "shared", "uniform",
                         RunSspa(problem, shared_config, index, threads, repeat, best_of)});
      PrintRow(runs.back());
      const Run& g = runs[grid_run];
      const Run& sh = runs[runs.size() - 1];
      if (std::abs(g.result.matching.cost() - sh.result.matching.cost()) >
              1e-6 * std::max(1.0, g.result.matching.cost()) ||
          sh.result.metrics.grid_cursor_cells > g.result.metrics.grid_cursor_cells) {
        std::fprintf(stderr, "SHARED-FRONTIER MISMATCH at nq=%zu np=%zu\n", s.nq, s.np);
        return 1;
      }
    }
    if (s.np <= dense_max_np) {
      cca::SspaConfig dense_config;
      dense_config.use_grid = false;
      runs.push_back(Run{s.nq, s.np, s.k, "dense", "uniform",
                         RunSspa(problem, dense_config, index, threads, repeat, best_of)});
      PrintRow(runs.back());
      const Run& g = runs[grid_run];
      const Run& d = runs[runs.size() - 1];
      if (std::abs(g.result.matching.cost() - d.result.matching.cost()) >
              1e-6 * std::max(1.0, d.result.matching.cost())) {
        std::fprintf(stderr, "COST MISMATCH grid=%.6f dense=%.6f at nq=%zu np=%zu\n",
                     g.result.matching.cost(), d.result.matching.cost(), s.nq, s.np);
        return 1;
      }
    }
  }

  // Non-uniform workloads at the acceptance shape: the hierarchy's
  // adaptive split only matters when occupancy is uneven, so these rows
  // carry the skew win BENCH_sspa.json is gated on. "grid" runs the
  // default hierarchical relax; "grid-flat" pins use_hierarchy off — the
  // A/B pair must agree on cost/pops/augmentations exactly (the coarse
  // bound is certified never to change the trajectory), and on skewed
  // data the hierarchical row must win wall clock.
  const Shape skew_shape{100, 10000, 40};
  if (skew_shape.np <= max_np) {
    for (const char* dist : {"clustered", "skewed"}) {
      const cca::Problem problem =
          MakeBenchProblem(skew_shape.nq, skew_shape.np, skew_shape.k, dist);
      cca::SharedIndex::Options index_options;
      index_options.build_customer_db = false;
      const cca::SharedIndex index(problem.customers, index_options);
      cca::SspaConfig grid_config;
      grid_config.use_grid = true;
      runs.push_back(Run{skew_shape.nq, skew_shape.np, skew_shape.k, "grid", dist,
                         RunSspa(problem, grid_config, index, threads, repeat, best_of)});
      const std::size_t hier_run = runs.size() - 1;
      PrintRow(runs.back());
      cca::SspaConfig flat_config;
      flat_config.use_grid = true;
      flat_config.use_hierarchy = false;
      runs.push_back(Run{skew_shape.nq, skew_shape.np, skew_shape.k, "grid-flat", dist,
                         RunSspa(problem, flat_config, index, threads, repeat, best_of)});
      const std::size_t flat_run = runs.size() - 1;
      PrintRow(runs.back());
      const Run& hier = runs[hier_run];
      const Run& flat = runs[flat_run];
      const double flat_cost = flat.result.matching.cost();
      if (std::abs(hier.result.matching.cost() - flat_cost) >
              1e-6 * std::max(1.0, flat_cost) ||
          hier.result.metrics.dijkstra_pops != flat.result.metrics.dijkstra_pops ||
          hier.result.metrics.augmentations != flat.result.metrics.augmentations) {
        std::fprintf(stderr, "HIERARCHY MISMATCH vs flat grid on %s data\n", dist);
        return 1;
      }
      cca::SspaConfig shared_config;
      shared_config.use_grid = true;
      shared_config.use_shared_frontier = true;
      runs.push_back(Run{skew_shape.nq, skew_shape.np, skew_shape.k, "shared", dist,
                         RunSspa(problem, shared_config, index, threads, repeat, best_of)});
      PrintRow(runs.back());
      if (std::abs(runs.back().result.matching.cost() - flat_cost) >
          1e-6 * std::max(1.0, flat_cost)) {
        std::fprintf(stderr, "SHARED-FRONTIER MISMATCH on %s data\n", dist);
        return 1;
      }
    }
  }
  WriteJson(runs, out_path);
  return 0;
}
