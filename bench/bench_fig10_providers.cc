// Figure 10: performance vs. provider cardinality |Q| (paper: 0.25K..5K,
// k=80, |P|=100K).
//
// Expected shape: cost grows with |Q| but saturates once k*|Q| > |P|; IDA
// prunes the most while capacity is scarce (k*|Q| < |P|).
//
// Beyond the paper's three exact algorithms this also runs IDA on the grid
// discovery backend ("IDA-G": ring cursors over the memory-resident
// customer array) so BENCH_fig10.json records the index-access trajectory
// of both backends side by side.
#include "bench_util.h"

int main() {
  using namespace cca;
  using namespace cca::bench;

  const std::size_t np = Scaled(100000);
  const int k = 80;
  Banner("Figure 10", "|Esub| and time vs provider cardinality |Q| (k=80)",
         "cost grows with |Q|, saturates once k*|Q| > |P|; IDA smallest subgraph early");
  std::printf("|P|=%zu k=%d\n\n", np, k);
  ExactHeader();

  JsonTrajectory json("BENCH_fig10.json");
  for (const std::size_t paper_nq : {250u, 500u, 1000u, 2500u, 5000u}) {
    const std::size_t nq = Scaled(paper_nq);
    Workload w = BuildWorkload(nq, np, k, 10000 + paper_nq);
    RunExactSuite(&w, "|Q|=" + std::to_string(nq), np, &json);
  }
  json.Write();
  return 0;
}
