// Figure 13: the four Q-vs-P distribution combinations, U(niform) and
// C(lustered), at the default setting (paper: k=80, |Q|=1K, |P|=100K).
//
// Expected shape: differently-distributed Q and P (UvsC, CvsU) are much
// harder than same-distribution inputs; NIA can lose its edge over RIA
// there (batch range insertion beats one-at-a-time NN retrieval).
#include "bench_util.h"

int main() {
  using namespace cca;
  using namespace cca::bench;

  const std::size_t nq = Scaled(1000);
  const std::size_t np = Scaled(100000);
  const int k = 80;
  Banner("Figure 13", "performance across distribution combinations (Q vs P)",
         "UvsC and CvsU are far harder than UvsU / CvsC");
  std::printf("|Q|=%zu |P|=%zu k=%d\n\n", nq, np, k);
  ExactHeader();

  const struct {
    const char* label;
    PointDistribution q;
    PointDistribution p;
  } combos[] = {
      {"UvsU", PointDistribution::kUniform, PointDistribution::kUniform},
      {"UvsC", PointDistribution::kUniform, PointDistribution::kClustered},
      {"CvsU", PointDistribution::kClustered, PointDistribution::kUniform},
      {"CvsC", PointDistribution::kClustered, PointDistribution::kClustered},
  };
  std::uint64_t seed = 13000;
  for (const auto& combo : combos) {
    Workload w = BuildWorkload(nq, np, combo.q, combo.p, FixedCapacities(nq, k), ++seed);
    ExactRow(combo.label, "RIA",
             ColdRun(w.db.get(), [&] { return SolveRia(w.problem, w.db.get(), DefaultExactConfig(np)); }));
    ExactRow(combo.label, "NIA",
             ColdRun(w.db.get(), [&] { return SolveNia(w.problem, w.db.get(), DefaultExactConfig(np)); }));
    ExactRow(combo.label, "IDA",
             ColdRun(w.db.get(), [&] { return SolveIda(w.problem, w.db.get(), DefaultExactConfig(np)); }));
  }
  return 0;
}
