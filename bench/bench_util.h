// Shared experiment harness for the paper-reproduction benchmarks.
//
// Every figure binary builds workloads exactly as Section 5.1 prescribes
// (road-network data, 1 KB pages, LRU buffer = 1% of the tree, I/O charged
// at 10 ms per fault) and prints one table per paper figure. Dataset sizes
// default to 1/10th of the paper's (the capacity-to-cardinality ratios --
// which determine every crossover -- are preserved); set CCA_BENCH_SCALE=1
// to run the paper-scale experiments.
#ifndef CCA_BENCH_BENCH_UTIL_H_
#define CCA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/approx.h"
#include "core/customer_db.h"
#include "core/exact.h"
#include "gen/generator.h"

namespace cca::bench {

// Scale factor relative to the PAPER's dataset sizes. Default 0.05.
inline double Scale() {
  if (const char* env = std::getenv("CCA_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0) return s;
  }
  return 0.05;
}

// The paper fine-tunes RIA's range increment to theta = 0.8 *for
// |P| = 100K customers on the [0,1000]^2 world*. theta tracks the customer
// NN-distance scale, which grows like 1/sqrt(density); scaled-down
// datasets therefore get a proportionally larger increment.
inline double DensityScaledTheta(std::size_t np) {
  return 0.8 * std::sqrt(100000.0 / static_cast<double>(np));
}

// Default solver configuration for a workload with |P| = np.
inline ExactConfig DefaultExactConfig(std::size_t np) {
  ExactConfig config;
  config.theta = DensityScaledTheta(np);
  return config;
}

inline std::size_t Scaled(std::size_t paper_size) {
  const double s = Scale();
  return static_cast<std::size_t>(paper_size * s + 0.5);
}

struct Workload {
  Problem problem;
  std::unique_ptr<CustomerDb> db;
};

inline Workload BuildWorkload(std::size_t nq, std::size_t np, PointDistribution dist_q,
                              PointDistribution dist_p, const std::vector<std::int32_t>& caps,
                              std::uint64_t seed) {
  static RoadNetwork network = DefaultNetwork(42);
  DatasetSpec q_spec;
  q_spec.count = nq;
  q_spec.distribution = dist_q;
  q_spec.seed = seed * 2 + 1;
  DatasetSpec p_spec;
  p_spec.count = np;
  p_spec.distribution = dist_p;
  p_spec.seed = seed * 2 + 2;
  // Both sides live in the same city: clustered providers and clustered
  // customers concentrate around the same hotspots (see DatasetSpec).
  q_spec.cluster_seed = p_spec.cluster_seed = seed * 2 + 777;
  Workload w;
  w.problem = MakeProblem(network, q_spec, p_spec, caps);
  CustomerDb::Options options;
  options.rtree.page_size = 1024;
  options.buffer_fraction = 0.01;
  // The paper's absolute buffer at |P|=100K is ~38 pages; keep a floor so
  // scaled-down trees are not left with a 1-2 page pathological buffer.
  options.min_buffer_pages = 16;
  w.db = std::make_unique<CustomerDb>(w.problem.customers, options);
  return w;
}

// Swaps the capacity vector of an existing workload in place (capacity
// sweeps reuse one dataset, exactly like the paper's Figure 9/15 setup).
inline void SetCapacities(Workload* w, const std::vector<std::int32_t>& caps) {
  for (std::size_t i = 0; i < w->problem.providers.size(); ++i) {
    w->problem.providers[i].capacity = caps[i];
  }
}

inline Workload BuildWorkload(std::size_t nq, std::size_t np, std::int32_t k,
                              std::uint64_t seed,
                              PointDistribution dist_q = PointDistribution::kClustered,
                              PointDistribution dist_p = PointDistribution::kClustered) {
  return BuildWorkload(nq, np, dist_q, dist_p,
                       FixedCapacities(nq, k), seed);
}

// --- printing ----------------------------------------------------------------

inline void Banner(const std::string& figure, const std::string& description,
                   const std::string& paper_shape) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("Paper shape to match: %s\n", paper_shape.c_str());
  std::printf("Scale: %.3gx of the paper's dataset sizes (CCA_BENCH_SCALE)\n", Scale());
  std::printf("==============================================================\n");
}

inline void ExactHeader() {
  std::printf("%-10s %-6s %12s %10s %10s %10s %10s\n", "setting", "algo", "|Esub|", "cpu_s",
              "io_s", "total_s", "cost");
}

inline void ExactRow(const std::string& setting, const char* algo, const ExactResult& r) {
  std::printf("%-10s %-6s %12llu %10.2f %10.2f %10.2f %10.0f\n", setting.c_str(), algo,
              static_cast<unsigned long long>(r.metrics.edges_inserted),
              r.metrics.cpu_millis / 1000.0, r.metrics.io_millis() / 1000.0,
              r.metrics.total_millis() / 1000.0, r.matching.cost());
  std::fflush(stdout);
}

inline void ApproxHeader() {
  std::printf("%-10s %-6s %10s %10s %10s %10s %8s\n", "setting", "algo", "quality", "cpu_s",
              "io_s", "total_s", "groups");
}

inline void ApproxRow(const std::string& setting, const char* algo, const ApproxResult& r,
                      double optimal_cost) {
  std::printf("%-10s %-6s %10.4f %10.2f %10.2f %10.2f %8zu\n", setting.c_str(), algo,
              r.matching.cost() / optimal_cost, r.metrics.cpu_millis / 1000.0,
              r.metrics.io_millis() / 1000.0, r.metrics.total_millis() / 1000.0, r.num_groups);
  std::fflush(stdout);
}

// Cools the buffer before a measured run so every algorithm starts cold.
template <typename Fn>
auto ColdRun(CustomerDb* db, Fn&& fn) {
  db->CoolDown();
  return fn();
}

// --- machine-readable trajectory ---------------------------------------------

// Collects one JSON object per solver run and writes a `BENCH_*.json`
// array on Write(), mirroring bench_micro_flow's format so successive PRs
// can diff the perf trajectory (tools/bench_diff.py).
class JsonTrajectory {
 public:
  explicit JsonTrajectory(std::string path) : path_(std::move(path)) {}

  void AddExact(const std::string& setting, const char* algo, const ExactResult& r) {
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "  {\"setting\": \"%s\", \"algo\": \"%s\", \"esub\": %llu, "
        "\"node_accesses\": %llu, \"grid_cursor_cells\": %llu, "
        "\"shared_frontier_cell_fetches\": %llu, \"shared_frontier_fanout\": %llu, "
        "\"index_node_accesses\": %llu, \"page_faults\": %llu, "
        "\"nn_searches\": %llu, \"invalid_paths\": %llu, "
        "\"cpu_ms\": %.3f, \"io_ms\": %.3f, \"cost\": %.3f}",
        setting.c_str(), algo, static_cast<unsigned long long>(r.metrics.edges_inserted),
        static_cast<unsigned long long>(r.metrics.node_accesses),
        static_cast<unsigned long long>(r.metrics.grid_cursor_cells),
        static_cast<unsigned long long>(r.metrics.shared_frontier_cell_fetches),
        static_cast<unsigned long long>(r.metrics.shared_frontier_fanout),
        static_cast<unsigned long long>(r.metrics.index_node_accesses),
        static_cast<unsigned long long>(r.metrics.page_faults),
        static_cast<unsigned long long>(r.metrics.nn_searches),
        static_cast<unsigned long long>(r.metrics.invalid_paths), r.metrics.cpu_millis,
        r.metrics.io_millis(), r.matching.cost());
    rows_.emplace_back(buf);
  }

  void Write() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path_.c_str());
      return;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s%s\n", rows_[i].c_str(), i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("\nwrote %zu runs to %s\n", rows_.size(), path_.c_str());
  }

 private:
  std::string path_;
  std::vector<std::string> rows_;
};

// Runs the standard exact-solver suite (RIA, NIA, IDA, grid-backed IDA,
// batched-frontier IDA) on one workload setting, printing table rows and
// appending to the JSON trajectory. Shared by the figure benches so the
// row schema cannot drift between BENCH_fig*.json files.
inline void RunExactSuite(Workload* w, const std::string& setting, std::size_t np,
                          JsonTrajectory* json) {
  ExactConfig grid_config = DefaultExactConfig(np);
  grid_config.discovery_backend = DiscoveryBackend::kGrid;
  ExactConfig batched_config = DefaultExactConfig(np);
  batched_config.discovery_backend = DiscoveryBackend::kGridBatched;
  const auto record = [&](const char* algo, const ExactResult& r) {
    ExactRow(setting, algo, r);
    json->AddExact(setting, algo, r);
  };
  record("RIA",
         ColdRun(w->db.get(), [&] { return SolveRia(w->problem, w->db.get(), DefaultExactConfig(np)); }));
  record("NIA",
         ColdRun(w->db.get(), [&] { return SolveNia(w->problem, w->db.get(), DefaultExactConfig(np)); }));
  record("IDA",
         ColdRun(w->db.get(), [&] { return SolveIda(w->problem, w->db.get(), DefaultExactConfig(np)); }));
  record("IDA-G",
         ColdRun(w->db.get(), [&] { return SolveIda(w->problem, w->db.get(), grid_config); }));
  // IDA-B: same memory-resident grid, but Hilbert groups share one
  // frontier — grid_cursor_cells records only first materialisations.
  record("IDA-B",
         ColdRun(w->db.get(), [&] { return SolveIda(w->problem, w->db.get(), batched_config); }));
}

}  // namespace cca::bench

#endif  // CCA_BENCH_BENCH_UTIL_H_
