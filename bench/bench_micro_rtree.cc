// Micro-benchmarks for the R-tree substrate (google-benchmark).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "rtree/nn_iterator.h"
#include "rtree/rtree.h"

namespace {

std::vector<cca::Point> MakePoints(std::size_t n) {
  cca::Rng rng(12345);
  std::vector<cca::Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(cca::Point{rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
  }
  return pts;
}

void BM_BulkLoad(benchmark::State& state) {
  const auto pts = MakePoints(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto tree = cca::RTree::BulkLoad(pts);
    benchmark::DoNotOptimize(tree->root());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BulkLoad)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DynamicInsert(benchmark::State& state) {
  const auto pts = MakePoints(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    cca::RTree tree;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      tree.Insert(pts[i], static_cast<std::uint32_t>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DynamicInsert)->Arg(1000)->Arg(10000);

void BM_RangeSearch(benchmark::State& state) {
  const auto pts = MakePoints(100000);
  auto tree = cca::RTree::BulkLoad(pts);
  tree->buffer().SetCapacity(tree->page_count() + 1);
  const double radius = static_cast<double>(state.range(0));
  cca::Rng rng(7);
  std::vector<cca::RTree::Hit> hits;
  for (auto _ : state) {
    const cca::Point c{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    tree->RangeSearch(c, radius, &hits);
    benchmark::DoNotOptimize(hits.size());
  }
}
BENCHMARK(BM_RangeSearch)->Arg(5)->Arg(50)->Arg(200);

void BM_KnnSearch(benchmark::State& state) {
  const auto pts = MakePoints(100000);
  auto tree = cca::RTree::BulkLoad(pts);
  tree->buffer().SetCapacity(tree->page_count() + 1);
  const auto k = static_cast<std::size_t>(state.range(0));
  cca::Rng rng(8);
  std::vector<cca::RTree::Hit> hits;
  for (auto _ : state) {
    const cca::Point c{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    tree->KnnSearch(c, k, &hits);
    benchmark::DoNotOptimize(hits.size());
  }
}
BENCHMARK(BM_KnnSearch)->Arg(1)->Arg(10)->Arg(100);

void BM_IncrementalNnStream(benchmark::State& state) {
  const auto pts = MakePoints(100000);
  auto tree = cca::RTree::BulkLoad(pts);
  tree->buffer().SetCapacity(tree->page_count() + 1);
  const auto advances = static_cast<std::size_t>(state.range(0));
  cca::Rng rng(9);
  for (auto _ : state) {
    cca::NnIterator it(tree.get(), {rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
    for (std::size_t i = 0; i < advances; ++i) benchmark::DoNotOptimize(it.Next());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(advances));
}
BENCHMARK(BM_IncrementalNnStream)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
