// Ablation study (ours, not a paper figure): isolates the contribution of
// each optimisation the paper proposes --
//   * PUA (Section 3.4.1): Dijkstra state reuse across edge insertions,
//   * grouped ANN search (Section 3.4.2): shared R-tree traversal,
//   * IDA's full-provider distance lift (Section 3.3): key lifting,
//   * RIA's theta: range-increment sensitivity (paper tunes it to 0.8).
#include "bench_util.h"

int main() {
  using namespace cca;
  using namespace cca::bench;

  const std::size_t nq = Scaled(1000);
  const std::size_t np = Scaled(100000);
  const int k = 80;
  Banner("Ablation", "contribution of PUA, ANN grouping, IDA distance lift, RIA theta",
         "each switch off should cost time and/or subgraph size, never optimality");
  std::printf("|Q|=%zu |P|=%zu k=%d\n\n", nq, np, k);

  Workload w = BuildWorkload(nq, np, k, 20001);
  ExactHeader();

  {
    ExactConfig config;
    ExactRow("default", "IDA",
             ColdRun(w.db.get(), [&] { return SolveIda(w.problem, w.db.get(), config); }));
  }
  {
    ExactConfig config;
    config.use_pua = false;
    ExactRow("-PUA", "IDA",
             ColdRun(w.db.get(), [&] { return SolveIda(w.problem, w.db.get(), config); }));
  }
  {
    ExactConfig config;
    config.use_ann_grouping = false;
    ExactRow("-ANN", "IDA",
             ColdRun(w.db.get(), [&] { return SolveIda(w.problem, w.db.get(), config); }));
  }
  {
    ExactConfig config;
    config.ida_distance_lift = false;
    ExactRow("-lift", "IDA",
             ColdRun(w.db.get(), [&] { return SolveIda(w.problem, w.db.get(), config); }));
  }
  {
    ExactConfig config;
    ExactRow("default", "NIA",
             ColdRun(w.db.get(), [&] { return SolveNia(w.problem, w.db.get(), config); }));
  }
  {
    ExactConfig config;
    config.use_pua = false;
    ExactRow("-PUA", "NIA",
             ColdRun(w.db.get(), [&] { return SolveNia(w.problem, w.db.get(), config); }));
  }
  std::printf("\nRIA theta sensitivity (paper fine-tunes theta to 0.8):\n");
  for (const double theta : {0.4, 0.8, 1.6, 3.2, 12.8}) {
    ExactConfig config;
    config.theta = theta;
    char label[32];
    std::snprintf(label, sizeof(label), "theta=%.1f", theta);
    ExactRow(label, "RIA",
             ColdRun(w.db.get(), [&] { return SolveRia(w.problem, w.db.get(), config); }));
  }
  return 0;
}
