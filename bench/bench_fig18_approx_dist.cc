// Figure 18: approximate methods across the four distribution
// combinations (paper: defaults k=80, |Q|=1K, |P|=100K; delta_SA=40,
// delta_CA=10).
//
// Expected shape: CA is the fastest everywhere and the most accurate when
// Q and P share a distribution; for differently-distributed inputs both
// methods end up near-optimal.
#include "bench_util.h"

int main() {
  using namespace cca;
  using namespace cca::bench;

  const std::size_t nq = Scaled(1000);
  const std::size_t np = Scaled(100000);
  const int k = 80;
  Banner("Figure 18", "approximation quality & time across distributions",
         "CA fastest everywhere; both near-optimal for differing Q/P distributions");
  std::printf("|Q|=%zu |P|=%zu k=%d delta: SA=40 CA=10\n\n", nq, np, k);
  ApproxHeader();

  const struct {
    const char* label;
    PointDistribution q;
    PointDistribution p;
  } combos[] = {
      {"UvsU", PointDistribution::kUniform, PointDistribution::kUniform},
      {"UvsC", PointDistribution::kUniform, PointDistribution::kClustered},
      {"CvsU", PointDistribution::kClustered, PointDistribution::kUniform},
      {"CvsC", PointDistribution::kClustered, PointDistribution::kClustered},
  };
  std::uint64_t seed = 18000;
  for (const auto& combo : combos) {
    Workload w = BuildWorkload(nq, np, combo.q, combo.p, FixedCapacities(nq, k), ++seed);
    const ExactResult ida =
        ColdRun(w.db.get(), [&] { return SolveIda(w.problem, w.db.get(), DefaultExactConfig(np)); });
    const double optimal = ida.matching.cost();

    for (const auto& [label, refine] :
         {std::pair{"SAN", RefineMode::kNearestNeighbor},
          std::pair{"SAE", RefineMode::kExclusiveNearestNeighbor}}) {
      ApproxConfig config;
      config.delta = 40.0;
      config.refine = refine;
      ApproxRow(combo.label, label,
                ColdRun(w.db.get(), [&] { return SolveSa(w.problem, w.db.get(), config); }),
                optimal);
    }
    for (const auto& [label, refine] :
         {std::pair{"CAN", RefineMode::kNearestNeighbor},
          std::pair{"CAE", RefineMode::kExclusiveNearestNeighbor}}) {
      ApproxConfig config;
      config.delta = 10.0;
      config.refine = refine;
      ApproxRow(combo.label, label,
                ColdRun(w.db.get(), [&] { return SolveCa(w.problem, w.db.get(), config); }),
                optimal);
    }
  }
  return 0;
}
