// Figure 12: mixed provider capacities drawn from ranges 10~30 .. 160~480
// (paper: |Q|=1K, |P|=100K).
//
// Expected shape: same trends as the fixed-k experiment (Figure 9) --
// heterogeneous capacities do not hurt the pruning techniques.
#include "bench_util.h"

int main() {
  using namespace cca;
  using namespace cca::bench;

  const std::size_t nq = Scaled(1000);
  const std::size_t np = Scaled(100000);
  Banner("Figure 12", "performance for mixed capacities k ~ U[lo, hi]",
         "matches the fixed-k trends of Figure 9");
  std::printf("|Q|=%zu |P|=%zu\n\n", nq, np);
  ExactHeader();

  Workload w = BuildWorkload(nq, np, 80, 12001);
  const std::pair<int, int> ranges[] = {{10, 30}, {20, 60}, {40, 120}, {80, 240}, {160, 480}};
  for (const auto& [lo, hi] : ranges) {
    SetCapacities(&w, MixedCapacities(nq, lo, hi, 1200 + static_cast<std::uint64_t>(lo)));
    const std::string setting = std::to_string(lo) + "~" + std::to_string(hi);
    ExactRow(setting, "RIA",
             ColdRun(w.db.get(), [&] { return SolveRia(w.problem, w.db.get(), DefaultExactConfig(np)); }));
    ExactRow(setting, "NIA",
             ColdRun(w.db.get(), [&] { return SolveNia(w.problem, w.db.get(), DefaultExactConfig(np)); }));
    ExactRow(setting, "IDA",
             ColdRun(w.db.get(), [&] { return SolveIda(w.problem, w.db.get(), DefaultExactConfig(np)); }));
  }
  return 0;
}
