// QPS/latency benchmark for the concurrent query engine (src/runtime).
//
// Drives a mixed workload — IDA/NIA/RIA/SSPA over the grid backends plus an
// R-tree-grouped slice — through QueryRunner at increasing thread counts,
// all over one SharedIndex. Each thread count reruns the *same* batch, and
// every multi-threaded outcome is checked bit-identical (cost, pops,
// augmentations, relaxes) against the 1-thread run: concurrency must buy
// throughput only, never different answers. Page faults are exempt on the
// R-tree slice — the shared LRU sees a different interleaving — which is
// the one documented concurrency-visible counter (src/core/README.md).
//
// Prints a table and writes BENCH_qps.json: one row per (workload shape,
// thread count) with reported timing (qps, p50/p99/p999 latency from the
// log-scale Histogram — never gated) and gated deterministic columns
// (cost, pops, relaxes, esub, aug). Speedup over 1 thread is reported but
// not enforced here: CI containers pin few cores, so the scaling claim is
// checked where cores exist.
//
//   bench_engine_qps [--out BENCH_qps.json] [--max-np N] [--threads CSV]
//                    [--trace-out FILE]   (tracing-enabled builds only)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/timer.h"
#include "common/trace.h"
#include "gen/generator.h"
#include "runtime/query_runner.h"

namespace {

struct Shape {
  std::size_t nq, np, queries;
  std::int32_t k;
};

// One mixed batch: `queries` provider fleets (distinct seeds) over the
// shared customer set, rotating through the engine's solver x backend mix;
// 1/8 of the queries exercise the paged R-tree path.
std::vector<cca::QuerySpec> MakeBatch(const cca::RoadNetwork& net,
                                      const std::vector<cca::Point>& customers, const Shape& s) {
  std::vector<cca::QuerySpec> batch;
  batch.reserve(s.queries);
  for (std::size_t i = 0; i < s.queries; ++i) {
    cca::DatasetSpec q_spec;
    q_spec.count = s.nq;
    q_spec.seed = 1000 + i;
    q_spec.distribution = cca::PointDistribution::kUniform;
    const std::vector<cca::Point> positions = cca::GeneratePoints(net, q_spec);

    cca::QuerySpec spec;
    spec.problem.customers = customers;
    spec.problem.providers.reserve(s.nq);
    for (const cca::Point& pos : positions) {
      spec.problem.providers.push_back(cca::Provider{pos, s.k});
    }
    switch (i % 8) {
      case 0:
      case 5:
        spec.solver = cca::QuerySolver::kIda;
        spec.exact.discovery_backend = cca::DiscoveryBackend::kGrid;
        break;
      case 1:
        spec.solver = cca::QuerySolver::kIda;
        spec.exact.discovery_backend = cca::DiscoveryBackend::kGridBatched;
        break;
      case 2:
        spec.solver = cca::QuerySolver::kNia;
        spec.exact.discovery_backend = cca::DiscoveryBackend::kGrid;
        break;
      case 3:
      case 6:
        spec.solver = cca::QuerySolver::kSspa;
        break;
      case 4:
        spec.solver = cca::QuerySolver::kRia;
        spec.exact.discovery_backend = cca::DiscoveryBackend::kGrid;
        break;
      default:  // 7: the paged path
        spec.solver = cca::QuerySolver::kIda;
        spec.exact.discovery_backend = cca::DiscoveryBackend::kRTreeGrouped;
        break;
    }
    batch.push_back(std::move(spec));
  }
  return batch;
}

bool UsesRTree(const cca::QuerySpec& spec) {
  return spec.solver != cca::QuerySolver::kSspa &&
         (spec.exact.discovery_backend == cca::DiscoveryBackend::kRTreePlain ||
          spec.exact.discovery_backend == cca::DiscoveryBackend::kRTreeGrouped ||
          spec.exact.discovery_backend == cca::DiscoveryBackend::kAuto);
}

struct Row {
  Shape shape;
  std::size_t threads;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double mean_ms = 0.0;
  double speedup = 1.0;
  double cost = 0.0;  // summed over the batch
  cca::Metrics totals;
};

// Bit-identical check of a multi-threaded run against the serial outcomes.
bool SameAnswers(const std::vector<cca::QuerySpec>& batch,
                 const std::vector<cca::QueryOutcome>& serial,
                 const std::vector<cca::QueryOutcome>& parallel, std::size_t threads) {
  bool ok = true;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const cca::Metrics& a = serial[i].metrics;
    const cca::Metrics& b = parallel[i].metrics;
    if (serial[i].matching.cost() != parallel[i].matching.cost() ||
        a.dijkstra_pops != b.dijkstra_pops || a.augmentations != b.augmentations ||
        a.dijkstra_relaxes != b.dijkstra_relaxes || a.edges_inserted != b.edges_inserted) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION query=%zu threads=%zu: cost %.17g vs %.17g, "
                   "pops %llu vs %llu, aug %llu vs %llu, relaxes %llu vs %llu\n",
                   i, threads, serial[i].matching.cost(), parallel[i].matching.cost(),
                   static_cast<unsigned long long>(a.dijkstra_pops),
                   static_cast<unsigned long long>(b.dijkstra_pops),
                   static_cast<unsigned long long>(a.augmentations),
                   static_cast<unsigned long long>(b.augmentations),
                   static_cast<unsigned long long>(a.dijkstra_relaxes),
                   static_cast<unsigned long long>(b.dijkstra_relaxes));
      ok = false;
    }
    // Grid-only queries never touch the shared LRU, so even their fault
    // and node-access ledgers must match exactly.
    if (!UsesRTree(batch[i]) && (a.page_faults != b.page_faults ||
                                 a.index_node_accesses != b.index_node_accesses)) {
      std::fprintf(stderr, "GRID LEDGER VIOLATION query=%zu threads=%zu\n", i, threads);
      ok = false;
    }
  }
  return ok;
}

void PrintRow(const Row& r) {
  std::printf("%6zu %8zu %8zu %8zu %10.1f %8.1f %9.2f %9.2f %8.2fx %14.1f\n", r.shape.nq,
              r.shape.np, r.shape.queries, r.threads, r.wall_ms, r.qps, r.p50_ms, r.p99_ms,
              r.speedup, r.cost);
  std::fflush(stdout);
}

void WriteJson(const std::vector<Row>& rows, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const cca::Metrics& m = r.totals;
    std::fprintf(f,
                 "  {\"workload\": \"mixed\", \"n_q\": %zu, \"n_p\": %zu, \"queries\": %zu, "
                 "\"k\": %d, \"threads\": %zu, "
                 "\"qps\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"p999_ms\": %.3f, "
                 "\"mean_ms\": %.3f, \"wall_ms\": %.1f, "
                 "\"speedup\": %.2f, \"cost\": %.3f, "
                 "\"pops\": %llu, \"relaxes\": %llu, \"esub\": %llu, "
                 "\"augmentations\": %llu, \"index_node_accesses\": %llu}%s\n",
                 r.shape.nq, r.shape.np, r.shape.queries, r.shape.k, r.threads, r.qps, r.p50_ms,
                 r.p99_ms, r.p999_ms, r.mean_ms, r.wall_ms, r.speedup, r.cost,
                 static_cast<unsigned long long>(m.dijkstra_pops),
                 static_cast<unsigned long long>(m.dijkstra_relaxes),
                 static_cast<unsigned long long>(m.edges_inserted),
                 static_cast<unsigned long long>(m.augmentations),
                 static_cast<unsigned long long>(m.index_node_accesses),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %zu rows to %s\n", rows.size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_qps.json";
  std::string trace_path;
  std::size_t max_np = 10000;
  std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--out") {
      out_path = next();
    } else if (flag == "--trace-out") {
      trace_path = next();
      if (!cca::trace::kCompiledIn) {
        // Flags a run would silently ignore are hard errors (repo rule).
        std::fprintf(stderr,
                     "--trace-out requires a tracing-enabled build "
                     "(-DCCA_ENABLE_TRACING=ON)\n");
        return 2;
      }
    } else if (flag == "--max-np") {
      max_np = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--threads") {
      thread_counts.clear();
      for (const char* tok = std::strtok(const_cast<char*>(next()), ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        thread_counts.push_back(static_cast<std::size_t>(std::atoll(tok)));
      }
      if (thread_counts.empty() || thread_counts[0] != 1) {
        std::fprintf(stderr, "--threads list must start with 1 (the determinism baseline)\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_engine_qps [--out FILE] [--max-np N] [--threads CSV] "
                   "[--trace-out FILE]\n");
      return 2;
    }
  }
  if (!trace_path.empty()) cca::trace::Start();

  const Shape shapes[] = {
      {100, 2000, 12, 40},
      {100, 10000, 48, 40},
  };

  cca::RoadNetwork net = cca::DefaultNetwork(99);
  std::printf("%6s %8s %8s %8s %10s %8s %9s %9s %9s %14s\n", "nq", "np", "queries", "threads",
              "wall_ms", "qps", "p50_ms", "p99_ms", "speedup", "cost");

  std::vector<Row> rows;
  for (const Shape& s : shapes) {
    if (s.np > max_np) continue;
    cca::DatasetSpec p_spec;
    p_spec.count = s.np;
    p_spec.seed = 6;
    p_spec.distribution = cca::PointDistribution::kUniform;
    const std::vector<cca::Point> customers = cca::GeneratePoints(net, p_spec);

    cca::SharedIndex index(customers);
    const std::vector<cca::QuerySpec> batch = MakeBatch(net, customers, s);

    std::vector<cca::QueryOutcome> serial;
    double serial_wall = 0.0;
    for (const std::size_t t : thread_counts) {
      cca::QueryRunner runner(&index, t);
      runner.Run(batch);  // warmup: page the tree in, fault the pool warm
      cca::Timer timer;
      const std::vector<cca::QueryOutcome> outcomes = runner.Run(batch);
      const double wall = timer.ElapsedMillis();

      if (t == 1) {
        serial = outcomes;
        serial_wall = wall;
      } else if (!SameAnswers(batch, serial, outcomes, t)) {
        return 1;
      }

      Row row;
      row.shape = s;
      row.threads = t;
      row.wall_ms = wall;
      row.qps = wall > 0.0 ? 1000.0 * static_cast<double>(outcomes.size()) / wall : 0.0;
      cca::Histogram lat;
      for (const auto& o : outcomes) {
        lat.Record(o.latency_millis);
        row.cost += o.matching.cost();
      }
      row.p50_ms = lat.Percentile(0.50);
      row.p99_ms = lat.Percentile(0.99);
      row.p999_ms = lat.Percentile(0.999);
      row.mean_ms = lat.Mean();
      row.speedup = wall > 0.0 ? serial_wall / wall : 0.0;
      row.totals = cca::QueryRunner::Aggregate(outcomes);
      rows.push_back(row);
      PrintRow(row);
    }
  }
  WriteJson(rows, out_path);
  if (!trace_path.empty()) {
    cca::trace::Stop();
    if (!cca::trace::WriteJson(trace_path)) {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("wrote trace to %s\n", trace_path.c_str());
  }
  return 0;
}
