// Figure 9: subgraph size |Esub| and total (CPU + I/O) time vs. capacity k
// at the default cardinalities (paper: |Q|=1K, |P|=100K, k in 20..320).
// One dataset, capacities varied -- exactly the paper's setup.
//
// Expected shape: |Esub| is a small fraction of FULL = |Q|*|P|; IDA
// explores the fewest edges while k*|Q| < |P| and converges to NIA/RIA
// once capacity is abundant; total times rise with k; IDA <= NIA <= RIA.
#include "bench_util.h"

int main() {
  using namespace cca;
  using namespace cca::bench;

  const std::size_t nq = Scaled(1000);
  const std::size_t np = Scaled(100000);
  Banner("Figure 9", "|Esub| and time vs capacity k (default cardinalities)",
         "|Esub| << FULL; IDA smallest subgraph for k*|Q| < |P|; IDA fastest");
  std::printf("|Q|=%zu |P|=%zu FULL=%zu edges\n\n", nq, np, nq * np);
  ExactHeader();

  Workload w = BuildWorkload(nq, np, 80, 9001);
  const ExactConfig config = DefaultExactConfig(np);
  for (const int k : {20, 40, 80, 160, 320}) {
    SetCapacities(&w, FixedCapacities(nq, k));
    const std::string setting = "k=" + std::to_string(k);
    ExactRow(setting, "RIA",
             ColdRun(w.db.get(), [&] { return SolveRia(w.problem, w.db.get(), config); }));
    ExactRow(setting, "NIA",
             ColdRun(w.db.get(), [&] { return SolveNia(w.problem, w.db.get(), config); }));
    ExactRow(setting, "IDA",
             ColdRun(w.db.get(), [&] { return SolveIda(w.problem, w.db.get(), config); }));
  }
  return 0;
}
