// Figure 11: performance vs. customer cardinality |P| (paper: 25K..200K,
// k=80, |Q|=1K).
//
// Expected shape: the complete graph grows with |P| but the explored
// subgraph *shrinks* (denser customers => closer NNs => easier problem),
// modulo an R-tree height step at the top end.
//
// Like bench_fig10, also runs IDA on the grid discovery backend ("IDA-G")
// and writes the full metric trajectory to BENCH_fig11.json.
#include "bench_util.h"

int main() {
  using namespace cca;
  using namespace cca::bench;

  const std::size_t nq = Scaled(1000);
  const int k = 80;
  Banner("Figure 11", "|Esub| and time vs customer cardinality |P| (k=80)",
         "explored subgraph shrinks as |P| grows; IDA's lead widens");
  std::printf("|Q|=%zu k=%d\n\n", nq, k);
  ExactHeader();

  JsonTrajectory json("BENCH_fig11.json");
  for (const std::size_t paper_np : {25000u, 50000u, 100000u, 150000u, 200000u}) {
    const std::size_t np = Scaled(paper_np);
    Workload w = BuildWorkload(nq, np, k, 11000 + paper_np / 1000);
    RunExactSuite(&w, "|P|=" + std::to_string(np), np, &json);
  }
  json.Write();
  return 0;
}
