// Baseline comparison (ours, extending the paper's related-work
// discussion): optimal IDA vs
//   * greedy spatial matching (SM join [12, 14]) -- fast but suboptimal,
//   * the Hungarian algorithm on the capacity-expanded matrix [8, 11] --
//     optimal but scales with sum(k) * |P| matrix cells,
//   * the exact refinement variants of SA/CA ("SAX"/"CAX", the expensive
//     alternative the paper mentions in Section 4.3).
#include "bench_util.h"
#include "core/greedy.h"
#include "flow/hungarian.h"

int main() {
  using namespace cca;
  using namespace cca::bench;

  const std::size_t nq = Scaled(1000);
  const std::size_t np = Scaled(100000);
  const int k = 80;
  Banner("Baselines", "IDA vs greedy SM join vs Hungarian vs exact-refined SA/CA",
         "greedy is fastest but suboptimal; Hungarian optimal but matrix-bound; "
         "SAX/CAX close most of the heuristic refinement gap");
  std::printf("|Q|=%zu |P|=%zu k=%d\n\n", nq, np, k);

  Workload w = BuildWorkload(nq, np, k, 21001);

  const ExactResult ida =
      ColdRun(w.db.get(), [&] { return SolveIda(w.problem, w.db.get(), DefaultExactConfig(np)); });
  const double optimal = ida.matching.cost();
  std::printf("%-10s quality %8.4f  cpu %8.2fs  io %8.2fs\n", "IDA", 1.0,
              ida.metrics.cpu_millis / 1000.0, ida.metrics.io_millis() / 1000.0);

  const ExactResult greedy = ColdRun(
      w.db.get(), [&] { return SolveGreedySm(w.problem, w.db.get(), DefaultExactConfig(np)); });
  std::printf("%-10s quality %8.4f  cpu %8.2fs  io %8.2fs\n", "GreedySM",
              greedy.matching.cost() / optimal, greedy.metrics.cpu_millis / 1000.0,
              greedy.metrics.io_millis() / 1000.0);

  // Hungarian runs on the expanded matrix: quadratic row scans make it the
  // slow-but-optimal yardstick (kept to a sub-sampled instance when the
  // expansion would exceed ~2e8 cells).
  {
    const std::uint64_t cells =
        static_cast<std::uint64_t>(w.problem.TotalCapacity()) * w.problem.customers.size();
    if (cells <= 200000000ull) {
      const HungarianResult hungarian = SolveHungarian(w.problem);
      std::printf("%-10s quality %8.4f  cpu %8.2fs  (matrix %llu cells)\n", "Hungarian",
                  hungarian.matching.cost() / optimal, hungarian.metrics.cpu_millis / 1000.0,
                  static_cast<unsigned long long>(hungarian.matrix_cells));
    } else {
      std::printf("%-10s skipped: expanded matrix would need %llu cells\n", "Hungarian",
                  static_cast<unsigned long long>(cells));
    }
  }

  // Exact-refined approximations.
  for (const auto& [label, solver, delta] :
       {std::tuple{"SAX", &SolveSa, 40.0}, std::tuple{"CAX", &SolveCa, 10.0}}) {
    ApproxConfig config;
    config.delta = delta;
    config.refine = RefineMode::kExact;
    const ApproxResult r =
        ColdRun(w.db.get(), [&] { return (*solver)(w.problem, w.db.get(), config); });
    std::printf("%-10s quality %8.4f  cpu %8.2fs  io %8.2fs  (groups %zu)\n", label,
                r.matching.cost() / optimal, r.metrics.cpu_millis / 1000.0,
                r.metrics.io_millis() / 1000.0, r.num_groups);
  }
  // Heuristic-refined counterparts for context.
  for (const auto& [label, solver, delta] :
       {std::tuple{"SAN", &SolveSa, 40.0}, std::tuple{"CAN", &SolveCa, 10.0}}) {
    ApproxConfig config;
    config.delta = delta;
    config.refine = RefineMode::kNearestNeighbor;
    const ApproxResult r =
        ColdRun(w.db.get(), [&] { return (*solver)(w.problem, w.db.get(), config); });
    std::printf("%-10s quality %8.4f  cpu %8.2fs  io %8.2fs  (groups %zu)\n", label,
                r.matching.cost() / optimal, r.metrics.cpu_millis / 1000.0,
                r.metrics.io_millis() / 1000.0, r.num_groups);
  }
  return 0;
}
