// Figure 14: approximation quality and running time vs. the group-diagonal
// parameter delta (paper: delta in 10..160, defaults k=80, |Q|=1K,
// |P|=100K). Variants: SA / CA, each with NN ("N") and exclusive-NN ("E")
// refinement, against exact IDA.
//
// Expected shape: quality error and cost both drop as delta shrinks; CA
// dominates SA except at tiny delta where SA approaches IDA's cost; CA at
// delta=10 is near-optimal and far cheaper than IDA.
#include "bench_util.h"

int main() {
  using namespace cca;
  using namespace cca::bench;

  const std::size_t nq = Scaled(1000);
  const std::size_t np = Scaled(100000);
  const int k = 80;
  Banner("Figure 14", "approximation quality & time vs delta",
         "quality ratio and cost drop with delta; CA beats SA except tiny delta");
  std::printf("|Q|=%zu |P|=%zu k=%d\n\n", nq, np, k);

  Workload w = BuildWorkload(nq, np, k, 14001);
  const ExactResult ida =
      ColdRun(w.db.get(), [&] { return SolveIda(w.problem, w.db.get(), DefaultExactConfig(np)); });
  const double optimal = ida.matching.cost();
  std::printf("IDA reference: cost=%.0f cpu=%.2fs io=%.2fs total=%.2fs\n\n", optimal,
              ida.metrics.cpu_millis / 1000.0, ida.metrics.io_millis() / 1000.0,
              ida.metrics.total_millis() / 1000.0);
  ApproxHeader();

  for (const double delta : {10.0, 20.0, 40.0, 80.0, 160.0}) {
    const std::string setting = "d=" + std::to_string(static_cast<int>(delta));
    for (const auto& [label, refine] :
         {std::pair{"SAN", RefineMode::kNearestNeighbor},
          std::pair{"SAE", RefineMode::kExclusiveNearestNeighbor}}) {
      ApproxConfig config;
      config.delta = delta;
      config.refine = refine;
      ApproxRow(setting, label,
                ColdRun(w.db.get(), [&] { return SolveSa(w.problem, w.db.get(), config); }),
                optimal);
    }
    for (const auto& [label, refine] :
         {std::pair{"CAN", RefineMode::kNearestNeighbor},
          std::pair{"CAE", RefineMode::kExclusiveNearestNeighbor}}) {
      ApproxConfig config;
      config.delta = delta;
      config.refine = refine;
      ApproxRow(setting, label,
                ColdRun(w.db.get(), [&] { return SolveCa(w.problem, w.db.get(), config); }),
                optimal);
    }
  }
  return 0;
}
