// School districting scenario (paper Section 1: assign children to schools
// of fixed capacity minimising total travel distance).
//
// The district is large, so we use the approximate CA solver and sweep its
// delta knob to show the accuracy/runtime trade-off against exact IDA,
// verifying Theorem 4's error bound along the way.
//
// Build & run:  ./build/examples/school_districting
#include <cstdio>

#include "core/approx.h"
#include "core/customer_db.h"
#include "core/exact.h"
#include "gen/generator.h"

int main() {
  using namespace cca;

  // One town: schools sit inside the residential clusters children live in.
  const RoadNetwork network = DefaultNetwork(21);
  DatasetSpec school_spec;
  school_spec.count = 30;
  school_spec.distribution = PointDistribution::kClustered;
  school_spec.seed = 211;
  school_spec.cluster_seed = 5150;
  DatasetSpec child_spec;
  child_spec.count = 6000;
  child_spec.distribution = PointDistribution::kClustered;
  child_spec.seed = 212;
  child_spec.cluster_seed = 5150;  // same neighbourhoods
  const Problem problem =
      MakeProblem(network, school_spec, child_spec, FixedCapacities(school_spec.count, 220));

  CustomerDb db(problem.customers);
  std::printf("district: %zu schools x 220 seats, %zu children (gamma = %lld)\n\n",
              problem.providers.size(), problem.customers.size(),
              static_cast<long long>(problem.Gamma()));

  // Exact reference.
  db.CoolDown();
  const ExactResult exact = SolveIda(problem, &db, ExactConfig{});
  std::printf("exact IDA:      Psi = %12.1f   cpu %7.0f ms   io %8.0f ms\n",
              exact.matching.cost(), exact.metrics.cpu_millis, exact.metrics.io_millis());

  // CA at decreasing granularity. Theorem 4: Psi(CA) <= Psi* + gamma*delta.
  for (const double delta : {5.0, 20.0, 80.0}) {
    ApproxConfig config;
    config.delta = delta;
    config.refine = RefineMode::kNearestNeighbor;
    db.CoolDown();
    const ApproxResult ca = SolveCa(problem, &db, config);
    const double bound = exact.matching.cost() + CaErrorBound(problem.Gamma(), delta);
    std::printf(
        "CA delta=%-5.0f  Psi = %12.1f   cpu %7.0f ms   io %8.0f ms   "
        "quality %.4f   groups %4zu   bound ok: %s\n",
        delta, ca.matching.cost(), ca.metrics.cpu_millis, ca.metrics.io_millis(),
        ca.matching.cost() / exact.matching.cost(), ca.num_groups,
        ca.matching.cost() <= bound + 1e-6 ? "yes" : "NO");
  }

  // Walking-distance report for the exact assignment.
  const auto loads = exact.matching.ProviderLoads(problem.providers.size());
  double worst = 0.0;
  for (const auto& pair : exact.matching.pairs) worst = std::max(worst, pair.distance);
  std::printf("\nper-school enrolment (exact): ");
  for (std::size_t i = 0; i < loads.size(); ++i) {
    std::printf("%lld%s", static_cast<long long>(loads[i]), i + 1 < loads.size() ? " " : "\n");
  }
  std::printf("mean walk %.1f, worst walk %.1f (map units)\n",
              exact.matching.cost() / static_cast<double>(exact.matching.size()), worst);
  return 0;
}
