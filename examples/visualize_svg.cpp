// Renders a CCA instance and its optimal assignment as an SVG file.
//
// Produces `cca_assignment.svg` in the working directory: road network in
// grey, customers coloured by their assigned provider, assignment edges as
// thin lines, providers as labelled squares sized by capacity. Handy for
// eyeballing how capacity constraints bend the Voronoi-like regions the
// paper's Figure 1 illustrates.
//
// Build & run:  ./build/examples/visualize_svg [output.svg]
#include <cstdio>
#include <string>
#include <vector>

#include "core/customer_db.h"
#include "core/exact.h"
#include "gen/generator.h"

namespace {

const char* kPalette[] = {"#e6194b", "#3cb44b", "#4363d8", "#f58231", "#911eb4",
                          "#46f0f0", "#f032e6", "#bcf60c", "#008080", "#9a6324",
                          "#800000", "#808000", "#000075", "#fabebe", "#e6beff"};

std::string Color(int provider) {
  return kPalette[static_cast<std::size_t>(provider) %
                  (sizeof(kPalette) / sizeof(kPalette[0]))];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cca;
  const std::string path = argc > 1 ? argv[1] : "cca_assignment.svg";

  const RoadNetwork network = DefaultNetwork(11);
  DatasetSpec q_spec;
  q_spec.count = 9;
  q_spec.distribution = PointDistribution::kUniform;
  q_spec.seed = 91;
  DatasetSpec p_spec;
  p_spec.count = 700;
  p_spec.distribution = PointDistribution::kClustered;
  p_spec.seed = 92;
  const Problem problem =
      MakeProblem(network, q_spec, p_spec, MixedCapacities(q_spec.count, 40, 120, 93));

  CustomerDb db(problem.customers);
  const ExactResult result = SolveIda(problem, &db, ExactConfig{});

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "<svg xmlns='http://www.w3.org/2000/svg' viewBox='-20 -20 1040 1040' "
               "width='780' height='780'>\n"
               "<rect x='-20' y='-20' width='1040' height='1040' fill='#fbfbf8'/>\n");
  // Road network.
  for (const auto& e : network.edges) {
    const Point a = network.junctions[static_cast<std::size_t>(e.a)];
    const Point b = network.junctions[static_cast<std::size_t>(e.b)];
    std::fprintf(f,
                 "<line x1='%.1f' y1='%.1f' x2='%.1f' y2='%.1f' stroke='#d8d8d0' "
                 "stroke-width='1.2'/>\n",
                 a.x, a.y, b.x, b.y);
  }
  // Assignment edges + customers (coloured by provider).
  for (const auto& pair : result.matching.pairs) {
    const Point q = problem.providers[static_cast<std::size_t>(pair.provider)].pos;
    const Point p = problem.customers[static_cast<std::size_t>(pair.customer)];
    std::fprintf(f,
                 "<line x1='%.1f' y1='%.1f' x2='%.1f' y2='%.1f' stroke='%s' "
                 "stroke-width='0.5' stroke-opacity='0.45'/>\n",
                 q.x, q.y, p.x, p.y, Color(pair.provider).c_str());
    std::fprintf(f, "<circle cx='%.1f' cy='%.1f' r='2.2' fill='%s'/>\n", p.x, p.y,
                 Color(pair.provider).c_str());
  }
  // Unassigned customers in grey.
  const auto loads = result.matching.CustomerLoads(problem.customers.size());
  for (std::size_t j = 0; j < loads.size(); ++j) {
    if (loads[j] == 0) {
      std::fprintf(f, "<circle cx='%.1f' cy='%.1f' r='2.2' fill='#999999'/>\n",
                   problem.customers[j].x, problem.customers[j].y);
    }
  }
  // Providers: squares scaled by capacity, labelled with load/capacity.
  const auto q_loads = result.matching.ProviderLoads(problem.providers.size());
  for (std::size_t i = 0; i < problem.providers.size(); ++i) {
    const Point q = problem.providers[i].pos;
    const double side = 8.0 + problem.providers[i].capacity * 0.06;
    std::fprintf(f,
                 "<rect x='%.1f' y='%.1f' width='%.1f' height='%.1f' fill='%s' "
                 "stroke='black' stroke-width='1.5'/>\n",
                 q.x - side / 2, q.y - side / 2, side, side, Color(static_cast<int>(i)).c_str());
    std::fprintf(f,
                 "<text x='%.1f' y='%.1f' font-size='16' font-family='sans-serif' "
                 "fill='#222'>q%zu %lld/%d</text>\n",
                 q.x + side / 2 + 3, q.y + 5, i + 1, static_cast<long long>(q_loads[i]),
                 problem.providers[i].capacity);
  }
  std::fprintf(f, "</svg>\n");
  std::fclose(f);

  std::printf("wrote %s: %zu providers, %zu customers, Psi(M) = %.1f, %lld assigned\n",
              path.c_str(), problem.providers.size(), problem.customers.size(),
              result.matching.cost(), static_cast<long long>(result.matching.size()));
  return 0;
}
