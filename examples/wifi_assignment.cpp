// WiFi provisioning scenario (the paper's Section 1 motivation).
//
// A city district has wireless access points with limited client slots and
// thousands of receivers clustered around hotspots. We compute the optimal
// assignment with all three exact algorithms, compare their work metrics,
// and report per-AP utilisation.
//
// Build & run:  ./build/examples/wifi_assignment
#include <cstdio>
#include <vector>

#include "core/customer_db.h"
#include "core/exact.h"
#include "gen/generator.h"

int main() {
  using namespace cca;

  // Synthesise the district: receivers cluster around 10 hotspots on the
  // road network; access points are spread uniformly (placed by coverage
  // planning, not by demand).
  const RoadNetwork network = DefaultNetwork(7);
  DatasetSpec ap_spec;
  ap_spec.count = 40;
  ap_spec.distribution = PointDistribution::kUniform;
  ap_spec.seed = 71;
  DatasetSpec rx_spec;
  rx_spec.count = 4000;
  rx_spec.distribution = PointDistribution::kClustered;
  rx_spec.seed = 72;
  const Problem problem =
      MakeProblem(network, ap_spec, rx_spec, FixedCapacities(ap_spec.count, 90));

  CustomerDb db(problem.customers);
  std::printf("WiFi district: %zu access points (90 slots each), %zu receivers\n",
              problem.providers.size(), problem.customers.size());
  std::printf("R-tree: %u pages, height %d, buffer %u pages\n\n", db.tree()->page_count(),
              db.tree()->height(), db.tree()->buffer().capacity());

  // All three exact algorithms compute the same optimal matching; they
  // differ in how much of the bipartite graph they must explore.
  struct Algo {
    const char* name;
    ExactResult (*solve)(const Problem&, CustomerDb*, const ExactConfig&);
  };
  const Algo algos[] = {{"RIA", SolveRia}, {"NIA", SolveNia}, {"IDA", SolveIda}};
  ExactConfig config;
  config.theta = 4.0;  // range increment tuned for this receiver density

  ExactResult best;
  std::printf("%-5s %12s %12s %10s %10s %12s\n", "algo", "|Esub|", "dijkstra", "cpu_ms",
              "io_ms", "cost");
  for (const Algo& algo : algos) {
    db.CoolDown();
    ExactResult r = algo.solve(problem, &db, config);
    std::printf("%-5s %12llu %12llu %10.1f %10.1f %12.1f\n", algo.name,
                static_cast<unsigned long long>(r.metrics.edges_inserted),
                static_cast<unsigned long long>(r.metrics.dijkstra_runs),
                r.metrics.cpu_millis, r.metrics.io_millis(), r.matching.cost());
    best = std::move(r);
  }

  // Utilisation report from the IDA run.
  const auto loads = best.matching.ProviderLoads(problem.providers.size());
  int full = 0, idle = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (loads[i] == problem.providers[i].capacity) ++full;
    if (loads[i] == 0) ++idle;
  }
  std::printf("\nutilisation: %d/%zu APs saturated, %d idle\n", full, loads.size(), idle);
  std::printf("served %lld of %zu receivers (capacity limit: %lld slots)\n",
              static_cast<long long>(best.matching.size()), problem.customers.size(),
              static_cast<long long>(problem.TotalCapacity()));
  std::printf("mean receiver-AP distance: %.2f\n",
              best.matching.cost() / static_cast<double>(best.matching.size()));
  return 0;
}
