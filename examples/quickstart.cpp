// Quickstart: the smallest end-to-end CCA program.
//
// Builds a toy instance (3 wireless access points, 12 receivers), indexes
// the receivers in the disk-based R-tree, computes the optimal capacity
// constrained assignment with IDA, and prints it.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/customer_db.h"
#include "core/exact.h"

int main() {
  using namespace cca;

  // Service providers (access points) with individual capacities: this is
  // the paper's Figure 1 scenario in miniature.
  Problem problem;
  problem.providers = {
      Provider{{200, 700}, 3},  // q1, k=3
      Provider{{500, 400}, 5},  // q2, k=5
      Provider{{800, 650}, 3},  // q3, k=3
  };
  // Customers (receivers). One more than total capacity, so one customer
  // must stay unassigned -- CCA maximises matching size first, then cost.
  problem.customers = {
      Point{150, 760}, Point{230, 640}, Point{300, 730}, Point{90, 380},
      Point{450, 460}, Point{520, 310}, Point{560, 450}, Point{470, 380},
      Point{620, 390}, Point{760, 700}, Point{850, 580}, Point{890, 690},
  };

  // Index the customers (1 KB pages, 1% LRU buffer -- the paper's setup).
  CustomerDb db(problem.customers);

  // Solve exactly with IDA, the paper's best algorithm.
  const ExactResult result = SolveIda(problem, &db, ExactConfig{});

  std::printf("capacity constrained assignment (gamma = %lld pairs)\n",
              static_cast<long long>(problem.Gamma()));
  std::printf("total cost Psi(M) = %.2f\n\n", result.matching.cost());
  for (const auto& pair : result.matching.pairs) {
    std::printf("  provider q%d <- customer p%-2d   (distance %6.2f)\n", pair.provider + 1,
                pair.customer + 1, pair.distance);
  }

  // Which customer was left out?
  const auto loads = result.matching.CustomerLoads(problem.customers.size());
  for (std::size_t j = 0; j < loads.size(); ++j) {
    if (loads[j] == 0) {
      std::printf("\ncustomer p%zu is unassigned (all providers are full)\n", j + 1);
    }
  }

  std::printf("\nsolver stats: %s\n", result.metrics.ToString().c_str());
  return 0;
}
