// Command-line driver: generate a workload, run any solver, print a
// machine-readable summary. Useful for scripting parameter studies beyond
// the canned benchmarks.
//
// Usage:
//   cca_cli [--solver ida|nia|ria|sspa|greedy|sa|ca] [--nq N] [--np N]
//           [--k N] [--delta D] [--theta T] [--dist-q u|c] [--dist-p u|c]
//           [--seed S] [--no-pua] [--no-ann] [--dense] [--no-cell-floors]
//           [--no-hierarchy] [--hier-split-threshold N]
//           [--backend auto|rtree|ann|grid|grid-batched]
//           [--threads N] [--repeat R] [--trace-out FILE]
//
// --repeat replicates the solve R times and --threads runs the replicas
// through the concurrent QueryRunner (src/runtime) over one shared index;
// per-solve metrics are unchanged (replicas are bit-identical) and
// throughput/latency lines are appended. sa/ca are per-call stateful over
// the approximation pipeline and are not routed through the runner.
//
// --dense switches SSPA to the literal every-customer relax scan (the
// grid-pruned relax is the default); use it for A/B comparisons.
// --no-cell-floors disables SSPA's per-cell tau floors and the fused
// early-reject distance kernel (SspaConfig::use_cell_floors), falling back
// to the legacy global-floor pruning — the second A/B axis.
// --no-hierarchy drops SSPA from the two-level hierarchical grid (the
// default, with --no-cell-floors off) to the flat grid — the third A/B
// axis; --hier-split-threshold N overrides the coarse-cell occupancy above
// which the hierarchy splits a cell into finer children (0 = auto). Both
// are SSPA-only (and meaningless without cell floors), so other solvers —
// and --no-cell-floors runs — reject them.
// --backend selects the candidate-discovery backend of the exact solvers:
// independent R-tree NN iterators, the grouped ANN traversal, grid ring
// cursors over the memory-resident customer array, or the batched shared
// frontier (grid-batched: Hilbert-grouped providers sharing one cell sweep
// per group). For --solver sspa, grid-batched serves the relax scans from
// the shared sweep too (SspaConfig::use_shared_frontier).
// --trace-out writes a Chrome trace (chrome://tracing / perfetto) of the
// solve's spans; it needs a tracing-enabled build (-DCCA_ENABLE_TRACING=ON)
// and hard-errors otherwise, per the no-silently-ignored-flags rule.
//
// Output: one `key=value` line per metric (easy to grep / parse).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/timer.h"
#include "common/trace.h"
#include "core/approx.h"
#include "core/customer_db.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "flow/sspa.h"
#include "gen/generator.h"
#include "runtime/query_runner.h"

namespace {

struct Args {
  std::string solver = "ida";
  std::size_t nq = 50;
  std::size_t np = 5000;
  int k = 80;
  double delta = 10.0;
  double theta = 3.6;
  bool clustered_q = true;
  bool clustered_p = true;
  std::uint64_t seed = 1;
  bool use_pua = true;
  bool use_ann = true;
  bool dense_sspa = false;
  bool cell_floors = true;
  bool hierarchy = true;
  bool hierarchy_flag_given = false;       // --no-hierarchy on the command line
  bool split_threshold_given = false;      // --hier-split-threshold on the command line
  std::size_t hier_split_threshold = 0;  // 0 = builder auto
  std::string backend = "auto";
  std::size_t threads = 1;
  std::size_t repeat = 1;
  std::string trace_out;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--solver") {
      args->solver = next();
    } else if (flag == "--nq") {
      const long long v = std::atoll(next());
      if (v < 1) {
        std::fprintf(stderr, "invalid instance: --nq must be >= 1 (got %lld)\n", v);
        return false;
      }
      args->nq = static_cast<std::size_t>(v);
    } else if (flag == "--np") {
      const long long v = std::atoll(next());
      if (v < 1) {
        std::fprintf(stderr, "invalid instance: --np must be >= 1 (got %lld)\n", v);
        return false;
      }
      args->np = static_cast<std::size_t>(v);
    } else if (flag == "--k") {
      args->k = std::atoi(next());
      if (args->k < 1) {
        std::fprintf(stderr, "invalid instance: --k must be >= 1 (got %d)\n", args->k);
        return false;
      }
    } else if (flag == "--delta") {
      args->delta = std::atof(next());
      if (!(args->delta > 0.0)) {
        std::fprintf(stderr, "invalid instance: --delta must be > 0 (got %g)\n", args->delta);
        return false;
      }
    } else if (flag == "--theta") {
      args->theta = std::atof(next());
      if (!(args->theta > 0.0)) {
        std::fprintf(stderr, "invalid instance: --theta must be > 0 (got %g)\n", args->theta);
        return false;
      }
    } else if (flag == "--dist-q") {
      args->clustered_q = std::strcmp(next(), "c") == 0;
    } else if (flag == "--dist-p") {
      args->clustered_p = std::strcmp(next(), "c") == 0;
    } else if (flag == "--seed") {
      args->seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (flag == "--no-pua") {
      args->use_pua = false;
    } else if (flag == "--no-ann") {
      args->use_ann = false;
    } else if (flag == "--dense") {
      args->dense_sspa = true;
    } else if (flag == "--no-cell-floors") {
      args->cell_floors = false;
    } else if (flag == "--no-hierarchy") {
      args->hierarchy = false;
      args->hierarchy_flag_given = true;
    } else if (flag == "--hier-split-threshold") {
      args->hier_split_threshold = static_cast<std::size_t>(std::atoll(next()));
      args->split_threshold_given = true;
    } else if (flag == "--backend") {
      args->backend = next();
    } else if (flag == "--threads") {
      const long long v = std::atoll(next());
      if (v < 1) {
        std::fprintf(stderr, "--threads must be >= 1 (got %lld)\n", v);
        return false;
      }
      args->threads = static_cast<std::size_t>(v);
    } else if (flag == "--repeat") {
      const long long v = std::atoll(next());
      if (v < 1) {
        std::fprintf(stderr, "--repeat must be >= 1 (got %lld)\n", v);
        return false;
      }
      args->repeat = static_cast<std::size_t>(v);
    } else if (flag == "--trace-out") {
      args->trace_out = next();
      if (!cca::trace::kCompiledIn) {
        std::fprintf(stderr,
                     "--trace-out requires a tracing-enabled build "
                     "(-DCCA_ENABLE_TRACING=ON)\n");
        return false;
      }
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cca;
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: cca_cli [--solver ida|nia|ria|sspa|greedy|sa|ca] [--nq N] [--np N]\n"
                 "               [--k N] [--delta D] [--theta T] [--dist-q u|c] [--dist-p u|c]\n"
                 "               [--seed S] [--no-pua] [--no-ann] [--dense] [--no-cell-floors]\n"
                 "               [--no-hierarchy] [--hier-split-threshold N]\n"
                 "               [--backend auto|rtree|ann|grid|grid-batched]\n"
                 "               [--threads N] [--repeat R] [--trace-out FILE]\n");
    return 2;
  }
  if (!args.trace_out.empty()) trace::Start();

  const RoadNetwork network = DefaultNetwork(42);
  DatasetSpec q_spec;
  q_spec.count = args.nq;
  q_spec.distribution =
      args.clustered_q ? PointDistribution::kClustered : PointDistribution::kUniform;
  q_spec.seed = args.seed * 2 + 1;
  DatasetSpec p_spec;
  p_spec.count = args.np;
  p_spec.distribution =
      args.clustered_p ? PointDistribution::kClustered : PointDistribution::kUniform;
  p_spec.seed = args.seed * 2 + 2;
  q_spec.cluster_seed = p_spec.cluster_seed = args.seed * 2 + 777;
  const Problem problem =
      MakeProblem(network, q_spec, p_spec, FixedCapacities(args.nq, args.k));

  CustomerDb::Options db_options;
  db_options.min_buffer_pages = 16;
  CustomerDb db(problem.customers, db_options);

  ExactConfig exact;
  exact.theta = args.theta;
  exact.use_pua = args.use_pua;
  exact.use_ann_grouping = args.use_ann;
  if (args.backend == "rtree") {
    exact.discovery_backend = DiscoveryBackend::kRTreePlain;
  } else if (args.backend == "ann") {
    exact.discovery_backend = DiscoveryBackend::kRTreeGrouped;
  } else if (args.backend == "grid") {
    exact.discovery_backend = DiscoveryBackend::kGrid;
  } else if (args.backend == "grid-batched") {
    exact.discovery_backend = DiscoveryBackend::kGridBatched;
  } else if (args.backend != "auto") {
    std::fprintf(stderr, "unknown backend '%s'\n", args.backend.c_str());
    return 2;
  }

  // The hierarchy flags only steer SSPA's relax grid (same pattern as the
  // --threads/--repeat solver check below: flags a run would silently
  // ignore are hard errors, not no-ops).
  if ((args.hierarchy_flag_given || args.split_threshold_given) && args.solver != "sspa") {
    std::fprintf(stderr, "--no-hierarchy/--hier-split-threshold support --solver sspa only\n");
    return 2;
  }
  if ((args.hierarchy_flag_given || args.split_threshold_given) && !args.cell_floors) {
    std::fprintf(stderr, "--no-hierarchy/--hier-split-threshold need cell floors: the "
                         "hierarchy aggregates them, so --no-cell-floors already disables it\n");
    return 2;
  }
  if (args.split_threshold_given && !args.hierarchy) {
    std::fprintf(stderr, "--hier-split-threshold is meaningless with --no-hierarchy\n");
    return 2;
  }

  SspaConfig sspa;
  if (args.solver == "sspa") {
    if (args.dense_sspa && args.backend == "grid-batched") {
      std::fprintf(stderr, "--dense and --backend grid-batched are mutually exclusive: "
                           "the dense scan never touches the grid\n");
      return 2;
    }
    sspa.use_grid = !args.dense_sspa;
    sspa.use_cell_floors = args.cell_floors;
    sspa.use_hierarchy = args.hierarchy;
    sspa.hier_split_threshold = args.hier_split_threshold;
    sspa.use_shared_frontier = args.backend == "grid-batched";
  }

  const bool runnable = args.solver == "ida" || args.solver == "nia" || args.solver == "ria" ||
                        args.solver == "greedy" || args.solver == "sspa";
  const bool use_runner = (args.threads > 1 || args.repeat > 1) && runnable;
  const std::size_t repeat = args.repeat;  // >= 1, enforced at parse time
  if ((args.threads > 1 || args.repeat > 1) && !use_runner &&
      (args.solver == "sa" || args.solver == "ca")) {
    std::fprintf(stderr, "--threads/--repeat support ida|nia|ria|greedy|sspa only\n");
    return 2;
  }

  Matching matching;
  Metrics metrics;
  if (use_runner) {
    QuerySpec spec;
    spec.problem = problem;
    spec.exact = exact;
    spec.sspa = sspa;
    if (args.solver == "ida") spec.solver = QuerySolver::kIda;
    if (args.solver == "nia") spec.solver = QuerySolver::kNia;
    if (args.solver == "ria") spec.solver = QuerySolver::kRia;
    if (args.solver == "greedy") spec.solver = QuerySolver::kGreedy;
    if (args.solver == "sspa") spec.solver = QuerySolver::kSspa;
    SharedIndex::Options index_options;
    index_options.db = db_options;
    index_options.build_customer_db = args.solver != "sspa";
    const SharedIndex index(problem.customers, index_options);
    const std::vector<QuerySpec> batch(repeat, spec);
    QueryRunner runner(&index, args.threads);
    Timer timer;
    std::vector<QueryOutcome> outcomes = runner.Run(batch);
    const double wall = timer.ElapsedMillis();
    matching = std::move(outcomes.front().matching);
    metrics = outcomes.front().metrics;
    std::vector<double> lat;
    lat.reserve(outcomes.size());
    for (const auto& o : outcomes) lat.push_back(o.latency_millis);
    std::sort(lat.begin(), lat.end());
    std::printf("threads=%zu repeat=%zu\n", runner.num_threads(), repeat);
    std::printf("wall_ms=%.1f\n", wall);
    std::printf("qps=%.2f\n", wall > 0.0 ? 1000.0 * static_cast<double>(repeat) / wall : 0.0);
    std::printf("p50_ms=%.3f p99_ms=%.3f\n", lat[lat.size() / 2],
                lat[static_cast<std::size_t>(0.99 * static_cast<double>(lat.size() - 1))]);
  } else if (args.solver == "ida" || args.solver == "nia" || args.solver == "ria" ||
             args.solver == "greedy") {
    ExactResult r;
    if (args.solver == "ida") r = SolveIda(problem, &db, exact);
    if (args.solver == "nia") r = SolveNia(problem, &db, exact);
    if (args.solver == "ria") r = SolveRia(problem, &db, exact);
    if (args.solver == "greedy") r = SolveGreedySm(problem, &db, exact);
    matching = std::move(r.matching);
    metrics = r.metrics;
  } else if (args.solver == "sspa") {
    SspaResult r = SolveSspa(problem, sspa);
    matching = std::move(r.matching);
    metrics = r.metrics;
  } else if (args.solver == "sa" || args.solver == "ca") {
    ApproxConfig config;
    config.delta = args.delta;
    config.exact = exact;
    ApproxResult r = args.solver == "sa" ? SolveSa(problem, &db, config)
                                         : SolveCa(problem, &db, config);
    matching = std::move(r.matching);
    metrics = r.metrics;
    std::printf("groups=%zu\n", r.num_groups);
  } else {
    std::fprintf(stderr, "unknown solver '%s'\n", args.solver.c_str());
    return 2;
  }

  std::string error;
  const bool valid = ValidateMatching(problem, matching, &error);
  std::printf("solver=%s\n", args.solver.c_str());
  std::printf("nq=%zu np=%zu k=%d gamma=%lld\n", args.nq, args.np, args.k,
              static_cast<long long>(problem.Gamma()));
  std::printf("cost=%.3f\n", matching.cost());
  std::printf("assigned=%lld\n", static_cast<long long>(matching.size()));
  // Demand the matching left unserved. On capacity-limited instances this
  // equals the overflow (total weight - total capacity); on feasible ones
  // a nonzero value means the solver under-delivered (valid=no catches it).
  std::printf("unassigned=%lld\n",
              static_cast<long long>(problem.TotalWeight() - matching.size()));
  std::printf("valid=%s%s%s\n", valid ? "yes" : "no", valid ? "" : " error=",
              valid ? "" : error.c_str());
  std::printf("esub=%llu\n", static_cast<unsigned long long>(metrics.edges_inserted));
  std::printf("dijkstra_runs=%llu\n", static_cast<unsigned long long>(metrics.dijkstra_runs));
  std::printf("dijkstra_relaxes=%llu\n",
              static_cast<unsigned long long>(metrics.dijkstra_relaxes));
  std::printf("relaxes_pruned=%llu\n", static_cast<unsigned long long>(metrics.relaxes_pruned));
  std::printf("cells_pruned=%llu\n", static_cast<unsigned long long>(metrics.cells_pruned));
  std::printf("dense_cells_checked=%llu\n",
              static_cast<unsigned long long>(metrics.dense_cells_checked));
  std::printf("coarse_tails_pruned=%llu\n",
              static_cast<unsigned long long>(metrics.coarse_tails_pruned));
  std::printf("coarse_cells_descended=%llu\n",
              static_cast<unsigned long long>(metrics.coarse_cells_descended));
  std::printf("hier_splits=%llu\n", static_cast<unsigned long long>(metrics.hier_splits));
  std::printf("grid_rings_scanned=%llu\n",
              static_cast<unsigned long long>(metrics.grid_rings_scanned));
  std::printf("node_accesses=%llu\n", static_cast<unsigned long long>(metrics.node_accesses));
  std::printf("grid_cursor_cells=%llu\n",
              static_cast<unsigned long long>(metrics.grid_cursor_cells));
  std::printf("shared_frontier_cell_fetches=%llu\n",
              static_cast<unsigned long long>(metrics.shared_frontier_cell_fetches));
  std::printf("shared_frontier_fanout=%llu\n",
              static_cast<unsigned long long>(metrics.shared_frontier_fanout));
  std::printf("index_node_accesses=%llu\n",
              static_cast<unsigned long long>(metrics.index_node_accesses));
  std::printf("page_faults=%llu\n", static_cast<unsigned long long>(metrics.page_faults));
  std::printf("cpu_ms=%.1f\n", metrics.cpu_millis);
  std::printf("io_ms=%.1f\n", metrics.io_millis());
  if (!args.trace_out.empty()) {
    trace::Stop();
    if (!trace::WriteJson(args.trace_out)) {
      std::fprintf(stderr, "cannot write trace to %s\n", args.trace_out.c_str());
      return 1;
    }
    std::printf("trace=%s\n", args.trace_out.c_str());
  }
  return valid ? 0 : 1;
}
