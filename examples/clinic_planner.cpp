// Public clinic planning scenario (paper Section 1: residents assigned to
// designated clinics with individual capacities).
//
// Demonstrates capacity *what-if* analysis: find the clinic whose capacity
// expansion lowers total travel distance the most. Each scenario is one
// exact CCA solve, so the incremental solvers make the sweep cheap.
//
// Build & run:  ./build/examples/clinic_planner
#include <cstdio>
#include <vector>

#include "core/customer_db.h"
#include "core/exact.h"
#include "gen/generator.h"

int main() {
  using namespace cca;

  const RoadNetwork network = DefaultNetwork(33);
  DatasetSpec clinic_spec;
  clinic_spec.count = 12;
  clinic_spec.distribution = PointDistribution::kUniform;
  clinic_spec.seed = 331;
  DatasetSpec resident_spec;
  resident_spec.count = 3000;
  resident_spec.distribution = PointDistribution::kClustered;
  resident_spec.seed = 332;

  // Heterogeneous capacities: clinics differ in size (total 2640 slots for
  // 3000 residents, so 360 residents must go unserved).
  const auto capacities = MixedCapacities(clinic_spec.count, 120, 320, 333);
  Problem problem = MakeProblem(network, clinic_spec, resident_spec, capacities);
  CustomerDb db(problem.customers);

  std::printf("clinics: %zu, residents: %zu, total slots: %lld\n", problem.providers.size(),
              problem.customers.size(), static_cast<long long>(problem.TotalCapacity()));

  const ExactResult base = SolveIda(problem, &db, ExactConfig{});
  const auto base_loads = base.matching.ProviderLoads(problem.providers.size());
  std::printf("baseline assignment: served %lld, Psi = %.1f\n\n",
              static_cast<long long>(base.matching.size()), base.matching.cost());
  std::printf("%-8s %10s %10s %12s\n", "clinic", "capacity", "assigned", "saturated");
  for (std::size_t i = 0; i < problem.providers.size(); ++i) {
    std::printf("C%-7zu %10d %10lld %12s\n", i + 1, problem.providers[i].capacity,
                static_cast<long long>(base_loads[i]),
                base_loads[i] == problem.providers[i].capacity ? "yes" : "");
  }

  // What-if: grant one clinic +80 slots; which expansion helps most?
  std::printf("\nwhat-if: +80 slots at a single clinic\n");
  std::printf("%-8s %14s %14s %12s\n", "clinic", "served", "Psi", "mean_dist");
  double best_gain = -1.0;
  std::size_t best_clinic = 0;
  for (std::size_t i = 0; i < problem.providers.size(); ++i) {
    Problem scenario = problem;
    scenario.providers[i].capacity += 80;
    db.CoolDown();
    const ExactResult r = SolveIda(scenario, &db, ExactConfig{});
    const double mean = r.matching.cost() / static_cast<double>(r.matching.size());
    std::printf("C%-7zu %14lld %14.1f %12.3f\n", i + 1,
                static_cast<long long>(r.matching.size()), r.matching.cost(), mean);
    // "Gain": newly served residents, tie-broken by mean distance drop.
    const double gain =
        static_cast<double>(r.matching.size() - base.matching.size()) * 1e6 - mean;
    if (gain > best_gain) {
      best_gain = gain;
      best_clinic = i;
    }
  }
  std::printf("\nrecommendation: expand clinic C%zu\n", best_clinic + 1);
  return 0;
}
