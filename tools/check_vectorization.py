#!/usr/bin/env python3
"""Release-mode vectorization smoke check for the fused distance kernel.

Compiles src/core/problem.cc standalone with the library's Release flags
plus GCC's `-fopt-info-vec-optimized`, and asserts that at least one
"loop vectorized" remark lands inside the body of `DistanceBlockSelect`
(the SIMD early-reject pass of the SSPA relax hot path). A refactor that
silently de-vectorizes the kernel -- e.g. reintroducing errno-setting libm
calls, a branch in the squared-compare loop, or non-contiguous loads --
fails this check instead of showing up later as an unexplained wall-clock
regression.

Wired up as a ctest (`check_kernel_vectorization`, GCC-only: clang spells
the remarks differently) and run by CI on the Release matrix leg. The
check compiles its own object at -O3 regardless of the surrounding build
type, so it is deterministic across Debug/Release trees.

Usage: check_vectorization.py [--compiler g++] [--repo /path/to/repo]
"""
import argparse
import os
import re
import subprocess
import sys
import tempfile

KERNEL = "DistanceBlockSelect"


def kernel_line_range(src_path):
    """Line span [begin, end] of the kernel's definition, by brace count."""
    with open(src_path) as f:
        lines = f.readlines()
    begin = None
    depth = 0
    for i, line in enumerate(lines, start=1):
        if begin is None:
            if re.search(rf"\b{KERNEL}\s*\(", line):
                begin = i
            else:
                continue
        depth += line.count("{") - line.count("}")
        if begin is not None and depth == 0 and "{" in "".join(lines[begin - 1:i]):
            return begin, i
    raise SystemExit(f"could not locate {KERNEL} definition in {src_path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compiler", default=os.environ.get("CXX", "g++"))
    parser.add_argument("--repo", default=os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    args = parser.parse_args()

    src = os.path.join(args.repo, "src", "core", "problem.cc")
    inc = os.path.join(args.repo, "src")
    begin, end = kernel_line_range(src)

    with tempfile.TemporaryDirectory() as tmp:
        cmd = [
            args.compiler, "-std=c++17", "-O3", "-fno-math-errno",
            "-fopt-info-vec-optimized", "-I", inc, "-c", src,
            "-o", os.path.join(tmp, "problem.o"),
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"compilation failed: {' '.join(cmd)}")

    # GCC emits remarks like "src/core/problem.cc:51:27: optimized: loop
    # vectorized using 16 byte vectors" on stderr.
    remarks = []
    for line in proc.stderr.splitlines():
        m = re.search(r"problem\.cc:(\d+):\d+: optimized: loop vectorized", line)
        if m:
            remarks.append(int(m.group(1)))
    hits = [ln for ln in remarks if begin <= ln <= end]
    print(f"{KERNEL} spans {src}:{begin}-{end}; vectorized-loop remarks at "
          f"lines {sorted(remarks)} ({len(hits)} inside the kernel)")
    if not hits:
        print(f"FAIL: no vectorized loop inside {KERNEL} -- the fused "
              "early-reject pass has been de-vectorized", file=sys.stderr)
        return 1
    print("OK: fused kernel vectorizes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
