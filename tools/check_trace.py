#!/usr/bin/env python3
"""Validate a Chrome trace JSON emitted by the span tracer (common/trace.h).

Checks, in order:
  1. the file parses as JSON with a `traceEvents` list of complete ("X")
     events carrying name/pid/tid/ts/dur;
  2. per thread, spans are properly nested: sorted by start time, every
     span either starts after the previous one ended or closes before it
     does (overlap without containment = a broken RAII pairing);
  3. nothing was dropped (droppedEvents == 0);
  4. optionally (--expect-nesting, on in --bench mode) the serving
     hierarchy is present: at least one engine.resolve span that
     time-contains a sspa.dijkstra span and a sspa.repair_duals or
     sspa.adopt_flow span on the same thread.

Modes:
  check_trace.py TRACE.json
      validate an existing trace file.
  check_trace.py --bench PATH/TO/bench_engine_dispatch [--work-dir DIR]
      run the dispatch bench with --trace-out (smallest shape that still
      resolves: --max-np 2000) and validate what it wrote. This is the
      ctest entry point registered when CCA_ENABLE_TRACING is ON.

Exit codes: 0 valid, 1 validation failure, 2 usage/setup error.
"""

import argparse
import json
import os
import subprocess
import sys

REQUIRED_FIELDS = ("name", "ph", "pid", "tid", "ts", "dur")

# ts/dur are microseconds rounded to 3 decimals (ns resolution); allow half
# an ulp of that rounding when comparing edges.
EPS_US = 0.0015


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def validate(path, expect_nesting):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{path}: not readable as JSON: {e}")

    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return fail(f"{path}: missing traceEvents list")
    events = doc["traceEvents"]
    if not events:
        return fail(f"{path}: traceEvents is empty (tracing never started?)")
    if doc.get("droppedEvents", 0) != 0:
        return fail(f"{path}: droppedEvents = {doc['droppedEvents']}")

    by_tid = {}
    for i, e in enumerate(events):
        for field in REQUIRED_FIELDS:
            if field not in e:
                return fail(f"event {i}: missing field '{field}': {e}")
        if e["ph"] != "X":
            return fail(f"event {i}: expected complete event ph='X', got {e['ph']!r}")
        if not isinstance(e["tid"], int) or e["tid"] < 0:
            return fail(f"event {i}: tid must be a non-negative int, got {e['tid']!r}")
        if e["dur"] < 0 or e["ts"] < 0:
            return fail(f"event {i}: negative ts/dur: {e}")
        by_tid.setdefault(e["tid"], []).append(e)

    # Balanced nesting per thread: walking spans in start order with a
    # stack of open intervals, every span must fit inside the innermost
    # still-open span (or start after it closed). RAII spans on one thread
    # can never partially overlap.
    for tid, tid_events in sorted(by_tid.items()):
        tid_events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # end timestamps of open spans, innermost last
        for e in tid_events:
            start, end = e["ts"], e["ts"] + e["dur"]
            while stack and stack[-1] <= start + EPS_US:
                stack.pop()
            if stack and end > stack[-1] + EPS_US:
                return fail(
                    f"tid {tid}: span '{e['name']}' [{start}, {end}] overlaps the "
                    f"enclosing span's end {stack[-1]} without nesting"
                )
            stack.append(end)

    if expect_nesting:
        def contains(parent, child):
            return (
                parent["tid"] == child["tid"]
                and child["ts"] >= parent["ts"] - EPS_US
                and child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + EPS_US
            )

        resolves = [e for e in events if e["name"] == "engine.resolve"]
        if not resolves:
            return fail("no engine.resolve spans in trace")
        dijkstras = [e for e in events if e["name"] == "sspa.dijkstra"]
        phases = [
            e for e in events if e["name"] in ("sspa.repair_duals", "sspa.adopt_flow")
        ]
        if not any(
            any(contains(r, d) for d in dijkstras)
            and any(contains(r, p) for p in phases)
            for r in resolves
        ):
            return fail(
                "no engine.resolve span contains both a sspa.dijkstra and a "
                "sspa.repair_duals/sspa.adopt_flow span"
            )

    names = sorted({e["name"] for e in events})
    print(
        f"check_trace: OK: {len(events)} events, {len(by_tid)} thread(s), "
        f"span names: {', '.join(names)}"
    )
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", help="existing trace JSON to validate")
    parser.add_argument("--bench", help="bench_engine_dispatch binary to run first")
    parser.add_argument("--work-dir", default="check_trace_tmp")
    parser.add_argument(
        "--expect-nesting",
        action="store_true",
        help="require the engine.resolve -> sspa.* hierarchy (implied by --bench)",
    )
    args = parser.parse_args()

    if bool(args.trace) == bool(args.bench):
        parser.error("pass exactly one of TRACE.json or --bench BINARY")

    if args.bench:
        os.makedirs(args.work_dir, exist_ok=True)
        trace_path = os.path.join(args.work_dir, "trace.json")
        cmd = [
            args.bench,
            # Smallest shape that still resolves (np=1500 < 2000); keeps the
            # ctest fast while producing a full warm/cold step stream.
            "--max-np", "2000",
            "--out", os.path.join(args.work_dir, "bench.json"),
            "--stats-out", os.path.join(args.work_dir, "stats.json"),
            "--trace-out", trace_path,
        ]
        proc = subprocess.run(cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout.decode(errors="replace"))
            return fail(f"bench exited {proc.returncode}")
        return validate(trace_path, expect_nesting=True)

    return validate(args.trace, expect_nesting=args.expect_nesting)


if __name__ == "__main__":
    sys.exit(main())
