#!/usr/bin/env python3
"""Diff a freshly produced BENCH_*.json against a committed baseline.

Usage: bench_diff.py NEW.json BASELINE.json [--relax-slack FRAC]

Rows are matched on their identifying keys (n_q/n_p/k/mode for
bench_micro_flow output, setting/algo for the figure benches); rows present
in only one file are ignored (CI runs a size-capped subset of the committed
baseline). For every matched pair the check fails when

  * the matching cost differs by more than 1e-6 relative (the solvers are
    exact: any cost drift is a correctness bug), or
  * a deterministic work counter (relaxes, pops, node accesses, cursor
    cells) regresses by more than --relax-slack (default 10%) over the
    baseline.

Timing fields are reported but never gated: wall clock is machine-
dependent, the work counters are not.
"""
import argparse
import json
import sys

ID_KEYS = ("n_q", "n_p", "k", "mode", "setting", "algo")
COUNTER_KEYS = (
    "relaxes",
    "pops",
    "grid_rings_scanned",
    "grid_cursor_cells",
    "esub",
    "node_accesses",
    "index_node_accesses",
    "nn_searches",
)


def row_id(row):
    return tuple((k, row[k]) for k in ID_KEYS if k in row)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("new_json")
    parser.add_argument("baseline_json")
    parser.add_argument("--relax-slack", type=float, default=0.10,
                        help="allowed fractional counter growth over baseline")
    args = parser.parse_args()

    with open(args.new_json) as f:
        new_rows = {row_id(r): r for r in json.load(f)}
    with open(args.baseline_json) as f:
        base_rows = {row_id(r): r for r in json.load(f)}

    shared = sorted(set(new_rows) & set(base_rows))
    if not shared:
        print(f"bench_diff: no shared rows between {args.new_json} and "
              f"{args.baseline_json}", file=sys.stderr)
        return 1

    failures = []
    for key in shared:
        new, base = new_rows[key], base_rows[key]
        label = " ".join(f"{k}={v}" for k, v in key)
        if "cost" in new and "cost" in base:
            tol = 1e-6 * max(1.0, abs(base["cost"]))
            if abs(new["cost"] - base["cost"]) > tol:
                failures.append(
                    f"{label}: cost {new['cost']} != baseline {base['cost']}")
        for counter in COUNTER_KEYS:
            if counter not in new or counter not in base:
                continue
            limit = base[counter] * (1.0 + args.relax_slack)
            if new[counter] > limit:
                failures.append(
                    f"{label}: {counter} {new[counter]} exceeds baseline "
                    f"{base[counter]} by more than {args.relax_slack:.0%}")

    print(f"bench_diff: compared {len(shared)} shared rows "
          f"({len(new_rows) - len(shared)} new-only, "
          f"{len(base_rows) - len(shared)} baseline-only skipped)")
    if failures:
        print("bench_diff: REGRESSIONS FOUND", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("bench_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
