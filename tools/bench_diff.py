#!/usr/bin/env python3
"""Diff a freshly produced BENCH_*.json against a committed baseline.

Usage: bench_diff.py NEW.json BASELINE.json [--relax-slack FRAC] [--cost-tol FRAC]

CI runs this over BENCH_sspa.json (bench_micro_flow) and the fig10/fig11
trajectories (bench_fig10_providers / bench_fig11_customers), each against
the baseline committed at the repo root.

Rows are matched on their identifying keys (n_q/n_p/k/mode for
bench_micro_flow output, setting/algo for the figure benches).
Baseline-only rows are allowed but listed (CI runs a size-capped subset of
the committed baseline); a row present only in the NEW file is a hard
error -- it means the run produced data nothing gates, typically a renamed
identifying key or a baseline that was never regenerated, which previously
let whole benches go silently unchecked. For every matched pair the check
fails when

  * the matching cost differs by more than --cost-tol relative (default
    1e-6: the solvers are exact, so any cost drift beyond float noise is a
    correctness bug -- loosen only for approximate-solver rows), or
  * a deterministic work counter (relaxes, pops, node accesses, cursor
    cells, shared-frontier fetches) regresses by more than --relax-slack
    (default 0.10, i.e. 10% growth) over the baseline. Counters are exact
    re-runs of deterministic code, so the slack only absorbs intentional
    small drifts; raise it in CI alongside a justifying comment when a PR
    deliberately trades one counter for another.

Timing fields are reported but never gated: wall clock is machine-
dependent, the work counters are not.
"""
import argparse
import json
import sys

ID_KEYS = ("n_q", "n_p", "k", "mode", "dist", "setting", "algo",
           # bench_engine_qps rows: mixed-workload batches per thread count.
           "workload", "queries", "threads")
COUNTER_KEYS = (
    "relaxes",
    "pops",
    "grid_rings_scanned",
    "grid_cursor_cells",
    "shared_frontier_cell_fetches",
    # Hierarchical-grid activity (geo/hier_grid.h). dense_cells_checked is
    # the output-sensitivity headline (the hierarchical dense fallback must
    # keep its >=10x collapse at 100x10k); the coarse counters pin how much
    # work the two-level sweep does. coarse_tails_pruned growth would be an
    # improvement, but a pruned tail is also a descent avoided, so both
    # directions of drift are gated and a deliberate trade needs a comment.
    "dense_cells_checked",
    "coarse_tails_pruned",
    "coarse_cells_descended",
    "hier_splits",
    # The quadratic term the cell-level pruning + fused early-reject kernel
    # exist to kill: exact (sqrt) distances materialised by the relax
    # kernels. Gated so a refactor cannot silently reintroduce it.
    # (cells_pruned and relaxes_pruned are reported but not gated: growth
    # there means *more* pruning, which is an improvement.)
    "distances_computed",
    "esub",
    "node_accesses",
    "index_node_accesses",
    "nn_searches",
    # Exact solvers run a fixed number of augmentations per instance; any
    # drift is a correctness bug, not a perf trade (bench_engine_qps rows).
    "augmentations",
    # Failure-model counters (runtime/engine.h Stats). The dispatch bench
    # sets no deadline and generates feasible instances, so the committed
    # baseline pins all three at 0 — any nonzero value (a breach, a
    # degraded resolve, or silently unserved demand) fails the gate
    # outright since slack over a 0 baseline is still 0.
    "deadline_breaches",
    "degraded_resolves",
    "unassigned_units",
)
# Timing / latency-histogram fields: carried through and reported per row
# so a reviewer can eyeball drift, but NEVER gated -- wall clock and
# percentile latencies are machine-dependent (the histogram percentiles
# additionally quantise to <= 12.5% buckets, see common/histogram.h).
REPORT_KEYS = ("qps", "wall_ms", "p50_ms", "p99_ms", "p999_ms", "mean_ms")


def row_id(row):
    return tuple((k, row[k]) for k in ID_KEYS if k in row)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("new_json")
    parser.add_argument("baseline_json")
    parser.add_argument("--relax-slack", type=float, default=0.10,
                        help="allowed fractional counter growth over baseline")
    parser.add_argument("--cost-tol", type=float, default=1e-6,
                        help="allowed relative matching-cost drift")
    args = parser.parse_args()

    with open(args.new_json) as f:
        new_rows = {row_id(r): r for r in json.load(f)}
    with open(args.baseline_json) as f:
        base_rows = {row_id(r): r for r in json.load(f)}

    shared = sorted(set(new_rows) & set(base_rows))
    if not shared:
        print(f"bench_diff: no shared rows between {args.new_json} and "
              f"{args.baseline_json}", file=sys.stderr)
        return 1

    # A produced row the baseline cannot gate is a hard error, not a skip:
    # silently unmatched rows meant a renamed key or a stale baseline could
    # disable the gate for an entire bench without anyone noticing.
    new_only = sorted(set(new_rows) - set(base_rows))
    if new_only:
        print(f"bench_diff: {len(new_only)} row(s) in {args.new_json} have no "
              f"baseline match in {args.baseline_json}:", file=sys.stderr)
        for key in new_only:
            print("  " + " ".join(f"{k}={v}" for k, v in key), file=sys.stderr)
        print("bench_diff: regenerate the committed baseline (or fix the "
              "identifying keys) so every produced row is gated.",
              file=sys.stderr)
        return 1

    base_only = sorted(set(base_rows) - set(new_rows))
    if base_only:
        print(f"bench_diff: {len(base_only)} baseline-only row(s) not exercised "
              "by this run (size-capped subset):")
        for key in base_only:
            print("  " + " ".join(f"{k}={v}" for k, v in key))

    failures = []
    for key in shared:
        new, base = new_rows[key], base_rows[key]
        label = " ".join(f"{k}={v}" for k, v in key)
        reported = [
            f"{k} {base[k]:g} -> {new[k]:g}"
            for k in REPORT_KEYS
            if k in new and k in base
        ]
        if reported:
            print(f"  [timing, not gated] {label}: " + ", ".join(reported))
        if "cost" in new and "cost" in base:
            tol = args.cost_tol * max(1.0, abs(base["cost"]))
            if abs(new["cost"] - base["cost"]) > tol:
                failures.append(
                    f"{label}: cost {new['cost']} != baseline {base['cost']}")
        for counter in COUNTER_KEYS:
            if counter not in new or counter not in base:
                continue
            limit = base[counter] * (1.0 + args.relax_slack)
            if new[counter] > limit:
                failures.append(
                    f"{label}: {counter} {new[counter]} exceeds baseline "
                    f"{base[counter]} by more than {args.relax_slack:.0%}")

    print(f"bench_diff: compared {len(shared)} shared rows "
          f"({len(base_only)} baseline-only listed above)")
    if failures:
        print("bench_diff: REGRESSIONS FOUND", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("bench_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
